//! Cross-crate consistency checks between the attacker-visible behaviour and
//! the privileged simulator state.

use pthammer::spray::{spray_page_tables, SPRAY_PATTERN};
use pthammer::AttackConfig;
use pthammer_dram::FlipModelProfile;
use pthammer_kernel::{MmapOptions, System};
use pthammer_machine::MachineConfig;
use pthammer_types::{VirtAddr, PAGE_SIZE};

#[test]
fn sprayed_mappings_agree_with_the_oracle_and_dram_mapping() {
    let mut sys = System::undefended(MachineConfig::test_small(
        FlipModelProfile::invulnerable(),
        201,
    ));
    let pid = sys.spawn_process(1000).unwrap();
    let config = AttackConfig {
        spray_bytes: 512 << 20,
        ..AttackConfig::quick_test(201, false)
    };
    let spray = spray_page_tables(&mut sys, pid, &config).unwrap();

    let row_span = sys.machine().config().dram.geometry.row_span_bytes();
    let stride = pthammer::pairs::pair_stride(row_span);
    let low = spray.base + 3 * PAGE_SIZE;
    let high = low + stride;

    // The stride property the attack relies on: the two L1PTEs are in the
    // same bank, exactly two rows apart (consecutive buddy allocations).
    let low_pte = sys.oracle_l1pte_paddr(pid, low).unwrap();
    let high_pte = sys.oracle_l1pte_paddr(pid, high).unwrap();
    let low_loc = pthammer_machine::dram_location(sys.machine(), low_pte);
    let high_loc = pthammer_machine::dram_location(sys.machine(), high_pte);
    assert!(low_loc.same_bank(&high_loc));
    assert_eq!(high_loc.row - low_loc.row, 2);

    // Every sprayed access the attacker performs reads the pattern, and the
    // data physically lives in the single shared frame.
    let user_frame = sys
        .oracle_translate(pid, spray.user_page)
        .unwrap()
        .frame_number();
    for offset in [0u64, 17 * PAGE_SIZE, stride / 2, stride] {
        let va = VirtAddr::new(low.as_u64() + offset);
        assert_eq!(sys.read_u64(pid, va).unwrap().value, SPRAY_PATTERN);
        assert_eq!(
            sys.oracle_translate(pid, va).unwrap().frame_number(),
            user_frame
        );
    }
}

#[test]
fn attacker_timing_matches_microarchitectural_state() {
    let mut sys = System::undefended(MachineConfig::test_small(
        FlipModelProfile::invulnerable(),
        202,
    ));
    let pid = sys.spawn_process(1000).unwrap();
    let va = sys
        .mmap(
            pid,
            4 * PAGE_SIZE,
            MmapOptions {
                populate: true,
                ..MmapOptions::default()
            },
        )
        .unwrap();
    // Cold access: page walk plus DRAM.
    let cold = sys.read_u64(pid, va).unwrap();
    // Warm access: TLB hit plus L1 hit; must be much faster, and the latency
    // the attacker sees equals the clock advance.
    let before = sys.rdtsc();
    let warm = sys.read_u64(pid, va).unwrap();
    let elapsed = sys.rdtsc() - before;
    assert!(warm.latency < cold.latency);
    assert_eq!(elapsed, warm.latency.as_u64());
    // clflush makes the next access slower again (data from DRAM).
    sys.clflush(pid, va).unwrap();
    let flushed = sys.read_u64(pid, va).unwrap();
    assert!(flushed.latency > warm.latency);
}

//! Store-backed campaign tier: kill-resume, shard-merge, and corruption
//! semantics against the committed golden snapshot.
//!
//! The claim under test is strong: however the pinned 30-cell matrix is
//! executed — straight through, killed after 10 cells and resumed, split
//! across shards, served from cache, recovered from a corrupted entry — the
//! resulting `CampaignReport` JSON is **byte-for-byte** the committed
//! `tests/golden/campaign_ci_matrix.json`. That pins the whole persistence
//! layer (content-addressed keys, atomic writes, hash-verified reads, the
//! JSON decode round trip, merge ordering) as one regression oracle next to
//! the simulator itself.
//!
//! A full 30-cell run is expensive in debug builds, so every golden-bytes
//! test here (`resumable_golden_*`) shares one lazily-computed fixture: a
//! single kill-then-resume run through a store, whose verified cell bodies
//! the other tests redistribute with cheap store writes instead of
//! recomputing. CI runs these in release in the `resumable-store` job and
//! skips them in the debug test job.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use proptest::prelude::*;

mod common;
use common::first_diff;

use pthammer_harness::{
    cell_store_key, merge_stores, run_campaign, run_campaign_resumable, run_campaign_shard,
    store_manifest, CampaignConfig, CellKey, CellStore, ProfileChoice, ResumeStats, ScenarioMatrix,
    ShardSpec, StoreError,
};

/// Base seed of the pinned campaign (matches `tests/campaign_matrix.rs`).
const GOLDEN_BASE_SEED: u64 = 0x7453_4861_4d21;

/// Cells the simulated kill completes before the fixture "dies".
const KILLED_AFTER: usize = 10;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn golden_matrix() -> ScenarioMatrix {
    ScenarioMatrix::ci_default()
}

fn golden_config() -> CampaignConfig {
    CampaignConfig {
        threads: 2,
        ..CampaignConfig::ci(GOLDEN_BASE_SEED)
    }
}

fn golden_snapshot() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("campaign_ci_matrix.json");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {} ({e})", path.display()))
}

/// A fresh, empty store for the golden campaign under a unique temp root.
fn temp_store(tag: &str) -> (CellStore, PathBuf) {
    let root = std::env::temp_dir().join(format!(
        "pthammer-resumable-test-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    CellStore::wipe(&root).expect("wipe temp store");
    let store = CellStore::open(&root, &store_manifest(&golden_config())).expect("open store");
    (store, root)
}

/// The shared expensive fixture: one kill-then-resume execution of the
/// pinned matrix through a store. Computed once per test binary.
struct Fixture {
    /// The committed golden snapshot bytes.
    golden: String,
    /// Canonical JSON of the resumed campaign's report.
    resumed_json: String,
    /// Stats of the killed (budgeted) first invocation.
    kill_stats: ResumeStats,
    /// Stats of the resuming invocation.
    resume_stats: ResumeStats,
    /// Every cell's `(key, verified stored body)` in canonical matrix order;
    /// other tests redistribute these across stores without recomputing.
    bodies: Vec<(CellKey, String)>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let matrix = golden_matrix();
        let config = golden_config();
        let (store, root) = temp_store("fixture");

        // First invocation: dies (deterministically) after 10 computed cells.
        let kill_stats = run_campaign_shard(
            &matrix,
            &config,
            &store,
            &ShardSpec::full(),
            Some(KILLED_AFTER),
        )
        .expect("killed run");

        // Second invocation: resumes against the same store and completes.
        let (report, resume_stats) =
            run_campaign_resumable(&matrix, &config, &store).expect("resumed run");

        let bodies = matrix
            .cells()
            .iter()
            .map(|coord| {
                let key = cell_store_key(coord);
                match store.get(&key) {
                    pthammer_harness::CellLookup::Hit(body) => (key, body),
                    other => panic!("cell {coord:?} not stored after resume: {other:?}"),
                }
            })
            .collect();
        CellStore::wipe(&root).expect("clean fixture store");
        Fixture {
            golden: golden_snapshot(),
            resumed_json: report.to_canonical_json(),
            kill_stats,
            resume_stats,
            bodies,
        }
    })
}

/// Builds a store holding exactly the fixture cells selected by `owned`.
fn store_with(tag: &str, owned: impl Fn(usize, &CellKey) -> bool) -> (CellStore, PathBuf) {
    let (store, root) = temp_store(tag);
    for (i, (key, body)) in fixture().bodies.iter().enumerate() {
        if owned(i, key) {
            store.put(key, body).expect("seed store");
        }
    }
    (store, root)
}

/// Acceptance criterion: a campaign killed after 10 cells and resumed in a
/// separate invocation reproduces the golden snapshot byte-for-byte, with
/// the resumed invocation serving the killed run's cells from cache.
#[test]
fn resumable_golden_kill_resume_matches_snapshot() {
    let f = fixture();
    assert_eq!(f.kill_stats.computed, KILLED_AFTER);
    assert!(f.kill_stats.incomplete(), "{:?}", f.kill_stats);
    assert_eq!(
        f.resume_stats.cache_hits, KILLED_AFTER,
        "{:?}",
        f.resume_stats
    );
    assert_eq!(
        f.resume_stats.computed,
        golden_matrix().len() - KILLED_AFTER
    );
    assert!(f.resume_stats.cache_hits >= 1, "resume must hit the cache");
    assert!(
        f.resumed_json == f.golden,
        "resumed campaign drifted from the golden snapshot; first diverging line: {}",
        first_diff(&f.golden, &f.resumed_json)
    );
}

/// Acceptance criterion: the true 3-shard partition of the matrix, merged
/// from three disjoint stores, reproduces the golden snapshot byte-for-byte.
#[test]
fn resumable_golden_three_shard_merge_matches_snapshot() {
    let f = fixture();
    let shards: Vec<ShardSpec> = (0..3).map(|i| ShardSpec::new(i, 3).unwrap()).collect();
    let stores: Vec<(CellStore, PathBuf)> = shards
        .iter()
        .map(|shard| store_with(&format!("shard{}", shard.index), |_, key| shard.owns(key)))
        .collect();
    let refs: Vec<&CellStore> = stores.iter().map(|(s, _)| s).collect();
    let (merged, stats) = merge_stores(&golden_matrix(), &golden_config(), &refs).unwrap();
    let json = merged.to_canonical_json();
    assert_eq!(stats.per_store.iter().sum::<usize>(), golden_matrix().len());
    assert!(
        stats.per_store.iter().all(|&n| n > 0),
        "every shard must own cells: {:?}",
        stats.per_store
    );
    assert_eq!(stats.corrupt_skipped, 0);
    assert!(
        json == f.golden,
        "3-shard merge drifted from the golden snapshot; first diverging line: {}",
        first_diff(&f.golden, &json)
    );
    for (_, root) in &stores {
        CellStore::wipe(root).unwrap();
    }
}

/// A corrupted cell file is detected by its content hash, recomputed, and
/// the campaign still reproduces the golden snapshot.
#[test]
fn resumable_golden_corrupt_cell_is_recomputed() {
    let f = fixture();
    let (store, root) = store_with("corrupt", |_, _| true);
    // Vandalize one stored cell on disk: flip a byte in the body so the
    // header's content hash no longer matches.
    let victim = &f.bodies[0].0;
    let path = root.join("cells").join(format!("{}.json", victim.hex()));
    let text = std::fs::read_to_string(&path).expect("read victim cell");
    std::fs::write(
        &path,
        text.replace("\"cell_seed\":", "\"cell_seed\": 1,\"x\":"),
    )
    .expect("corrupt victim cell");

    let (report, stats) =
        run_campaign_resumable(&golden_matrix(), &golden_config(), &store).expect("recovering run");
    assert_eq!(stats.corrupt_recomputed, 1, "{stats:?}");
    assert_eq!(stats.computed, 1);
    assert_eq!(stats.cache_hits, golden_matrix().len() - 1);
    let json = report.to_canonical_json();
    assert!(
        json == f.golden,
        "corruption recovery drifted from the golden snapshot; first diverging line: {}",
        first_diff(&f.golden, &json)
    );
    // The recompute also repaired the store entry.
    assert!(store.contains(victim));
    CellStore::wipe(&root).unwrap();
}

/// Any change to the campaign shape — here the attack scale — refuses the
/// store instead of silently mixing results computed under different
/// configurations. (Seed-schema bumps flow through the same manifest field.)
#[test]
fn incompatible_campaign_refuses_the_store() {
    let (_, root) = temp_store("manifest");
    let mut retuned = golden_config();
    retuned.hammer_rounds_per_attempt += 1;
    match CellStore::open(&root, &store_manifest(&retuned)) {
        Err(StoreError::ManifestMismatch { .. }) => {}
        other => panic!("expected ManifestMismatch, got {other:?}"),
    }
    CellStore::wipe(&root).unwrap();
}

/// Real sharded *execution* on a cheap matrix: two shard invocations compute
/// disjoint cell sets into separate stores and their merge is byte-identical
/// to the single-process run. (The golden-matrix variant above redistributes
/// precomputed bodies; this one actually runs per shard.)
#[test]
fn sharded_execution_is_disjoint_and_merges_identically() {
    let matrix = ScenarioMatrix::new(
        vec![pthammer_harness::MachineChoice::TestSmall],
        pthammer_harness::DefenseChoice::all(),
        vec![ProfileChoice::Invulnerable],
        1,
    );
    let mut config = CampaignConfig::ci(99);
    config.max_attempts = 2;
    config.threads = 2;
    let manifest = store_manifest(&config);
    let mut stores = Vec::new();
    let mut computed = 0;
    for i in 0..2 {
        let root = std::env::temp_dir().join(format!(
            "pthammer-resumable-test-exec{i}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        CellStore::wipe(&root).unwrap();
        let store = CellStore::open(&root, &manifest).unwrap();
        let shard = ShardSpec::new(i, 2).unwrap();
        let stats = run_campaign_shard(&matrix, &config, &store, &shard, None).unwrap();
        assert_eq!(stats.computed + stats.skipped_other_shard, matrix.len());
        assert!(!stats.incomplete());
        computed += stats.computed;
        stores.push((store, root));
    }
    assert_eq!(
        computed,
        matrix.len(),
        "shards must cover the matrix exactly"
    );
    let refs: Vec<&CellStore> = stores.iter().map(|(s, _)| s).collect();
    let (merged, _) = merge_stores(&matrix, &config, &refs).unwrap();
    assert_eq!(
        merged.to_canonical_json(),
        run_campaign(&matrix, &config).to_canonical_json()
    );
    for (_, root) in &stores {
        CellStore::wipe(root).unwrap();
    }
}

/// One assignment entry per matrix cell, however large the pinned matrix is.
fn assignment_len() -> std::ops::Range<usize> {
    let cells = golden_matrix().len();
    cells..cells + 1
}

// Any partition of the pinned 30-cell matrix into up to four shard stores —
// including empty shards and arbitrary assignments that no `ShardSpec` would
// produce — merges to the byte-identical golden report. Merge determinism
// depends only on store *contents* covering the matrix, never on how cells
// were distributed.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn resumable_golden_any_partition_merges_identically(
        store_count in 1usize..4,
        assignment in prop::collection::vec(0usize..4, assignment_len()),
    ) {
        let f = fixture();
        prop_assert_eq!(assignment.len(), f.bodies.len());
        let stores: Vec<(CellStore, PathBuf)> = (0..store_count)
            .map(|s| store_with(&format!("part{s}"), |i, _| assignment[i] % store_count == s))
            .collect();
        let refs: Vec<&CellStore> = stores.iter().map(|(st, _)| st).collect();
        let (merged, stats) = merge_stores(&golden_matrix(), &golden_config(), &refs)
            .map_err(TestCaseError)?;
        prop_assert_eq!(stats.per_store.iter().sum::<usize>(), golden_matrix().len());
        let json = merged.to_canonical_json();
        prop_assert_eq!(&json, &f.golden);
        for (_, root) in &stores {
            CellStore::wipe(root).unwrap();
        }
    }
}

//! Hammer-mode axis tier: a 32-cell campaign sweeping every
//! [`HammerMode`] (machine × defense × profile × mode × repetition) must be
//! deterministic across worker-thread counts, and the strategies must show
//! their expected physics on the small test machine: implicit strategies
//! reach DRAM through page walks and (on weak DRAM) produce flips, while the
//! explicit baseline cannot touch the kernel's page-table rows at all.

use pthammer::HammerMode;
use pthammer_harness::{
    run_campaign, CampaignConfig, CampaignReport, DefenseChoice, HammerMode as AxisMode,
    MachineChoice, ProfileChoice, ScenarioMatrix,
};

const BASE_SEED: u64 = 0x4d4f_4445_5353; // "MODESS"

fn mode_matrix() -> ScenarioMatrix {
    ScenarioMatrix::new(
        vec![MachineChoice::TestSmall],
        vec![DefenseChoice::None, DefenseChoice::Zebram],
        vec![ProfileChoice::Ci, ProfileChoice::Invulnerable],
        2,
    )
    .with_hammer_modes(HammerMode::all())
}

fn mode_config(threads: usize) -> CampaignConfig {
    CampaignConfig {
        threads,
        hammer_rounds_per_attempt: 600,
        max_attempts: 2,
        ..CampaignConfig::ci(BASE_SEED)
    }
}

fn run(threads: usize) -> CampaignReport {
    run_campaign(&mode_matrix(), &mode_config(threads))
}

#[test]
fn mode_matrix_covers_thirty_plus_cells() {
    let matrix = mode_matrix();
    assert!(
        matrix.len() >= 30,
        "mode sweep must cover at least 30 cells, has {}",
        matrix.len()
    );
    assert_eq!(matrix.hammer_modes.len(), 4);
    assert!(!matrix.is_default_mode_only());
    assert!(matrix.validate().is_ok());
}

#[test]
fn mode_campaign_is_deterministic_across_thread_counts() {
    let two = run(2).to_canonical_json();
    let eight = run(8).to_canonical_json();
    assert_eq!(two, eight, "thread count leaked into the mode campaign");
    // The non-default axis is serialized explicitly.
    assert!(two.contains("\"hammer_modes\""));
    assert!(two.contains("\"hammer_mode\": \"implicit-one-location\""));
}

#[test]
fn strategies_behave_as_expected_on_test_small() {
    let report = run(2);
    assert_eq!(report.cells.len(), mode_matrix().len());

    // At least one non-default mode produces flips on the weak (ci) DRAM.
    let non_default_flips: usize = report
        .cells
        .iter()
        .filter(|c| !c.hammer_mode.is_default() && c.profile == "ci")
        .map(|c| c.flips_observed)
        .sum();
    assert!(
        non_default_flips > 0,
        "some non-default strategy must flip on TestSmall: {}",
        report.to_canonical_json()
    );

    for cell in &report.cells {
        assert!(cell.error.is_none(), "cell aborted: {cell:?}");
        // Control group: invulnerable DRAM never flips, in any mode.
        if cell.profile == "invulnerable" {
            assert_eq!(
                cell.flips_observed, 0,
                "invulnerable DRAM flipped: {cell:?}"
            );
            assert!(!cell.escalated);
        }
        match cell.hammer_mode {
            // The explicit baseline performs no implicit loads and can never
            // corrupt page tables: its flips land (if anywhere) in the
            // attacker's own aliased data frame, which the spray scan cannot
            // misread as a corrupted mapping.
            AxisMode::ExplicitDoubleSided => {
                assert_eq!(cell.implicit_dram_rate, 0.0, "{cell:?}");
                assert_eq!(cell.flips_observed, 0, "{cell:?}");
                assert!(!cell.escalated, "{cell:?}");
            }
            // Every implicit strategy drives its L1PTE loads to DRAM on
            // essentially every iteration.
            _ => assert!(
                cell.implicit_dram_rate > 0.5,
                "implicit loads must reach DRAM: {cell:?}"
            ),
        }
    }

    // Per-(defense, profile, mode) summaries: one for each combination.
    assert_eq!(report.summaries.len(), 2 * 2 * 4);
    for summary in &report.summaries {
        assert_eq!(summary.cells, 2);
        assert_eq!(summary.errored_cells, 0);
    }
}

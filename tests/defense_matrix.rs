//! Cross-crate integration test: the attack against placement-policy
//! defenses on the small machine. ZebRAM's guard rows must prevent any
//! exploitable corruption; the undefended baseline must observe flips.

use pthammer::{AttackConfig, PtHammer, RunOptions};
use pthammer_defenses::ZebramPolicy;
use pthammer_dram::FlipModelProfile;
use pthammer_kernel::{KernelConfig, System};
use pthammer_machine::MachineConfig;

fn machine(seed: u64) -> MachineConfig {
    MachineConfig::ci_small(FlipModelProfile::ci(), seed)
}

fn attack_config(seed: u64) -> AttackConfig {
    AttackConfig {
        spray_bytes: 640 << 20,
        hammer_rounds_per_attempt: 1_500,
        max_attempts: 8,
        llc_profile_trials: 6,
        ..AttackConfig::quick_test(seed, false)
    }
}

#[test]
fn zebram_guard_rows_prevent_exploitable_corruption() {
    let cfg = machine(103);
    let policy = Box::new(ZebramPolicy::new(&cfg.dram.geometry));
    let mut sys = System::new(cfg, KernelConfig::default_config(), policy);
    let pid = sys.spawn_process(1000).unwrap();
    let outcome = PtHammer::new(attack_config(103))
        .unwrap()
        .run_with(&mut sys, pid, RunOptions::new())
        .unwrap();
    // Flips may still occur physically, but they land in guard rows, so the
    // attacker's sprayed mappings never change and escalation is impossible.
    assert_eq!(outcome.exploitable_flips, 0, "{outcome:?}");
    assert!(!outcome.escalated);
    assert_eq!(sys.getuid(pid).unwrap(), 1000);
}

#[test]
fn undefended_baseline_observes_corrupted_mappings() {
    let mut sys = System::undefended(machine(104));
    let pid = sys.spawn_process(1000).unwrap();
    let outcome = PtHammer::new(attack_config(104))
        .unwrap()
        .run_with(&mut sys, pid, RunOptions::new())
        .unwrap();
    assert!(outcome.flips_observed >= 1, "{outcome:?}");
}

//! TRR-era golden tier: the pinned TRR/pattern mini-matrix — the plain CI
//! machine and its TRR twin × {stock double-sided, synthesized pattern,
//! uniform 4-sided control} — must be byte-identical to the committed
//! snapshot at any worker-thread count, and must demonstrate the headline
//! TRRespass-style contrast:
//!
//! * on the TRR-free machine the stock implicit double-sided attack flips;
//! * on the TRR machine the *same* attack observes **zero** flips (the
//!   sampler refreshes the victim's neighbours first) while the
//!   synthesizer-found many-sided pattern still flips;
//! * the whole campaign — including the per-cell pattern synthesis — is
//!   byte-identically resumable through a `pthammer-store`.
//!
//! Refresh after an intentional behaviour change with
//! `PTHAMMER_UPDATE_GOLDEN=1 cargo test --release --test trr_pattern_matrix`.

use std::path::PathBuf;
use std::sync::OnceLock;

mod common;
use common::first_diff;

use pthammer_harness::{
    run_campaign, run_campaign_resumable, store_manifest, CampaignConfig, CampaignReport,
    CellStore, ScenarioMatrix,
};
use pthammer_patterns::PatternChoice;

/// Base seed of the pinned TRR campaign; changing it invalidates the
/// snapshot.
///
/// The seed is chosen so that **every** synthesized-pattern cell on the TRR
/// machine's `ci` profile observes a flip: a pattern cell needs a candidate
/// window that is not split across banks by the kernel's own mid-spray
/// page-table allocations *and* whose detectable victim row is weak, which
/// individual cells miss with noticeable probability. If a future behavior
/// change forces a golden refresh and a synthesized cell comes back flipless,
/// re-tune this seed (any value satisfying
/// [`trr_kills_double_sided_but_synthesized_patterns_still_flip`] works).
const TRR_BASE_SEED: u64 = 0x5452_5265_7263; // "TRRerc"

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("campaign_trr_matrix.json")
}

fn trr_matrix() -> ScenarioMatrix {
    ScenarioMatrix::trr_pattern_ci()
}

fn trr_config(threads: usize) -> CampaignConfig {
    CampaignConfig {
        threads,
        ..CampaignConfig::trr_ci(TRR_BASE_SEED)
    }
}

/// The two-thread report, computed once through a fresh store (which also
/// exercises the cold write-through path) and shared by every assertion
/// test, so the expensive matrix runs as few times as possible.
fn fixture() -> &'static (CampaignReport, String) {
    static FIXTURE: OnceLock<(CampaignReport, String)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let root =
            std::env::temp_dir().join(format!("pthammer-trr-golden-store-{}", std::process::id()));
        CellStore::wipe(&root).expect("wipe fixture store");
        let config = trr_config(2);
        let store = CellStore::open(&root, &store_manifest(&config)).expect("open fixture store");
        let (report, stats) =
            run_campaign_resumable(&trr_matrix(), &config, &store).expect("cold store pass");
        assert_eq!(stats.computed, trr_matrix().len());
        assert_eq!(stats.cache_hits, 0);

        // Warm pass: every cell — including the synthesized-pattern cells —
        // must come back from the store byte-identically, with no search
        // and no simulation re-run.
        let (warm, warm_stats) =
            run_campaign_resumable(&trr_matrix(), &config, &store).expect("warm store pass");
        assert_eq!(warm_stats.cache_hits, trr_matrix().len());
        assert_eq!(warm_stats.computed, 0);
        let json = report.to_canonical_json();
        assert_eq!(
            warm.to_canonical_json(),
            json,
            "store-resumed TRR campaign must be byte-identical"
        );
        CellStore::wipe(&root).expect("clean up fixture store");
        (report, json)
    })
}

#[test]
fn matrix_shape_covers_the_trr_axes() {
    let matrix = trr_matrix();
    assert_eq!(matrix.len(), 24, "2 machines × 2 profiles × 3 patterns × 2");
    assert!(matrix.validate().is_ok());
    assert!(matrix.machines.iter().any(|m| m.has_trr()));
    assert!(matrix.machines.iter().any(|m| !m.has_trr()));
    assert!(matrix.patterns.contains(&None));
    assert!(matrix.patterns.contains(&Some(PatternChoice::Synthesized)));
}

#[test]
fn two_thread_trr_campaign_matches_golden_snapshot() {
    compare_with_golden(&fixture().1);
}

#[test]
fn eight_thread_trr_campaign_matches_golden_snapshot() {
    let json = run_campaign(&trr_matrix(), &trr_config(8)).to_canonical_json();
    assert_eq!(
        json,
        fixture().1,
        "thread count leaked into the TRR campaign"
    );
    compare_with_golden(&json);
}

#[test]
fn trr_kills_double_sided_but_synthesized_patterns_still_flip() {
    let report = &fixture().0;
    for cell in &report.cells {
        assert!(cell.error.is_none(), "cell aborted: {cell:?}");
        let trr_machine = cell.machine == "Test Small TRR";

        // Mitigation interventions are reported exactly where they exist.
        if trr_machine {
            assert!(cell.trr_refreshes > 0, "TRR never sampled: {cell:?}");
        } else {
            assert_eq!(cell.trr_refreshes, 0, "phantom TRR: {cell:?}");
        }

        // Control group: invulnerable DRAM never flips, pattern or not.
        if cell.profile == "invulnerable" {
            assert_eq!(cell.flips_observed, 0, "invulnerable flipped: {cell:?}");
            assert!(!cell.escalated);
            continue;
        }

        match (trr_machine, cell.pattern) {
            // The headline contrast, cell for cell: stock double-sided dies
            // under TRR…
            (true, None) => {
                assert_eq!(
                    cell.flips_observed, 0,
                    "TRR must stop stock double-sided: {cell:?}"
                );
                assert!(!cell.escalated);
            }
            // …while the synthesized many-sided pattern still flips.
            (true, Some(PatternChoice::Synthesized)) => {
                assert!(
                    cell.flips_observed >= 1,
                    "synthesized pattern must slip past the sampler: {cell:?}"
                );
            }
            // The naive uniform 4-sided rotation sits right at the sampler's
            // edge: four tracked aggressors fit the capacity-6 sampler, but
            // background eviction-set traffic in the same bank can push it
            // over. Its (borderline, seed-dependent) behavior is pinned by
            // the golden bytes rather than asserted semantically.
            (true, Some(PatternChoice::UniformFourSided)) => {}
            // Without TRR the stock attack flips as always (the machines
            // differ only in the sampler).
            (false, None) => {
                assert!(
                    cell.flips_observed >= 1,
                    "stock attack must flip without TRR: {cell:?}"
                );
            }
            (false, Some(_)) => {}
        }
    }

    // Per-(machine-implied) summaries exist for every pattern-axis value.
    assert_eq!(report.summaries.len(), 2 * 3);
}

/// Compares canonical campaign JSON against the committed snapshot, or
/// rewrites the snapshot when `PTHAMMER_UPDATE_GOLDEN=1`.
fn compare_with_golden(json: &str) {
    let path = golden_path();
    if std::env::var("PTHAMMER_UPDATE_GOLDEN")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, json).expect("write golden snapshot");
        eprintln!("updated golden snapshot at {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with PTHAMMER_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert!(
        golden == json,
        "TRR campaign report drifted from the golden snapshot {}.\n\
         If the change is intentional, refresh with PTHAMMER_UPDATE_GOLDEN=1 and commit.\n\
         First diverging line: {}",
        path.display(),
        first_diff(&golden, json)
    );
}

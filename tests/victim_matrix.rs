//! Golden-snapshot regression tier for the victims axis: the campaign
//! harness runs the CI-scale machine × defense × profile × **victim** sweep
//! and its canonical JSON must match the committed snapshot **byte for
//! byte**, independent of worker-thread count.
//!
//! Where `campaign_matrix` pins the victim-free default rows, this tier pins
//! the exploitation layer: every cell carries an explicit [`VictimChoice`],
//! so the snapshot exercises the `profile → evaluate → attack` lifecycle of
//! all three shipped victims and the conditional `victim` /
//! `exploit_succeeded` / `time_to_exploit` report keys.
//!
//! Refreshing the snapshot after an *intentional* behaviour change:
//!
//! ```text
//! PTHAMMER_UPDATE_GOLDEN=1 cargo test --test victim_matrix
//! ```
//!
//! then commit the updated `tests/golden/*.json` and explain the drift in
//! the PR description.

use std::collections::BTreeSet;
use std::path::PathBuf;

mod common;
use common::first_diff;

use pthammer_harness::{run_campaign, CampaignConfig, ScenarioMatrix, VictimChoice};

/// Base seed of the pinned sweep; deliberately the same seed as the
/// victim-free `campaign_matrix` golden so the two tiers hammer identical
/// weak-cell maps and differ only in the exploitation layer.
const GOLDEN_BASE_SEED: u64 = 0x7453_4861_4d21;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("campaign_victim_matrix.json")
}

fn golden_matrix() -> ScenarioMatrix {
    ScenarioMatrix::victim_sweep_ci()
}

fn golden_config(threads: usize) -> CampaignConfig {
    CampaignConfig {
        threads,
        ..CampaignConfig::ci(GOLDEN_BASE_SEED)
    }
}

#[test]
fn matrix_sweeps_every_victim() {
    let matrix = golden_matrix();
    assert!(matrix.validate().is_ok());
    assert_eq!(
        matrix.len(),
        24,
        "2 defenses × 2 profiles × 3 victims × 2 reps"
    );
    let victims: BTreeSet<&str> = matrix
        .cells()
        .iter()
        .map(|c| c.victim.expect("sweep cells carry explicit victims").name())
        .collect();
    assert_eq!(victims.len(), VictimChoice::all().len());
}

/// Two-thread run must match the snapshot. Together with
/// [`eight_thread_victim_sweep_matches_golden_snapshot`] this also pins
/// thread-count independence: both runs are compared to the same bytes.
#[test]
fn two_thread_victim_sweep_matches_golden_snapshot() {
    let json = run_campaign(&golden_matrix(), &golden_config(2)).to_canonical_json();
    compare_with_golden(&json);
}

#[test]
fn eight_thread_victim_sweep_matches_golden_snapshot() {
    let report = run_campaign(&golden_matrix(), &golden_config(8));
    let json = report.to_canonical_json();

    // Sanity-check the sweep itself before comparing bytes: every cell must
    // report the exploitation keys, and every victim must appear.
    assert_eq!(
        report.cells.len(),
        golden_matrix().len(),
        "one row per cell"
    );
    let mut succeeded: BTreeSet<&str> = BTreeSet::new();
    for cell in &report.cells {
        let victim = cell.victim.expect("sweep cells carry explicit victims");
        assert!(
            cell.exploit_succeeded.is_some(),
            "explicit-victim cells must report exploit_succeeded: {cell:?}"
        );
        if cell.exploit_succeeded == Some(true) {
            succeeded.insert(victim.name());
            assert!(
                cell.time_to_exploit.is_some(),
                "successful exploits must report time-to-exploit: {cell:?}"
            );
        }
        if cell.profile == "invulnerable" {
            assert_eq!(
                cell.exploit_succeeded,
                Some(false),
                "invulnerable DRAM cannot be exploited: {cell:?}"
            );
        }
    }
    assert!(
        succeeded.contains(VictimChoice::PteTakeover.name()),
        "the paper's PTE takeover must succeed on the undefended CI machine: {json}"
    );
    for summary in report.summaries.iter().filter(|s| s.victim.is_some()) {
        assert!(
            summary.exploit_successes.is_some(),
            "victim summaries must aggregate exploit successes: {summary:?}"
        );
    }

    compare_with_golden(&json);
}

/// Compares canonical campaign JSON against the committed snapshot, or
/// rewrites the snapshot when `PTHAMMER_UPDATE_GOLDEN=1`.
fn compare_with_golden(json: &str) {
    let path = golden_path();
    if std::env::var("PTHAMMER_UPDATE_GOLDEN")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, json).expect("write golden snapshot");
        eprintln!("updated golden snapshot at {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with PTHAMMER_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert!(
        golden == json,
        "victim sweep drifted from the golden snapshot {}.\n\
         If the change is intentional, refresh with PTHAMMER_UPDATE_GOLDEN=1 and commit.\n\
         First diverging line: {}",
        path.display(),
        first_diff(&golden, json)
    );
}

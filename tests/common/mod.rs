//! Helpers shared by the golden-comparison integration tests.

/// Human-readable pointer at the first differing line of two texts.
pub fn first_diff(a: &str, b: &str) -> String {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("line {}: golden `{la}` vs new `{lb}`", i + 1);
        }
    }
    format!(
        "texts share {} lines, lengths differ ({} vs {} bytes)",
        a.lines().count().min(b.lines().count()),
        a.len(),
        b.len()
    )
}

//! Cross-crate integration test: the complete PThammer chain (eviction pools,
//! spray, implicit hammering, flip detection, exploitation) on a small but
//! fully modelled machine.

use pthammer::{AttackConfig, PtHammer, RunOptions};
use pthammer_dram::FlipModelProfile;
use pthammer_kernel::System;
use pthammer_machine::MachineConfig;

fn small_vulnerable_machine(seed: u64) -> MachineConfig {
    MachineConfig::ci_small(FlipModelProfile::ci(), seed)
}

#[test]
fn pthammer_observes_flips_and_reports_timings_end_to_end() {
    let mut sys = System::undefended(small_vulnerable_machine(101));
    let pid = sys.spawn_process(1000).unwrap();
    let config = AttackConfig {
        spray_bytes: 640 << 20,
        hammer_rounds_per_attempt: 1_500,
        max_attempts: 20,
        llc_profile_trials: 6,
        ..AttackConfig::quick_test(101, false)
    };
    let attack = PtHammer::new(config).unwrap();
    let outcome = attack.run_with(&mut sys, pid, RunOptions::new()).unwrap();

    // The attack observed at least one corrupted mapping, its eviction pools
    // were timed, and all reported timings are internally consistent.
    assert!(outcome.flips_observed >= 1, "{outcome:?}");
    assert!(outcome.timings.tlb_pool_prep_cycles > 0);
    assert!(outcome.timings.llc_pool_prep_cycles > 0);
    assert!(outcome.timings.hammer_cycles_per_attempt > 0);
    assert!(outcome.timings.check_cycles_per_attempt > 0);
    assert!(outcome.timings.time_to_first_flip_cycles.is_some());
    assert!(outcome.implicit_dram_rate > 0.5);
    if outcome.escalated {
        assert_eq!(outcome.uid_after, 0);
        let escalated = outcome.victim_outcome.unwrap().escalated_pid().unwrap();
        assert_eq!(sys.getuid(escalated).unwrap(), 0);
    } else {
        assert_eq!(sys.getuid(pid).unwrap(), 1000);
    }
}

#[test]
fn invulnerable_dram_never_produces_flips() {
    let mut cfg = small_vulnerable_machine(102);
    cfg.dram.flip_profile = FlipModelProfile::invulnerable();
    let mut sys = System::undefended(cfg);
    let pid = sys.spawn_process(1000).unwrap();
    let config = AttackConfig {
        spray_bytes: 640 << 20,
        hammer_rounds_per_attempt: 500,
        max_attempts: 3,
        llc_profile_trials: 4,
        ..AttackConfig::quick_test(102, false)
    };
    let attack = PtHammer::new(config).unwrap();
    let outcome = attack.run_with(&mut sys, pid, RunOptions::new()).unwrap();
    assert_eq!(outcome.flips_observed, 0);
    assert!(!outcome.escalated);
    assert_eq!(sys.getuid(pid).unwrap(), 1000);
    assert!(sys.machine().applied_flips().is_empty());
}

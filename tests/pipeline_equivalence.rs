//! Pipeline-equivalence tier: the refactored phase pipeline must reproduce
//! the pre-refactor monolithic driver *exactly* for the paper's default
//! implicit double-sided mode.
//!
//! Two pins:
//!
//! 1. A single golden campaign cell (undefended / ci / repetition 0 of
//!    `tests/golden/campaign_ci_matrix.json`), re-run in isolation through
//!    the pipeline and compared field-for-field against the values the
//!    pre-refactor driver recorded in the snapshot. The full 30-cell
//!    byte-for-byte check lives in `tests/campaign_matrix.rs`; this test
//!    fails with a readable field diff instead of a JSON diff.
//! 2. Event subscribers observe without perturbing: an observed run and a
//!    plain run of the same attack produce equal outcomes, and the
//!    subscriber's tally agrees with the outcome's own counts.

use pthammer::{AttackEvent, EventSink, HammerMode, PtHammer, RunOptions};
use pthammer_harness::{
    cell_seed, run_cell, CampaignConfig, CellCoord, DefenseChoice, ProfileChoice,
};
use pthammer_kernel::{DefenseKind, System};
use pthammer_machine::MachineChoice;

/// Base seed of the pinned golden campaign (`tests/campaign_matrix.rs`).
const GOLDEN_BASE_SEED: u64 = 0x7453_4861_4d21;

fn golden_cell_coord() -> CellCoord {
    CellCoord {
        machine: MachineChoice::TestSmall,
        defense: DefenseChoice::None,
        profile: ProfileChoice::Ci,
        hammer_mode: HammerMode::ImplicitDoubleSided,
        pattern: None,
        victim: None,
        repetition: 0,
    }
}

/// The first golden row (undefended / ci / repetition 0), as the
/// pre-refactor driver recorded it in `tests/golden/campaign_ci_matrix.json`.
#[test]
fn default_mode_cell_matches_the_pre_refactor_golden_row() {
    let coord = golden_cell_coord();
    let config = CampaignConfig::ci(GOLDEN_BASE_SEED);
    let row = run_cell(&coord, &config);

    assert_eq!(
        row.cell_seed, 5090048989402711287,
        "seed derivation drifted"
    );
    assert_eq!(row.cell_seed, cell_seed(GOLDEN_BASE_SEED, &coord));
    assert_eq!(row.defense, DefenseKind::Undefended);
    assert_eq!(row.hammer_mode, HammerMode::ImplicitDoubleSided);
    assert_eq!(row.attempts, 4);
    assert_eq!(row.flips_observed, 1);
    assert_eq!(row.exploitable_flips, 0);
    assert!(!row.escalated);
    assert_eq!(row.implicit_dram_rate, 1.0);
    assert_eq!(row.seconds_to_first_flip, Some(0.009439841538461538));
    assert_eq!(row.seconds_to_escalation, None);
    assert_eq!(row.route, None);
    assert_eq!(row.error, None);
}

/// Counting subscriber used to cross-check the event stream against the
/// outcome.
#[derive(Default)]
struct Tally {
    attempts: usize,
    iterations: u64,
    flips: usize,
    escalations: usize,
}

impl EventSink for Tally {
    fn on_event(&mut self, event: &AttackEvent) {
        match event {
            AttackEvent::AttemptStarted { .. } => self.attempts += 1,
            AttackEvent::HammerFinished { stats, .. } => self.iterations += stats.rounds,
            AttackEvent::FlipObserved { .. } => self.flips += 1,
            AttackEvent::VictimAttacked { outcome, .. } if outcome.success => self.escalations += 1,
            _ => {}
        }
    }
}

#[test]
fn observed_and_plain_runs_are_identical_and_event_counts_agree() {
    let machine = || {
        MachineChoice::TestSmall.config(
            pthammer_dram::FlipModelProfile::ci(),
            5090048989402711287, // the golden cell's seed, reused as machine seed
        )
    };
    let config = CampaignConfig::ci(GOLDEN_BASE_SEED).attack_config(
        5090048989402711287,
        DefenseChoice::None,
        HammerMode::ImplicitDoubleSided,
    );
    let attack = PtHammer::new(config).unwrap();

    let mut sys = System::undefended(machine());
    let pid = sys.spawn_process(1000).unwrap();
    let plain = attack.run_with(&mut sys, pid, RunOptions::new()).unwrap();

    let mut sys = System::undefended(machine());
    let pid = sys.spawn_process(1000).unwrap();
    let mut tally = Tally::default();
    let observed = attack
        .run_with(&mut sys, pid, RunOptions::new().observed_by(&mut tally))
        .unwrap();

    assert_eq!(plain, observed, "subscribers must not perturb the attack");
    assert_eq!(tally.attempts, observed.attempts);
    assert_eq!(tally.iterations, observed.hammer_iterations);
    assert_eq!(tally.flips, observed.flips_observed);
    assert_eq!(tally.escalations, usize::from(observed.escalated));
}

//! Golden-snapshot regression tier: the campaign harness runs the CI-scale
//! machine × defense × profile matrix and its canonical JSON must match the
//! committed snapshot **byte for byte**, independent of worker-thread count.
//!
//! This turns the entire simulator stack — DRAM weak cells, TRR, caches,
//! TLBs, page walks, the buddy allocator, every defense policy, and the
//! full attack chain — into one deterministic regression oracle: any
//! behavioural drift anywhere shows up as a snapshot diff.
//!
//! Refreshing the snapshot after an *intentional* behaviour change:
//!
//! ```text
//! PTHAMMER_UPDATE_GOLDEN=1 cargo test --test campaign_matrix
//! ```
//!
//! then commit the updated `tests/golden/*.json` and explain the drift in
//! the PR description.

use std::path::PathBuf;

mod common;
use common::first_diff;

use pthammer_harness::{run_campaign, CampaignConfig, ScenarioMatrix};

/// Base seed of the pinned campaign; changing it invalidates the snapshot.
const GOLDEN_BASE_SEED: u64 = 0x7453_4861_4d21;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("campaign_ci_matrix.json")
}

fn golden_matrix() -> ScenarioMatrix {
    ScenarioMatrix::ci_default()
}

fn golden_config(threads: usize) -> CampaignConfig {
    CampaignConfig {
        threads,
        ..CampaignConfig::ci(GOLDEN_BASE_SEED)
    }
}

#[test]
fn matrix_is_ci_scale_but_meaningful() {
    let matrix = golden_matrix();
    assert!(
        matrix.len() >= 24,
        "golden matrix must cover at least 24 cells, has {}",
        matrix.len()
    );
    assert!(matrix.validate().is_ok());
}

/// Two-thread run must match the snapshot. Together with
/// [`eight_thread_campaign_matches_golden_snapshot`] this also pins
/// thread-count independence: both runs are compared to the same bytes.
#[test]
fn two_thread_campaign_matches_golden_snapshot() {
    let json = run_campaign(&golden_matrix(), &golden_config(2)).to_canonical_json();
    compare_with_golden(&json);
}

#[test]
fn eight_thread_campaign_matches_golden_snapshot() {
    let report = run_campaign(&golden_matrix(), &golden_config(8));
    let json = report.to_canonical_json();

    // Sanity-check the campaign itself before comparing bytes: the matrix
    // must demonstrate the paper's headline contrasts.
    let summary = |name: &str| {
        report
            .summaries
            .iter()
            .find(|s| s.defense.name() == name)
            .unwrap_or_else(|| panic!("missing summary for {name}"))
    };
    assert!(
        summary("undefended").flip_cells > 0,
        "undefended cells must observe flips: {json}"
    );
    assert_eq!(
        report.cells.len(),
        golden_matrix().len(),
        "one row per cell"
    );
    for cell in report.cells.iter().filter(|c| c.profile == "invulnerable") {
        assert_eq!(
            cell.flips_observed, 0,
            "invulnerable DRAM flipped: {cell:?}"
        );
        assert!(!cell.escalated);
    }
    for cell in report.cells.iter().filter(|c| c.defense.name() == "ZebRAM") {
        assert_eq!(
            cell.exploitable_flips, 0,
            "ZebRAM must prevent exploitable corruption: {cell:?}"
        );
        assert!(!cell.escalated);
    }

    compare_with_golden(&json);
}

/// Compares canonical campaign JSON against the committed snapshot, or
/// rewrites the snapshot when `PTHAMMER_UPDATE_GOLDEN=1`.
fn compare_with_golden(json: &str) {
    let path = golden_path();
    if std::env::var("PTHAMMER_UPDATE_GOLDEN")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, json).expect("write golden snapshot");
        eprintln!("updated golden snapshot at {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with PTHAMMER_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert!(
        golden == json,
        "campaign report drifted from the golden snapshot {}.\n\
         If the change is intentional, refresh with PTHAMMER_UPDATE_GOLDEN=1 and commit.\n\
         First diverging line: {}",
        path.display(),
        first_diff(&golden, json)
    );
}

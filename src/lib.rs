//! Workspace-level umbrella crate: re-exports the PThammer reproduction crates
//! so the examples and integration tests can use a single dependency root.
#![forbid(unsafe_code)]
pub use pthammer;
pub use pthammer_cache as cache;
pub use pthammer_defenses as defenses;
pub use pthammer_dram as dram;
pub use pthammer_kernel as kernel;
pub use pthammer_machine as machine;
pub use pthammer_mmu as mmu;
pub use pthammer_types as types;

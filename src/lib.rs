//! Workspace-level umbrella crate: re-exports the PThammer reproduction crates
//! so the examples and integration tests can use a single dependency root.
//!
//! See `ARCHITECTURE.md` at the repository root for how the crates fit
//! together and for the paper→code glossary.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub use pthammer;
pub use pthammer_cache as cache;
pub use pthammer_defenses as defenses;
pub use pthammer_dram as dram;
pub use pthammer_harness as harness;
pub use pthammer_kernel as kernel;
pub use pthammer_machine as machine;
pub use pthammer_mmu as mmu;
pub use pthammer_patterns as patterns;
pub use pthammer_store as store;
pub use pthammer_types as types;

//! The paper's headline result (Section IV-F): an unprivileged process uses
//! implicit page-table-walk accesses to flip a bit in a Level-1 page-table
//! entry, captures another page table through the corrupted mapping, maps its
//! own `struct cred` and becomes root. This example walks through the stages
//! explicitly — including the victim lifecycle (`profile → evaluate →
//! attack`) the pipeline's `Exploit` phase drives — and prints what each one
//! produced.
//!
//! Run with: `cargo run --release --example privilege_escalation`

use pthammer::{
    detect::scan_for_corrupted_mappings,
    pairs::{candidate_pairs, conflict_threshold, verify_same_bank},
    victim::{ExploitCtx, PteTakeover},
    AttackConfig, ImplicitHammer, PtHammer, Victim,
};
use pthammer_dram::FlipModelProfile;
use pthammer_kernel::System;
use pthammer_machine::MachineConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineConfig::lenovo_t420(FlipModelProfile::fast(), 7);
    let mut sys = System::undefended(machine);
    let pid = sys.spawn_process(1000)?;
    let uid = sys.getuid(pid)?;
    println!("[*] attacker uid: {uid}");

    let config = AttackConfig {
        spray_bytes: 1 << 30,
        hammer_rounds_per_attempt: 2_500,
        max_attempts: 16,
        eviction_buffer_factor: 1.25,
        ..AttackConfig::quick_test(7, false)
    };
    let attack = PtHammer::new(config.clone())?;

    println!("[*] building TLB and LLC eviction pools and spraying page tables...");
    let prepared = attack.prepare(&mut sys, pid)?;
    println!(
        "    TLB pool: {} cycles, LLC pool: {} cycles, spray: {} Level-1 page tables",
        prepared.tlb_pool.prep_cycles(),
        prepared.llc_pool.prep_cycles(),
        prepared.spray.l1pt_count()
    );

    let row_span = sys.machine().config().dram.geometry.row_span_bytes();
    let threshold = conflict_threshold(&sys);
    let mut rng = StdRng::seed_from_u64(7);

    // The victim lifecycle the pipeline's `Exploit` phase drives: profile
    // once, then evaluate/attack per finding.
    let mut victim = PteTakeover;
    let flip_profile = victim.profile(&sys, pid)?;
    println!(
        "[*] victim `{}` profiled ({} targeted flips: the spray makes any exploitable flip usable)",
        victim.name(),
        flip_profile.targets.len()
    );

    let mut rounds_hammered = 0;
    for attempt in 1..=config.max_attempts {
        let pair = candidate_pairs(&prepared.spray, row_span, 1, &mut rng)[0];
        let hammer = ImplicitHammer::prepare(
            &mut sys,
            pid,
            pair,
            &prepared.tlb_pool,
            &prepared.llc_pool,
            config.llc_profile_trials,
        )?;
        let verification = verify_same_bank(
            &mut sys,
            pid,
            pair,
            &hammer.tlb_low,
            &hammer.tlb_high,
            &hammer.llc_low,
            &hammer.llc_high,
            threshold,
            5,
        )?;
        if !verification.same_bank {
            println!(
                "[{attempt:02}] pair {:#x}/{:#x}: not same-bank, skipping",
                pair.low.as_u64(),
                pair.high.as_u64()
            );
            continue;
        }
        let stats = hammer.hammer(&mut sys, pid, config.hammer_rounds_per_attempt)?;
        rounds_hammered += stats.rounds;
        println!(
            "[{attempt:02}] hammered {} rounds, avg {:.0} cycles/round, {:.0}% implicit DRAM hits",
            stats.rounds,
            stats.avg_round_cycles(),
            stats.low_dram_rate() * 100.0
        );
        let (findings, _) =
            scan_for_corrupted_mappings(&mut sys, pid, &prepared.spray, &pair, row_span)?;
        for finding in &findings {
            println!(
                "     corrupted mapping at {} -> {:?}",
                finding.vaddr, finding.kind
            );
            let verdict = victim.evaluate(&flip_profile, finding);
            if !verdict.is_usable() {
                println!("     victim rejected the finding: {verdict:?}");
                continue;
            }
            let exploit = ExploitCtx {
                tlb_pool: &prepared.tlb_pool,
                spray: &prepared.spray,
                attacker_uid: uid,
                hammer_iterations: rounds_hammered,
            };
            let outcome = victim.attack(&mut sys, pid, &exploit, finding)?;
            if outcome.success {
                let escalated = outcome.escalated_pid().expect("escalation victim");
                println!("[+] privilege escalation via {}", outcome.route_label());
                println!("[+] getuid({escalated}) = {}", sys.getuid(escalated)?);
                println!("[+] time to exploit: {rounds_hammered} hammer iterations");
                return Ok(());
            }
        }
    }
    println!("[-] no exploitable flip within the attempt budget (try a different seed)");
    Ok(())
}

//! Defense-sweep campaign: run PThammer against every software-only defense
//! (undefended baseline, CATT, RIP-RH, CTA, ZebRAM) as one parallel
//! scenario-matrix campaign, print the aggregated escalation-rate table,
//! sweep the hammer-strategy axis (implicit double-sided vs the explicit
//! baseline, single-sided and one-location variants), and show what an
//! ANVIL-style detector sees.
//!
//! Run with: `cargo run --release --example campaign`

use pthammer_bench::scenarios;
use pthammer_bench::{ExperimentScale, MachineChoice};
use pthammer_harness::{
    run_campaign, CampaignConfig, DefenseChoice, HammerMode, ProfileChoice, ScenarioMatrix,
};

fn main() {
    // Sweep every defense on the CI-scale machine: 5 defenses x 3 seeds.
    let matrix = ScenarioMatrix::new(
        vec![MachineChoice::TestSmall],
        DefenseChoice::all(),
        vec![ProfileChoice::Ci],
        3,
    );
    let mut config = CampaignConfig::ci(42);
    // A little more hammering budget than the CI preset so the undefended
    // baseline usually escalates within the sweep.
    config.max_attempts = 8;
    config.hammer_rounds_per_attempt = 2_000;
    println!(
        "running a {}-cell defense-sweep campaign ({} worker threads)...",
        matrix.len(),
        if config.threads == 0 {
            "auto".to_string()
        } else {
            config.threads.to_string()
        }
    );
    let report = run_campaign(&matrix, &config);

    println!(
        "\n{:<12} {:>6} {:>12} {:>12} {:>12} {:>10}",
        "defense", "cells", "esc. rate", "flip cells", "mean flips", "delta"
    );
    println!("{}", "-".repeat(70));
    for s in &report.summaries {
        println!(
            "{:<12} {:>6} {:>12.2} {:>12} {:>12.2} {:>10}",
            s.defense,
            s.cells,
            s.escalation_rate,
            s.flip_cells,
            s.mean_flips,
            s.escalation_rate_delta_vs_undefended
                .map(|d| format!("{d:+.2}"))
                .unwrap_or_else(|| "-".into()),
        );
    }

    // Hammer-strategy sweep on the undefended CI machine: the new matrix
    // axis. Every mode attacks the same weak-cell map (mode, like defense,
    // never enters the cell seed), so the per-mode deltas isolate the
    // strategy itself. Budget stays in the ci_small range: 4 modes × 2
    // seeds at the standard CI cell scale (8 cells ≈ a quarter of the
    // golden matrix).
    let mode_matrix = ScenarioMatrix::new(
        vec![MachineChoice::TestSmall],
        vec![DefenseChoice::None],
        vec![ProfileChoice::Ci],
        2,
    )
    .with_hammer_modes(HammerMode::all());
    let mode_config = CampaignConfig::ci(42);
    println!(
        "\nrunning a {}-cell hammer-mode sweep (implicit vs explicit strategies)...",
        mode_matrix.len()
    );
    let mode_report = run_campaign(&mode_matrix, &mode_config);
    println!(
        "\n{:<24} {:>6} {:>12} {:>12} {:>12} {:>10}",
        "hammer mode", "cells", "esc. rate", "flip cells", "mean flips", "DRAM rate"
    );
    println!("{}", "-".repeat(82));
    for s in &mode_report.summaries {
        println!(
            "{:<24} {:>6} {:>12.2} {:>12} {:>12.2} {:>10.3}",
            s.hammer_mode.name(),
            s.cells,
            s.escalation_rate,
            s.flip_cells,
            s.mean_flips,
            s.mean_implicit_dram_rate,
        );
    }
    println!(
        "(explicit hammering cannot reach the kernel's page-table rows: zero implicit\n\
         DRAM accesses and zero corrupted mappings, exactly the contrast the paper draws)"
    );

    // ANVIL is a detector, not a placement policy: show what an unmodified
    // ANVIL (explicit loads only) and an extended one (implicit page-walk
    // accesses attributed) observe against PThammer on the same machine.
    println!("\nANVIL-style detection (Section V):");
    let anvil = scenarios::anvil_eval(MachineChoice::TestSmall, ExperimentScale::scaled(), 42);
    println!(
        "  explicit clflush hammer detected : {} ({:.0} activations/Mcycle)",
        anvil.explicit_detected, anvil.explicit_rate
    );
    println!(
        "  PThammer vs unmodified ANVIL     : {} (implicit accesses invisible)",
        anvil.implicit_detected_naive
    );
    println!(
        "  PThammer vs extended ANVIL       : {} ({:.0} activations/Mcycle)",
        anvil.implicit_detected_extended, anvil.implicit_rate
    );

    println!(
        "\ncanonical JSON report: {} bytes (see EXPERIMENTS.md)",
        report.to_canonical_json().len()
    );
}

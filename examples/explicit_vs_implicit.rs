//! Compares the conventional explicit (clflush-based) rowhammer baseline with
//! PThammer's implicit hammering, and shows what an ANVIL-style detector sees
//! in each case.
//!
//! Run with: `cargo run --release --example explicit_vs_implicit`

use pthammer::{
    eviction::{LlcEvictionPool, TlbEvictionPool},
    hammer::{ExplicitHammer, ExplicitHammerConfig, ExplicitMode},
    pairs::candidate_pairs,
    spray::spray_page_tables,
    AttackConfig, ImplicitHammer, PtHammer,
};
use pthammer_defenses::{AnvilDetector, AnvilMode};
use pthammer_dram::FlipModelProfile;
use pthammer_kernel::System;
use pthammer_machine::MachineConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- explicit clflush double-sided hammering on the attacker's own memory ---
    let mut sys = System::undefended(MachineConfig::lenovo_t420(FlipModelProfile::fast(), 5));
    let pid = sys.spawn_process(1000)?;
    let hammer = ExplicitHammer::setup(&mut sys, pid, 64 << 20, u64::MAX)?;
    let config = ExplicitHammerConfig {
        mode: ExplicitMode::ClflushDoubleSided,
        nop_padding_cycles: 0,
        rounds_per_target: 2_000,
        max_total_cycles: 2_000_000_000,
        seed: 5,
    };
    let start_dram = sys.machine().dram_stats().accesses;
    let start = sys.rdtsc();
    let flip = hammer.run_until_first_flip(&mut sys, pid, &config)?;
    let explicit_window = sys.rdtsc() - start;
    let explicit_dram = sys.machine().dram_stats().accesses - start_dram;
    println!(
        "explicit clflush hammer: first flip = {:?} (simulated {:.2} s)",
        flip.map(|f| f.vaddr),
        explicit_window as f64 / sys.machine().clock_hz()
    );

    // --- implicit (PThammer) hammering of kernel-owned Level-1 page tables ---
    let mut sys = System::undefended(MachineConfig::lenovo_t420(FlipModelProfile::fast(), 5));
    let pid = sys.spawn_process(1000)?;
    let config = AttackConfig {
        spray_bytes: 1 << 30,
        eviction_buffer_factor: 1.25,
        ..AttackConfig::quick_test(5, false)
    };
    let tlb_pages = PtHammer::tlb_eviction_pages(&sys);
    let llc_lines = PtHammer::llc_eviction_lines(&sys);
    let tlb_pool = TlbEvictionPool::build(&mut sys, pid, &config, tlb_pages)?;
    let llc_pool = LlcEvictionPool::build(&mut sys, pid, &config, llc_lines)?;
    let spray = spray_page_tables(&mut sys, pid, &config)?;
    let row_span = sys.machine().config().dram.geometry.row_span_bytes();
    let mut rng = StdRng::seed_from_u64(5);
    let pair = candidate_pairs(&spray, row_span, 1, &mut rng)[0];
    let implicit = ImplicitHammer::prepare(&mut sys, pid, pair, &tlb_pool, &llc_pool, 6)?;
    let start_dram = sys.machine().dram_stats().accesses;
    let start = sys.rdtsc();
    let stats = implicit.hammer(&mut sys, pid, 2_000)?;
    let implicit_window = sys.rdtsc() - start;
    let total_dram = sys.machine().dram_stats().accesses - start_dram;
    let implicit_blows = stats.low_dram_hits + stats.high_dram_hits;
    println!(
        "implicit PThammer: {} rounds, avg {:.0} cycles/round, {} implicit kernel-row activations",
        stats.rounds,
        stats.avg_round_cycles(),
        implicit_blows
    );

    // --- what an ANVIL-style detector can see ---
    let threshold = 400.0;
    let mut naive = AnvilDetector::new(AnvilMode::ExplicitLoadsOnly, threshold);
    let mut naive2 = AnvilDetector::new(AnvilMode::ExplicitLoadsOnly, threshold);
    let mut extended = AnvilDetector::new(AnvilMode::IncludeImplicitAccesses, threshold);
    println!("\nANVIL-style detection (threshold {threshold} DRAM accesses / Mcycle):");
    println!(
        "  explicit hammer, unmodified ANVIL : detected = {}",
        naive
            .observe_window(explicit_window, explicit_dram, 0)
            .detected
    );
    println!(
        "  PThammer, unmodified ANVIL        : detected = {}",
        naive2
            .observe_window(implicit_window, 0, implicit_blows)
            .detected
    );
    println!(
        "  PThammer, ANVIL + implicit loads  : detected = {}",
        extended
            .observe_window(implicit_window, 0, implicit_blows)
            .detected
    );
    let _ = total_dram;
    Ok(())
}

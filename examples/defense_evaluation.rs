//! Section IV-G: run PThammer against the software-only defenses (CATT,
//! RIP-RH, CTA) and against ZebRAM, which the paper lists as not bypassed.
//!
//! Each run boots through [`DefenseChoice::build_system`], the same path the
//! campaign harness uses, so the defense parameters live in exactly one
//! place (`pthammer-defenses`).
//!
//! Run with: `cargo run --release --example defense_evaluation`

use pthammer::{AttackConfig, PtHammer, RunOptions};
use pthammer_defenses::DefenseChoice;
use pthammer_dram::FlipModelProfile;
use pthammer_kernel::KernelConfig;
use pthammer_machine::MachineConfig;

fn run_against(defense: DefenseChoice) {
    let machine = MachineConfig::lenovo_t420(FlipModelProfile::fast(), 11);
    let mut sys = defense.build_system(machine, KernelConfig::default_config());
    let pid = sys.spawn_process(1000).expect("spawn");
    if defense == DefenseChoice::Cta {
        // The paper's CTA bypass corrupts sprayed struct cred objects.
        sys.spawn_processes(2_000, 1000).expect("cred spray");
    }
    let config = AttackConfig {
        spray_bytes: 1 << 30,
        hammer_rounds_per_attempt: 2_500,
        max_attempts: if defense == DefenseChoice::Zebram {
            6
        } else {
            12
        },
        eviction_buffer_factor: 1.25,
        ..AttackConfig::quick_test(11, false)
    };
    let attack = PtHammer::new(config).expect("config");
    let name = defense.name();
    match attack.run_with(&mut sys, pid, RunOptions::new()) {
        Ok(outcome) => println!(
            "{name:<12} escalated={:<5} flips={:<3} exploitable={:<3} attempts={:<3} route={:?}",
            outcome.escalated,
            outcome.flips_observed,
            outcome.exploitable_flips,
            outcome.attempts,
            outcome.victim_outcome.map(|v| v.route_label())
        ),
        Err(err) => println!("{name:<12} attack aborted: {err}"),
    }
}

fn main() {
    println!("PThammer vs. software-only rowhammer defenses (scaled run)\n");
    for defense in DefenseChoice::all() {
        run_against(defense);
    }
    println!("\nExpected: undefended, CATT, RIP-RH and CTA fall (CTA via cred corruption); ZebRAM holds.");
}

//! Section IV-G: run PThammer against the software-only defenses (CATT,
//! RIP-RH, CTA) and against ZebRAM, which the paper lists as not bypassed.
//!
//! Run with: `cargo run --release --example defense_evaluation`

use pthammer::{AttackConfig, PtHammer};
use pthammer_defenses::{CattPolicy, CtaPolicy, RipRhPolicy, ZebramPolicy};
use pthammer_dram::{FlipModel, FlipModelProfile};
use pthammer_kernel::{DefaultPolicy, KernelConfig, PlacementPolicy, System};
use pthammer_machine::MachineConfig;

fn run_against(name: &str, policy_for: impl Fn(&MachineConfig) -> Box<dyn PlacementPolicy>, spray_creds: bool) {
    let mut machine = MachineConfig::lenovo_t420(FlipModelProfile::fast(), 11);
    if spray_creds {
        machine.dram.flip_profile.true_cell_fraction = 0.9;
    }
    let policy = policy_for(&machine);
    let mut sys = System::new(machine, KernelConfig::default_config(), policy);
    let pid = sys.spawn_process(1000).expect("spawn");
    if spray_creds {
        sys.spawn_processes(2_000, 1000).expect("cred spray");
    }
    let config = AttackConfig {
        spray_bytes: 1 << 30,
        hammer_rounds_per_attempt: 2_500,
        max_attempts: if name == "ZebRAM" { 6 } else { 12 },
        eviction_buffer_factor: 1.25,
        ..AttackConfig::quick_test(11, false)
    };
    let attack = PtHammer::new(config).expect("config");
    match attack.run(&mut sys, pid) {
        Ok(outcome) => println!(
            "{name:<12} escalated={:<5} flips={:<3} exploitable={:<3} attempts={:<3} route={:?}",
            outcome.escalated, outcome.flips_observed, outcome.exploitable_flips, outcome.attempts, outcome.route
        ),
        Err(err) => println!("{name:<12} attack aborted: {err}"),
    }
}

fn main() {
    println!("PThammer vs. software-only rowhammer defenses (scaled run)\n");
    run_against("undefended", |_| Box::new(DefaultPolicy::new()), false);
    run_against("CATT", |m| Box::new(CattPolicy::new(&m.dram.geometry, 0.25, 1)), false);
    run_against("RIP-RH", |m| Box::new(RipRhPolicy::new(&m.dram.geometry, 64, 2)), false);
    run_against("CTA", |m| {
        let model = FlipModel::new(m.dram.flip_profile, m.dram.flip_seed, m.dram.geometry.row_bytes);
        Box::new(CtaPolicy::new(&m.dram.geometry, &model, 0.2))
    }, true);
    run_against("ZebRAM", |m| Box::new(ZebramPolicy::new(&m.dram.geometry)), false);
    println!("\nExpected: undefended, CATT, RIP-RH and CTA fall (CTA via cred corruption); ZebRAM holds.");
}

//! Quickstart: boot a simulated Lenovo T420, run a scaled-down PThammer
//! attack as an unprivileged process and report what happened.
//!
//! Run with: `cargo run --release --example quickstart`

use pthammer::{AttackConfig, PtHammer, RunOptions};
use pthammer_dram::FlipModelProfile;
use pthammer_kernel::System;
use pthammer_machine::MachineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A Table I machine with a "fast" weak-cell profile so the example
    // finishes quickly; use FlipModelProfile::paper() for the full-scale run.
    let machine = MachineConfig::lenovo_t420(FlipModelProfile::fast(), 42);
    let mut system = System::undefended(machine);
    let pid = system.spawn_process(1000)?;
    println!(
        "booted {} — attacker pid {pid}, uid {}",
        system.machine().config().name,
        system.getuid(pid)?
    );

    let config = AttackConfig {
        spray_bytes: 1 << 30,
        hammer_rounds_per_attempt: 2_500,
        max_attempts: 12,
        eviction_buffer_factor: 1.25,
        ..AttackConfig::quick_test(42, false)
    };
    let attack = PtHammer::new(config)?;
    println!("running PThammer (this simulates every TLB/LLC eviction and DRAM access)...");
    let outcome = attack.run_with(&mut system, pid, RunOptions::new())?;

    println!("\n--- outcome ---");
    println!("machine            : {}", outcome.machine);
    println!("page setting       : {}", outcome.page_setting);
    println!("hammer attempts    : {}", outcome.attempts);
    println!(
        "bit flips observed : {} ({} exploitable)",
        outcome.flips_observed, outcome.exploitable_flips
    );
    println!(
        "implicit DRAM rate : {:.1}% of hammer blows reached DRAM",
        outcome.implicit_dram_rate * 100.0
    );
    if let Some(minutes) = outcome.minutes_to_first_flip() {
        println!("first flip after   : {minutes:.3} simulated minutes");
    }
    println!(
        "escalated to root  : {} (uid {} -> {})",
        outcome.escalated, outcome.uid_before, outcome.uid_after
    );
    if let Some(victory) = outcome.victim_outcome {
        println!("escalation route   : {}", victory.route_label());
    }
    Ok(())
}

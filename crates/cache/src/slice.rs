//! Intel-style complex slice addressing for the last-level cache.

use serde::{Deserialize, Serialize};

use pthammer_types::PhysAddr;

/// Computes the LLC slice of a physical address using XOR hash functions of
/// the high address bits, in the style of the reverse-engineered Intel
/// complex-addressing functions (Maurice et al., RAID 2015; Irazoqui et al.).
///
/// The number of slices must be a power of two; `log2(slices)` hash functions
/// are applied, each an XOR-reduction of the physical address masked with a
/// per-bit mask.
///
/// # Examples
///
/// ```
/// use pthammer_cache::SliceHasher;
/// use pthammer_types::PhysAddr;
///
/// let hasher = SliceHasher::intel_like(2);
/// let slice = hasher.slice_of(PhysAddr::new(0x1234_5678));
/// assert!(slice < 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SliceHasher {
    slices: u32,
    masks: Vec<u64>,
}

/// Published 2-slice hash mask (bit 0 of the slice id).
const INTEL_H0: u64 = 0x1B5F575440;
/// Published second hash mask used for 4-slice parts (bit 1 of the slice id).
const INTEL_H1: u64 = 0x6EB5FAA880;

impl SliceHasher {
    /// Creates a hasher with Intel-like XOR masks for 1, 2 or 4 slices.
    ///
    /// # Panics
    ///
    /// Panics if `slices` is not 1, 2 or 4.
    pub fn intel_like(slices: u32) -> Self {
        let masks = match slices {
            1 => vec![],
            2 => vec![INTEL_H0],
            4 => vec![INTEL_H0, INTEL_H1],
            _ => panic!("intel_like slice hasher supports 1, 2 or 4 slices, got {slices}"),
        };
        Self { slices, masks }
    }

    /// Creates a hasher with custom XOR masks (one per slice-id bit).
    ///
    /// # Panics
    ///
    /// Panics if `slices` is not a power of two or the mask count does not
    /// equal `log2(slices)`.
    pub fn with_masks(slices: u32, masks: Vec<u64>) -> Self {
        assert!(
            slices.is_power_of_two(),
            "slice count must be a power of two"
        );
        assert_eq!(
            masks.len() as u32,
            slices.trailing_zeros(),
            "need log2(slices) masks"
        );
        Self { slices, masks }
    }

    /// The number of slices.
    pub fn slices(&self) -> u32 {
        self.slices
    }

    /// Computes the slice index of a physical address.
    pub fn slice_of(&self, paddr: PhysAddr) -> u32 {
        let mut slice = 0u32;
        for (bit, mask) in self.masks.iter().enumerate() {
            let parity = (paddr.as_u64() & mask).count_ones() & 1;
            slice |= parity << bit;
        }
        slice
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_slice_is_always_zero() {
        let h = SliceHasher::intel_like(1);
        for raw in [0u64, 64, 4096, 0xdead_beef] {
            assert_eq!(h.slice_of(PhysAddr::new(raw)), 0);
        }
    }

    #[test]
    fn two_slices_balanced_over_many_lines() {
        let h = SliceHasher::intel_like(2);
        let mut counts = [0usize; 2];
        for i in 0..4096u64 {
            counts[h.slice_of(PhysAddr::new(i * 64)) as usize] += 1;
        }
        // The hash should split lines roughly evenly.
        assert!(counts[0] > 1500 && counts[1] > 1500, "counts = {counts:?}");
    }

    #[test]
    fn four_slices_all_reachable() {
        let h = SliceHasher::intel_like(4);
        let mut seen = std::collections::HashSet::new();
        for i in 0..65_536u64 {
            seen.insert(h.slice_of(PhysAddr::new(i * 64)));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn same_line_same_slice() {
        let h = SliceHasher::intel_like(2);
        // Bits below 6 never participate in the hash masks used here, so all
        // bytes of a line map to one slice.
        for base in [0x10000u64, 0x123440, 0xfff000] {
            let s = h.slice_of(PhysAddr::new(base));
            for off in 0..64 {
                assert_eq!(h.slice_of(PhysAddr::new(base + off)), s);
            }
        }
    }

    #[test]
    #[should_panic(expected = "supports 1, 2 or 4")]
    fn unsupported_slice_count_panics() {
        let _ = SliceHasher::intel_like(3);
    }

    #[test]
    fn custom_masks_accepted() {
        let h = SliceHasher::with_masks(2, vec![1 << 17]);
        assert_eq!(h.slice_of(PhysAddr::new(0)), 0);
        assert_eq!(h.slice_of(PhysAddr::new(1 << 17)), 1);
    }

    #[test]
    #[should_panic(expected = "log2(slices)")]
    fn wrong_mask_count_panics() {
        let _ = SliceHasher::with_masks(4, vec![1 << 17]);
    }

    proptest! {
        #[test]
        fn prop_slice_in_range(raw in 0u64..(8u64 << 30), slices in prop::sample::select(vec![1u32, 2, 4])) {
            let h = SliceHasher::intel_like(slices);
            prop_assert!(h.slice_of(PhysAddr::new(raw)) < slices);
        }
    }
}

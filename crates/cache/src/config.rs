//! Cache hierarchy configuration and Table I presets.

use serde::{Deserialize, Serialize};

use crate::replacement::ReplacementPolicy;

/// Configuration of a single cache level (L1D or L2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheLevelConfig {
    /// Number of sets.
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
    /// Lookup latency added when the access reaches this level (cycles).
    pub latency: u32,
    /// Replacement policy.
    pub replacement: ReplacementPolicy,
}

impl CacheLevelConfig {
    /// 32 KiB, 8-way L1 data cache (64 sets), 4-cycle latency.
    pub const fn l1d_32kib() -> Self {
        Self {
            sets: 64,
            ways: 8,
            latency: 4,
            replacement: ReplacementPolicy::Lru,
        }
    }

    /// 256 KiB, 8-way unified L2 (512 sets), 8 additional cycles.
    pub const fn l2_256kib() -> Self {
        Self {
            sets: 512,
            ways: 8,
            latency: 8,
            replacement: ReplacementPolicy::Lru,
        }
    }

    /// Total capacity in bytes (64-byte lines).
    pub const fn capacity_bytes(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * 64
    }

    /// Validates that set count is a power of two and fields are non-zero.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.sets == 0 || !self.sets.is_power_of_two() {
            return Err(format!(
                "cache sets must be a power of two, got {}",
                self.sets
            ));
        }
        if self.ways == 0 {
            return Err("cache associativity must be non-zero".to_string());
        }
        Ok(())
    }
}

/// Configuration of the sliced last-level cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlcConfig {
    /// Number of slices (must be 1, 2 or 4 for the Intel-like hash).
    pub slices: u32,
    /// Sets per slice.
    pub sets_per_slice: u32,
    /// Associativity.
    pub ways: u32,
    /// Additional lookup latency when the access reaches the LLC (cycles).
    pub latency: u32,
    /// Replacement policy.
    pub replacement: ReplacementPolicy,
    /// Whether the LLC is inclusive of L1/L2 (true on the paper's machines).
    pub inclusive: bool,
}

impl LlcConfig {
    /// 3 MiB, 12-way, 2-slice LLC (Lenovo T420 / X230 in Table I).
    pub const fn lenovo_3mib_12way() -> Self {
        Self {
            slices: 2,
            sets_per_slice: 2048,
            ways: 12,
            latency: 18,
            replacement: ReplacementPolicy::Srrip,
            inclusive: true,
        }
    }

    /// 4 MiB, 16-way, 2-slice LLC (Dell E6420 in Table I).
    pub const fn dell_4mib_16way() -> Self {
        Self {
            slices: 2,
            sets_per_slice: 2048,
            ways: 16,
            latency: 22,
            replacement: ReplacementPolicy::Srrip,
            inclusive: true,
        }
    }

    /// A small LLC for fast unit tests: 64 KiB, 8-way, single slice.
    pub const fn test_small() -> Self {
        Self {
            slices: 1,
            sets_per_slice: 128,
            ways: 8,
            latency: 18,
            replacement: ReplacementPolicy::Srrip,
            inclusive: true,
        }
    }

    /// Total capacity in bytes (64-byte lines).
    pub const fn capacity_bytes(&self) -> u64 {
        self.slices as u64 * self.sets_per_slice as u64 * self.ways as u64 * 64
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        if !matches!(self.slices, 1 | 2 | 4) {
            return Err(format!("LLC slices must be 1, 2 or 4, got {}", self.slices));
        }
        if self.sets_per_slice == 0 || !self.sets_per_slice.is_power_of_two() {
            return Err(format!(
                "LLC sets_per_slice must be a power of two, got {}",
                self.sets_per_slice
            ));
        }
        if self.ways == 0 {
            return Err("LLC associativity must be non-zero".to_string());
        }
        Ok(())
    }
}

/// Configuration of the full three-level hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheHierarchyConfig {
    /// L1 data cache.
    pub l1d: CacheLevelConfig,
    /// Unified L2 cache.
    pub l2: CacheLevelConfig,
    /// Sliced last-level cache.
    pub llc: LlcConfig,
    /// Seed for deterministic replacement randomness.
    pub seed: u64,
}

impl CacheHierarchyConfig {
    /// Sandy Bridge-like hierarchy with a 3 MiB 12-way LLC (Lenovo machines).
    pub const fn sandy_bridge_3mib(seed: u64) -> Self {
        Self {
            l1d: CacheLevelConfig::l1d_32kib(),
            l2: CacheLevelConfig::l2_256kib(),
            llc: LlcConfig::lenovo_3mib_12way(),
            seed,
        }
    }

    /// Sandy Bridge-like hierarchy with a 4 MiB 16-way LLC (Dell E6420).
    pub const fn sandy_bridge_4mib(seed: u64) -> Self {
        Self {
            l1d: CacheLevelConfig::l1d_32kib(),
            l2: CacheLevelConfig::l2_256kib(),
            llc: LlcConfig::dell_4mib_16way(),
            seed,
        }
    }

    /// Small hierarchy for fast unit tests.
    pub const fn test_small(seed: u64) -> Self {
        Self {
            l1d: CacheLevelConfig {
                sets: 16,
                ways: 4,
                latency: 4,
                replacement: ReplacementPolicy::Lru,
            },
            l2: CacheLevelConfig {
                sets: 64,
                ways: 8,
                latency: 8,
                replacement: ReplacementPolicy::Lru,
            },
            llc: LlcConfig::test_small(),
            seed,
        }
    }

    /// Validates every level.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid level.
    pub fn validate(&self) -> Result<(), String> {
        self.l1d.validate()?;
        self.l2.validate()?;
        self.llc.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_capacities_match_table1() {
        assert_eq!(CacheLevelConfig::l1d_32kib().capacity_bytes(), 32 << 10);
        assert_eq!(CacheLevelConfig::l2_256kib().capacity_bytes(), 256 << 10);
        assert_eq!(LlcConfig::lenovo_3mib_12way().capacity_bytes(), 3 << 20);
        assert_eq!(LlcConfig::dell_4mib_16way().capacity_bytes(), 4 << 20);
    }

    #[test]
    fn presets_validate() {
        assert!(CacheHierarchyConfig::sandy_bridge_3mib(1)
            .validate()
            .is_ok());
        assert!(CacheHierarchyConfig::sandy_bridge_4mib(1)
            .validate()
            .is_ok());
        assert!(CacheHierarchyConfig::test_small(1).validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let mut cfg = CacheHierarchyConfig::test_small(1);
        cfg.l1d.sets = 3;
        assert!(cfg.validate().is_err());
        let mut cfg = CacheHierarchyConfig::test_small(1);
        cfg.llc.slices = 3;
        assert!(cfg.validate().is_err());
        let mut cfg = CacheHierarchyConfig::test_small(1);
        cfg.l2.ways = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn associativities_match_table1() {
        assert_eq!(LlcConfig::lenovo_3mib_12way().ways, 12);
        assert_eq!(LlcConfig::dell_4mib_16way().ways, 16);
    }
}

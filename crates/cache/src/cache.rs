//! A single set-associative cache structure.

use serde::{Deserialize, Serialize};

use pthammer_types::PhysAddr;

use crate::replacement::{ReplacementPolicy, SetMeta};

/// Result of an access to one cache structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the line was present.
    pub hit: bool,
    /// The set that was probed.
    pub set: u32,
}

/// A physically-indexed set-associative cache (or one LLC slice).
///
/// Only presence is tracked; tags store the full cache-line address. Set
/// selection uses `line_index % sets`, which matches real hardware when the
/// set count is a power of two.
///
/// # Examples
///
/// ```
/// use pthammer_cache::{ReplacementPolicy, SetAssociativeCache};
/// use pthammer_types::PhysAddr;
///
/// let mut cache = SetAssociativeCache::new(64, 8, ReplacementPolicy::Lru, 1);
/// let addr = PhysAddr::new(0x1000);
/// assert!(!cache.access(addr).hit);
/// cache.fill(addr);
/// assert!(cache.access(addr).hit);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetAssociativeCache {
    sets: u32,
    ways: u32,
    tags: Vec<Vec<Option<u64>>>,
    meta: Vec<SetMeta>,
}

impl SetAssociativeCache {
    /// Creates a cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: u32, ways: u32, replacement: ReplacementPolicy, seed: u64) -> Self {
        assert!(
            sets.is_power_of_two() && sets > 0,
            "sets must be a power of two"
        );
        assert!(ways > 0, "ways must be non-zero");
        let tags = vec![vec![None; ways as usize]; sets as usize];
        let meta = (0..sets)
            .map(|s| SetMeta::new(replacement, ways as usize, seed ^ (u64::from(s) << 17) | 1))
            .collect();
        Self {
            sets,
            ways,
            tags,
            meta,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Set index of a physical address.
    pub fn set_index(&self, paddr: PhysAddr) -> u32 {
        (paddr.cache_line_index() % u64::from(self.sets)) as u32
    }

    fn line_tag(paddr: PhysAddr) -> u64 {
        paddr.cache_line_index()
    }

    /// Probes for the line without updating replacement state.
    pub fn contains(&self, paddr: PhysAddr) -> bool {
        let set = self.set_index(paddr) as usize;
        let tag = Self::line_tag(paddr);
        self.tags[set].contains(&Some(tag))
    }

    /// Looks up the line, updating replacement state on a hit.
    pub fn access(&mut self, paddr: PhysAddr) -> CacheAccess {
        let set = self.set_index(paddr);
        let tag = Self::line_tag(paddr);
        let set_idx = set as usize;
        if let Some(way) = self.tags[set_idx]
            .iter()
            .position(|slot| *slot == Some(tag))
        {
            self.meta[set_idx].on_hit(way);
            CacheAccess { hit: true, set }
        } else {
            CacheAccess { hit: false, set }
        }
    }

    /// Inserts the line, returning the physical line address it displaced (if
    /// any). Filling an already-present line only refreshes its replacement
    /// state.
    pub fn fill(&mut self, paddr: PhysAddr) -> Option<PhysAddr> {
        let set = self.set_index(paddr) as usize;
        let tag = Self::line_tag(paddr);
        if let Some(way) = self.tags[set].iter().position(|slot| *slot == Some(tag)) {
            self.meta[set].on_hit(way);
            return None;
        }
        if let Some(way) = self.tags[set].iter().position(Option::is_none) {
            self.tags[set][way] = Some(tag);
            self.meta[set].on_fill(way);
            return None;
        }
        let victim_way = self.meta[set].choose_victim(self.ways as usize);
        let victim_tag = self.tags[set][victim_way].expect("occupied way");
        self.tags[set][victim_way] = Some(tag);
        self.meta[set].on_fill(victim_way);
        Some(PhysAddr::new(victim_tag * 64))
    }

    /// Invalidates the line if present; returns whether it was present.
    pub fn invalidate(&mut self, paddr: PhysAddr) -> bool {
        let set = self.set_index(paddr) as usize;
        let tag = Self::line_tag(paddr);
        if let Some(way) = self.tags[set].iter().position(|slot| *slot == Some(tag)) {
            self.tags[set][way] = None;
            self.meta[set].on_invalidate(way);
            true
        } else {
            false
        }
    }

    /// Invalidates every line (e.g. `wbinvd`).
    pub fn invalidate_all(&mut self) {
        for set in &mut self.tags {
            for slot in set {
                *slot = None;
            }
        }
    }

    /// Number of valid lines currently held in the given set.
    pub fn occupancy(&self, set: u32) -> usize {
        self.tags[set as usize]
            .iter()
            .filter(|s| s.is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr_in_set(cache: &SetAssociativeCache, set: u32, n: u64) -> PhysAddr {
        // Distinct lines that map to the same set: step by sets*64.
        PhysAddr::new(u64::from(set) * 64 + n * u64::from(cache.sets()) * 64)
    }

    #[test]
    fn fill_then_hit() {
        let mut c = SetAssociativeCache::new(16, 4, ReplacementPolicy::Lru, 1);
        let a = PhysAddr::new(0x1040);
        assert!(!c.access(a).hit);
        assert_eq!(c.fill(a), None);
        assert!(c.access(a).hit);
        assert!(c.contains(a));
    }

    #[test]
    fn same_line_bytes_share_entry() {
        let mut c = SetAssociativeCache::new(16, 4, ReplacementPolicy::Lru, 1);
        c.fill(PhysAddr::new(0x1000));
        assert!(c.access(PhysAddr::new(0x103f)).hit);
        assert!(!c.access(PhysAddr::new(0x1040)).hit);
    }

    #[test]
    fn lru_eviction_of_oldest_line() {
        let mut c = SetAssociativeCache::new(16, 2, ReplacementPolicy::Lru, 1);
        let a = addr_in_set(&c, 3, 0);
        let b = addr_in_set(&c, 3, 1);
        let d = addr_in_set(&c, 3, 2);
        c.fill(a);
        c.fill(b);
        // Touch `a` so `b` is LRU.
        c.access(a);
        let evicted = c.fill(d);
        assert_eq!(evicted, Some(b.cache_line_base()));
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn fill_existing_line_does_not_evict() {
        let mut c = SetAssociativeCache::new(16, 2, ReplacementPolicy::Lru, 1);
        let a = addr_in_set(&c, 5, 0);
        let b = addr_in_set(&c, 5, 1);
        c.fill(a);
        c.fill(b);
        assert_eq!(c.fill(a), None);
        assert_eq!(c.occupancy(5), 2);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = SetAssociativeCache::new(16, 4, ReplacementPolicy::Lru, 1);
        let a = PhysAddr::new(0x2000);
        c.fill(a);
        assert!(c.invalidate(a));
        assert!(!c.contains(a));
        assert!(!c.invalidate(a));
    }

    #[test]
    fn invalidate_all_empties_cache() {
        let mut c = SetAssociativeCache::new(8, 2, ReplacementPolicy::Lru, 1);
        for i in 0..16u64 {
            c.fill(PhysAddr::new(i * 64));
        }
        c.invalidate_all();
        for set in 0..8 {
            assert_eq!(c.occupancy(set), 0);
        }
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = SetAssociativeCache::new(16, 1, ReplacementPolicy::Lru, 1);
        let a = PhysAddr::new(0);
        let b = PhysAddr::new(64);
        c.fill(a);
        c.fill(b);
        assert!(c.contains(a));
        assert!(c.contains(b));
    }

    #[test]
    fn eviction_within_capacity_limits() {
        let mut c = SetAssociativeCache::new(4, 3, ReplacementPolicy::Srrip, 9);
        // Fill 10 lines mapping to set 0; occupancy can never exceed 3.
        for n in 0..10 {
            c.fill(addr_in_set(&c, 0, n));
            assert!(c.occupancy(0) <= 3);
        }
        assert_eq!(c.occupancy(0), 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = SetAssociativeCache::new(12, 4, ReplacementPolicy::Lru, 1);
    }
}

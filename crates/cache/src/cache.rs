//! A single set-associative cache structure.
//!
//! The tag store is a single contiguous array indexed by `(set, way)`, with
//! each way's tag and replacement-metadata word merged into one 16-byte
//! [`CacheSlot`] so a set probe walks exactly one run of adjacent slots —
//! this is the hottest data structure of the whole simulator (every simulated
//! memory access probes three cache levels).

use serde::{Deserialize, Serialize};

use pthammer_types::PhysAddr;

use crate::replacement::{ReplacementPolicy, ReplacementState, WaySlot};

/// Tag value of an empty way. Physical addresses are bounded by the DRAM
/// capacity, so no real cache line ever produces this tag.
const INVALID_TAG: u64 = u64::MAX;

/// Result of an access to one cache structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the line was present.
    pub hit: bool,
    /// The set that was probed.
    pub set: u32,
}

/// One way of one set: the line tag and its replacement-metadata word,
/// adjacent in memory so a set scan touches the minimum number of host cache
/// lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct CacheSlot {
    tag: u64,
    meta: u64,
}

impl CacheSlot {
    const EMPTY: CacheSlot = CacheSlot {
        tag: INVALID_TAG,
        meta: 0,
    };

    #[inline]
    fn is_valid(&self) -> bool {
        self.tag != INVALID_TAG
    }
}

impl WaySlot for CacheSlot {
    #[inline]
    fn meta(&self) -> u64 {
        self.meta
    }
    #[inline]
    fn set_meta(&mut self, value: u64) {
        self.meta = value;
    }
}

/// A physically-indexed set-associative cache (or one LLC slice).
///
/// Only presence is tracked; tags store the full cache-line address. Set
/// selection uses `line_index % sets`, which matches real hardware when the
/// set count is a power of two.
///
/// # Examples
///
/// ```
/// use pthammer_cache::{ReplacementPolicy, SetAssociativeCache};
/// use pthammer_types::PhysAddr;
///
/// let mut cache = SetAssociativeCache::new(64, 8, ReplacementPolicy::Lru, 1);
/// let addr = PhysAddr::new(0x1000);
/// assert!(!cache.access(addr).hit);
/// cache.fill(addr);
/// assert!(cache.access(addr).hit);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetAssociativeCache {
    sets: u32,
    ways: u32,
    /// `sets - 1`; set selection is a mask because `sets` is a power of two.
    set_mask: u64,
    policy: ReplacementPolicy,
    /// `sets * ways` slots, way-major within each set.
    slots: Vec<CacheSlot>,
    /// Per-set replacement scalars (tick / clock hand / PRNG).
    states: Vec<ReplacementState>,
}

impl SetAssociativeCache {
    /// Creates a cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: u32, ways: u32, replacement: ReplacementPolicy, seed: u64) -> Self {
        assert!(
            sets.is_power_of_two() && sets > 0,
            "sets must be a power of two"
        );
        assert!(ways > 0, "ways must be non-zero");
        let slots = vec![CacheSlot::EMPTY; sets as usize * ways as usize];
        let states = (0..sets)
            .map(|s| ReplacementState::new(seed ^ (u64::from(s) << 17) | 1))
            .collect();
        Self {
            sets,
            ways,
            set_mask: u64::from(sets) - 1,
            policy: replacement,
            slots,
            states,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Set index of a physical address.
    #[inline]
    pub fn set_index(&self, paddr: PhysAddr) -> u32 {
        (paddr.cache_line_index() & self.set_mask) as u32
    }

    #[inline]
    fn line_tag(paddr: PhysAddr) -> u64 {
        paddr.cache_line_index()
    }

    /// The slots of one set as a contiguous slice.
    #[inline]
    fn set_slots(&self, set: usize) -> &[CacheSlot] {
        let ways = self.ways as usize;
        &self.slots[set * ways..set * ways + ways]
    }

    /// Probes for the line without updating replacement state.
    #[inline]
    pub fn contains(&self, paddr: PhysAddr) -> bool {
        let set = self.set_index(paddr) as usize;
        let tag = Self::line_tag(paddr);
        self.set_slots(set).iter().any(|slot| slot.tag == tag)
    }

    /// Looks up the line, updating replacement state on a hit.
    #[inline(always)]
    pub fn access(&mut self, paddr: PhysAddr) -> CacheAccess {
        let set = self.set_index(paddr);
        let tag = Self::line_tag(paddr);
        let set_idx = set as usize;
        let ways = self.ways as usize;
        let base = set_idx * ways;
        let slots = &mut self.slots[base..base + ways];
        if let Some(way) = slots.iter().position(|slot| slot.tag == tag) {
            self.policy.on_hit(slots, &mut self.states[set_idx], way);
            CacheAccess { hit: true, set }
        } else {
            CacheAccess { hit: false, set }
        }
    }

    /// Looks up the line like [`SetAssociativeCache::access`]; on a miss,
    /// additionally reports the first empty way of the probed set (if any),
    /// so a subsequent [`SetAssociativeCache::fill_absent_at`] of the same
    /// line can skip re-scanning the set. The extra information falls out of
    /// the probe scan for free.
    #[inline(always)]
    pub fn access_noting_empty(&mut self, paddr: PhysAddr) -> (CacheAccess, Option<u32>) {
        let set = self.set_index(paddr);
        let tag = Self::line_tag(paddr);
        let set_idx = set as usize;
        let ways = self.ways as usize;
        let base = set_idx * ways;
        let slots = &mut self.slots[base..base + ways];
        let mut empty = None;
        for (way, slot) in slots.iter().enumerate() {
            if slot.tag == tag {
                self.policy.on_hit(slots, &mut self.states[set_idx], way);
                return (CacheAccess { hit: true, set }, None);
            }
            if empty.is_none() && !slot.is_valid() {
                empty = Some(way as u32);
            }
        }
        (CacheAccess { hit: false, set }, empty)
    }

    /// Inserts the line, returning the physical line address it displaced (if
    /// any). Filling an already-present line only refreshes its replacement
    /// state.
    pub fn fill(&mut self, paddr: PhysAddr) -> Option<PhysAddr> {
        let set = self.set_index(paddr) as usize;
        let tag = Self::line_tag(paddr);
        let ways = self.ways as usize;
        let base = set * ways;
        let slots = &mut self.slots[base..base + ways];
        if let Some(way) = slots.iter().position(|slot| slot.tag == tag) {
            self.policy.on_hit(slots, &mut self.states[set], way);
            return None;
        }
        self.fill_absent(paddr)
    }

    /// Inserts a line that is known to be absent from this structure (e.g.
    /// because a lookup just missed), skipping the presence scan of
    /// [`SetAssociativeCache::fill`]. Returns the displaced line, if any.
    ///
    /// Calling this for a line that *is* present would duplicate the line;
    /// debug builds assert against that.
    #[inline]
    pub fn fill_absent(&mut self, paddr: PhysAddr) -> Option<PhysAddr> {
        let set = self.set_index(paddr) as usize;
        let ways = self.ways as usize;
        let empty = self.slots[set * ways..set * ways + ways]
            .iter()
            .position(|slot| !slot.is_valid())
            .map(|w| w as u32);
        self.fill_absent_at(paddr, empty)
    }

    /// Inserts an absent line whose destination set was already scanned by
    /// [`SetAssociativeCache::access_noting_empty`]: `empty_way` is that
    /// probe's result, so no way scan runs at all. The set must not have
    /// been touched in between.
    #[inline(always)]
    pub fn fill_absent_at(&mut self, paddr: PhysAddr, empty_way: Option<u32>) -> Option<PhysAddr> {
        debug_assert!(!self.contains(paddr), "fill_absent on a present line");
        debug_assert_ne!(Self::line_tag(paddr), INVALID_TAG, "unrepresentable tag");
        let set = self.set_index(paddr) as usize;
        let tag = Self::line_tag(paddr);
        let ways = self.ways as usize;
        let base = set * ways;
        let slots = &mut self.slots[base..base + ways];
        let state = &mut self.states[set];
        if let Some(way) = empty_way {
            let way = way as usize;
            debug_assert!(!slots[way].is_valid(), "hinted way is occupied");
            slots[way].tag = tag;
            self.policy.on_fill(slots, state, way);
            return None;
        }
        let victim_way = self.policy.choose_victim(slots, state);
        let victim_tag = slots[victim_way].tag;
        slots[victim_way].tag = tag;
        self.policy.on_fill(slots, state, victim_way);
        Some(PhysAddr::new(victim_tag * 64))
    }

    /// Invalidates the line if present; returns whether it was present.
    pub fn invalidate(&mut self, paddr: PhysAddr) -> bool {
        let set = self.set_index(paddr) as usize;
        let tag = Self::line_tag(paddr);
        let ways = self.ways as usize;
        let base = set * ways;
        let slots = &mut self.slots[base..base + ways];
        if let Some(way) = slots.iter().position(|slot| slot.tag == tag) {
            slots[way].tag = INVALID_TAG;
            self.policy.on_invalidate(slots, way);
            true
        } else {
            false
        }
    }

    /// Invalidates every line (e.g. `wbinvd`).
    pub fn invalidate_all(&mut self) {
        for slot in &mut self.slots {
            slot.tag = INVALID_TAG;
        }
    }

    /// Number of valid lines currently held in the given set.
    pub fn occupancy(&self, set: u32) -> usize {
        self.set_slots(set as usize)
            .iter()
            .filter(|s| s.is_valid())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr_in_set(cache: &SetAssociativeCache, set: u32, n: u64) -> PhysAddr {
        // Distinct lines that map to the same set: step by sets*64.
        PhysAddr::new(u64::from(set) * 64 + n * u64::from(cache.sets()) * 64)
    }

    #[test]
    fn fill_then_hit() {
        let mut c = SetAssociativeCache::new(16, 4, ReplacementPolicy::Lru, 1);
        let a = PhysAddr::new(0x1040);
        assert!(!c.access(a).hit);
        assert_eq!(c.fill(a), None);
        assert!(c.access(a).hit);
        assert!(c.contains(a));
    }

    #[test]
    fn same_line_bytes_share_entry() {
        let mut c = SetAssociativeCache::new(16, 4, ReplacementPolicy::Lru, 1);
        c.fill(PhysAddr::new(0x1000));
        assert!(c.access(PhysAddr::new(0x103f)).hit);
        assert!(!c.access(PhysAddr::new(0x1040)).hit);
    }

    #[test]
    fn lru_eviction_of_oldest_line() {
        let mut c = SetAssociativeCache::new(16, 2, ReplacementPolicy::Lru, 1);
        let a = addr_in_set(&c, 3, 0);
        let b = addr_in_set(&c, 3, 1);
        let d = addr_in_set(&c, 3, 2);
        c.fill(a);
        c.fill(b);
        // Touch `a` so `b` is LRU.
        c.access(a);
        let evicted = c.fill(d);
        assert_eq!(evicted, Some(b.cache_line_base()));
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn fill_existing_line_does_not_evict() {
        let mut c = SetAssociativeCache::new(16, 2, ReplacementPolicy::Lru, 1);
        let a = addr_in_set(&c, 5, 0);
        let b = addr_in_set(&c, 5, 1);
        c.fill(a);
        c.fill(b);
        assert_eq!(c.fill(a), None);
        assert_eq!(c.occupancy(5), 2);
    }

    #[test]
    fn fill_absent_matches_fill_for_missing_lines() {
        let mut via_fill = SetAssociativeCache::new(8, 2, ReplacementPolicy::Srrip, 5);
        let mut via_absent = SetAssociativeCache::new(8, 2, ReplacementPolicy::Srrip, 5);
        for n in 0..12u64 {
            let a = addr_in_set(&via_fill, 2, n);
            assert!(!via_fill.contains(a));
            assert_eq!(via_fill.fill(a), via_absent.fill_absent(a));
        }
        for n in 0..12u64 {
            let a = addr_in_set(&via_fill, 2, n);
            assert_eq!(via_fill.contains(a), via_absent.contains(a));
        }
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = SetAssociativeCache::new(16, 4, ReplacementPolicy::Lru, 1);
        let a = PhysAddr::new(0x2000);
        c.fill(a);
        assert!(c.invalidate(a));
        assert!(!c.contains(a));
        assert!(!c.invalidate(a));
    }

    #[test]
    fn invalidate_all_empties_cache() {
        let mut c = SetAssociativeCache::new(8, 2, ReplacementPolicy::Lru, 1);
        for i in 0..16u64 {
            c.fill(PhysAddr::new(i * 64));
        }
        c.invalidate_all();
        for set in 0..8 {
            assert_eq!(c.occupancy(set), 0);
        }
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = SetAssociativeCache::new(16, 1, ReplacementPolicy::Lru, 1);
        let a = PhysAddr::new(0);
        let b = PhysAddr::new(64);
        c.fill(a);
        c.fill(b);
        assert!(c.contains(a));
        assert!(c.contains(b));
    }

    #[test]
    fn eviction_within_capacity_limits() {
        let mut c = SetAssociativeCache::new(4, 3, ReplacementPolicy::Srrip, 9);
        // Fill 10 lines mapping to set 0; occupancy can never exceed 3.
        for n in 0..10 {
            c.fill(addr_in_set(&c, 0, n));
            assert!(c.occupancy(0) <= 3);
        }
        assert_eq!(c.occupancy(0), 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = SetAssociativeCache::new(12, 4, ReplacementPolicy::Lru, 1);
    }
}

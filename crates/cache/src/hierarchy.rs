//! The three-level cache hierarchy (L1D, L2, sliced inclusive LLC).

use serde::{Deserialize, Serialize};

use pthammer_types::{Cycles, MemoryLevel, PhysAddr};

use crate::{
    cache::SetAssociativeCache, config::CacheHierarchyConfig, pmc::CachePmc, slice::SliceHasher,
};

/// Fill placement captured during a [`CacheHierarchy::access_planning_fill`]
/// probe: the LLC slice of the address and, per level, the first empty way
/// of the probed set (if any). Lets the post-DRAM fill skip every way
/// re-scan. Only meaningful for the exact probed line, with the hierarchy
/// untouched in between.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FillPlan {
    /// LLC slice of the probed address.
    pub slice: u32,
    /// First empty way of the probed L1 set, if the L1 probe missed.
    pub l1_empty: Option<u32>,
    /// First empty way of the probed L2 set, if the L2 probe missed.
    pub l2_empty: Option<u32>,
    /// First empty way of the probed LLC set, if the LLC probe missed.
    pub llc_empty: Option<u32>,
}

/// Result of a lookup through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyAccess {
    /// The level that served the access, or `None` when all levels missed and
    /// the line must be fetched from DRAM (after which the caller should call
    /// [`CacheHierarchy::fill`]).
    pub hit_level: Option<MemoryLevel>,
    /// Lookup latency accumulated down to the serving level (or down to the
    /// LLC for a full miss — DRAM latency is added by the caller).
    pub latency: Cycles,
}

/// The simulated L1D / L2 / LLC hierarchy.
///
/// The LLC is physically indexed and split into slices selected by an
/// Intel-like XOR hash; when configured inclusive (the default, matching
/// Sandy/Ivy Bridge), evicting a line from the LLC back-invalidates it from
/// L1 and L2 — the property that lets an unprivileged attacker evict *kernel*
/// page-table entries from the whole hierarchy by contention on the LLC only.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheHierarchy {
    config: CacheHierarchyConfig,
    l1d: SetAssociativeCache,
    l2: SetAssociativeCache,
    llc: Vec<SetAssociativeCache>,
    hasher: SliceHasher,
    pmc: CachePmc,
}

impl CacheHierarchy {
    /// Builds the hierarchy from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: CacheHierarchyConfig) -> Self {
        config
            .validate()
            .expect("invalid cache hierarchy configuration");
        let l1d = SetAssociativeCache::new(
            config.l1d.sets,
            config.l1d.ways,
            config.l1d.replacement,
            config.seed ^ 0x11,
        );
        let l2 = SetAssociativeCache::new(
            config.l2.sets,
            config.l2.ways,
            config.l2.replacement,
            config.seed ^ 0x22,
        );
        let llc = (0..config.llc.slices)
            .map(|slice| {
                SetAssociativeCache::new(
                    config.llc.sets_per_slice,
                    config.llc.ways,
                    config.llc.replacement,
                    config.seed ^ (u64::from(slice) << 8) ^ 0x33,
                )
            })
            .collect();
        let hasher = SliceHasher::intel_like(config.llc.slices);
        Self {
            config,
            l1d,
            l2,
            llc,
            hasher,
            pmc: CachePmc::default(),
        }
    }

    /// The configuration of this hierarchy.
    pub fn config(&self) -> &CacheHierarchyConfig {
        &self.config
    }

    /// Current performance-counter values.
    pub fn pmc(&self) -> &CachePmc {
        &self.pmc
    }

    /// Resets the performance counters.
    pub fn reset_pmc(&mut self) {
        self.pmc.reset();
    }

    /// LLC (slice, set) pair a physical address maps to — the ground truth
    /// used by the evaluation oracle to verify eviction-set selection
    /// (Section IV-C of the paper).
    pub fn llc_slice_and_set(&self, paddr: PhysAddr) -> (u32, u32) {
        let slice = self.hasher.slice_of(paddr);
        let set = self.llc[slice as usize].set_index(paddr);
        (slice, set)
    }

    /// Looks the line up in L1D → L2 → LLC, updating replacement state and
    /// performance counters. On a full miss the caller fetches the line from
    /// DRAM and then calls [`CacheHierarchy::fill`].
    pub fn access(&mut self, paddr: PhysAddr) -> HierarchyAccess {
        let mut latency = u64::from(self.config.l1d.latency);
        self.pmc.l1_accesses += 1;
        if self.l1d.access(paddr).hit {
            return HierarchyAccess {
                hit_level: Some(MemoryLevel::L1),
                latency: Cycles::new(latency),
            };
        }
        self.pmc.l1_misses += 1;

        latency += u64::from(self.config.l2.latency);
        if self.l2.access(paddr).hit {
            // Promote into L1 (non-inclusive victim handling is ignored for
            // timing); the L1 probe above just missed, so the line is absent.
            self.l1d.fill_absent(paddr);
            return HierarchyAccess {
                hit_level: Some(MemoryLevel::L2),
                latency: Cycles::new(latency),
            };
        }
        self.pmc.l2_misses += 1;

        latency += u64::from(self.config.llc.latency);
        self.pmc.llc_accesses += 1;
        let slice = self.hasher.slice_of(paddr) as usize;
        if self.llc[slice].access(paddr).hit {
            self.l2.fill_absent(paddr);
            self.l1d.fill_absent(paddr);
            return HierarchyAccess {
                hit_level: Some(MemoryLevel::Llc),
                latency: Cycles::new(latency),
            };
        }
        self.pmc.llc_misses += 1;
        HierarchyAccess {
            hit_level: None,
            latency: Cycles::new(latency),
        }
    }

    /// Like [`CacheHierarchy::access`], additionally returning a [`FillPlan`]
    /// that a subsequent [`CacheHierarchy::fill_with_plan`] of the same line
    /// can use to skip every way re-scan and the slice-hash recomputation.
    /// The plan is only valid while the hierarchy is untouched in between —
    /// the memory subsystem's miss path (probe → DRAM → fill) guarantees
    /// that.
    #[inline]
    pub fn access_planning_fill(&mut self, paddr: PhysAddr) -> (HierarchyAccess, FillPlan) {
        let mut plan = FillPlan::default();
        let mut latency = u64::from(self.config.l1d.latency);
        self.pmc.l1_accesses += 1;
        let (l1, l1_empty) = self.l1d.access_noting_empty(paddr);
        if l1.hit {
            return (
                HierarchyAccess {
                    hit_level: Some(MemoryLevel::L1),
                    latency: Cycles::new(latency),
                },
                plan,
            );
        }
        plan.l1_empty = l1_empty;
        self.pmc.l1_misses += 1;

        latency += u64::from(self.config.l2.latency);
        let (l2, l2_empty) = self.l2.access_noting_empty(paddr);
        if l2.hit {
            // Promote into L1 (non-inclusive victim handling is ignored for
            // timing); the L1 probe above just missed, so the line is absent.
            self.l1d.fill_absent_at(paddr, plan.l1_empty);
            return (
                HierarchyAccess {
                    hit_level: Some(MemoryLevel::L2),
                    latency: Cycles::new(latency),
                },
                plan,
            );
        }
        plan.l2_empty = l2_empty;
        self.pmc.l2_misses += 1;

        latency += u64::from(self.config.llc.latency);
        self.pmc.llc_accesses += 1;
        let slice = self.hasher.slice_of(paddr);
        plan.slice = slice;
        let (llc, llc_empty) = self.llc[slice as usize].access_noting_empty(paddr);
        if llc.hit {
            self.l2.fill_absent_at(paddr, plan.l2_empty);
            self.l1d.fill_absent_at(paddr, plan.l1_empty);
            return (
                HierarchyAccess {
                    hit_level: Some(MemoryLevel::Llc),
                    latency: Cycles::new(latency),
                },
                plan,
            );
        }
        plan.llc_empty = llc_empty;
        self.pmc.llc_misses += 1;
        (
            HierarchyAccess {
                hit_level: None,
                latency: Cycles::new(latency),
            },
            plan,
        )
    }

    /// Looks up a sequence of lines back-to-back, appending one
    /// [`HierarchyAccess`] per address to `results`.
    ///
    /// This is the batched lookup the memory subsystem and the attack's
    /// eviction-set traversal drive instead of per-address calls; it performs
    /// exactly the same lookups, replacement updates and counter increments
    /// as calling [`CacheHierarchy::access`] once per address, in order.
    pub fn access_batch(&mut self, paddrs: &[PhysAddr], results: &mut Vec<HierarchyAccess>) {
        results.reserve(paddrs.len());
        for &paddr in paddrs {
            results.push(self.access(paddr));
        }
    }

    /// Probes the hierarchy without updating replacement state or counters.
    pub fn contains(&self, paddr: PhysAddr) -> Option<MemoryLevel> {
        if self.l1d.contains(paddr) {
            return Some(MemoryLevel::L1);
        }
        if self.l2.contains(paddr) {
            return Some(MemoryLevel::L2);
        }
        let slice = self.hasher.slice_of(paddr) as usize;
        if self.llc[slice].contains(paddr) {
            return Some(MemoryLevel::Llc);
        }
        None
    }

    /// Inserts the line into every level after it was fetched from DRAM.
    /// Inclusive LLC evictions back-invalidate the inner levels.
    pub fn fill(&mut self, paddr: PhysAddr) {
        let slice = self.hasher.slice_of(paddr) as usize;
        if let Some(victim) = self.llc[slice].fill(paddr) {
            if self.config.llc.inclusive {
                self.l1d.invalidate(victim);
                self.l2.invalidate(victim);
            }
        }
        self.l2.fill(paddr);
        self.l1d.fill(paddr);
    }

    /// Inserts a line that a lookup just missed at *every* level, skipping
    /// the per-level presence scans of [`CacheHierarchy::fill`]. Same
    /// inclusive back-invalidation semantics; this is the hot path the memory
    /// subsystem takes after fetching a missed line from DRAM.
    #[inline]
    pub fn fill_after_miss(&mut self, paddr: PhysAddr) {
        let slice = self.hasher.slice_of(paddr) as usize;
        if let Some(victim) = self.llc[slice].fill_absent(paddr) {
            if self.config.llc.inclusive {
                self.l1d.invalidate(victim);
                self.l2.invalidate(victim);
            }
        }
        self.l2.fill_absent(paddr);
        self.l1d.fill_absent(paddr);
    }

    /// Inserts a fully missed line using the [`FillPlan`] captured by
    /// [`CacheHierarchy::access_planning_fill`]: the per-level empty-way
    /// hints and the cached slice index make this a scan-free fill in the
    /// common case. Behavior is identical to [`CacheHierarchy::fill_after_miss`].
    #[inline]
    pub fn fill_with_plan(&mut self, paddr: PhysAddr, plan: FillPlan) {
        // If the inclusive back-invalidation frees a way in the very L1/L2
        // set `paddr` is about to fill, the recorded empty-way hints are
        // stale — fall back to the scanning fill for that level so the fill
        // lands in the first empty way, exactly as the plan-free path would.
        let mut l1_stale = false;
        let mut l2_stale = false;
        if let Some(victim) = self.llc[plan.slice as usize].fill_absent_at(paddr, plan.llc_empty) {
            if self.config.llc.inclusive {
                l1_stale = self.l1d.invalidate(victim)
                    && self.l1d.set_index(victim) == self.l1d.set_index(paddr);
                l2_stale = self.l2.invalidate(victim)
                    && self.l2.set_index(victim) == self.l2.set_index(paddr);
            }
        }
        if l2_stale {
            self.l2.fill_absent(paddr);
        } else {
            self.l2.fill_absent_at(paddr, plan.l2_empty);
        }
        if l1_stale {
            self.l1d.fill_absent(paddr);
        } else {
            self.l1d.fill_absent_at(paddr, plan.l1_empty);
        }
    }

    /// Flushes the line from every level (models `clflush`).
    pub fn clflush(&mut self, paddr: PhysAddr) {
        self.l1d.invalidate(paddr);
        self.l2.invalidate(paddr);
        let slice = self.hasher.slice_of(paddr) as usize;
        self.llc[slice].invalidate(paddr);
    }

    /// Invalidates every line of every level.
    pub fn flush_all(&mut self) {
        self.l1d.invalidate_all();
        self.l2.invalidate_all();
        for slice in &mut self.llc {
            slice.invalidate_all();
        }
    }

    /// Lookup latency charged when an access misses every level (the cost of
    /// walking the hierarchy before DRAM is consulted).
    pub fn full_miss_latency(&self) -> Cycles {
        Cycles::new(u64::from(
            self.config.l1d.latency + self.config.l2.latency + self.config.llc.latency,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheHierarchyConfig, LlcConfig};
    use crate::replacement::ReplacementPolicy;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(CacheHierarchyConfig::test_small(7))
    }

    #[test]
    fn cold_miss_then_hits_at_l1() {
        let mut h = hierarchy();
        let a = PhysAddr::new(0x8000);
        let miss = h.access(a);
        assert_eq!(miss.hit_level, None);
        assert_eq!(miss.latency, h.full_miss_latency());
        h.fill(a);
        let hit = h.access(a);
        assert_eq!(hit.hit_level, Some(MemoryLevel::L1));
        assert!(hit.latency < miss.latency);
    }

    #[test]
    fn pmc_counts_misses() {
        let mut h = hierarchy();
        let a = PhysAddr::new(0x4000);
        h.access(a);
        h.fill(a);
        h.access(a);
        let pmc = h.pmc();
        assert_eq!(pmc.l1_accesses, 2);
        assert_eq!(pmc.l1_misses, 1);
        assert_eq!(pmc.llc_accesses, 1);
        assert_eq!(pmc.llc_misses, 1);
        let mut h2 = hierarchy();
        h2.reset_pmc();
        assert_eq!(h2.pmc().l1_accesses, 0);
    }

    #[test]
    fn clflush_removes_from_all_levels() {
        let mut h = hierarchy();
        let a = PhysAddr::new(0xc0c0);
        h.fill(a);
        assert!(h.contains(a).is_some());
        h.clflush(a);
        assert_eq!(h.contains(a), None);
        assert_eq!(h.access(a).hit_level, None);
    }

    #[test]
    fn inclusive_llc_eviction_back_invalidates() {
        // Single-slice small LLC so we can force contention deterministically.
        let mut cfg = CacheHierarchyConfig::test_small(3);
        cfg.llc = LlcConfig {
            slices: 1,
            sets_per_slice: 16,
            ways: 2,
            latency: 18,
            replacement: ReplacementPolicy::Lru,
            inclusive: true,
        };
        let mut h = CacheHierarchy::new(cfg);
        // Three lines in the same LLC set (stride = sets * 64).
        let stride = 16 * 64;
        let a = PhysAddr::new(0);
        let b = PhysAddr::new(stride);
        let c = PhysAddr::new(2 * stride);
        h.fill(a);
        h.fill(b);
        h.fill(c); // evicts `a` from the 2-way LLC set
        assert_eq!(
            h.contains(a),
            None,
            "inclusive LLC eviction must also remove the line from L1/L2"
        );
        assert!(h.contains(b).is_some());
        assert!(h.contains(c).is_some());
    }

    #[test]
    fn non_inclusive_llc_keeps_inner_copies() {
        let mut cfg = CacheHierarchyConfig::test_small(3);
        cfg.llc = LlcConfig {
            slices: 1,
            sets_per_slice: 16,
            ways: 2,
            latency: 18,
            replacement: ReplacementPolicy::Lru,
            inclusive: false,
        };
        let mut h = CacheHierarchy::new(cfg);
        let stride = 16 * 64;
        let a = PhysAddr::new(0);
        h.fill(a);
        h.fill(PhysAddr::new(stride));
        h.fill(PhysAddr::new(2 * stride));
        // `a` left the LLC but is still in L1 — a later access hits.
        assert!(h.contains(a).is_some());
    }

    #[test]
    fn l2_hit_promotes_to_l1() {
        let mut h = hierarchy();
        let a = PhysAddr::new(0x1_0000);
        h.fill(a);
        // Evict from tiny L1 by filling its set with more lines than ways.
        let l1_sets = u64::from(h.config().l1d.sets);
        for n in 1..=8u64 {
            h.fill(PhysAddr::new(0x1_0000 + n * l1_sets * 64));
        }
        // The line should have left L1 but still be in L2 or LLC.
        let level = h.contains(a);
        assert!(matches!(
            level,
            Some(MemoryLevel::L2) | Some(MemoryLevel::Llc)
        ));
        let acc = h.access(a);
        assert_eq!(acc.hit_level, level);
        // After the access it is back in L1.
        assert_eq!(h.contains(a), Some(MemoryLevel::L1));
    }

    #[test]
    fn slice_and_set_oracle_is_stable() {
        let h = CacheHierarchy::new(CacheHierarchyConfig::sandy_bridge_3mib(1));
        let a = PhysAddr::new(0x1234_5640);
        let (slice, set) = h.llc_slice_and_set(a);
        assert!(slice < 2);
        assert!(set < 2048);
        assert_eq!(h.llc_slice_and_set(a), (slice, set));
    }

    #[test]
    fn flush_all_empties_everything() {
        let mut h = hierarchy();
        for i in 0..64u64 {
            h.fill(PhysAddr::new(i * 64));
        }
        h.flush_all();
        for i in 0..64u64 {
            assert_eq!(h.contains(PhysAddr::new(i * 64)), None);
        }
    }

    #[test]
    fn thirteen_line_eviction_set_evicts_rarely_used_target_under_srrip() {
        // Reproduce the core mechanism of Figure 4: accessing a 13-line
        // eviction set congruent with a target line evicts the target from a
        // 12-way SRRIP LLC set with high probability, while an 11-line set
        // does not.
        let mut cfg = CacheHierarchyConfig::sandy_bridge_3mib(11);
        cfg.llc.slices = 1; // single slice so congruence is purely set-index based
        let run = |lines: u64, cfg: CacheHierarchyConfig| -> f64 {
            let mut h = CacheHierarchy::new(cfg);
            let sets = u64::from(h.config().llc.sets_per_slice);
            let target = PhysAddr::new(7 * 64);
            let eviction: Vec<PhysAddr> = (1..=lines)
                .map(|n| PhysAddr::new(7 * 64 + n * sets * 64))
                .collect();
            let mut evicted = 0;
            let rounds = 50;
            for _ in 0..rounds {
                h.fill(target);
                for &e in &eviction {
                    let acc = h.access(e);
                    if acc.hit_level.is_none() {
                        h.fill(e);
                    }
                }
                if h.contains(target).is_none() {
                    evicted += 1;
                }
            }
            f64::from(evicted) / f64::from(rounds)
        };
        let rate_13 = run(13, cfg);
        let rate_8 = run(8, cfg);
        assert!(
            rate_13 > 0.9,
            "13-line set should evict reliably, got {rate_13}"
        );
        assert!(rate_8 < rate_13, "smaller set should evict less often");
    }
}

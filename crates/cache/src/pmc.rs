//! Performance-monitoring counters exposed by the cache hierarchy.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Cache-related performance counters.
///
/// These mirror the hardware events the paper's evaluation kernel module
/// reads: `longest_lat_cache.miss` corresponds to [`CachePmc::llc_misses`].
/// The simulated attacker only reads them through the privileged oracle
/// interface during offline calibration, exactly as in the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachePmc {
    /// L1D lookups.
    pub l1_accesses: u64,
    /// L1D misses.
    pub l1_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// LLC lookups (accesses that reached the LLC).
    pub llc_accesses: u64,
    /// LLC misses (`longest_lat_cache.miss`).
    pub llc_misses: u64,
}

impl CachePmc {
    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = CachePmc::default();
    }

    /// LLC miss rate over LLC accesses (0 when there were none).
    pub fn llc_miss_rate(&self) -> f64 {
        if self.llc_accesses == 0 {
            0.0
        } else {
            self.llc_misses as f64 / self.llc_accesses as f64
        }
    }

    /// Difference of two snapshots (`self - earlier`), saturating at zero.
    pub fn since(&self, earlier: &CachePmc) -> CachePmc {
        CachePmc {
            l1_accesses: self.l1_accesses.saturating_sub(earlier.l1_accesses),
            l1_misses: self.l1_misses.saturating_sub(earlier.l1_misses),
            l2_misses: self.l2_misses.saturating_sub(earlier.l2_misses),
            llc_accesses: self.llc_accesses.saturating_sub(earlier.llc_accesses),
            llc_misses: self.llc_misses.saturating_sub(earlier.llc_misses),
        }
    }
}

impl fmt::Display for CachePmc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "l1_acc={} l1_miss={} l2_miss={} llc_acc={} llc_miss={}",
            self.l1_accesses, self.l1_misses, self.l2_misses, self.llc_accesses, self.llc_misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_handles_zero() {
        assert_eq!(CachePmc::default().llc_miss_rate(), 0.0);
    }

    #[test]
    fn miss_rate_computation() {
        let pmc = CachePmc {
            llc_accesses: 8,
            llc_misses: 2,
            ..Default::default()
        };
        assert!((pmc.llc_miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn since_subtracts_snapshots() {
        let early = CachePmc {
            l1_accesses: 10,
            llc_misses: 1,
            ..Default::default()
        };
        let late = CachePmc {
            l1_accesses: 15,
            llc_misses: 4,
            ..Default::default()
        };
        let diff = late.since(&early);
        assert_eq!(diff.l1_accesses, 5);
        assert_eq!(diff.llc_misses, 3);
    }

    #[test]
    fn reset_zeroes_counters() {
        let mut pmc = CachePmc {
            l1_accesses: 3,
            ..Default::default()
        };
        pmc.reset();
        assert_eq!(pmc, CachePmc::default());
    }
}

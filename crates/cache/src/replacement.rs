//! Cache replacement policies.
//!
//! The LLC of real Sandy Bridge parts is not true-LRU, which is why an
//! eviction set exactly as large as the associativity does not evict reliably
//! (Figure 4 of the paper) and why traversing a 13-line eviction set does not
//! thrash itself completely. [`ReplacementPolicy::Srrip`] reproduces both
//! effects and is the default for the LLC; the other policies are provided for
//! ablation studies.

use serde::{Deserialize, Serialize};

/// Replacement policy of a set-associative structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ReplacementPolicy {
    /// True least-recently-used.
    #[default]
    Lru,
    /// Static re-reference interval prediction (2-bit RRPV), the default LLC
    /// policy; rarely-touched lines age out quickly.
    Srrip,
    /// Not-recently-used with a rotating clock hand (typical TLB policy).
    Nru,
    /// Uniformly random victim.
    Random,
    /// Bimodal insertion (LRU insertion most of the time), thrash-resistant.
    Bip,
}

/// Per-set replacement metadata.
///
/// One `SetMeta` instance accompanies every cache/TLB set and is consulted to
/// choose victims and updated on hits and fills.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetMeta {
    policy: ReplacementPolicy,
    /// Per-way age / RRPV / used-bit, meaning depends on the policy.
    meta: Vec<u64>,
    /// Monotonic counter for LRU timestamps.
    tick: u64,
    /// Clock hand for NRU.
    hand: usize,
    /// Deterministic PRNG state for Random / BIP decisions.
    rng_state: u64,
}

const SRRIP_MAX: u64 = 3;
const SRRIP_INSERT: u64 = 2;

impl SetMeta {
    /// Creates replacement metadata for a set with `ways` ways.
    pub fn new(policy: ReplacementPolicy, ways: usize, seed: u64) -> Self {
        Self {
            policy,
            meta: vec![0; ways],
            tick: 0,
            hand: 0,
            rng_state: seed | 1,
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Records a hit on `way`.
    pub fn on_hit(&mut self, way: usize) {
        self.tick += 1;
        match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Bip => self.meta[way] = self.tick,
            ReplacementPolicy::Srrip => self.meta[way] = 0,
            ReplacementPolicy::Nru => self.meta[way] = 1,
            ReplacementPolicy::Random => {}
        }
    }

    /// Records a fill into `way`.
    pub fn on_fill(&mut self, way: usize) {
        self.tick += 1;
        match self.policy {
            ReplacementPolicy::Lru => self.meta[way] = self.tick,
            ReplacementPolicy::Bip => {
                // Mostly insert as LRU (old timestamp); occasionally as MRU.
                if self.next_rand().is_multiple_of(32) {
                    self.meta[way] = self.tick;
                } else {
                    self.meta[way] = self.tick.saturating_sub(1_000_000);
                }
            }
            ReplacementPolicy::Srrip => self.meta[way] = SRRIP_INSERT,
            ReplacementPolicy::Nru => self.meta[way] = 1,
            ReplacementPolicy::Random => {}
        }
    }

    /// Chooses a victim way among the occupied ways (callers fill invalid
    /// ways first, so every way is occupied when this is called).
    pub fn choose_victim(&mut self, ways: usize) -> usize {
        debug_assert_eq!(ways, self.meta.len());
        match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Bip => self
                .meta
                .iter()
                .enumerate()
                .min_by_key(|(_, &age)| age)
                .map(|(i, _)| i)
                .unwrap_or(0),
            ReplacementPolicy::Srrip => {
                // Age everyone until someone reaches SRRIP_MAX, then pick the
                // first such way.
                loop {
                    if let Some(way) = self.meta.iter().position(|&v| v >= SRRIP_MAX) {
                        return way;
                    }
                    for v in &mut self.meta {
                        *v += 1;
                    }
                }
            }
            ReplacementPolicy::Nru => {
                // Rotating clock: first way (from the hand) with used bit 0;
                // clear used bits if all are set.
                for _ in 0..2 {
                    for offset in 0..ways {
                        let idx = (self.hand + offset) % ways;
                        if self.meta[idx] == 0 {
                            self.hand = (idx + 1) % ways;
                            return idx;
                        }
                    }
                    for v in &mut self.meta {
                        *v = 0;
                    }
                }
                self.hand
            }
            ReplacementPolicy::Random => (self.next_rand() % ways as u64) as usize,
        }
    }

    /// Clears metadata for `way` (used when a line is invalidated).
    pub fn on_invalidate(&mut self, way: usize) {
        self.meta[way] = 0;
    }

    /// The policy of this set.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut m = SetMeta::new(ReplacementPolicy::Lru, 4, 1);
        for way in 0..4 {
            m.on_fill(way);
        }
        m.on_hit(0);
        m.on_hit(2);
        m.on_hit(3);
        assert_eq!(m.choose_victim(4), 1);
    }

    #[test]
    fn srrip_protects_recently_hit_lines() {
        let mut m = SetMeta::new(ReplacementPolicy::Srrip, 4, 1);
        for way in 0..4 {
            m.on_fill(way);
        }
        // Way 2 was recently reused: RRPV 0; the rest stay at insert RRPV.
        m.on_hit(2);
        let victim = m.choose_victim(4);
        assert_ne!(victim, 2, "recently reused line should not be the victim");
    }

    #[test]
    fn srrip_ages_untouched_lines_out() {
        let mut m = SetMeta::new(ReplacementPolicy::Srrip, 2, 1);
        m.on_fill(0);
        m.on_fill(1);
        m.on_hit(0);
        // Line 1 was never reused after fill: it must be evicted before line 0.
        assert_eq!(m.choose_victim(2), 1);
    }

    #[test]
    fn nru_cycles_through_ways() {
        let mut m = SetMeta::new(ReplacementPolicy::Nru, 4, 1);
        for way in 0..4 {
            m.on_fill(way);
        }
        // All used bits set: policy clears them and picks from the hand.
        let v1 = m.choose_victim(4);
        m.on_fill(v1);
        let v2 = m.choose_victim(4);
        assert_ne!(v1, v2, "clock hand should advance");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut a = SetMeta::new(ReplacementPolicy::Random, 8, 42);
        let mut b = SetMeta::new(ReplacementPolicy::Random, 8, 42);
        let va: Vec<usize> = (0..32).map(|_| a.choose_victim(8)).collect();
        let vb: Vec<usize> = (0..32).map(|_| b.choose_victim(8)).collect();
        assert_eq!(va, vb);
        assert!(va.iter().any(|&v| v != va[0]), "victims should vary");
    }

    #[test]
    fn victims_are_always_in_range() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Srrip,
            ReplacementPolicy::Nru,
            ReplacementPolicy::Random,
            ReplacementPolicy::Bip,
        ] {
            let mut m = SetMeta::new(policy, 12, 7);
            for way in 0..12 {
                m.on_fill(way);
            }
            for i in 0..100 {
                let v = m.choose_victim(12);
                assert!(v < 12, "{policy:?} produced out-of-range victim");
                if i % 3 == 0 {
                    m.on_hit(v);
                } else {
                    m.on_fill(v);
                }
            }
        }
    }

    #[test]
    fn default_policy_is_lru() {
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }
}

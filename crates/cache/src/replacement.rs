//! Cache replacement policies.
//!
//! The LLC of real Sandy Bridge parts is not true-LRU, which is why an
//! eviction set exactly as large as the associativity does not evict reliably
//! (Figure 4 of the paper) and why traversing a 13-line eviction set does not
//! thrash itself completely. [`ReplacementPolicy::Srrip`] reproduces both
//! effects and is the default for the LLC; the other policies are provided for
//! ablation studies.
//!
//! The policy logic operates on *flat* per-way metadata through the
//! [`WaySlot`] trait so that cache and TLB structures can keep each way's tag
//! and replacement word together in one contiguous, cache-line-friendly
//! array (the hot-path layout) while [`SetMeta`] remains available as the
//! boxed per-set wrapper the original API exposed.

use serde::{Deserialize, Serialize};

/// Replacement policy of a set-associative structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ReplacementPolicy {
    /// True least-recently-used.
    #[default]
    Lru,
    /// Static re-reference interval prediction (2-bit RRPV), the default LLC
    /// policy; rarely-touched lines age out quickly.
    Srrip,
    /// Not-recently-used with a rotating clock hand (typical TLB policy).
    Nru,
    /// Uniformly random victim.
    Random,
    /// Bimodal insertion (LRU insertion most of the time), thrash-resistant.
    Bip,
}

const SRRIP_MAX: u64 = 3;
const SRRIP_INSERT: u64 = 2;

/// One way of a set exposing its replacement-metadata word.
///
/// Implemented by the flattened cache/TLB slot types (which store the tag or
/// entry next to the metadata word) and by bare `u64` words (the [`SetMeta`]
/// representation).
pub trait WaySlot {
    /// The replacement-metadata word (age / RRPV / used-bit, meaning depends
    /// on the policy).
    fn meta(&self) -> u64;
    /// Overwrites the replacement-metadata word.
    fn set_meta(&mut self, value: u64);
}

impl WaySlot for u64 {
    #[inline]
    fn meta(&self) -> u64 {
        *self
    }
    #[inline]
    fn set_meta(&mut self, value: u64) {
        *self = value;
    }
}

/// The policy-independent per-set scalars: the LRU tick, the NRU clock hand
/// and the deterministic PRNG state for Random / BIP decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplacementState {
    tick: u64,
    hand: usize,
    rng_state: u64,
}

impl ReplacementState {
    /// Creates the per-set state from a seed (the low bit is forced so the
    /// xorshift stream never starts at zero).
    pub fn new(seed: u64) -> Self {
        Self {
            tick: 0,
            hand: 0,
            rng_state: seed | 1,
        }
    }

    #[inline]
    fn next_rand(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl ReplacementPolicy {
    /// Records a hit on `way` of a set.
    #[inline(always)]
    pub fn on_hit<S: WaySlot>(self, ways: &mut [S], state: &mut ReplacementState, way: usize) {
        state.tick += 1;
        match self {
            ReplacementPolicy::Lru | ReplacementPolicy::Bip => ways[way].set_meta(state.tick),
            ReplacementPolicy::Srrip => ways[way].set_meta(0),
            ReplacementPolicy::Nru => ways[way].set_meta(1),
            ReplacementPolicy::Random => {}
        }
    }

    /// Records a fill into `way` of a set.
    #[inline(always)]
    pub fn on_fill<S: WaySlot>(self, ways: &mut [S], state: &mut ReplacementState, way: usize) {
        state.tick += 1;
        match self {
            ReplacementPolicy::Lru => ways[way].set_meta(state.tick),
            ReplacementPolicy::Bip => {
                // Mostly insert as LRU (old timestamp); occasionally as MRU.
                if state.next_rand().is_multiple_of(32) {
                    ways[way].set_meta(state.tick);
                } else {
                    ways[way].set_meta(state.tick.saturating_sub(1_000_000));
                }
            }
            ReplacementPolicy::Srrip => ways[way].set_meta(SRRIP_INSERT),
            ReplacementPolicy::Nru => ways[way].set_meta(1),
            ReplacementPolicy::Random => {}
        }
    }

    /// Chooses a victim way among the occupied ways (callers fill invalid
    /// ways first, so every way is occupied when this is called).
    #[inline]
    pub fn choose_victim<S: WaySlot>(self, ways: &mut [S], state: &mut ReplacementState) -> usize {
        let count = ways.len();
        match self {
            ReplacementPolicy::Lru | ReplacementPolicy::Bip => {
                let mut victim = 0;
                let mut best = u64::MAX;
                for (i, slot) in ways.iter().enumerate() {
                    let age = slot.meta();
                    if age < best {
                        best = age;
                        victim = i;
                    }
                }
                victim
            }
            ReplacementPolicy::Srrip => {
                // Age everyone until someone reaches SRRIP_MAX, then pick the
                // first such way. Equivalent single pass: every way ages by
                // the same deficit (SRRIP_MAX minus the current maximum RRPV,
                // when positive), which preserves relative order, and the
                // victim is the first way holding the maximum.
                let mut victim = 0;
                let mut max = 0;
                for (i, slot) in ways.iter().enumerate() {
                    let v = slot.meta();
                    if v > max {
                        max = v;
                        victim = i;
                    }
                }
                if max < SRRIP_MAX {
                    let deficit = SRRIP_MAX - max;
                    for slot in ways.iter_mut() {
                        slot.set_meta(slot.meta() + deficit);
                    }
                }
                victim
            }
            ReplacementPolicy::Nru => {
                // Rotating clock: first way (from the hand) with used bit 0;
                // clear used bits if all are set.
                for _ in 0..2 {
                    for offset in 0..count {
                        let idx = (state.hand + offset) % count;
                        if ways[idx].meta() == 0 {
                            state.hand = (idx + 1) % count;
                            return idx;
                        }
                    }
                    for slot in ways.iter_mut() {
                        slot.set_meta(0);
                    }
                }
                state.hand
            }
            ReplacementPolicy::Random => (state.next_rand() % count as u64) as usize,
        }
    }

    /// Clears metadata for `way` (used when a line is invalidated).
    #[inline]
    pub fn on_invalidate<S: WaySlot>(self, ways: &mut [S], way: usize) {
        ways[way].set_meta(0);
    }
}

/// Per-set replacement metadata as a standalone object.
///
/// The flattened cache and TLB structures keep their metadata inline in their
/// way arrays; `SetMeta` remains for callers that want one self-contained
/// per-set object, delegating to the same policy engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetMeta {
    policy: ReplacementPolicy,
    /// Per-way age / RRPV / used-bit, meaning depends on the policy.
    meta: Vec<u64>,
    /// The per-set scalars (tick, clock hand, PRNG state).
    state: ReplacementState,
}

impl SetMeta {
    /// Creates replacement metadata for a set with `ways` ways.
    pub fn new(policy: ReplacementPolicy, ways: usize, seed: u64) -> Self {
        Self {
            policy,
            meta: vec![0; ways],
            state: ReplacementState::new(seed),
        }
    }

    /// Records a hit on `way`.
    pub fn on_hit(&mut self, way: usize) {
        self.policy.on_hit(&mut self.meta, &mut self.state, way);
    }

    /// Records a fill into `way`.
    pub fn on_fill(&mut self, way: usize) {
        self.policy.on_fill(&mut self.meta, &mut self.state, way);
    }

    /// Chooses a victim way among the occupied ways (callers fill invalid
    /// ways first, so every way is occupied when this is called).
    pub fn choose_victim(&mut self, ways: usize) -> usize {
        debug_assert_eq!(ways, self.meta.len());
        self.policy.choose_victim(&mut self.meta, &mut self.state)
    }

    /// Clears metadata for `way` (used when a line is invalidated).
    pub fn on_invalidate(&mut self, way: usize) {
        self.policy.on_invalidate(&mut self.meta, way);
    }

    /// The policy of this set.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut m = SetMeta::new(ReplacementPolicy::Lru, 4, 1);
        for way in 0..4 {
            m.on_fill(way);
        }
        m.on_hit(0);
        m.on_hit(2);
        m.on_hit(3);
        assert_eq!(m.choose_victim(4), 1);
    }

    #[test]
    fn srrip_protects_recently_hit_lines() {
        let mut m = SetMeta::new(ReplacementPolicy::Srrip, 4, 1);
        for way in 0..4 {
            m.on_fill(way);
        }
        // Way 2 was recently reused: RRPV 0; the rest stay at insert RRPV.
        m.on_hit(2);
        let victim = m.choose_victim(4);
        assert_ne!(victim, 2, "recently reused line should not be the victim");
    }

    #[test]
    fn srrip_ages_untouched_lines_out() {
        let mut m = SetMeta::new(ReplacementPolicy::Srrip, 2, 1);
        m.on_fill(0);
        m.on_fill(1);
        m.on_hit(0);
        // Line 1 was never reused after fill: it must be evicted before line 0.
        assert_eq!(m.choose_victim(2), 1);
    }

    #[test]
    fn nru_cycles_through_ways() {
        let mut m = SetMeta::new(ReplacementPolicy::Nru, 4, 1);
        for way in 0..4 {
            m.on_fill(way);
        }
        // All used bits set: policy clears them and picks from the hand.
        let v1 = m.choose_victim(4);
        m.on_fill(v1);
        let v2 = m.choose_victim(4);
        assert_ne!(v1, v2, "clock hand should advance");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut a = SetMeta::new(ReplacementPolicy::Random, 8, 42);
        let mut b = SetMeta::new(ReplacementPolicy::Random, 8, 42);
        let va: Vec<usize> = (0..32).map(|_| a.choose_victim(8)).collect();
        let vb: Vec<usize> = (0..32).map(|_| b.choose_victim(8)).collect();
        assert_eq!(va, vb);
        assert!(va.iter().any(|&v| v != va[0]), "victims should vary");
    }

    #[test]
    fn victims_are_always_in_range() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Srrip,
            ReplacementPolicy::Nru,
            ReplacementPolicy::Random,
            ReplacementPolicy::Bip,
        ] {
            let mut m = SetMeta::new(policy, 12, 7);
            for way in 0..12 {
                m.on_fill(way);
            }
            for i in 0..100 {
                let v = m.choose_victim(12);
                assert!(v < 12, "{policy:?} produced out-of-range victim");
                if i % 3 == 0 {
                    m.on_hit(v);
                } else {
                    m.on_fill(v);
                }
            }
        }
    }

    #[test]
    fn default_policy_is_lru() {
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }

    /// The flat policy engine over merged slots and the boxed [`SetMeta`]
    /// wrapper must make identical decisions from identical seeds.
    #[test]
    fn flat_engine_matches_set_meta_wrapper() {
        #[derive(Clone, Copy)]
        struct Slot {
            meta: u64,
        }
        impl WaySlot for Slot {
            fn meta(&self) -> u64 {
                self.meta
            }
            fn set_meta(&mut self, value: u64) {
                self.meta = value;
            }
        }
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Srrip,
            ReplacementPolicy::Nru,
            ReplacementPolicy::Random,
            ReplacementPolicy::Bip,
        ] {
            let seed = 0xA5A5;
            let mut wrapper = SetMeta::new(policy, 8, seed);
            let mut slots = vec![Slot { meta: 0 }; 8];
            let mut state = ReplacementState::new(seed);
            for step in 0..200usize {
                match step % 3 {
                    0 => {
                        let way = step % 8;
                        wrapper.on_fill(way);
                        policy.on_fill(&mut slots, &mut state, way);
                    }
                    1 => {
                        let way = (step * 5) % 8;
                        wrapper.on_hit(way);
                        policy.on_hit(&mut slots, &mut state, way);
                    }
                    _ => {
                        let a = wrapper.choose_victim(8);
                        let b = policy.choose_victim(&mut slots, &mut state);
                        assert_eq!(a, b, "{policy:?} diverged at step {step}");
                    }
                }
            }
        }
    }
}

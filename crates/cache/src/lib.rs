//! Simulated CPU cache hierarchy for the PThammer reproduction.
//!
//! Models the structures that PThammer's LLC eviction sets interact with: a
//! small L1 data cache, a unified L2, and a physically-indexed, sliced,
//! inclusive last-level cache (LLC) with configurable replacement policies and
//! Intel-style complex slice addressing. Inclusive LLC evictions
//! back-invalidate the inner levels, which is what makes eviction-based
//! rowhammer possible on the modelled Sandy Bridge / Ivy Bridge machines.
//!
//! The hierarchy tracks only presence and timing — data contents live in the
//! machine layer's sparse physical memory.
//!
//! # Examples
//!
//! ```
//! use pthammer_cache::{CacheHierarchy, CacheHierarchyConfig};
//! use pthammer_types::PhysAddr;
//!
//! let mut caches = CacheHierarchy::new(CacheHierarchyConfig::sandy_bridge_3mib(1));
//! let a = PhysAddr::new(0x4_0000);
//! assert!(caches.access(a).hit_level.is_none()); // cold miss
//! caches.fill(a);
//! assert!(caches.access(a).hit_level.is_some()); // now cached
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod hierarchy;
mod pmc;
mod replacement;
mod slice;

pub use cache::{CacheAccess, SetAssociativeCache};
pub use config::{CacheHierarchyConfig, CacheLevelConfig, LlcConfig};
pub use hierarchy::{CacheHierarchy, FillPlan, HierarchyAccess};
pub use pmc::CachePmc;
pub use replacement::{ReplacementPolicy, ReplacementState, SetMeta, WaySlot};
pub use slice::SliceHasher;

//! Determinism contract of the cache substrate: slice hashing and
//! replacement decisions must be pure functions of (configuration, seed,
//! access sequence) — never of process randomness or scheduling.

use pthammer_cache::{ReplacementPolicy, SetMeta, SliceHasher};
use pthammer_types::PhysAddr;

#[test]
fn slice_hash_is_stable_across_instances() {
    for slices in [1u32, 2, 4] {
        let a = SliceHasher::intel_like(slices);
        let b = SliceHasher::intel_like(slices);
        for i in 0..10_000u64 {
            let pa = PhysAddr::new(i * 64 + (i << 17));
            assert_eq!(
                a.slice_of(pa),
                b.slice_of(pa),
                "slices={slices} addr={pa:?}"
            );
            assert!(a.slice_of(pa) < slices);
        }
    }
}

/// Runs a fixed fill/hit/victim workload and records every victim choice.
fn victim_sequence(policy: ReplacementPolicy, seed: u64) -> Vec<usize> {
    let ways = 8;
    let mut meta = SetMeta::new(policy, ways, seed);
    let mut victims = Vec::new();
    for i in 0..ways {
        meta.on_fill(i);
    }
    for round in 0..200usize {
        meta.on_hit(round % ways);
        let victim = meta.choose_victim(ways);
        victims.push(victim);
        meta.on_fill(victim);
    }
    victims
}

#[test]
fn replacement_decisions_are_seed_deterministic() {
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Srrip,
        ReplacementPolicy::Nru,
        ReplacementPolicy::Random,
        ReplacementPolicy::Bip,
    ] {
        let a = victim_sequence(policy, 1234);
        let b = victim_sequence(policy, 1234);
        assert_eq!(a, b, "{policy:?} victim sequence must be deterministic");
        assert!(a.iter().all(|&v| v < 8));
    }
}

#[test]
fn random_policy_streams_depend_on_the_seed() {
    let a = victim_sequence(ReplacementPolicy::Random, 1);
    let b = victim_sequence(ReplacementPolicy::Random, 2);
    assert_ne!(a, b, "different seeds should give different random victims");
}

//! Property tests pinning the hot-path rewrite to the per-address semantics:
//! the batched lookup, the plan-based fill and the hint-skipping fills must
//! produce byte-identical hit/miss/eviction sequences to the per-address
//! `access` path on randomized traces.

use proptest::prelude::*;

use pthammer_cache::{
    CacheHierarchy, CacheHierarchyConfig, HierarchyAccess, LlcConfig, ReplacementPolicy,
    SetAssociativeCache,
};
use pthammer_types::PhysAddr;

/// A small hierarchy with heavy set contention so random traces exercise
/// evictions, promotions and inclusive back-invalidation.
fn contended_hierarchy(policy: ReplacementPolicy, seed: u64) -> CacheHierarchy {
    let mut cfg = CacheHierarchyConfig::test_small(seed);
    cfg.llc = LlcConfig {
        slices: 2,
        sets_per_slice: 16,
        ways: 4,
        latency: 18,
        replacement: policy,
        inclusive: true,
    };
    CacheHierarchy::new(cfg)
}

/// Addresses drawn from a deliberately tiny pool of lines so sets overflow.
fn addr(raw: u64) -> PhysAddr {
    PhysAddr::new((raw % 256) * 64)
}

const POLICIES: [ReplacementPolicy; 5] = [
    ReplacementPolicy::Lru,
    ReplacementPolicy::Srrip,
    ReplacementPolicy::Nru,
    ReplacementPolicy::Random,
    ReplacementPolicy::Bip,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // `access_batch` must produce exactly the per-address `access` sequence:
    // same hit levels and latencies in order, same counter values, same
    // final contents. Traces interleave batched lookup chunks with fills of
    // the missed lines, mirroring how the memory subsystem drives the API.
    #[test]
    fn access_batch_matches_per_address_access(
        raws in prop::collection::vec(any::<u64>(), 1..120),
        policy in prop::sample::select(POLICIES.to_vec()),
        seed in 0u64..64,
    ) {
        let addrs: Vec<PhysAddr> = raws.iter().map(|&r| addr(r)).collect();
        let mut per_address = contended_hierarchy(policy, seed);
        let mut batched = contended_hierarchy(policy, seed);

        for chunk in addrs.chunks(7) {
            let serial: Vec<HierarchyAccess> = chunk.iter().map(|&a| per_address.access(a)).collect();
            let mut batch: Vec<HierarchyAccess> = Vec::new();
            batched.access_batch(chunk, &mut batch);
            prop_assert_eq!(&batch, &serial);
            for &a in chunk {
                prop_assert_eq!(per_address.contains(a), batched.contains(a));
                if per_address.contains(a).is_none() {
                    per_address.fill(a);
                    batched.fill(a);
                }
            }
        }
        prop_assert_eq!(batched.pmc().l1_accesses, per_address.pmc().l1_accesses);
        prop_assert_eq!(batched.pmc().l1_misses, per_address.pmc().l1_misses);
        prop_assert_eq!(batched.pmc().llc_misses, per_address.pmc().llc_misses);
        for r in 0..256u64 {
            let a = addr(r);
            prop_assert_eq!(batched.contains(a), per_address.contains(a));
        }
    }

    // The scan-free plan path (`access_planning_fill` + `fill_with_plan`)
    // must be byte-identical to `access` + `fill_after_miss` — including the
    // stale-hint case where inclusive back-invalidation frees a way in the
    // set being filled.
    #[test]
    fn plan_fill_matches_scanning_fill(
        raws in prop::collection::vec(any::<u64>(), 1..160),
        policy in prop::sample::select(POLICIES.to_vec()),
        seed in 0u64..64,
    ) {
        let mut scanning = contended_hierarchy(policy, seed);
        let mut planned = contended_hierarchy(policy, seed);
        for &r in &raws {
            let a = addr(r);
            let expect = scanning.access(a);
            if expect.hit_level.is_none() {
                scanning.fill_after_miss(a);
            }
            let (got, plan) = planned.access_planning_fill(a);
            prop_assert_eq!(got, expect);
            if got.hit_level.is_none() {
                planned.fill_with_plan(a, plan);
            }
        }
        prop_assert_eq!(scanning.pmc().l1_accesses, planned.pmc().l1_accesses);
        prop_assert_eq!(scanning.pmc().l1_misses, planned.pmc().l1_misses);
        prop_assert_eq!(scanning.pmc().l2_misses, planned.pmc().l2_misses);
        prop_assert_eq!(scanning.pmc().llc_misses, planned.pmc().llc_misses);
        for r in 0..256u64 {
            let a = addr(r);
            prop_assert_eq!(scanning.contains(a), planned.contains(a));
        }
    }

    // `fill_absent` must match `fill` for lines that are not present, and
    // single caches must agree with a straightforward model of occupancy.
    #[test]
    fn fill_absent_matches_fill_on_random_traces(
        raws in prop::collection::vec(any::<u64>(), 1..100),
        policy in prop::sample::select(POLICIES.to_vec()),
        seed in 0u64..64,
    ) {
        let mut via_fill = SetAssociativeCache::new(8, 2, policy, seed | 1);
        let mut via_absent = SetAssociativeCache::new(8, 2, policy, seed | 1);
        for &r in &raws {
            let a = addr(r);
            // Keep the traces aligned: only drive fill_absent when the line
            // is genuinely absent (its contract); otherwise access both.
            if via_fill.contains(a) {
                prop_assert_eq!(via_fill.access(a).hit, via_absent.access(a).hit);
            } else {
                prop_assert_eq!(via_fill.fill(a), via_absent.fill_absent(a));
            }
        }
        for r in 0..256u64 {
            let a = addr(r);
            prop_assert_eq!(via_fill.contains(a), via_absent.contains(a));
        }
        for set in 0..8 {
            prop_assert!(via_fill.occupancy(set) <= 2);
            prop_assert_eq!(via_fill.occupancy(set), via_absent.occupancy(set));
        }
    }
}

//! Property tests pinning the compiled-trace hot path to the reference
//! semantics: replaying a [`CompiledTrace`] must produce event- and
//! counter-identical simulation to interpreting the same `RoundOp` schedule
//! through [`ArmedPair::hammer_round`], across randomized strategies,
//! schedules and spray states.
//!
//! The twin-system idiom mirrors `pthammer-cache`'s `batch_equivalence`
//! tests: two systems booted and armed identically (the whole stack is
//! deterministic in the seed), one driven by the interpreter and one by the
//! compiled replay, compared round by round and on final hardware counters.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use pthammer::hammer::ArmedPair;
use pthammer::pairs::{candidate_pairs, conflict_threshold};
use pthammer::{AttackConfig, CompiledTrace, HammerMode, PtHammer, RoundOp};
use pthammer_dram::FlipModelProfile;
use pthammer_kernel::{DefaultPolicy, KernelConfig, Pid, System};
use pthammer_machine::MachineConfig;

/// Boots a TestSmall system, prepares the attack and arms the first
/// armable candidate pair for `mode`. Fully deterministic in `(mode, seed)`,
/// so calling it twice yields two systems in bit-identical states.
fn armed_system(mode: HammerMode, seed: u64) -> (System, Pid, ArmedPair) {
    let mut sys = System::new(
        MachineConfig::test_small(FlipModelProfile::ci(), seed),
        KernelConfig::default_config(),
        Box::new(DefaultPolicy::new()),
    );
    let pid = sys.spawn_process(1000).expect("spawn");
    let config = AttackConfig {
        hammer_mode: mode,
        spray_bytes: 512 << 20,
        llc_profile_trials: 6,
        ..AttackConfig::quick_test(seed, false)
    };
    let attack = PtHammer::new(config.clone()).expect("config");
    let prepared = attack.prepare(&mut sys, pid).expect("prepare");
    let row_span = sys.machine().config().dram.geometry.row_span_bytes();
    let threshold = conflict_threshold(&sys);
    let strategy = mode.strategy();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut armed = None;
    'search: for _ in 0..16 {
        for pair in candidate_pairs(&prepared.spray, row_span, 4, &mut rng) {
            let arm = strategy
                .arm(&mut sys, pid, pair, &prepared, &config, threshold)
                .expect("arm");
            if let Some(a) = arm.armed {
                armed = Some(a);
                break 'search;
            }
        }
    }
    (sys, pid, armed.expect("no armable candidate pair"))
}

/// Full machine-counter snapshot used for the final equivalence check.
fn counters(sys: &System) -> impl PartialEq + std::fmt::Debug {
    (
        sys.machine().cache_pmc(),
        sys.machine().tlb_pmc(),
        sys.machine().dram_stats(),
        sys.rdtsc(),
        sys.stats().faults_handled,
    )
}

proptest! {
    // The armed-system setup dominates a case; debug builds (overflow
    // checks on) keep enough cases to cross every strategy while release
    // sweeps more seeds.
    #![proptest_config(ProptestConfig::with_cases(
        if cfg!(debug_assertions) { 3 } else { 10 }
    ))]

    // Replaying a compiled trace must be call-for-call identical to the
    // interpreter: same per-round outcomes (cycles, DRAM-served flags) and
    // the same final cache/TLB/DRAM counters, for every strategy's op
    // vocabulary rearranged into randomized schedules.
    #[test]
    fn compiled_replay_matches_the_interpreter(
        mode in prop::sample::select(HammerMode::all()),
        seed in 0u64..6,
        schedules in prop::collection::vec(
            prop::collection::vec(any::<usize>(), 1..24),
            1..4,
        ),
        rounds in 1u64..4,
    ) {
        let (mut interpreted, pid_i, armed_i) = armed_system(mode, seed);
        let (mut compiled, pid_c, armed_c) = armed_system(mode, seed);
        prop_assert_eq!(pid_i, pid_c);
        prop_assert_eq!(counters(&interpreted), counters(&compiled));

        let strategy = mode.strategy();
        let vocabulary = strategy.round_ops();
        // The strategy's own schedule first, then randomized rearrangements
        // (with repetition) of its op vocabulary — every op stays valid for
        // the armed state while order and intensity vary freely.
        let mut runs: Vec<Vec<RoundOp>> = vec![vocabulary.to_vec()];
        runs.extend(schedules.iter().map(|indices| {
            indices.iter().map(|&i| vocabulary[i % vocabulary.len()]).collect()
        }));

        for ops in &runs {
            let trace = CompiledTrace::compile(&armed_c, ops, &compiled)
                .expect("compile");
            prop_assert_eq!(trace.len(), ops.len());
            prop_assert!(!trace.is_stale(&compiled));
            for _ in 0..rounds {
                let reference = armed_i
                    .hammer_round(&mut interpreted, pid_i, ops)
                    .expect("interpret");
                let replayed = trace.replay(&mut compiled, pid_c).expect("replay");
                prop_assert_eq!(replayed, reference);
            }
            prop_assert_eq!(counters(&interpreted), counters(&compiled));
        }
    }
}

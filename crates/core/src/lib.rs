//! # PThammer: cross user–kernel boundary rowhammer through implicit accesses
//!
//! This crate is the reproduction of the paper's primary contribution: an
//! *implicit hammer* attack in which an unprivileged process never touches
//! the memory it hammers. Instead it arranges — purely through its own
//! virtual-memory accesses — for the processor's page-table walker to load a
//! chosen Level-1 page-table entry from DRAM on every iteration, activating
//! kernel-owned aggressor rows until a neighbouring row holding other
//! Level-1 page tables (or `struct cred` objects) flips a bit, and then
//! turns that flip into kernel privilege escalation.
//!
//! The attack runs against the simulated machines and kernel substrate of the
//! companion crates (`pthammer-machine`, `pthammer-kernel`,
//! `pthammer-defenses`); it interacts with them exclusively through the
//! unprivileged system-call surface (`mmap`, memory accesses, `clflush`,
//! `rdtsc`, `getuid`), exactly as the real attack interacts with Linux.
//! Privileged performance counters and physical-address oracles are used
//! only for offline calibration and for evaluation, as in the paper.
//!
//! ## Structure
//!
//! * [`eviction`] — TLB eviction sets (Algorithm 1) and the LLC eviction-set
//!   pool plus Algorithm 2 selection.
//! * [`spray`] — page-table spraying.
//! * [`pairs`] — double-sided pair selection and row-buffer-conflict
//!   verification.
//! * [`hammer`] — the implicit-hammer primitive, explicit baselines, and the
//!   pluggable [`HammerStrategy`] layer selected by [`HammerMode`].
//! * [`detect`] / [`exploit`] — finding corrupted mappings and the
//!   exploitation primitives behind the victims.
//! * [`victim`] — the victim & exploitation layer: the [`Victim`] trait's
//!   `profile → evaluate → attack` lifecycle and the shipped victims
//!   ([`victim::PteTakeover`], [`victim::CredCorruption`],
//!   [`victim::KeyRecovery`]), selectable by [`VictimChoice`].
//! * [`pipeline`] — the staged `Prepare → PairSelect → Hammer → Detect →
//!   Exploit` pipeline over a shared [`pipeline::AttackCtx`].
//! * [`events`] — the typed event bus the pipeline narrates itself on; all
//!   timing accounting is an event subscriber.
//! * [`attack`] — the [`PtHammer::run_with`] entry point (with its
//!   [`RunOptions`] builder) driving the pipeline.
//!
//! ## Example
//!
//! ```no_run
//! use pthammer::{AttackConfig, PtHammer, RunOptions};
//! use pthammer_dram::FlipModelProfile;
//! use pthammer_kernel::System;
//! use pthammer_machine::MachineConfig;
//!
//! # fn main() -> Result<(), pthammer::AttackError> {
//! let machine = MachineConfig::lenovo_t420(FlipModelProfile::fast(), 42);
//! let mut system = System::undefended(machine);
//! let pid = system.spawn_process(1000).map_err(pthammer::AttackError::from)?;
//!
//! let attack = PtHammer::new(AttackConfig::quick_test(42, false))?;
//! let outcome = attack.run_with(&mut system, pid, RunOptions::new())?;
//! println!(
//!     "escalated: {} after {} attempts ({} flips observed)",
//!     outcome.escalated, outcome.attempts, outcome.flips_observed
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod config;
pub mod detect;
pub mod error;
pub mod events;
pub mod eviction;
pub mod exploit;
pub mod hammer;
pub mod pairs;
pub mod pipeline;
pub mod report;
pub mod spray;
pub mod trace;
pub mod victim;

pub use attack::{PreparedAttack, PtHammer, RunOptions};
pub use config::AttackConfig;
pub use detect::{CapturedPageKind, FlipFinding};
pub use error::AttackError;
pub use events::{AttackEvent, AttackPhase, EventBus, EventSink, PipelineAccounting};
pub use eviction::{
    LlcCalibration, LlcEvictionPool, SelectedEvictionSet, TlbCalibration, TlbEvictionPool,
    TlbEvictionSet, TlbMapping, LLC_EVICTION_PASSES,
};
pub use hammer::{
    ExplicitHammer, ExplicitHammerConfig, ExplicitMode, HammerMode, HammerStats, HammerStrategy,
    ImplicitHammer, RoundOp, Target,
};
pub use pairs::{HammerPair, PairVerification};
pub use pipeline::{AttackCtx, AttackPipeline};
pub use report::{AttackOutcome, PageSetting, StageTimings};
pub use spray::{SprayRegion, SPRAY_PATTERN};
pub use trace::{CompiledTrace, TraceProfile};
pub use victim::{FlipProfile, FlipTarget, Victim, VictimChoice, VictimOutcome, VictimVerdict};

//! Detecting exploitable bit flips (Section IV-F of the paper).
//!
//! After hammering a pair, the attacker re-reads the sprayed virtual
//! addresses whose Level-1 PTEs lie in the victim row. Every sprayed address
//! normally reads the spray pattern back; an address that suddenly reads
//! something else (or faults) sits behind a corrupted L1PTE that now points
//! at a different physical frame. The captured frame is then classified: a
//! page full of identical PTE-looking words is another Level-1 page table
//! (the Figure 7 jackpot); a page containing `struct cred` magic values is a
//! credential slab (the CTA bypass route); anything else is unexploitable.

use serde::{Deserialize, Serialize};

use pthammer_kernel::{KernelError, Pid, System, CRED_MAGIC, CRED_SIZE};
use pthammer_types::{VirtAddr, PAGE_SIZE};

use crate::error::AttackError;
use crate::pairs::HammerPair;
use crate::spray::SprayRegion;

/// What kind of physical frame a corrupted mapping now points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CapturedPageKind {
    /// The frame looks like a sprayed Level-1 page table: repeated identical
    /// present PTEs. Write access to it yields arbitrary physical memory
    /// access (Figure 7).
    L1PageTable {
        /// The repeated PTE value observed in the captured page.
        pte_value: u64,
    },
    /// The frame contains `struct cred` objects (the CTA bypass target).
    CredPage,
    /// The mapping now faults (the flip cleared the present bit or pointed
    /// outside installed DRAM).
    Unmapped,
    /// The frame contents are not recognisably exploitable.
    Unknown,
}

/// One corrupted sprayed mapping discovered by the post-hammer scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlipFinding {
    /// Sprayed virtual address whose mapping changed.
    pub vaddr: VirtAddr,
    /// First word read through the corrupted mapping (0 when unmapped).
    pub observed: u64,
    /// Classification of the captured frame.
    pub kind: CapturedPageKind,
}

impl FlipFinding {
    /// True when the finding can be turned into privilege escalation.
    pub fn is_exploitable(&self) -> bool {
        matches!(
            self.kind,
            CapturedPageKind::L1PageTable { .. } | CapturedPageKind::CredPage
        )
    }
}

/// Flag bits (low 12 bits) of the leaf PTEs the spray creates; used to
/// recognise captured Level-1 page tables.
const SPRAY_PTE_FLAG_MASK: u64 = 0xFFF;
const SPRAY_PTE_FLAGS: u64 = 0x27; // present | writable | user | (accessed-style bits unused)

/// Classifies the frame behind a (corrupted) sprayed mapping by reading a few
/// words through it — exactly what an unprivileged attacker can do.
pub fn classify_captured_page(
    sys: &mut System,
    pid: Pid,
    vaddr: VirtAddr,
) -> Result<CapturedPageKind, AttackError> {
    let base = vaddr.page_base();
    // Credential pages are checked first: their magic markers are
    // unambiguous, whereas the PTE-pattern heuristic below could be fooled by
    // any page full of identical flag-like words.
    let mut slot = 0;
    while slot < PAGE_SIZE / CRED_SIZE {
        match sys.read_u64(pid, base + slot * CRED_SIZE) {
            Ok(acc) if acc.value == CRED_MAGIC => return Ok(CapturedPageKind::CredPage),
            Ok(_) => {}
            Err(KernelError::BadAddress(_)) => return Ok(CapturedPageKind::Unmapped),
            Err(e) => return Err(e.into()),
        }
        slot += 1;
    }

    // Sample a handful of qwords spread over the page: a captured Level-1
    // page table reads as repeated identical present PTEs.
    let mut samples = Vec::with_capacity(8);
    for i in 0..8u64 {
        match sys.read_u64(pid, base + i * 8 * 64 + 8) {
            Ok(acc) => samples.push(acc.value),
            Err(KernelError::BadAddress(_)) => return Ok(CapturedPageKind::Unmapped),
            Err(e) => return Err(e.into()),
        }
    }
    let first = samples[0];
    let all_equal = samples.iter().all(|&v| v == first);
    let looks_like_pte =
        first & 1 == 1 && (first & SPRAY_PTE_FLAG_MASK) & 0x7 == SPRAY_PTE_FLAGS & 0x7;
    if all_equal && looks_like_pte {
        return Ok(CapturedPageKind::L1PageTable { pte_value: first });
    }
    Ok(CapturedPageKind::Unknown)
}

/// Scans the victim virtual-address range of a hammered pair for mappings
/// that no longer read the spray pattern. Returns the simulated cycles spent
/// scanning together with the findings (the Table II "Check Time").
pub fn scan_for_corrupted_mappings(
    sys: &mut System,
    pid: Pid,
    spray: &SprayRegion,
    pair: &HammerPair,
    row_span_bytes: u64,
) -> Result<(Vec<FlipFinding>, u64), AttackError> {
    let start_cycles = sys.rdtsc();
    let (scan_start, scan_end) = pair.victim_va_range(row_span_bytes);
    let scan_start = scan_start.as_u64().max(spray.base.as_u64());
    let scan_end = scan_end.as_u64().min(spray.end().as_u64());

    let mut findings = Vec::new();
    let mut va = scan_start;
    while va < scan_end {
        let addr = VirtAddr::new(va);
        match sys.read_u64(pid, addr) {
            Ok(acc) if acc.value == spray.pattern => {}
            Ok(acc) => {
                let kind = classify_captured_page(sys, pid, addr)?;
                findings.push(FlipFinding {
                    vaddr: addr,
                    observed: acc.value,
                    kind,
                });
            }
            Err(KernelError::BadAddress(_)) => {
                findings.push(FlipFinding {
                    vaddr: addr,
                    observed: 0,
                    kind: CapturedPageKind::Unmapped,
                });
            }
            Err(e) => return Err(e.into()),
        }
        va += PAGE_SIZE;
    }
    Ok((findings, sys.rdtsc() - start_cycles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AttackConfig;
    use crate::spray::{spray_page_tables, SPRAY_PATTERN};
    use pthammer_dram::FlipModelProfile;
    use pthammer_machine::MachineConfig;
    use pthammer_mmu::Pte;

    fn sprayed_system() -> (System, Pid, SprayRegion) {
        let mut sys = System::undefended(MachineConfig::test_small(
            FlipModelProfile::invulnerable(),
            17,
        ));
        let pid = sys.spawn_process(1000).unwrap();
        let config = AttackConfig {
            spray_bytes: 512 << 20,
            ..AttackConfig::quick_test(1, false)
        };
        let spray = spray_page_tables(&mut sys, pid, &config).unwrap();
        (sys, pid, spray)
    }

    fn pair_in(spray: &SprayRegion, row_span: u64) -> HammerPair {
        let low = spray.base + 3 * PAGE_SIZE;
        HammerPair {
            low,
            high: low + crate::pairs::pair_stride(row_span),
        }
    }

    #[test]
    fn clean_scan_finds_nothing() {
        let (mut sys, pid, spray) = sprayed_system();
        let row_span = sys.machine().config().dram.geometry.row_span_bytes();
        let pair = pair_in(&spray, row_span);
        let (findings, cycles) =
            scan_for_corrupted_mappings(&mut sys, pid, &spray, &pair, row_span).unwrap();
        assert!(findings.is_empty());
        assert!(cycles > 0);
    }

    /// Simulates the effect of a rowhammer flip by directly corrupting one
    /// sprayed L1PTE in physical memory (evaluation-only shortcut), then
    /// checks that the unprivileged scan finds and classifies it.
    #[test]
    fn scan_detects_an_injected_l1pte_corruption() {
        let (mut sys, pid, spray) = sprayed_system();
        let row_span = sys.machine().config().dram.geometry.row_span_bytes();
        let pair = pair_in(&spray, row_span);
        let (scan_start, _) = pair.victim_va_range(row_span);
        // Pick a victim sprayed address inside the scan window and corrupt
        // its L1PTE so it points at another sprayed L1PT frame (the Figure 7
        // situation).
        let victim_va = VirtAddr::new(scan_start.as_u64() + 7 * PAGE_SIZE);
        let victim_l1pte_pa = sys.oracle_l1pte_paddr(pid, victim_va).unwrap();
        let another_chunk = spray.base + 11 * (2 << 20);
        let captured_l1pt_frame = sys
            .oracle_l1pte_paddr(pid, another_chunk)
            .unwrap()
            .frame_number();
        let original = Pte::from_raw(sys.machine().phys_read_u64(victim_l1pte_pa));
        let corrupted = Pte::page(
            pthammer_types::PhysAddr::from_frame(captured_l1pt_frame, 0),
            original.flags(),
        );
        sys.machine_mut()
            .phys_write_u64(victim_l1pte_pa, corrupted.raw());

        let (findings, _) =
            scan_for_corrupted_mappings(&mut sys, pid, &spray, &pair, row_span).unwrap();
        assert_eq!(findings.len(), 1);
        let finding = findings[0];
        assert_eq!(finding.vaddr, victim_va.page_base());
        assert!(finding.is_exploitable());
        match finding.kind {
            CapturedPageKind::L1PageTable { pte_value } => {
                // The captured page is full of PTEs pointing at the shared
                // user frame.
                let user_frame = sys
                    .oracle_translate(pid, spray.user_page)
                    .unwrap()
                    .frame_number();
                assert_eq!(pte_value >> 12 & 0xF_FFFF_FFFF, user_frame);
            }
            other => panic!("expected L1PageTable, got {other:?}"),
        }
    }

    #[test]
    fn scan_reports_unmapped_when_present_bit_cleared() {
        let (mut sys, pid, spray) = sprayed_system();
        let row_span = sys.machine().config().dram.geometry.row_span_bytes();
        let pair = pair_in(&spray, row_span);
        let (scan_start, _) = pair.victim_va_range(row_span);
        let victim_va = VirtAddr::new(scan_start.as_u64() + 3 * PAGE_SIZE);
        let victim_l1pte_pa = sys.oracle_l1pte_paddr(pid, victim_va).unwrap();
        let original = sys.machine().phys_read_u64(victim_l1pte_pa);
        sys.machine_mut()
            .phys_write_u64(victim_l1pte_pa, original & !1);
        let (findings, _) =
            scan_for_corrupted_mappings(&mut sys, pid, &spray, &pair, row_span).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, CapturedPageKind::Unmapped);
        assert!(!findings[0].is_exploitable());
        assert_eq!(findings[0].vaddr, victim_va.page_base());
    }

    #[test]
    fn classify_recognises_cred_pages() {
        let (mut sys, pid, spray) = sprayed_system();
        // Spawn some extra processes so cred slabs exist, then corrupt a
        // sprayed PTE to point at the cred slab frame.
        sys.spawn_processes(64, 1000).unwrap();
        let victim_va = spray.base + 9 * PAGE_SIZE;
        let cred_paddr = sys.process(pid).unwrap().cred_paddr;
        let victim_l1pte_pa = sys.oracle_l1pte_paddr(pid, victim_va).unwrap();
        let original = Pte::from_raw(sys.machine().phys_read_u64(victim_l1pte_pa));
        let corrupted = Pte::page(
            pthammer_types::PhysAddr::from_frame(cred_paddr.frame_number(), 0),
            original.flags(),
        );
        sys.machine_mut()
            .phys_write_u64(victim_l1pte_pa, corrupted.raw());
        let kind = classify_captured_page(&mut sys, pid, victim_va).unwrap();
        assert_eq!(kind, CapturedPageKind::CredPage);
        // An untouched sprayed page still looks like an L1PT... no: it reads
        // the spray pattern (user data), which is neither a PTE nor a cred.
        let kind = classify_captured_page(&mut sys, pid, spray.base).unwrap();
        assert_eq!(kind, CapturedPageKind::Unknown);
        assert_eq!(
            SPRAY_PATTERN & 1,
            0,
            "spray pattern must not look like a present PTE"
        );
    }
}

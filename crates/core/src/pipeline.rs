//! The attack's phase pipeline.
//!
//! [`AttackPipeline`] replaces the old monolithic `PtHammer::run` loop with
//! an explicit `Prepare → PairSelect → Hammer → Detect → Exploit` pipeline
//! over a shared [`AttackCtx`]: the per-attempt state, the attacker's RNG
//! and all timing accounting live here instead of in ad-hoc locals. Each
//! phase announces itself on the typed event bus ([`crate::events`]); the
//! built-in [`PipelineAccounting`] subscriber derives the stage timings and
//! headline counts, and external subscribers (the campaign harness, the
//! perf accounting) observe the same stream.
//!
//! For the paper's default mode
//! ([`HammerMode::ImplicitDoubleSided`](crate::HammerMode)) the pipeline
//! performs exactly the simulated-operation sequence of the historical
//! driver, so the golden campaign snapshot remains byte-identical.

use rand::rngs::StdRng;
use rand::SeedableRng;

use pthammer_kernel::{Pid, System};

use crate::config::AttackConfig;
use crate::detect::scan_for_corrupted_mappings;
use crate::error::AttackError;
use crate::events::{AttackEvent, AttackPhase, EventBus, EventSink, PipelineAccounting};
use crate::eviction::llc::LlcEvictionPool;
use crate::eviction::tlb::TlbEvictionPool;
use crate::hammer::implicit::HammerStats;
use crate::hammer::strategy::{ArmedPair, HammerStrategy};
use crate::pairs::{candidate_pairs, conflict_threshold};
use crate::report::{AttackOutcome, PageSetting};
use crate::spray::spray_page_tables;
use crate::trace::CompiledTrace;
use crate::victim::{ExploitCtx, FlipProfile, PteTakeover, Victim, VictimOutcome};

/// The prepared one-off state (pools + spray), exposed so that the benchmark
/// harness can time and reuse the stages individually.
#[derive(Debug, Clone)]
pub struct PreparedAttack {
    /// TLB eviction pool.
    pub tlb_pool: TlbEvictionPool,
    /// LLC eviction pool.
    pub llc_pool: LlcEvictionPool,
    /// The page-table spray region.
    pub spray: crate::spray::SprayRegion,
}

/// Number of pages in the TLB eviction sets the attack uses: the paper's
/// 12 on the Table I machines (`L1 ways + 2 × L2 ways`).
pub fn tlb_eviction_pages(sys: &System) -> usize {
    let mmu = &sys.machine().config().mmu;
    (mmu.l1_dtlb.ways + 2 * mmu.l2_stlb.ways) as usize
}

/// Number of lines in the LLC eviction sets: one more than the LLC
/// associativity (13 on the Lenovo machines, 17 on the Dell).
pub fn llc_eviction_lines(sys: &System) -> usize {
    sys.machine().config().cache.llc.ways as usize + 1
}

/// Runs the one-off preparation: TLB pool, LLC pool and the spray.
pub fn prepare_attack(
    sys: &mut System,
    pid: Pid,
    config: &AttackConfig,
) -> Result<PreparedAttack, AttackError> {
    let tlb_pool = TlbEvictionPool::build(sys, pid, config, tlb_eviction_pages(sys))?;
    let llc_pool = LlcEvictionPool::build(sys, pid, config, llc_eviction_lines(sys))?;
    let spray = spray_page_tables(sys, pid, config)?;
    Ok(PreparedAttack {
        tlb_pool,
        llc_pool,
        spray,
    })
}

/// The shared, typed context every pipeline phase operates on.
///
/// Everything the old driver kept in loop-local variables lives here: the
/// attacker's RNG stream, the prepared pools, machine-derived constants, the
/// accounting subscriber and the attempt-spanning result state.
#[derive(Debug)]
pub struct AttackCtx {
    /// The process running the attack.
    pub pid: Pid,
    /// `rdtsc` at the start of the attack.
    pub attack_start: u64,
    /// Attacker uid before the attack.
    pub uid_before: u32,
    /// DRAM row span of the machine under attack (bytes).
    pub row_span: u64,
    /// Row-buffer-conflict latency threshold for pair verification.
    pub conflict_threshold: u64,
    /// The attacker's pseudo-random stream (pair selection).
    pub rng: StdRng,
    /// One-off prepared state (pools + spray); set by the `Prepare` phase.
    pub prepared: Option<PreparedAttack>,
    /// Event-derived timing and count accounting.
    pub accounting: PipelineAccounting,
    /// Per-iteration cycle samples (the Figure 6 measurement).
    pub hammer_cycle_samples: Vec<u64>,
    /// The victim the `Exploit` phase dispatches through (`profile →
    /// evaluate → attack`); [`PteTakeover`] unless one was injected.
    pub victim: Box<dyn Victim>,
    /// The victim's flip profile; set by the `Prepare` phase.
    pub flip_profile: Option<FlipProfile>,
    /// The successful victim outcome, once the `Exploit` phase produced one.
    pub victory: Option<VictimOutcome>,
    /// Effective uid of the escalated process (== `uid_before` until then).
    pub escalated_uid: u32,
}

/// What the driver does after a phase group completes.
enum Flow {
    /// Move on to the next candidate pair.
    NextPair,
    /// Stop the attempt loop (escalated or budget reached).
    Finish,
}

/// The staged attack pipeline: a hammer strategy plus an event bus, driven
/// over an [`AttackCtx`].
pub struct AttackPipeline<'a, 'b> {
    config: &'a AttackConfig,
    strategy: Box<dyn HammerStrategy>,
    victim: Box<dyn Victim>,
    bus: EventBus<'b>,
}

impl std::fmt::Debug for AttackPipeline<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttackPipeline")
            .field("strategy", &self.strategy)
            .field("victim", &self.victim)
            .field("bus", &self.bus)
            .finish_non_exhaustive()
    }
}

impl<'a, 'b> AttackPipeline<'a, 'b> {
    /// Creates the pipeline for `config`, instantiating the strategy from
    /// `config.hammer_mode` and the default [`PteTakeover`] victim.
    pub fn new(config: &'a AttackConfig) -> Self {
        Self::with_strategy(config, config.hammer_mode.strategy())
    }

    /// Creates the pipeline with an explicitly injected strategy instead of
    /// one derived from `config.hammer_mode` — the hook through which
    /// externally defined strategies (e.g. `pthammer-patterns`' synthesized
    /// many-sided patterns) execute on the same phase pipeline, touch path
    /// and event bus as the built-in modes.
    pub fn with_strategy(config: &'a AttackConfig, strategy: Box<dyn HammerStrategy>) -> Self {
        Self::with_parts(config, strategy, Box::new(PteTakeover))
    }

    /// Creates the pipeline with both the strategy and the victim injected —
    /// the hook through which the `Exploit` phase is re-targeted at a
    /// different [`Victim`] (the campaign's `victims` axis).
    pub fn with_parts(
        config: &'a AttackConfig,
        strategy: Box<dyn HammerStrategy>,
        victim: Box<dyn Victim>,
    ) -> Self {
        Self {
            config,
            strategy,
            victim,
            bus: EventBus::new(),
        }
    }

    /// Registers an external event subscriber.
    pub fn subscribe(&mut self, sink: &'b mut dyn EventSink) {
        self.bus.subscribe(sink);
    }

    /// Emits an event to the built-in accounting and every subscriber.
    fn emit(&mut self, ctx: &mut AttackCtx, event: AttackEvent) {
        ctx.accounting.on_event(&event);
        self.bus.emit(&event);
    }

    fn enter(&mut self, ctx: &mut AttackCtx, sys: &System, phase: AttackPhase) {
        self.emit(
            ctx,
            AttackEvent::PhaseEntered {
                phase,
                at_cycles: sys.rdtsc(),
            },
        );
    }

    fn exit(&mut self, ctx: &mut AttackCtx, sys: &System, phase: AttackPhase) {
        self.emit(
            ctx,
            AttackEvent::PhaseExited {
                phase,
                at_cycles: sys.rdtsc(),
            },
        );
    }

    /// Runs the full pipeline to an [`AttackOutcome`].
    pub fn run(mut self, sys: &mut System, pid: Pid) -> Result<AttackOutcome, AttackError> {
        let attack_start = sys.rdtsc();
        let uid_before = sys.getuid(pid)?;
        let machine = sys.machine().config().name.clone();
        let clock_hz = sys.machine().clock_hz();
        let defense = sys.policy_kind();
        let page_setting = PageSetting::from_superpages(self.config.superpages);

        let mut ctx = AttackCtx {
            pid,
            attack_start,
            uid_before,
            row_span: sys.machine().config().dram.geometry.row_span_bytes(),
            conflict_threshold: conflict_threshold(sys),
            rng: StdRng::seed_from_u64(self.config.seed),
            prepared: None,
            accounting: PipelineAccounting::new(attack_start),
            hammer_cycle_samples: Vec::new(),
            victim: std::mem::replace(&mut self.victim, Box::new(PteTakeover)),
            flip_profile: None,
            victory: None,
            escalated_uid: uid_before,
        };

        self.phase_prepare(&mut ctx, sys)?;
        self.drive_attempts(&mut ctx, sys)?;

        let timings = ctx.accounting.stage_timings();
        Ok(AttackOutcome {
            machine,
            clock_hz,
            page_setting,
            defense,
            hammer_mode: self.strategy.mode(),
            escalated: ctx.victory.is_some_and(|v| v.escalated_pid().is_some()),
            victim_outcome: ctx.victory,
            attempts: ctx.accounting.attempts,
            hammer_iterations: ctx.accounting.hammer_iterations,
            hammer_cycles_total: ctx.accounting.hammer_cycles_total,
            flips_observed: ctx.accounting.flips_observed,
            exploitable_flips: ctx.accounting.exploitable_flips,
            uid_before: ctx.uid_before,
            uid_after: ctx.escalated_uid,
            timings,
            hammer_cycle_samples: ctx.hammer_cycle_samples,
            implicit_dram_rate: ctx.accounting.implicit_dram_rate(),
        })
    }

    /// `Prepare`: builds the TLB/LLC eviction pools and the page-table
    /// spray, once, then runs the victim's `profile` stage.
    fn phase_prepare(&mut self, ctx: &mut AttackCtx, sys: &mut System) -> Result<(), AttackError> {
        self.enter(ctx, sys, AttackPhase::Prepare);
        let prepared = prepare_attack(sys, ctx.pid, self.config)?;
        self.emit(
            ctx,
            AttackEvent::PoolsPrepared {
                tlb_pool_cycles: prepared.tlb_pool.prep_cycles(),
                llc_pool_cycles: prepared.llc_pool.prep_cycles(),
                l1pt_count: prepared.spray.l1pt_count(),
            },
        );
        ctx.prepared = Some(prepared);
        // Victim profiling takes `&System`: it cannot perform simulated
        // memory operations, so the phases downstream stay byte-identical
        // regardless of which victim is attached.
        let profile = ctx.victim.profile(sys, ctx.pid)?;
        self.emit(
            ctx,
            AttackEvent::VictimProfiled {
                victim: ctx.victim.name(),
                targets: profile.targets.len(),
                at_cycles: sys.rdtsc(),
            },
        );
        ctx.flip_profile = Some(profile);
        self.exit(ctx, sys, AttackPhase::Prepare);
        Ok(())
    }

    /// The attempt loop: candidate batches from the RNG, then the
    /// `PairSelect → Hammer → Detect → Exploit` phases per candidate.
    fn drive_attempts(&mut self, ctx: &mut AttackCtx, sys: &mut System) -> Result<(), AttackError> {
        while ctx.accounting.attempts < self.config.max_attempts
            && ctx.accounting.flips_observed < self.config.max_flips
        {
            let pairs = {
                let spray = &ctx.prepared.as_ref().expect("prepare phase ran").spray;
                candidate_pairs(
                    spray,
                    ctx.row_span,
                    self.config.pair_candidates_per_round,
                    &mut ctx.rng,
                )
            };
            if pairs.is_empty() {
                return Err(AttackError::NoHammerPairs);
            }
            for pair in pairs {
                if ctx.accounting.attempts >= self.config.max_attempts {
                    return Ok(());
                }
                self.emit(
                    ctx,
                    AttackEvent::AttemptStarted {
                        attempt: ctx.accounting.attempts + 1,
                        pair,
                        at_cycles: sys.rdtsc(),
                    },
                );
                match self.run_attempt(ctx, sys, pair)? {
                    Flow::NextPair => {}
                    Flow::Finish => return Ok(()),
                }
            }
        }
        Ok(())
    }

    /// One attempt: select/verify, hammer, detect, exploit.
    fn run_attempt(
        &mut self,
        ctx: &mut AttackCtx,
        sys: &mut System,
        pair: crate::pairs::HammerPair,
    ) -> Result<Flow, AttackError> {
        let Some(armed) = self.phase_pair_select(ctx, sys, pair)? else {
            return Ok(Flow::NextPair);
        };
        self.phase_hammer(ctx, sys, &armed)?;
        let findings = self.phase_detect(ctx, sys, &armed)?;
        self.phase_exploit(ctx, sys, &findings)
    }

    /// `PairSelect`: eviction-set selection plus the strategy's acceptance
    /// gate (same-bank verification for the paper's strategy).
    fn phase_pair_select(
        &mut self,
        ctx: &mut AttackCtx,
        sys: &mut System,
        pair: crate::pairs::HammerPair,
    ) -> Result<Option<ArmedPair>, AttackError> {
        self.enter(ctx, sys, AttackPhase::PairSelect);
        let arm = self.strategy.arm(
            sys,
            ctx.pid,
            pair,
            ctx.prepared.as_ref().expect("prepare phase ran"),
            self.config,
            ctx.conflict_threshold,
        )?;
        self.emit(
            ctx,
            AttackEvent::EvictionSetsSelected {
                tlb_cycles: arm.tlb_selection_cycles,
                llc_cycles: arm.llc_selection_cycles,
            },
        );
        self.emit(
            ctx,
            AttackEvent::PairVerified {
                verification: arm.verification,
                accepted: arm.armed.is_some(),
            },
        );
        self.exit(ctx, sys, AttackPhase::PairSelect);
        Ok(arm.armed)
    }

    /// `Hammer`: the strategy's per-round op pattern compiled once into a
    /// [`CompiledTrace`] and replayed `hammer_rounds_per_attempt` times,
    /// plus the Figure 6 cycle samples while fewer than 50 were taken.
    ///
    /// The exact-profile trace replays the interpreter's operation stream
    /// call for call, so this path simulates byte-identically to the
    /// historical per-round interpretation. A handled demand fault (kernel
    /// page-table allocation mid-attempt) invalidates the trace; the cheap
    /// per-round staleness check recompiles it before the next replay.
    fn phase_hammer(
        &mut self,
        ctx: &mut AttackCtx,
        sys: &mut System,
        armed: &ArmedPair,
    ) -> Result<(), AttackError> {
        self.enter(ctx, sys, AttackPhase::Hammer);
        // The trace owns its resolved schedule, so (unlike the old
        // `round_ops().to_vec()` copy) emitting events below can borrow the
        // pipeline mutably without holding a borrow of the strategy.
        let mut trace = CompiledTrace::compile(armed, self.strategy.round_ops(), sys)?;
        let mut stats = HammerStats {
            min_round_cycles: u64::MAX,
            ..HammerStats::default()
        };
        for _ in 0..self.config.hammer_rounds_per_attempt {
            if trace.is_stale(sys) {
                trace = CompiledTrace::compile(armed, self.strategy.round_ops(), sys)?;
            }
            let round = trace.replay(sys, ctx.pid)?;
            stats.rounds += 1;
            stats.total_cycles += round.cycles;
            stats.min_round_cycles = stats.min_round_cycles.min(round.cycles);
            stats.max_round_cycles = stats.max_round_cycles.max(round.cycles);
            stats.low_dram_hits += u64::from(round.low_dram);
            stats.high_dram_hits += u64::from(round.high_dram);
            stats.aggressor_dram_hits += round.aggressor_dram_hits;
        }
        if stats.rounds == 0 {
            stats.min_round_cycles = 0;
        }
        self.emit(
            ctx,
            AttackEvent::HammerFinished {
                stats,
                implicit_touches_per_round: self.strategy.implicit_touches_per_round(),
            },
        );
        if ctx.hammer_cycle_samples.len() < 50 {
            for _ in 0..10 {
                if trace.is_stale(sys) {
                    trace = CompiledTrace::compile(armed, self.strategy.round_ops(), sys)?;
                }
                let round = trace.replay(sys, ctx.pid)?;
                ctx.hammer_cycle_samples.push(round.cycles);
            }
        }
        self.exit(ctx, sys, AttackPhase::Hammer);
        Ok(())
    }

    /// `Detect`: scan the victim range of the hammered pair for corrupted
    /// sprayed mappings.
    fn phase_detect(
        &mut self,
        ctx: &mut AttackCtx,
        sys: &mut System,
        armed: &ArmedPair,
    ) -> Result<Vec<crate::detect::FlipFinding>, AttackError> {
        self.enter(ctx, sys, AttackPhase::Detect);
        let (findings, check_cycles) = scan_for_corrupted_mappings(
            sys,
            ctx.pid,
            &ctx.prepared.as_ref().expect("prepare phase ran").spray,
            &armed.pair,
            ctx.row_span,
        )?;
        let at_cycles = sys.rdtsc();
        for finding in &findings {
            self.emit(
                ctx,
                AttackEvent::FlipObserved {
                    finding: *finding,
                    at_cycles,
                },
            );
        }
        self.emit(
            ctx,
            AttackEvent::ChecksCompleted {
                findings: findings.len(),
                exploitable: findings.iter().filter(|f| f.is_exploitable()).count(),
                check_cycles,
                at_cycles,
            },
        );
        self.exit(ctx, sys, AttackPhase::Detect);
        Ok(findings)
    }

    /// `Exploit`: dispatch every finding through the victim trait object —
    /// `evaluate` gates which findings are attacked, `attack` performs the
    /// exploitation.
    fn phase_exploit(
        &mut self,
        ctx: &mut AttackCtx,
        sys: &mut System,
        findings: &[crate::detect::FlipFinding],
    ) -> Result<Flow, AttackError> {
        self.enter(ctx, sys, AttackPhase::Exploit);
        for finding in findings {
            let usable = {
                let profile = ctx.flip_profile.as_ref().expect("prepare phase ran");
                ctx.victim.evaluate(profile, finding).is_usable()
            };
            if !usable {
                continue;
            }
            let mut outcome = {
                let prepared = ctx.prepared.as_ref().expect("prepare phase ran");
                let exploit = ExploitCtx {
                    tlb_pool: &prepared.tlb_pool,
                    spray: &prepared.spray,
                    attacker_uid: ctx.uid_before,
                    hammer_iterations: ctx.accounting.hammer_iterations,
                };
                ctx.victim.attack(sys, ctx.pid, &exploit, finding)?
            };
            if outcome.success {
                outcome.time_to_exploit_iterations = Some(ctx.accounting.hammer_iterations);
            }
            self.emit(
                ctx,
                AttackEvent::VictimAttacked {
                    outcome,
                    at_cycles: sys.rdtsc(),
                },
            );
            if outcome.success {
                if let Some(escalated_pid) = outcome.escalated_pid() {
                    ctx.escalated_uid = sys.getuid(escalated_pid)?;
                }
                ctx.victory = Some(outcome);
                self.exit(ctx, sys, AttackPhase::Exploit);
                return Ok(Flow::Finish);
            }
        }
        self.exit(ctx, sys, AttackPhase::Exploit);
        Ok(Flow::NextPair)
    }
}

//! Attack configuration.

use serde::{Deserialize, Serialize};

use crate::hammer::strategy::HammerMode;

/// Tunable parameters of a PThammer run.
///
/// The defaults follow the paper's setup scaled to the simulated machines;
/// [`AttackConfig::quick_test`] shrinks everything so integration tests and
/// examples finish in seconds of host time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackConfig {
    /// Seed for the attacker's own pseudo-random choices.
    pub seed: u64,
    /// Which hammer strategy the pipeline runs (the paper's implicit
    /// double-sided attack by default).
    pub hammer_mode: HammerMode,
    /// Whether the system has superpages enabled (changes how the LLC
    /// eviction pool is prepared, cf. Table II).
    pub superpages: bool,
    /// Virtual-address span of the page-table spray in bytes. Every 2 MiB of
    /// span creates one Level-1 page table.
    pub spray_bytes: u64,
    /// Size of the LLC eviction buffer as a multiple of the LLC capacity.
    pub eviction_buffer_factor: f64,
    /// Trials per measurement when profiling TLB eviction sets (Algorithm 1).
    pub tlb_profile_trials: usize,
    /// Trials per measurement when profiling LLC eviction sets (Algorithm 2).
    pub llc_profile_trials: usize,
    /// Number of double-sided hammer iterations per hammer attempt.
    pub hammer_rounds_per_attempt: u64,
    /// Maximum number of hammer attempts (pairs hammered) before giving up.
    pub max_attempts: usize,
    /// Maximum number of observed (possibly unexploitable) flips before the
    /// attack gives up on escalation.
    pub max_flips: usize,
    /// Number of candidate pairs to verify per attempt batch.
    pub pair_candidates_per_round: usize,
    /// Fraction by which a trimmed TLB eviction set's miss rate may drop
    /// below the initial threshold before trimming stops (Algorithm 1).
    pub tlb_trim_tolerance: f64,
}

impl AttackConfig {
    /// Paper-like parameters (big spray, long hammering). Intended for the
    /// benchmark harness; host runtime is substantial.
    pub fn paper(seed: u64, superpages: bool) -> Self {
        Self {
            seed,
            hammer_mode: HammerMode::default(),
            superpages,
            spray_bytes: 4 << 30,
            eviction_buffer_factor: 2.0,
            tlb_profile_trials: 50,
            llc_profile_trials: 16,
            hammer_rounds_per_attempt: 120_000,
            max_attempts: 512,
            max_flips: 32,
            pair_candidates_per_round: 8,
            tlb_trim_tolerance: 0.05,
        }
    }

    /// Scaled-down parameters for integration tests and examples, meant to be
    /// paired with [`FlipModelProfile::ci`](pthammer_dram::FlipModelProfile::ci)
    /// or `fast` DRAM profiles and the small test machine.
    pub fn quick_test(seed: u64, superpages: bool) -> Self {
        Self {
            seed,
            hammer_mode: HammerMode::default(),
            superpages,
            spray_bytes: 768 << 20,
            eviction_buffer_factor: 2.0,
            tlb_profile_trials: 20,
            llc_profile_trials: 8,
            hammer_rounds_per_attempt: 3_000,
            max_attempts: 24,
            max_flips: 16,
            pair_candidates_per_round: 4,
            tlb_trim_tolerance: 0.05,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.spray_bytes < (512 << 20) {
            return Err(format!(
                "spray_bytes must cover at least 512 MiB of VA (one hammer pair stride needs 256 MiB), got {}",
                self.spray_bytes
            ));
        }
        if self.eviction_buffer_factor < 1.0 {
            return Err("eviction_buffer_factor must be at least 1.0".to_string());
        }
        if self.tlb_profile_trials == 0 || self.llc_profile_trials == 0 {
            return Err("profiling trial counts must be non-zero".to_string());
        }
        if self.hammer_rounds_per_attempt == 0 || self.max_attempts == 0 {
            return Err("hammer rounds and attempts must be non-zero".to_string());
        }
        Ok(())
    }
}

impl Default for AttackConfig {
    fn default() -> Self {
        Self::quick_test(0x7453_4861_4d65_5221, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_default_to_the_paper_mode() {
        assert_eq!(
            AttackConfig::paper(1, false).hammer_mode,
            HammerMode::ImplicitDoubleSided
        );
        assert_eq!(
            AttackConfig::quick_test(1, false).hammer_mode,
            HammerMode::ImplicitDoubleSided
        );
        assert!(HammerMode::default().is_default());
    }

    #[test]
    fn presets_validate() {
        assert!(AttackConfig::paper(1, false).validate().is_ok());
        assert!(AttackConfig::paper(1, true).validate().is_ok());
        assert!(AttackConfig::quick_test(1, false).validate().is_ok());
        assert!(AttackConfig::default().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut cfg = AttackConfig::quick_test(1, false);
        cfg.spray_bytes = 1 << 20;
        assert!(cfg.validate().is_err());

        let mut cfg = AttackConfig::quick_test(1, false);
        cfg.eviction_buffer_factor = 0.5;
        assert!(cfg.validate().is_err());

        let mut cfg = AttackConfig::quick_test(1, false);
        cfg.tlb_profile_trials = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = AttackConfig::quick_test(1, false);
        cfg.max_attempts = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn paper_config_is_larger_than_quick_test() {
        let paper = AttackConfig::paper(1, false);
        let quick = AttackConfig::quick_test(1, false);
        assert!(paper.spray_bytes > quick.spray_bytes);
        assert!(paper.hammer_rounds_per_attempt > quick.hammer_rounds_per_attempt);
    }
}

//! The victim & exploitation layer: `profile → evaluate → attack`.
//!
//! The paper's Section V endgame — turning an exploitable bit flip into a
//! concrete compromise — is modelled as a first-class [`Victim`] with a
//! three-stage lifecycle:
//!
//! 1. **profile** — once per run, before hammering: the victim templates the
//!    machine for the flips it can use and returns a [`FlipProfile`]. The
//!    profile is a pure function of the machine configuration (never of
//!    simulated memory state), so it can be persisted and cache-shared
//!    across campaign cells.
//! 2. **evaluate** — per flip finding, side-effect free: the victim decides
//!    whether the finding is usable against its profile, returning a
//!    [`VictimVerdict`]. Rejected findings are never attacked.
//! 3. **attack** — per usable finding: the victim performs the actual
//!    exploitation through the unprivileged system-call surface and returns
//!    a typed [`VictimOutcome`] (success/failure, escalated identity,
//!    time-to-exploit in hammer iterations).
//!
//! Three victims ship with the crate, selectable by [`VictimChoice`]:
//!
//! * [`PteTakeover`] — the paper's spray-PTE victim and the pipeline's
//!   default. A corrupted sprayed L1PTE captures a kernel frame: a captured
//!   page table yields the Figure 7 takeover (arbitrary physical
//!   read/write, then credential rewrite), a captured cred slab yields the
//!   Section IV-G3 direct corruption. This is exactly the historical
//!   `attempt_escalation` behavior, so default runs are byte-identical.
//! * [`CredCorruption`] — the CTA-bypass arm as a *peer* victim: it only
//!   accepts findings that captured a credential slab directly, rejecting
//!   page-table captures at `evaluate`. Sweeping it against `PteTakeover`
//!   isolates how much of a defense's strength comes from protecting page
//!   tables specifically.
//! * [`KeyRecovery`] — a FrodoKEM-style error-matrix key-recovery victim:
//!   `profile` templates the module's weak cells for flips landing in the
//!   low-order bits of 16-bit error-matrix limbs, `evaluate` accepts flips
//!   matching that template, and `attack` models the decryption-failure
//!   oracle queries that leak secret-key rows. Its [`FlipProfile`] is the
//!   persisted, store-cacheable artifact.

use std::fmt;
use std::str::FromStr;

use serde::ser::JsonWriter;
use serde::{Deserialize, Serialize};

use pthammer_dram::FlipModel;
use pthammer_kernel::{Pid, System};
use pthammer_machine::MachineConfig;

use crate::detect::{CapturedPageKind, FlipFinding};
use crate::error::AttackError;
use crate::eviction::tlb::TlbEvictionPool;
use crate::exploit::{
    build_phys_primitive, corrupt_cred_in_captured_page, corrupt_cred_via_primitive,
};
use crate::spray::{SprayRegion, SPRAY_PATTERN};

/// One templated weak cell a victim can use, in DRAM coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlipTarget {
    /// Flattened bank unit the cell lives in.
    pub bank_unit: u32,
    /// Row within the bank.
    pub row: u32,
    /// Byte offset of the cell within the row.
    pub byte_in_row: u32,
    /// Bit position within that byte (0–7).
    pub bit: u8,
}

/// The persisted artifact of a victim's `profile` stage.
///
/// A flip profile is a pure function of the machine *configuration* (name,
/// DRAM seed, weak-cell model) — never of simulated memory state — so equal
/// coordinates always produce an identical profile and the canonical JSON
/// form can be cached content-addressed in the campaign store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlipProfile {
    /// Name of the victim that produced the profile.
    pub victim: String,
    /// Machine the profile was templated on.
    pub machine: String,
    /// The DRAM flip-model seed the template was derived from.
    pub dram_seed: u64,
    /// Templated usable weak cells (empty for victims that need none).
    pub targets: Vec<FlipTarget>,
}

impl FlipProfile {
    /// A profile with no templated targets, for victims whose exploitation
    /// does not depend on DRAM templating.
    pub fn untargeted(victim: &str, config: &MachineConfig) -> Self {
        Self {
            victim: victim.to_string(),
            machine: config.name.clone(),
            dram_seed: config.dram.flip_seed,
            targets: Vec::new(),
        }
    }

    /// Whether the profile templated any usable cells.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Canonical compact JSON form (the store-cacheable representation).
    pub fn to_canonical_json(&self) -> String {
        let mut w = JsonWriter::new(false);
        self.serialize(&mut w);
        w.into_string()
    }
}

/// The `evaluate` stage's decision about one flip finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimVerdict {
    /// The finding is usable; the pipeline proceeds to `attack`.
    Usable,
    /// The finding is not usable for this victim; it is never attacked.
    Rejected(&'static str),
}

impl VictimVerdict {
    /// Whether the verdict lets the finding proceed to `attack`.
    pub fn is_usable(&self) -> bool {
        matches!(self, VictimVerdict::Usable)
    }
}

/// The typed result of one `attack` stage invocation.
///
/// This replaces the closed `EscalationRoute` enum: victims are open-ended,
/// so the outcome identifies the victim and mechanism by canonical name
/// instead of enumerating every possible compromise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VictimOutcome {
    /// Canonical name of the victim that ran.
    pub victim: &'static str,
    /// Mechanism label of the compromise (`"PageTableTakeover"`,
    /// `"CredCorruption"`, `"KeyRecovery"`, ...).
    pub mechanism: &'static str,
    /// Whether the exploitation succeeded.
    pub success: bool,
    /// Pid that ended up with root credentials, for escalation victims.
    pub escalated_pid: Option<Pid>,
    /// Secret-key bits recovered so far, for key-recovery victims.
    pub recovered_bits: u64,
    /// Hammer iterations performed when the exploit succeeded (stamped by
    /// the pipeline from its accounting).
    pub time_to_exploit_iterations: Option<u64>,
}

impl VictimOutcome {
    /// A failed attack attempt.
    pub fn failure(victim: &'static str, mechanism: &'static str) -> Self {
        Self {
            victim,
            mechanism,
            success: false,
            escalated_pid: None,
            recovered_bits: 0,
            time_to_exploit_iterations: None,
        }
    }

    /// A successful privilege escalation.
    pub fn escalation(victim: &'static str, mechanism: &'static str, pid: Pid) -> Self {
        Self {
            victim,
            mechanism,
            success: true,
            escalated_pid: Some(pid),
            recovered_bits: 0,
            time_to_exploit_iterations: None,
        }
    }

    /// The pid that ended up with root credentials, if escalation happened.
    pub fn escalated_pid(&self) -> Option<Pid> {
        self.escalated_pid
    }

    /// Canonical route label for reports.
    ///
    /// For escalation victims this reproduces the historical
    /// `EscalationRoute` debug strings byte-for-byte
    /// (`"PageTableTakeover { escalated_pid: 1 }"`), which the golden
    /// campaign snapshots pin.
    pub fn route_label(&self) -> String {
        match self.escalated_pid {
            Some(pid) => format!("{} {{ escalated_pid: {} }}", self.mechanism, pid),
            None => format!(
                "{} {{ recovered_bits: {} }}",
                self.mechanism, self.recovered_bits
            ),
        }
    }
}

/// The exploitation assets the pipeline hands a victim's `attack` stage.
#[derive(Debug)]
pub struct ExploitCtx<'a> {
    /// The attacker's TLB eviction pool (for the physical access primitive).
    pub tlb_pool: &'a TlbEvictionPool,
    /// The page-table spray region.
    pub spray: &'a SprayRegion,
    /// The attacker's uid before the attack.
    pub attacker_uid: u32,
    /// Hammer iterations performed so far (the time-to-exploit clock).
    pub hammer_iterations: u64,
}

/// A victim class: something worth compromising through a rowhammer flip.
///
/// The pipeline's `Exploit` phase dispatches exclusively through this trait
/// object: it calls `profile` once (during `Prepare`), `evaluate` for every
/// flip finding and `attack` for every usable one.
pub trait Victim: fmt::Debug {
    /// Canonical kebab-case victim name.
    fn name(&self) -> &'static str;

    /// Templates the machine for usable flips, once per run.
    ///
    /// Takes `&System` — profiling must not perform simulated memory
    /// operations, so attaching any victim leaves the hammer/detect phases
    /// byte-identical.
    fn profile(&mut self, sys: &System, pid: Pid) -> Result<FlipProfile, AttackError>;

    /// Decides, side-effect free, whether `finding` is usable.
    fn evaluate(&self, profile: &FlipProfile, finding: &FlipFinding) -> VictimVerdict;

    /// Exploits one usable finding.
    fn attack(
        &mut self,
        sys: &mut System,
        pid: Pid,
        exploit: &ExploitCtx<'_>,
        finding: &FlipFinding,
    ) -> Result<VictimOutcome, AttackError>;
}

// ---------------------------------------------------------------------------
// PteTakeover
// ---------------------------------------------------------------------------

/// The paper's spray-PTE victim (Section V) and the pipeline's default.
///
/// A corrupted sprayed L1PTE captures whatever kernel frame it now points
/// at: a captured Level-1 page table yields the Figure 7 takeover (the
/// attacker writes PTEs, builds an arbitrary physical read/write primitive
/// and zeroes its own `struct cred`), a captured cred slab yields the
/// Section IV-G3 direct corruption. Both arms are the verbatim internals of
/// the historical `attempt_escalation` free function, so attaching this
/// victim (which every default run does) is byte-identical to the
/// pre-redesign pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct PteTakeover;

impl PteTakeover {
    /// Canonical victim name.
    pub const NAME: &'static str = "pte-takeover";
}

impl Victim for PteTakeover {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn profile(&mut self, sys: &System, _pid: Pid) -> Result<FlipProfile, AttackError> {
        // The spray-PTE victim needs no DRAM templating: every sprayed L1PTE
        // is a potential target, so the profile records only the machine.
        Ok(FlipProfile::untargeted(Self::NAME, sys.machine().config()))
    }

    fn evaluate(&self, _profile: &FlipProfile, finding: &FlipFinding) -> VictimVerdict {
        if finding.is_exploitable() {
            VictimVerdict::Usable
        } else {
            VictimVerdict::Rejected("finding did not capture an exploitable kernel object")
        }
    }

    fn attack(
        &mut self,
        sys: &mut System,
        pid: Pid,
        exploit: &ExploitCtx<'_>,
        finding: &FlipFinding,
    ) -> Result<VictimOutcome, AttackError> {
        match finding.kind {
            CapturedPageKind::L1PageTable { pte_value } => {
                let mut primitive =
                    build_phys_primitive(sys, pid, exploit.spray, finding, pte_value)?;
                let total_frames = sys.machine().config().dram.geometry.capacity_bytes()
                    / pthammer_types::PAGE_SIZE;
                let escalated = corrupt_cred_via_primitive(
                    sys,
                    pid,
                    exploit.tlb_pool,
                    &mut primitive,
                    exploit.attacker_uid,
                    total_frames,
                    16_384,
                )?;
                match escalated {
                    Some(victim_pid) if sys.getuid(victim_pid)? == 0 => Ok(
                        VictimOutcome::escalation(Self::NAME, "PageTableTakeover", victim_pid),
                    ),
                    _ => Ok(VictimOutcome::failure(Self::NAME, "PageTableTakeover")),
                }
            }
            CapturedPageKind::CredPage => {
                let escalated =
                    corrupt_cred_in_captured_page(sys, pid, finding, exploit.attacker_uid)?;
                match escalated {
                    Some(victim_pid) if sys.getuid(victim_pid)? == 0 => Ok(
                        VictimOutcome::escalation(Self::NAME, "CredCorruption", victim_pid),
                    ),
                    _ => Ok(VictimOutcome::failure(Self::NAME, "CredCorruption")),
                }
            }
            CapturedPageKind::Unmapped | CapturedPageKind::Unknown => {
                Ok(VictimOutcome::failure(Self::NAME, "Unexploitable"))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// CredCorruption
// ---------------------------------------------------------------------------

/// The CTA-bypass arm as a peer victim: credential slabs only.
///
/// Unlike [`PteTakeover`], a captured page table is *rejected* at
/// `evaluate` — this victim models an attacker who can only recognise and
/// overwrite `struct cred` objects. Sweeping it against the default isolates
/// how much of a defense's strength comes from protecting page tables
/// specifically (the CATTmew observation).
#[derive(Debug, Clone, Copy, Default)]
pub struct CredCorruption;

impl CredCorruption {
    /// Canonical victim name.
    pub const NAME: &'static str = "cred-corruption";
}

impl Victim for CredCorruption {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn profile(&mut self, sys: &System, _pid: Pid) -> Result<FlipProfile, AttackError> {
        Ok(FlipProfile::untargeted(Self::NAME, sys.machine().config()))
    }

    fn evaluate(&self, _profile: &FlipProfile, finding: &FlipFinding) -> VictimVerdict {
        match finding.kind {
            CapturedPageKind::CredPage => VictimVerdict::Usable,
            CapturedPageKind::L1PageTable { .. } => {
                VictimVerdict::Rejected("captured a page table, not a credential slab")
            }
            CapturedPageKind::Unmapped | CapturedPageKind::Unknown => {
                VictimVerdict::Rejected("finding did not capture a credential slab")
            }
        }
    }

    fn attack(
        &mut self,
        sys: &mut System,
        pid: Pid,
        exploit: &ExploitCtx<'_>,
        finding: &FlipFinding,
    ) -> Result<VictimOutcome, AttackError> {
        let escalated = corrupt_cred_in_captured_page(sys, pid, finding, exploit.attacker_uid)?;
        match escalated {
            Some(victim_pid) if sys.getuid(victim_pid)? == 0 => Ok(VictimOutcome::escalation(
                Self::NAME,
                "CredCorruption",
                victim_pid,
            )),
            _ => Ok(VictimOutcome::failure(Self::NAME, "CredCorruption")),
        }
    }
}

// ---------------------------------------------------------------------------
// KeyRecovery
// ---------------------------------------------------------------------------

/// Bit positions within a 16-bit error-matrix limb that carry a small error
/// coefficient; a flip there biases decryption failures detectably.
const ERROR_COEFF_BITS: u8 = 3;
/// Secret-key bits one usable error-matrix flip leaks (one 16-bit row).
const KEY_BITS_PER_FLIP: u64 = 16;
/// Key bits required before recovery of the secret is declared.
const DEFAULT_REQUIRED_KEY_BITS: u64 = 64;
/// Decryption-failure oracle queries issued per attacked finding.
const ORACLE_QUERIES: u64 = 8;
/// Bank units the `profile` template scans.
const TEMPLATE_BANKS: u32 = 4;
/// Rows per bank the `profile` template scans.
const TEMPLATE_ROWS: u32 = 512;
/// Upper bound on templated targets kept in a profile.
const MAX_TEMPLATE_TARGETS: usize = 4096;

/// A FrodoKEM-style error-matrix key-recovery victim.
///
/// Models the co-located KEM decapsulation victim of the error-matrix
/// rowhammer attacks: a flip in a low-order bit of a 16-bit error-matrix
/// limb biases the decryption-failure rate, and each biased coefficient
/// leaks one 16-bit row of the secret. `profile` templates the DRAM module's
/// weak cells for exactly those positions (a pure function of the machine
/// configuration, so the profile is store-cacheable); `evaluate` accepts
/// flips whose bit position matches the template; `attack` issues the
/// failure-oracle queries and accumulates recovered key bits across
/// findings until the secret is recovered.
#[derive(Debug, Clone)]
pub struct KeyRecovery {
    preset_profile: Option<FlipProfile>,
    recovered_bits: u64,
    required_bits: u64,
}

impl KeyRecovery {
    /// Canonical victim name.
    pub const NAME: &'static str = "key-recovery";

    /// Creates the victim with the default recovery threshold.
    pub fn new() -> Self {
        Self {
            preset_profile: None,
            recovered_bits: 0,
            required_bits: DEFAULT_REQUIRED_KEY_BITS,
        }
    }

    /// Creates the victim with a precomputed (e.g. cache-loaded) profile;
    /// `profile` then returns it instead of re-templating the module.
    pub fn with_profile(profile: FlipProfile) -> Self {
        Self {
            preset_profile: Some(profile),
            ..Self::new()
        }
    }

    /// Templates the flip profile for `config`.
    ///
    /// Pure function of the machine configuration (the weak-cell model is
    /// seeded by `config.dram.flip_seed`), requiring no booted [`System`] —
    /// which is what makes the profile persistable and cacheable.
    pub fn template_profile(config: &MachineConfig) -> FlipProfile {
        let model = FlipModel::new(
            config.dram.flip_profile,
            config.dram.flip_seed,
            config.dram.geometry.row_bytes,
        );
        let banks = config.dram.geometry.total_banks().min(TEMPLATE_BANKS);
        let rows = config.dram.geometry.rows_per_bank.min(TEMPLATE_ROWS);
        let mut targets = Vec::new();
        'scan: for bank_unit in 0..banks {
            for row in 0..rows {
                for cell in model.weak_cells(bank_unit, row) {
                    if cell.byte_in_row % 2 == 0 && cell.bit < ERROR_COEFF_BITS {
                        targets.push(FlipTarget {
                            bank_unit,
                            row,
                            byte_in_row: cell.byte_in_row,
                            bit: cell.bit,
                        });
                        if targets.len() >= MAX_TEMPLATE_TARGETS {
                            break 'scan;
                        }
                    }
                }
            }
        }
        FlipProfile {
            victim: Self::NAME.to_string(),
            machine: config.name.clone(),
            dram_seed: config.dram.flip_seed,
            targets,
        }
    }

    /// Key bits recovered so far across all attacked findings.
    pub fn recovered_bits(&self) -> u64 {
        self.recovered_bits
    }

    /// Counts the bits of `flipped` that sit in a low-order error-coefficient
    /// position of a 16-bit limb.
    fn usable_flip_bits(flipped: u64) -> u64 {
        (0..64)
            .filter(|i| flipped & (1u64 << i) != 0)
            .filter(|i| (i / 8) % 2 == 0 && (i % 8) < u64::from(ERROR_COEFF_BITS))
            .count() as u64
    }
}

impl Default for KeyRecovery {
    fn default() -> Self {
        Self::new()
    }
}

impl Victim for KeyRecovery {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn profile(&mut self, sys: &System, _pid: Pid) -> Result<FlipProfile, AttackError> {
        match &self.preset_profile {
            Some(profile) => Ok(profile.clone()),
            None => Ok(Self::template_profile(sys.machine().config())),
        }
    }

    fn evaluate(&self, profile: &FlipProfile, finding: &FlipFinding) -> VictimVerdict {
        if profile.is_empty() {
            return VictimVerdict::Rejected(
                "flip profile is empty: no templatable error-matrix cells on this module",
            );
        }
        let flipped = finding.observed ^ SPRAY_PATTERN;
        if flipped == 0 {
            return VictimVerdict::Rejected("observed value carries no flipped bits");
        }
        if Self::usable_flip_bits(flipped) == 0 {
            return VictimVerdict::Rejected("flipped bits fall outside the error-matrix limbs");
        }
        VictimVerdict::Usable
    }

    fn attack(
        &mut self,
        sys: &mut System,
        pid: Pid,
        exploit: &ExploitCtx<'_>,
        finding: &FlipFinding,
    ) -> Result<VictimOutcome, AttackError> {
        // Decryption-failure oracle: repeated decapsulations observing the
        // biased failure rate, modelled as reads through the corrupted
        // mapping (each query re-reads the flipped limb).
        let base = finding.vaddr.page_base();
        let mut biased_queries = 0u64;
        for query in 0..ORACLE_QUERIES {
            let word = sys.read_u64(pid, base + (query % 64) * 8)?.value;
            biased_queries += u64::from(word != exploit.spray.pattern);
        }
        if biased_queries == 0 {
            return Ok(VictimOutcome::failure(Self::NAME, "KeyRecovery"));
        }
        let flipped = finding.observed ^ SPRAY_PATTERN;
        self.recovered_bits += Self::usable_flip_bits(flipped) * KEY_BITS_PER_FLIP;
        let success = self.recovered_bits >= self.required_bits;
        Ok(VictimOutcome {
            victim: Self::NAME,
            mechanism: "KeyRecovery",
            success,
            escalated_pid: None,
            recovered_bits: self.recovered_bits,
            time_to_exploit_iterations: None,
        })
    }
}

// ---------------------------------------------------------------------------
// VictimChoice
// ---------------------------------------------------------------------------

/// Selector for the shipped victims (the campaign's `victims` axis).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum VictimChoice {
    /// The paper's spray-PTE victim ([`PteTakeover`]) — the default.
    #[default]
    PteTakeover,
    /// Credential slabs only ([`CredCorruption`]).
    CredCorruption,
    /// FrodoKEM-style error-matrix key recovery ([`KeyRecovery`]).
    KeyRecovery,
}

impl VictimChoice {
    /// All shipped victims, in canonical sweep order.
    pub fn all() -> Vec<VictimChoice> {
        vec![
            VictimChoice::PteTakeover,
            VictimChoice::CredCorruption,
            VictimChoice::KeyRecovery,
        ]
    }

    /// Canonical kebab-case name (also the JSON serialization).
    pub fn name(&self) -> &'static str {
        match self {
            VictimChoice::PteTakeover => PteTakeover::NAME,
            VictimChoice::CredCorruption => CredCorruption::NAME,
            VictimChoice::KeyRecovery => KeyRecovery::NAME,
        }
    }

    /// Whether this is the pipeline's default victim.
    pub fn is_default(&self) -> bool {
        *self == VictimChoice::PteTakeover
    }

    /// Instantiates the victim.
    pub fn build(&self) -> Box<dyn Victim> {
        match self {
            VictimChoice::PteTakeover => Box::new(PteTakeover),
            VictimChoice::CredCorruption => Box::new(CredCorruption),
            VictimChoice::KeyRecovery => Box::new(KeyRecovery::new()),
        }
    }
}

impl fmt::Display for VictimChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for VictimChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "pte-takeover" => Ok(VictimChoice::PteTakeover),
            "cred-corruption" => Ok(VictimChoice::CredCorruption),
            "key-recovery" => Ok(VictimChoice::KeyRecovery),
            other => Err(format!("unknown victim `{other}`")),
        }
    }
}

// Hand-written: the offline serde stub has no `rename` support and reports
// pin the kebab-case names.
impl Serialize for VictimChoice {
    fn serialize(&self, w: &mut JsonWriter) {
        w.string(self.name());
    }
}

impl Deserialize for VictimChoice {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::classify_captured_page;
    use crate::exploit::tests::{inject_l1pt_capture, sprayed_system};
    use pthammer_dram::FlipModelProfile;
    use pthammer_kernel::CRED_MAGIC;
    use pthammer_machine::MachineConfig;
    use pthammer_mmu::Pte;
    use pthammer_types::{PhysAddr, VirtAddr, HUGE_PAGE_SIZE, PAGE_SIZE};

    fn exploit_ctx<'a>(tlb_pool: &'a TlbEvictionPool, spray: &'a SprayRegion) -> ExploitCtx<'a> {
        ExploitCtx {
            tlb_pool,
            spray,
            attacker_uid: 1000,
            hammer_iterations: 0,
        }
    }

    #[test]
    fn pte_takeover_attack_success_escalates_to_root() {
        let (mut sys, pid, spray, tlb_pool) = sprayed_system();
        let finding = inject_l1pt_capture(&mut sys, pid, &spray);
        let mut victim = PteTakeover;
        let profile = victim.profile(&sys, pid).unwrap();
        assert!(profile.is_empty(), "spray-PTE victim needs no templating");
        assert!(victim.evaluate(&profile, &finding).is_usable());
        let outcome = victim
            .attack(&mut sys, pid, &exploit_ctx(&tlb_pool, &spray), &finding)
            .unwrap();
        assert!(outcome.success);
        assert_eq!(outcome.mechanism, "PageTableTakeover");
        let escalated = outcome.escalated_pid().unwrap();
        assert_eq!(sys.getuid(escalated).unwrap(), 0);
        assert_eq!(
            outcome.route_label(),
            format!("PageTableTakeover {{ escalated_pid: {escalated} }}")
        );
    }

    #[test]
    fn pte_takeover_evaluate_rejects_unexploitable_findings() {
        let (sys, pid, _spray, _tlb_pool) = sprayed_system();
        let mut victim = PteTakeover;
        let profile = victim.profile(&sys, pid).unwrap();
        let finding = FlipFinding {
            vaddr: VirtAddr::new(0x1000),
            observed: 0,
            kind: CapturedPageKind::Unmapped,
        };
        assert!(!victim.evaluate(&profile, &finding).is_usable());
    }

    #[test]
    fn cred_corruption_evaluate_rejects_page_tables() {
        let (mut sys, pid, spray, _tlb_pool) = sprayed_system();
        let finding = inject_l1pt_capture(&mut sys, pid, &spray);
        let mut victim = CredCorruption;
        let profile = victim.profile(&sys, pid).unwrap();
        assert_eq!(
            victim.evaluate(&profile, &finding),
            VictimVerdict::Rejected("captured a page table, not a credential slab")
        );
    }

    #[test]
    fn cred_corruption_attack_succeeds_on_captured_cred_page() {
        let (mut sys, pid, spray, tlb_pool) = sprayed_system();
        let victim_va = spray.base + 12 * HUGE_PAGE_SIZE + 3 * PAGE_SIZE;
        let cred_frame = sys.process(pid).unwrap().cred_paddr.frame_number();
        let victim_l1pte_pa = sys.oracle_l1pte_paddr(pid, victim_va).unwrap();
        let original = Pte::from_raw(sys.machine().phys_read_u64(victim_l1pte_pa));
        sys.machine_mut().phys_write_u64(
            victim_l1pte_pa,
            Pte::page(PhysAddr::from_frame(cred_frame, 0), original.flags()).raw(),
        );
        let finding = FlipFinding {
            vaddr: victim_va.page_base(),
            observed: CRED_MAGIC,
            kind: classify_captured_page(&mut sys, pid, victim_va).unwrap(),
        };
        let mut victim = CredCorruption;
        let profile = victim.profile(&sys, pid).unwrap();
        assert!(victim.evaluate(&profile, &finding).is_usable());
        let outcome = victim
            .attack(&mut sys, pid, &exploit_ctx(&tlb_pool, &spray), &finding)
            .unwrap();
        assert!(outcome.success);
        assert_eq!(sys.getuid(outcome.escalated_pid().unwrap()).unwrap(), 0);
    }

    #[test]
    fn key_recovery_profile_miss_on_invulnerable_module() {
        // Profile-miss branch: an invulnerable module templates no cells, so
        // every finding is rejected before `attack`.
        let config = MachineConfig::test_small(FlipModelProfile::invulnerable(), 5);
        let profile = KeyRecovery::template_profile(&config);
        assert!(profile.is_empty());
        let victim = KeyRecovery::new();
        let finding = FlipFinding {
            vaddr: VirtAddr::new(0x1000),
            observed: SPRAY_PATTERN ^ 1,
            kind: CapturedPageKind::Unknown,
        };
        assert_eq!(
            victim.evaluate(&profile, &finding),
            VictimVerdict::Rejected(
                "flip profile is empty: no templatable error-matrix cells on this module"
            )
        );
    }

    #[test]
    fn key_recovery_profile_is_deterministic_and_cacheable() {
        let config = MachineConfig::test_small(FlipModelProfile::ci(), 23);
        let a = KeyRecovery::template_profile(&config);
        let b = KeyRecovery::template_profile(&config);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "ci profile must template targets");
        assert_eq!(a.to_canonical_json(), b.to_canonical_json());
        let other =
            KeyRecovery::template_profile(&MachineConfig::test_small(FlipModelProfile::ci(), 24));
        assert_ne!(a, other, "profile must depend on the DRAM seed");
        // A preset profile short-circuits re-templating.
        let mut preset = KeyRecovery::with_profile(a.clone());
        let (sys, pid, _spray, _tlb) = sprayed_system();
        assert_eq!(preset.profile(&sys, pid).unwrap(), a);
    }

    #[test]
    fn key_recovery_evaluate_rejects_out_of_template_flips() {
        let config = MachineConfig::test_small(FlipModelProfile::ci(), 23);
        let profile = KeyRecovery::template_profile(&config);
        let victim = KeyRecovery::new();
        // Bit 15 is the high bit of a limb — not an error-coefficient bit.
        let finding = FlipFinding {
            vaddr: VirtAddr::new(0x1000),
            observed: SPRAY_PATTERN ^ (1 << 15),
            kind: CapturedPageKind::Unknown,
        };
        assert_eq!(
            victim.evaluate(&profile, &finding),
            VictimVerdict::Rejected("flipped bits fall outside the error-matrix limbs")
        );
    }

    #[test]
    fn key_recovery_attack_accumulates_until_success() {
        let (mut sys, pid, spray, tlb_pool) = sprayed_system();
        // Corrupt one sprayed mapping so the failure oracle observes a bias.
        let finding = inject_l1pt_capture(&mut sys, pid, &spray);
        // Force a usable flip signature: low bits of several limbs.
        let finding = FlipFinding {
            observed: SPRAY_PATTERN ^ 0x0000_0000_0001_0001,
            ..finding
        };
        let mut victim = KeyRecovery::new();
        let ctx = exploit_ctx(&tlb_pool, &spray);
        let first = victim.attack(&mut sys, pid, &ctx, &finding).unwrap();
        assert!(!first.success, "one finding leaks 2 limbs: not yet enough");
        assert_eq!(first.recovered_bits, 32);
        let second = victim.attack(&mut sys, pid, &ctx, &finding).unwrap();
        assert!(second.success, "64 bits recovered crosses the threshold");
        assert_eq!(second.recovered_bits, 64);
        assert_eq!(second.escalated_pid(), None);
        assert_eq!(second.route_label(), "KeyRecovery { recovered_bits: 64 }");
    }

    #[test]
    fn victim_choice_round_trips_and_serializes_canonically() {
        assert_eq!(VictimChoice::default(), VictimChoice::PteTakeover);
        assert!(VictimChoice::PteTakeover.is_default());
        for choice in VictimChoice::all() {
            assert_eq!(choice.name().parse::<VictimChoice>().unwrap(), choice);
            assert_eq!(choice.to_string(), choice.name());
            assert_eq!(choice.build().name(), choice.name());
        }
        assert!("swage".parse::<VictimChoice>().is_err());
        let mut w = JsonWriter::new(false);
        VictimChoice::KeyRecovery.serialize(&mut w);
        assert_eq!(w.into_string(), "\"key-recovery\"");
    }
}

//! Double-sided hammer-pair selection (Section IV-D of the paper).
//!
//! To hammer double-sided, the attacker needs two virtual addresses whose
//! Level-1 PTEs sit in the same DRAM bank, exactly two rows apart. It cannot
//! see physical addresses, so it uses two facts:
//!
//! 1. The buddy allocator hands out (mostly) consecutive frames, so the
//!    L1PTEs of two sprayed addresses that are `2 × RowSize × 512` bytes of
//!    virtual address apart are very likely two rows apart physically.
//! 2. Two DRAM accesses to different rows of the *same* bank suffer a
//!    row-buffer conflict, which is measurably slower than accesses to
//!    different banks — so candidate pairs can be verified by timing.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use pthammer_kernel::{Pid, System};
use pthammer_types::{VirtAddr, HUGE_PAGE_SIZE, PAGE_SIZE, PTES_PER_TABLE};

use crate::error::AttackError;
use crate::eviction::llc::SelectedEvictionSet;
use crate::eviction::tlb::TlbEvictionSet;
use crate::spray::SprayRegion;

/// A candidate double-sided hammer pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HammerPair {
    /// Lower virtual address (its L1PTE is the aggressor row below the victim).
    pub low: VirtAddr,
    /// Upper virtual address (`low + pair_stride`).
    pub high: VirtAddr,
}

impl HammerPair {
    /// The virtual-address range to scan for corrupted mappings after
    /// hammering. One DRAM row of Level-1 page-table frames describes
    /// `row_span / 4 KiB × 2 MiB` of virtual address space; the victim row's
    /// block starts somewhere within one such span above `low`, so scanning
    /// two spans starting at `low`'s chunk always covers it (at the cost of
    /// re-reading `low`'s own block, which is harmless).
    pub fn victim_va_range(&self, row_span_bytes: u64) -> (VirtAddr, VirtAddr) {
        let va_per_row = row_span_bytes / PAGE_SIZE * HUGE_PAGE_SIZE;
        let start = self.low.huge_page_base();
        (start, start + 2 * va_per_row)
    }
}

/// The virtual-address stride between the two members of a hammer pair:
/// `2 × RowSize × 512` (256 MiB on the paper's machines). `RowSize` — the
/// number of bytes of physical address space per DRAM row index — is public
/// knowledge for a given platform (reverse engineered by DRAMA).
pub fn pair_stride(row_span_bytes: u64) -> u64 {
    2 * row_span_bytes * PTES_PER_TABLE
}

/// Generates candidate pairs inside the spray region. Targets are page
/// aligned, avoid Level-1 index zero (so the L1PTE's page offset differs from
/// the target's own page offset, as required by Algorithm 2) and avoid the
/// first chunk of the region.
pub fn candidate_pairs(
    spray: &SprayRegion,
    row_span_bytes: u64,
    count: usize,
    rng: &mut StdRng,
) -> Vec<HammerPair> {
    let stride = pair_stride(row_span_bytes);
    if spray.len < stride + 2 * HUGE_PAGE_SIZE {
        return Vec::new();
    }
    let max_low_offset = spray.len - stride - HUGE_PAGE_SIZE;
    let mut pairs = Vec::with_capacity(count);
    for _ in 0..count * 4 {
        if pairs.len() >= count {
            break;
        }
        // Random 2 MiB chunk, then a random non-zero L1 index within it.
        let chunk = rng.gen_range(0..=max_low_offset / HUGE_PAGE_SIZE);
        let l1_index = rng.gen_range(1..PTES_PER_TABLE);
        let low = spray.base + chunk * HUGE_PAGE_SIZE + l1_index * PAGE_SIZE;
        let high = low + stride;
        let pair = HammerPair { low, high };
        if spray.contains(high) && !pairs.contains(&pair) {
            pairs.push(pair);
        }
    }
    pairs
}

/// Result of the timing-based same-bank verification of one pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairVerification {
    /// The pair that was probed.
    pub pair: HammerPair,
    /// Median latency of the second (high) access across the probe rounds.
    pub median_high_latency: u64,
    /// Whether the pair was classified as same-bank (row-buffer conflict).
    pub same_bank: bool,
}

/// Probes a pair by flushing both targets' TLB entries and L1PTE cache lines
/// and then accessing the two targets back to back; if their L1PTEs share a
/// bank, the second access pays a row-buffer conflict and is slower than the
/// `conflict_threshold`.
#[allow(clippy::too_many_arguments)]
pub fn verify_same_bank(
    sys: &mut System,
    pid: Pid,
    pair: HammerPair,
    tlb_low: &TlbEvictionSet,
    tlb_high: &TlbEvictionSet,
    llc_low: &SelectedEvictionSet,
    llc_high: &SelectedEvictionSet,
    conflict_threshold: u64,
    rounds: usize,
) -> Result<PairVerification, AttackError> {
    let mut latencies = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        llc_low.evict(sys, pid)?;
        llc_high.evict(sys, pid)?;
        tlb_low.evict(sys, pid)?;
        tlb_high.evict(sys, pid)?;
        sys.access(pid, pair.low)?;
        let high = sys.access(pid, pair.high)?;
        latencies.push(high.latency.as_u64());
    }
    latencies.sort_unstable();
    let median_high_latency = latencies[latencies.len() / 2];
    Ok(PairVerification {
        pair,
        median_high_latency,
        same_bank: median_high_latency >= conflict_threshold,
    })
}

/// Derives the row-buffer-conflict latency threshold from the machine's
/// public DRAM timing characteristics: halfway between a row miss and a row
/// conflict on top of the translation + lookup path. In a real attack this is
/// calibrated by timing accesses to known same-bank/different-bank addresses;
/// the resulting number is the same.
pub fn conflict_threshold(sys: &System) -> u64 {
    let timings = sys.machine().config().dram.timings;
    let caches = &sys.machine().config().cache;
    let base = u64::from(caches.l1d.latency + caches.l2.latency + caches.llc.latency);
    let miss = u64::from(timings.cas + timings.rcd);
    let conflict = u64::from(timings.cas + timings.rcd + timings.rp);
    // Translation walk + data access both reach DRAM in the probe, so the
    // distinguishing term shows up once; place the threshold between the two.
    base + (miss + conflict) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spray::SPRAY_PATTERN;
    use rand::SeedableRng;

    fn spray() -> SprayRegion {
        SprayRegion {
            base: VirtAddr::new(0x4000_0000),
            len: 768 << 20,
            pattern: SPRAY_PATTERN,
            user_page: VirtAddr::new(0x1000),
        }
    }

    #[test]
    fn stride_matches_paper_for_8gib_geometry() {
        // 256 KiB row span -> 256 MiB stride, as stated in the paper.
        assert_eq!(pair_stride(256 * 1024), 256 << 20);
        // The small test machine has a 128 KiB row span -> 128 MiB stride.
        assert_eq!(pair_stride(128 * 1024), 128 << 20);
    }

    #[test]
    fn candidates_lie_in_region_and_avoid_index_zero() {
        let spray = spray();
        let mut rng = StdRng::seed_from_u64(7);
        let pairs = candidate_pairs(&spray, 128 * 1024, 16, &mut rng);
        assert!(!pairs.is_empty());
        for pair in &pairs {
            assert!(spray.contains(pair.low));
            assert!(spray.contains(pair.high));
            assert_eq!(pair.high - pair.low, pair_stride(128 * 1024));
            assert!(pair.low.is_page_aligned());
            assert_ne!(pair.low.pt_index(1), 0, "L1 index zero must be avoided");
        }
        // Deterministic for a fixed seed.
        let mut rng2 = StdRng::seed_from_u64(7);
        assert_eq!(pairs, candidate_pairs(&spray, 128 * 1024, 16, &mut rng2));
    }

    #[test]
    fn candidates_empty_when_spray_too_small() {
        let small = SprayRegion {
            len: 64 << 20,
            ..spray()
        };
        let mut rng = StdRng::seed_from_u64(7);
        assert!(candidate_pairs(&small, 128 * 1024, 8, &mut rng).is_empty());
    }

    #[test]
    fn victim_range_covers_the_row_between_the_pair() {
        let pair = HammerPair {
            low: VirtAddr::new(0x4000_0000 + 5 * PAGE_SIZE),
            high: VirtAddr::new(0x4000_0000 + 5 * PAGE_SIZE + pair_stride(128 * 1024)),
        };
        let row_span = 128 * 1024u64;
        let va_per_row = row_span / PAGE_SIZE * HUGE_PAGE_SIZE;
        let (start, end) = pair.victim_va_range(row_span);
        assert_eq!(start, pair.low.huge_page_base());
        assert_eq!(end - start, 2 * va_per_row);
        // The scan range stays below the upper aggressor's chunk end and, in
        // particular, always contains the VA block one row of L1PTs above the
        // block containing `low` — wherever that block boundary falls.
        assert!(end <= pair.high.huge_page_base() + HUGE_PAGE_SIZE);
        assert!(start + va_per_row > pair.low);
    }
}

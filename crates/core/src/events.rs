//! The attack's typed event layer.
//!
//! The phase pipeline ([`crate::pipeline`]) does not keep ad-hoc timing
//! locals; it *announces* what happens — phases entered and exited, attempts
//! started, pairs verified, flips observed, escalation — as [`AttackEvent`]s
//! on a lightweight [`EventBus`]. Everything that used to be hand-rolled
//! `StageTimings` bookkeeping is now a subscriber: the built-in
//! [`PipelineAccounting`] sink derives the stage timings and headline counts
//! of [`AttackOutcome`](crate::AttackOutcome), and external subscribers (the
//! campaign harness's instrumented runners, the `pthammer-perf` accounting)
//! observe the same stream instead of re-deriving counts from outcomes.
//!
//! Events are emitted *after* the simulated work they describe, so sinks can
//! never perturb the simulation: a run with zero subscribers is
//! byte-identical to a run with many.

use crate::detect::FlipFinding;
use crate::hammer::implicit::HammerStats;
use crate::pairs::{HammerPair, PairVerification};
use crate::report::StageTimings;
use crate::victim::VictimOutcome;

/// The five stages of the attack pipeline, in execution order.
///
/// `Prepare` runs once; the remaining four run per hammer attempt (with
/// `Hammer`/`Detect`/`Exploit` skipped for pairs the strategy rejects).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackPhase {
    /// One-off preparation: TLB pool, LLC pool, page-table spray.
    Prepare,
    /// Candidate-pair selection: eviction sets and (strategy-dependent)
    /// same-bank verification.
    PairSelect,
    /// The hammer loop itself.
    Hammer,
    /// Scanning sprayed mappings for corruption.
    Detect,
    /// Turning exploitable findings into privilege escalation.
    Exploit,
}

impl AttackPhase {
    /// Canonical lowercase phase name.
    pub fn name(&self) -> &'static str {
        match self {
            AttackPhase::Prepare => "prepare",
            AttackPhase::PairSelect => "pair-select",
            AttackPhase::Hammer => "hammer",
            AttackPhase::Detect => "detect",
            AttackPhase::Exploit => "exploit",
        }
    }
}

/// One event on the attack's event bus.
///
/// `at_cycles` fields carry the simulated clock (`rdtsc`) at emission time;
/// reading the clock is side-effect free, so timestamps never perturb the
/// simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackEvent {
    /// A pipeline phase began.
    PhaseEntered {
        /// The phase that began.
        phase: AttackPhase,
        /// Simulated cycles at entry.
        at_cycles: u64,
    },
    /// A pipeline phase finished.
    PhaseExited {
        /// The phase that finished.
        phase: AttackPhase,
        /// Simulated cycles at exit.
        at_cycles: u64,
    },
    /// The one-off preparation finished (emitted inside the `Prepare` phase).
    PoolsPrepared {
        /// Simulated cycles spent building the TLB eviction pool.
        tlb_pool_cycles: u64,
        /// Simulated cycles spent building the LLC eviction pool.
        llc_pool_cycles: u64,
        /// Number of Level-1 page tables the spray created.
        l1pt_count: u64,
    },
    /// A hammer attempt (one candidate pair) began.
    AttemptStarted {
        /// 1-based attempt number.
        attempt: usize,
        /// The candidate pair of this attempt.
        pair: HammerPair,
        /// Simulated cycles at the start of the attempt.
        at_cycles: u64,
    },
    /// Eviction-set selection for the attempt's pair finished.
    EvictionSetsSelected {
        /// Simulated cycles drawing TLB eviction sets from the pool.
        tlb_cycles: u64,
        /// Simulated cycles of LLC eviction-set selection (Algorithm 2).
        llc_cycles: u64,
    },
    /// The pair passed (or failed) the strategy's acceptance check.
    PairVerified {
        /// Timing-based same-bank verification, for strategies that perform
        /// it (`None` for strategies that accept every candidate).
        verification: Option<PairVerification>,
        /// Whether the pipeline proceeds to hammer this pair.
        accepted: bool,
    },
    /// The hammer loop for one attempt finished.
    HammerFinished {
        /// Per-attempt hammer statistics (iterations, cycles, DRAM hits).
        stats: HammerStats,
        /// How many implicit (page-walk) target touches one iteration of the
        /// active strategy performs — the denominator of the implicit DRAM
        /// rate (2 for double-sided, 1 for one-location, 0 for explicit).
        implicit_touches_per_round: u64,
    },
    /// The post-hammer scan found one corrupted sprayed mapping.
    FlipObserved {
        /// The corrupted mapping.
        finding: FlipFinding,
        /// Simulated cycles when the scan completed.
        at_cycles: u64,
    },
    /// The post-hammer scan of one attempt completed.
    ChecksCompleted {
        /// Corrupted mappings found (including unexploitable ones).
        findings: usize,
        /// Findings that are exploitable.
        exploitable: usize,
        /// Simulated cycles the scan itself took.
        check_cycles: u64,
        /// Simulated cycles when the scan completed.
        at_cycles: u64,
    },
    /// The victim's `profile` stage completed (inside the `Prepare` phase).
    VictimProfiled {
        /// Canonical name of the profiled victim.
        victim: &'static str,
        /// Number of weak cells the flip profile templated.
        targets: usize,
        /// Simulated cycles when profiling completed.
        at_cycles: u64,
    },
    /// The victim's `attack` stage ran against one usable finding.
    VictimAttacked {
        /// The typed result of the attack (success or failure).
        outcome: VictimOutcome,
        /// Simulated cycles when the attack completed.
        at_cycles: u64,
    },
}

/// A subscriber on the attack event bus.
pub trait EventSink {
    /// Called for every emitted event, in emission order.
    fn on_event(&mut self, event: &AttackEvent);
}

/// A minimal synchronous event bus: subscribers in registration order, no
/// buffering, no filtering. Emission is infallible — sinks observe, they do
/// not steer.
#[derive(Default)]
pub struct EventBus<'a> {
    sinks: Vec<&'a mut dyn EventSink>,
}

impl<'a> EventBus<'a> {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Self { sinks: Vec::new() }
    }

    /// Registers a subscriber; it receives every subsequent event.
    pub fn subscribe(&mut self, sink: &'a mut dyn EventSink) {
        self.sinks.push(sink);
    }

    /// Number of registered subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.sinks.len()
    }

    /// Delivers one event to every subscriber, in registration order.
    pub fn emit(&mut self, event: &AttackEvent) {
        for sink in &mut self.sinks {
            sink.on_event(event);
        }
    }
}

impl std::fmt::Debug for EventBus<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBus")
            .field("subscribers", &self.sinks.len())
            .finish()
    }
}

/// The pipeline's built-in accounting subscriber.
///
/// Replaces the hand-rolled `StageTimings` accumulation of the old
/// monolithic driver: every number in
/// [`AttackOutcome`](crate::AttackOutcome) that used to live in an ad-hoc
/// local is now derived from the event stream, through exactly the same
/// arithmetic (integer-divided per-attempt averages, first-flip timestamps,
/// DRAM-rate ratios), so the default attack remains byte-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineAccounting {
    /// `rdtsc` at the start of the attack; first-flip / escalation times are
    /// relative to it.
    attack_start: u64,
    /// Hammer attempts started.
    pub attempts: usize,
    /// Hammer iterations performed across all attempts.
    pub hammer_iterations: u64,
    /// Total simulated cycles of those iterations.
    pub hammer_cycles_total: u64,
    /// Corrupted mappings observed across all attempts.
    pub flips_observed: usize,
    /// Exploitable findings across all attempts.
    pub exploitable_flips: usize,
    /// Implicit target touches that were served from DRAM.
    pub dram_hits: u64,
    /// Implicit target touches performed.
    pub dram_rounds: u64,
    /// Victim `attack` invocations (successful or not).
    pub victim_attacks: u64,
    /// The successful victim outcome, once the `Exploit` phase produced one.
    pub victim_outcome: Option<VictimOutcome>,
    tlb_pool_prep_cycles: u64,
    llc_pool_prep_cycles: u64,
    tlb_selection_cycles_total: u64,
    llc_selection_cycles_total: u64,
    check_cycles_total: u64,
    time_to_first_flip_cycles: Option<u64>,
    time_to_escalation_cycles: Option<u64>,
}

impl PipelineAccounting {
    /// Creates the accounting sink for an attack that started at
    /// `attack_start` simulated cycles.
    pub fn new(attack_start: u64) -> Self {
        Self {
            attack_start,
            attempts: 0,
            hammer_iterations: 0,
            hammer_cycles_total: 0,
            flips_observed: 0,
            exploitable_flips: 0,
            dram_hits: 0,
            dram_rounds: 0,
            victim_attacks: 0,
            victim_outcome: None,
            tlb_pool_prep_cycles: 0,
            llc_pool_prep_cycles: 0,
            tlb_selection_cycles_total: 0,
            llc_selection_cycles_total: 0,
            check_cycles_total: 0,
            time_to_first_flip_cycles: None,
            time_to_escalation_cycles: None,
        }
    }

    /// Fraction of implicit target touches that reached DRAM (0 when the
    /// strategy performs no implicit touches).
    pub fn implicit_dram_rate(&self) -> f64 {
        if self.dram_rounds == 0 {
            0.0
        } else {
            self.dram_hits as f64 / self.dram_rounds as f64
        }
    }

    /// The Table II stage timings: pool preparation, per-attempt averages
    /// (integer division over all started attempts, matching the historical
    /// accumulation), and the first-flip / escalation timestamps.
    pub fn stage_timings(&self) -> StageTimings {
        let attempts = self.attempts.max(1) as u64;
        StageTimings {
            tlb_pool_prep_cycles: self.tlb_pool_prep_cycles,
            llc_pool_prep_cycles: self.llc_pool_prep_cycles,
            tlb_selection_cycles: self.tlb_selection_cycles_total / attempts,
            llc_selection_cycles: self.llc_selection_cycles_total / attempts,
            hammer_cycles_per_attempt: self.hammer_cycles_total / attempts,
            check_cycles_per_attempt: self.check_cycles_total / attempts,
            time_to_first_flip_cycles: self.time_to_first_flip_cycles,
            time_to_escalation_cycles: self.time_to_escalation_cycles,
        }
    }
}

impl EventSink for PipelineAccounting {
    fn on_event(&mut self, event: &AttackEvent) {
        match event {
            AttackEvent::PoolsPrepared {
                tlb_pool_cycles,
                llc_pool_cycles,
                ..
            } => {
                self.tlb_pool_prep_cycles = *tlb_pool_cycles;
                self.llc_pool_prep_cycles = *llc_pool_cycles;
            }
            AttackEvent::AttemptStarted { .. } => self.attempts += 1,
            AttackEvent::EvictionSetsSelected {
                tlb_cycles,
                llc_cycles,
            } => {
                self.tlb_selection_cycles_total += tlb_cycles;
                self.llc_selection_cycles_total += llc_cycles;
            }
            AttackEvent::HammerFinished {
                stats,
                implicit_touches_per_round,
            } => {
                self.hammer_iterations += stats.rounds;
                self.hammer_cycles_total += stats.total_cycles;
                self.dram_hits +=
                    stats.low_dram_hits + stats.high_dram_hits + stats.aggressor_dram_hits;
                self.dram_rounds += implicit_touches_per_round * stats.rounds;
            }
            AttackEvent::FlipObserved { finding, at_cycles } => {
                self.flips_observed += 1;
                self.exploitable_flips += usize::from(finding.is_exploitable());
                if self.time_to_first_flip_cycles.is_none() {
                    self.time_to_first_flip_cycles = Some(at_cycles - self.attack_start);
                }
            }
            AttackEvent::ChecksCompleted { check_cycles, .. } => {
                self.check_cycles_total += check_cycles;
            }
            AttackEvent::VictimAttacked { outcome, at_cycles } => {
                self.victim_attacks += 1;
                if outcome.success && self.victim_outcome.is_none() {
                    self.victim_outcome = Some(*outcome);
                    self.time_to_escalation_cycles = Some(at_cycles - self.attack_start);
                }
            }
            AttackEvent::PhaseEntered { .. }
            | AttackEvent::PhaseExited { .. }
            | AttackEvent::PairVerified { .. }
            | AttackEvent::VictimProfiled { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::CapturedPageKind;
    use pthammer_types::VirtAddr;

    fn finding(exploitable: bool) -> FlipFinding {
        FlipFinding {
            vaddr: VirtAddr::new(0x1000),
            observed: 7,
            kind: if exploitable {
                CapturedPageKind::CredPage
            } else {
                CapturedPageKind::Unknown
            },
        }
    }

    #[test]
    fn bus_delivers_in_registration_order() {
        #[derive(Default)]
        struct Recorder(Vec<String>);
        impl EventSink for Recorder {
            fn on_event(&mut self, event: &AttackEvent) {
                if let AttackEvent::PhaseEntered { phase, .. } = event {
                    self.0.push(phase.name().to_string());
                }
            }
        }
        let mut a = Recorder::default();
        let mut b = Recorder::default();
        let mut bus = EventBus::new();
        bus.subscribe(&mut a);
        bus.subscribe(&mut b);
        assert_eq!(bus.subscriber_count(), 2);
        bus.emit(&AttackEvent::PhaseEntered {
            phase: AttackPhase::Prepare,
            at_cycles: 1,
        });
        bus.emit(&AttackEvent::PhaseEntered {
            phase: AttackPhase::Hammer,
            at_cycles: 2,
        });
        drop(bus);
        assert_eq!(a.0, vec!["prepare", "hammer"]);
        assert_eq!(a.0, b.0);
    }

    #[test]
    fn accounting_replicates_the_historical_arithmetic() {
        let mut acc = PipelineAccounting::new(100);
        acc.on_event(&AttackEvent::PoolsPrepared {
            tlb_pool_cycles: 11,
            llc_pool_cycles: 22,
            l1pt_count: 5,
        });
        for i in 0..2 {
            acc.on_event(&AttackEvent::AttemptStarted {
                attempt: i + 1,
                pair: HammerPair {
                    low: VirtAddr::new(0x1000),
                    high: VirtAddr::new(0x2000),
                },
                at_cycles: 100,
            });
            acc.on_event(&AttackEvent::EvictionSetsSelected {
                tlb_cycles: 3,
                llc_cycles: 7,
            });
            acc.on_event(&AttackEvent::HammerFinished {
                stats: HammerStats {
                    rounds: 10,
                    total_cycles: 1_000,
                    min_round_cycles: 90,
                    max_round_cycles: 110,
                    low_dram_hits: 9,
                    high_dram_hits: 8,
                    aggressor_dram_hits: 0,
                },
                implicit_touches_per_round: 2,
            });
            acc.on_event(&AttackEvent::ChecksCompleted {
                findings: 1,
                exploitable: 0,
                check_cycles: 40,
                at_cycles: 500,
            });
        }
        acc.on_event(&AttackEvent::FlipObserved {
            finding: finding(false),
            at_cycles: 600,
        });
        acc.on_event(&AttackEvent::FlipObserved {
            finding: finding(true),
            at_cycles: 700,
        });
        acc.on_event(&AttackEvent::VictimAttacked {
            outcome: VictimOutcome::failure("cred-corruption", "CredCorruption"),
            at_cycles: 850,
        });
        acc.on_event(&AttackEvent::VictimAttacked {
            outcome: VictimOutcome::escalation("cred-corruption", "CredCorruption", 3),
            at_cycles: 900,
        });

        assert_eq!(acc.attempts, 2);
        assert_eq!(acc.victim_attacks, 2);
        assert_eq!(
            acc.victim_outcome.and_then(|o| o.escalated_pid()),
            Some(3),
            "only the successful attack is recorded"
        );
        assert_eq!(acc.hammer_iterations, 20);
        assert_eq!(acc.flips_observed, 2);
        assert_eq!(acc.exploitable_flips, 1);
        assert!((acc.implicit_dram_rate() - 34.0 / 40.0).abs() < 1e-12);
        let t = acc.stage_timings();
        assert_eq!(t.tlb_pool_prep_cycles, 11);
        assert_eq!(t.llc_pool_prep_cycles, 22);
        assert_eq!(t.tlb_selection_cycles, 3);
        assert_eq!(t.llc_selection_cycles, 7);
        assert_eq!(t.hammer_cycles_per_attempt, 1_000);
        assert_eq!(t.check_cycles_per_attempt, 40);
        assert_eq!(t.time_to_first_flip_cycles, Some(500));
        assert_eq!(t.time_to_escalation_cycles, Some(800));
    }

    #[test]
    fn zero_attempts_divide_safely() {
        let acc = PipelineAccounting::new(0);
        let t = acc.stage_timings();
        assert_eq!(t.hammer_cycles_per_attempt, 0);
        assert_eq!(acc.implicit_dram_rate(), 0.0);
    }

    #[test]
    fn phase_names_are_distinct() {
        let names: std::collections::HashSet<&str> = [
            AttackPhase::Prepare,
            AttackPhase::PairSelect,
            AttackPhase::Hammer,
            AttackPhase::Detect,
            AttackPhase::Exploit,
        ]
        .iter()
        .map(|p| p.name())
        .collect();
        assert_eq!(names.len(), 5);
    }
}

//! Per-attempt compiled hammer traces.
//!
//! The [`RoundOp`] interpreter ([`ArmedPair::hammer_round`]) re-resolves
//! every operation's targets each round: a match per op, a `Result`-returning
//! eviction-set lookup, and a virtual dispatch into the eviction-set
//! traversal helpers. None of that resolution can change while a pair stays
//! armed — the eviction sets and aggressor addresses are fixed for the whole
//! attempt — so the hammer phase compiles the schedule **once per attempt**
//! into a [`CompiledTrace`]: a flat, pre-translated address pool plus a dense
//! step list that replays through the same lean batch paths
//! ([`System::access_batch_passes`] / [`System::touch`]) with no per-round
//! matching, re-lookup, or allocation.
//!
//! # Compile / invalidate lifecycle
//!
//! A trace is compiled from an [`ArmedPair`] and its strategy's
//! [`RoundOp`] schedule right after pair selection. The only simulated state
//! a compiled trace can go stale against is the kernel's page-table
//! population: a demand fault handled mid-attempt allocates page tables and
//! changes which physical lines back the sprayed mappings. The trace
//! therefore records the kernel's `faults_handled` counter at compile time;
//! [`CompiledTrace::is_stale`] is a single integer compare per round, and
//! the hammer phase recompiles only when it trips. For the
//! [`TraceProfile::Exact`] profile recompilation is pure (it reads the armed
//! state, never the machine), so invalidation cannot perturb the simulation.
//!
//! # Profiles
//!
//! * [`TraceProfile::Exact`] — the default. Each `EvictLlc` op keeps the
//!   interpreter's [`LLC_EVICTION_PASSES`]-pass traversal, so replay is
//!   call-for-call identical to the interpreter: same batch boundaries, same
//!   fault handling order, same simulated cycles. The golden campaign
//!   snapshots (which pin simulated seconds-to-first-flip) rest on this.
//! * [`TraceProfile::Calibrated`] — an attacker-side optimisation for the
//!   perf workloads: the compiler probes how few LLC traversal passes still
//!   force every implicit touch's L1PTE load to DRAM and emits the minimal
//!   trace. This models the paper's attacker minimising eviction work per
//!   iteration; probing advances the simulation, so campaigns never use it.

use pthammer_kernel::{Pid, System};
use pthammer_types::VirtAddr;

use crate::error::AttackError;
use crate::eviction::llc::LLC_EVICTION_PASSES;
use crate::hammer::strategy::{ArmedPair, RoundOp, RoundOutcome, Target};

/// How a [`CompiledTrace`] resolves the LLC eviction traversals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceProfile {
    /// Replay exactly the interpreter's operation stream (the default; the
    /// golden snapshots pin this path's simulated timing).
    Exact,
    /// Probe the minimal LLC pass count that keeps the implicit loads
    /// DRAM-served and emit the dense minimal trace.
    Calibrated,
}

/// Which pair member an implicit touch reports its DRAM outcome as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TouchKind {
    Low,
    High,
    Aggressor,
}

/// One pre-resolved replay step. Eviction runs index into the trace's flat
/// address pool so replay streams contiguous memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TraceStep {
    /// A pipelined batch over `addrs[start..start + len]`, `passes` times —
    /// one step per eviction op, preserving the interpreter's batch-call
    /// boundaries (and therefore its fault-handling order).
    Batch { start: u32, len: u32, passes: u32 },
    /// An implicit (page-walk) touch of a pre-resolved target address.
    Touch { addr: VirtAddr, kind: TouchKind },
    /// A plain data access (explicit hammering).
    Access { addr: VirtAddr },
    /// A `clflush` of the target's line (explicit hammering).
    Clflush { addr: VirtAddr },
}

/// A strategy's per-round schedule with every target resolved to flat,
/// pre-translated addresses. Built once per attempt by
/// [`CompiledTrace::compile`] (or
/// [`CompiledTrace::compile_calibrated`]) and replayed by the hammer phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledTrace {
    /// Flat pool of eviction-run addresses, in op order.
    addrs: Vec<VirtAddr>,
    /// Dense replay program over `addrs`.
    steps: Vec<TraceStep>,
    /// Kernel `faults_handled` at compile time — the invalidation signal.
    faults_handled_at_compile: u64,
    /// LLC traversal passes each `EvictLlc` op was compiled to.
    llc_passes: usize,
    /// Which profile compiled this trace.
    profile: TraceProfile,
}

impl CompiledTrace {
    /// Compiles `ops` against `armed` with the exact interpreter semantics
    /// ([`TraceProfile::Exact`]). Pure with respect to the simulation: only
    /// the armed state and the kernel's fault counter are read.
    ///
    /// # Errors
    ///
    /// Fails like the interpreter would on its first round: when an op
    /// addresses a target the strategy never armed.
    pub fn compile(armed: &ArmedPair, ops: &[RoundOp], sys: &System) -> Result<Self, AttackError> {
        Self::compile_with_passes(armed, ops, sys.stats().faults_handled, LLC_EVICTION_PASSES)
    }

    /// Compiles `ops` with every `EvictLlc` op resolved to `llc_passes`
    /// traversal passes.
    fn compile_with_passes(
        armed: &ArmedPair,
        ops: &[RoundOp],
        faults_handled: u64,
        llc_passes: usize,
    ) -> Result<Self, AttackError> {
        let mut addrs = Vec::new();
        let mut steps = Vec::with_capacity(ops.len());
        let run = |addrs: &mut Vec<VirtAddr>, lines: &[VirtAddr], passes: usize| {
            let start = addrs.len() as u32;
            addrs.extend_from_slice(lines);
            TraceStep::Batch {
                start,
                len: lines.len() as u32,
                passes: passes as u32,
            }
        };
        for op in ops {
            steps.push(match op {
                RoundOp::EvictTlb(t) => {
                    let (tlb, _) = armed.sets_for(*t)?;
                    run(&mut addrs, tlb.addresses(), 1)
                }
                RoundOp::EvictLlc(t) => {
                    let (_, llc) = armed.sets_for(*t)?;
                    run(&mut addrs, &llc.lines, llc_passes)
                }
                RoundOp::TouchImplicit(t) => TraceStep::Touch {
                    addr: armed.addr(*t)?,
                    kind: match t {
                        Target::Low => TouchKind::Low,
                        Target::High => TouchKind::High,
                        Target::Aggressor(_) => TouchKind::Aggressor,
                    },
                },
                RoundOp::AccessData(t) => TraceStep::Access {
                    addr: armed.addr(*t)?,
                },
                RoundOp::Clflush(t) => TraceStep::Clflush {
                    addr: armed.addr(*t)?,
                },
            });
        }
        Ok(Self {
            addrs,
            steps,
            faults_handled_at_compile: faults_handled,
            llc_passes,
            profile: TraceProfile::Exact,
        })
    }

    /// Compiles `ops` with the minimal LLC traversal pass count that still
    /// forces every implicit touch's L1PTE load to DRAM
    /// ([`TraceProfile::Calibrated`]).
    ///
    /// For each candidate pass count (fewest first) the compiler replays
    /// `probe_rounds` probe iterations and accepts the first count whose
    /// every probe keeps all implicit loads DRAM-served; if none does, it
    /// falls back to the interpreter's [`LLC_EVICTION_PASSES`]. Probing runs
    /// real simulated rounds — this profile is for throughput measurement,
    /// not for golden-pinned campaigns.
    ///
    /// # Errors
    ///
    /// Fails when an op addresses a target the strategy never armed, or a
    /// probe replay faults unrecoverably.
    pub fn compile_calibrated(
        armed: &ArmedPair,
        ops: &[RoundOp],
        sys: &mut System,
        pid: Pid,
        probe_rounds: u32,
    ) -> Result<Self, AttackError> {
        let touches = ops
            .iter()
            .filter(|op| matches!(op, RoundOp::TouchImplicit(_)))
            .count();
        let wants_low = ops.contains(&RoundOp::TouchImplicit(Target::Low));
        let wants_high = ops.contains(&RoundOp::TouchImplicit(Target::High));
        let aggressor_touches = (touches - usize::from(wants_low) - usize::from(wants_high)) as u64;
        let mut chosen = None;
        for passes in 1..LLC_EVICTION_PASSES {
            let probe = Self::compile_with_passes(armed, ops, sys.stats().faults_handled, passes)?;
            let mut all_dram = touches > 0;
            for _ in 0..probe_rounds {
                let round = probe.replay(sys, pid)?;
                all_dram &= (!wants_low || round.low_dram)
                    && (!wants_high || round.high_dram)
                    && round.aggressor_dram_hits == aggressor_touches;
            }
            if all_dram {
                chosen = Some(passes);
                break;
            }
        }
        let passes = chosen.unwrap_or(LLC_EVICTION_PASSES);
        let mut trace = Self::compile_with_passes(armed, ops, sys.stats().faults_handled, passes)?;
        trace.profile = TraceProfile::Calibrated;
        Ok(trace)
    }

    /// Recompiles the same schedule against the kernel's current page-table
    /// state, keeping this trace's LLC pass count and profile. This is how a
    /// stale *calibrated* trace is refreshed without re-probing (the minimal
    /// pass count is a property of the eviction sets, which a page-table
    /// allocation does not change).
    ///
    /// # Errors
    ///
    /// Fails when an op addresses a target the strategy never armed.
    pub fn recompile(
        &self,
        armed: &ArmedPair,
        ops: &[RoundOp],
        sys: &System,
    ) -> Result<Self, AttackError> {
        let mut trace =
            Self::compile_with_passes(armed, ops, sys.stats().faults_handled, self.llc_passes)?;
        trace.profile = self.profile;
        Ok(trace)
    }

    /// True when the kernel's page-table state changed since compile time
    /// (a demand fault was handled) and the trace should be recompiled. One
    /// integer compare — cheap enough for a per-round check.
    pub fn is_stale(&self, sys: &System) -> bool {
        sys.stats().faults_handled != self.faults_handled_at_compile
    }

    /// The profile this trace was compiled with.
    pub fn profile(&self) -> TraceProfile {
        self.profile
    }

    /// LLC traversal passes each eviction op replays (the interpreter's
    /// [`LLC_EVICTION_PASSES`] for exact traces, possibly fewer for
    /// calibrated ones).
    pub fn llc_eviction_passes(&self) -> usize {
        self.llc_passes
    }

    /// Replay steps per round.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the trace replays no operations.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Pre-resolved addresses the per-round eviction runs stream through.
    pub fn eviction_addrs(&self) -> usize {
        self.addrs.len()
    }

    /// Executes one hammer iteration by replaying the dense trace. For
    /// [`TraceProfile::Exact`] traces this performs exactly the operation
    /// sequence of [`ArmedPair::hammer_round`] — same batch calls, same
    /// touches, same simulated cycles — without the per-op matching and
    /// target re-resolution.
    ///
    /// # Errors
    ///
    /// Propagates unrecoverable faults from the underlying accesses, exactly
    /// as the interpreter does.
    pub fn replay(&self, sys: &mut System, pid: Pid) -> Result<RoundOutcome, AttackError> {
        let start = sys.rdtsc();
        let mut low_dram = false;
        let mut high_dram = false;
        let mut aggressor_dram_hits = 0u64;
        for step in &self.steps {
            match step {
                TraceStep::Batch { start, len, passes } => {
                    let run = &self.addrs[*start as usize..(*start + *len) as usize];
                    sys.access_batch_passes(pid, run, *passes as usize)?;
                }
                TraceStep::Touch { addr, kind } => {
                    let acc = sys.touch(pid, *addr)?;
                    match kind {
                        TouchKind::Low => low_dram = acc.l1pte_from_dram,
                        TouchKind::High => high_dram = acc.l1pte_from_dram,
                        TouchKind::Aggressor => {
                            aggressor_dram_hits += u64::from(acc.l1pte_from_dram);
                        }
                    }
                }
                TraceStep::Access { addr } => {
                    sys.access(pid, *addr)?;
                }
                TraceStep::Clflush { addr } => {
                    sys.clflush(pid, *addr)?;
                }
            }
        }
        Ok(RoundOutcome {
            cycles: sys.rdtsc() - start,
            low_dram,
            high_dram,
            aggressor_dram_hits,
        })
    }
}

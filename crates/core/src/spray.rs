//! Page-table spraying (Section III-B, "Finding Exploitable Target Addresses").
//!
//! The attacker cannot choose where the kernel puts Level-1 page tables, so it
//! makes them ubiquitous instead: it maps a single user page at a huge number
//! of virtual addresses. The user data costs one frame; the page tables
//! needed to describe all those mappings cost one frame per 2 MiB of virtual
//! address space, so a multi-gigabyte spray turns a significant fraction of
//! DRAM into Level-1 page tables — and a random bit flip has a non-negligible
//! chance of landing in (and redirecting) one of their entries.

use serde::{Deserialize, Serialize};

use pthammer_kernel::{MmapOptions, Pid, System, VmaBacking};
use pthammer_types::{VirtAddr, HUGE_PAGE_SIZE, PAGE_SIZE};

use crate::config::AttackConfig;
use crate::error::AttackError;

/// The recognisable pattern written to the sprayed user page. Every sprayed
/// virtual address reads this value back, so any address that stops doing so
/// after hammering sits behind a corrupted Level-1 PTE.
pub const SPRAY_PATTERN: u64 = 0x5054_4841_4d5f_5350; // "PTHAM_SP"

/// A populated page-table spray region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SprayRegion {
    /// First sprayed virtual address (2 MiB aligned).
    pub base: VirtAddr,
    /// Length of the sprayed virtual range in bytes.
    pub len: u64,
    /// The pattern every sprayed page reads back.
    pub pattern: u64,
    /// Virtual address of the single real user page all mappings alias.
    pub user_page: VirtAddr,
}

impl SprayRegion {
    /// Number of Level-1 page tables the spray forced the kernel to create.
    pub fn l1pt_count(&self) -> u64 {
        self.len / HUGE_PAGE_SIZE
    }

    /// One-past-the-end virtual address.
    pub fn end(&self) -> VirtAddr {
        self.base + self.len
    }

    /// True when `vaddr` lies inside the sprayed range.
    pub fn contains(&self, vaddr: VirtAddr) -> bool {
        vaddr >= self.base && vaddr < self.end()
    }

    /// Iterator over the base addresses of the sprayed 2 MiB chunks (each
    /// chunk is described by exactly one Level-1 page table).
    pub fn chunk_bases(&self) -> impl Iterator<Item = VirtAddr> + '_ {
        let base = self.base;
        (0..self.l1pt_count()).map(move |i| base + i * HUGE_PAGE_SIZE)
    }
}

/// Performs the spray: allocates one user page filled with
/// [`SPRAY_PATTERN`] and aliases it across `config.spray_bytes` of virtual
/// address space, eagerly populating the page tables.
pub fn spray_page_tables(
    sys: &mut System,
    pid: Pid,
    config: &AttackConfig,
) -> Result<SprayRegion, AttackError> {
    let user_page = sys.mmap(
        pid,
        PAGE_SIZE,
        MmapOptions {
            populate: true,
            backing: VmaBacking::Anonymous {
                fill_pattern: SPRAY_PATTERN,
            },
            ..MmapOptions::default()
        },
    )?;
    // Touch it so its contents and mapping exist before aliasing.
    sys.access(pid, user_page)?;
    let frames = sys.frames_of_mapping(pid, user_page)?;
    if frames.len() != 1 {
        return Err(AttackError::SprayExhausted {
            expected_frames: 1,
            found_frames: frames.len(),
        });
    }

    let len = config.spray_bytes.next_multiple_of(HUGE_PAGE_SIZE);
    let base = sys.mmap(
        pid,
        len,
        MmapOptions {
            populate: true,
            backing: VmaBacking::SharedFrames { frames },
            ..MmapOptions::default()
        },
    )?;
    Ok(SprayRegion {
        base,
        len,
        pattern: SPRAY_PATTERN,
        user_page,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pthammer_dram::FlipModelProfile;
    use pthammer_machine::MachineConfig;

    fn quick_system() -> (System, Pid) {
        let mut sys = System::undefended(MachineConfig::test_small(
            FlipModelProfile::invulnerable(),
            5,
        ));
        let pid = sys.spawn_process(1000).unwrap();
        (sys, pid)
    }

    #[test]
    fn spray_creates_l1pts_and_reads_pattern_everywhere() {
        let (mut sys, pid) = quick_system();
        let config = AttackConfig {
            spray_bytes: 512 << 20,
            ..AttackConfig::quick_test(1, false)
        };
        let spray = spray_page_tables(&mut sys, pid, &config).unwrap();
        assert_eq!(spray.l1pt_count(), 256);
        assert!(sys.stats().l1pt_frames >= 256);
        // Sampled sprayed addresses all read the pattern and alias one frame.
        let user_frame = sys
            .oracle_translate(pid, spray.user_page)
            .unwrap()
            .frame_number();
        for chunk in spray.chunk_bases().step_by(37) {
            let acc = sys.read_u64(pid, chunk + 5 * PAGE_SIZE).unwrap();
            assert_eq!(acc.value, SPRAY_PATTERN);
            assert_eq!(
                sys.oracle_translate(pid, chunk).unwrap().frame_number(),
                user_frame
            );
        }
        assert!(spray.contains(spray.base));
        assert!(spray.contains(VirtAddr::new(spray.end().as_u64() - 1)));
        assert!(!spray.contains(spray.end()));
    }

    #[test]
    fn sprayed_l1pt_frames_are_mostly_consecutive() {
        let (mut sys, pid) = quick_system();
        let config = AttackConfig {
            spray_bytes: 512 << 20,
            ..AttackConfig::quick_test(1, false)
        };
        let spray = spray_page_tables(&mut sys, pid, &config).unwrap();
        // Consecutive sprayed chunks should have consecutive L1PT frames —
        // the property the 256 MiB pair stride depends on.
        let mut consecutive = 0;
        let mut total = 0;
        let mut prev: Option<u64> = None;
        for chunk in spray.chunk_bases() {
            let l1pt = sys
                .oracle_l1pte_paddr(pid, chunk)
                .expect("sprayed chunk must have an L1PTE")
                .frame_number();
            if let Some(p) = prev {
                total += 1;
                if l1pt == p + 1 {
                    consecutive += 1;
                }
            }
            prev = Some(l1pt);
        }
        assert!(
            consecutive * 10 >= total * 8,
            "only {consecutive}/{total} consecutive L1PT frames"
        );
    }

    #[test]
    fn chunk_bases_cover_the_region() {
        let spray = SprayRegion {
            base: VirtAddr::new(0x4000_0000),
            len: 8 * HUGE_PAGE_SIZE,
            pattern: SPRAY_PATTERN,
            user_page: VirtAddr::new(0x1000),
        };
        let chunks: Vec<VirtAddr> = spray.chunk_bases().collect();
        assert_eq!(chunks.len(), 8);
        assert_eq!(chunks[0], spray.base);
        assert_eq!(chunks[7], spray.base + 7 * HUGE_PAGE_SIZE);
    }
}

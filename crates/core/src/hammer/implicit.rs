//! The implicit-hammer primitive (Section III-B of the paper).
//!
//! One double-sided PThammer iteration evicts the TLB entries and the cached
//! Level-1 PTEs of both targets and then touches the two targets. The touch
//! triggers a page-table walk whose only uncached step is the Level-1 PTE
//! load — an access to kernel memory that the attacker never had permission
//! to perform, served directly from the DRAM row the attacker wants to
//! activate.

use serde::{Deserialize, Serialize};

use pthammer_kernel::{Pid, System};

use crate::error::AttackError;
use crate::eviction::llc::{LlcEvictionPool, SelectedEvictionSet};
use crate::eviction::tlb::{TlbEvictionPool, TlbEvictionSet};
use crate::pairs::HammerPair;

/// A fully prepared double-sided implicit hammer for one pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImplicitHammer {
    /// The pair being hammered.
    pub pair: HammerPair,
    /// TLB eviction set for the low target.
    pub tlb_low: TlbEvictionSet,
    /// TLB eviction set for the high target.
    pub tlb_high: TlbEvictionSet,
    /// LLC eviction set selected (Algorithm 2) for the low target's L1PTE.
    pub llc_low: SelectedEvictionSet,
    /// LLC eviction set selected (Algorithm 2) for the high target's L1PTE.
    pub llc_high: SelectedEvictionSet,
}

/// Statistics of a hammering run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HammerStats {
    /// Iterations performed.
    pub rounds: u64,
    /// Total simulated cycles spent hammering.
    pub total_cycles: u64,
    /// Fastest single iteration.
    pub min_round_cycles: u64,
    /// Slowest single iteration.
    pub max_round_cycles: u64,
    /// Iterations in which the low target's L1PTE was served from DRAM
    /// (instrumentation only; the real attacker cannot observe this).
    pub low_dram_hits: u64,
    /// Iterations in which the high target's L1PTE was served from DRAM.
    pub high_dram_hits: u64,
    /// DRAM-served implicit touches of indexed pattern aggressors
    /// (always 0 for the pair-addressed strategies).
    pub aggressor_dram_hits: u64,
}

impl HammerStats {
    /// Average cycles per iteration.
    pub fn avg_round_cycles(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.rounds as f64
        }
    }

    /// Fraction of iterations that actually activated the low aggressor row.
    pub fn low_dram_rate(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.low_dram_hits as f64 / self.rounds as f64
        }
    }

    /// Fraction of iterations that actually activated the high aggressor row.
    pub fn high_dram_rate(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.high_dram_hits as f64 / self.rounds as f64
        }
    }
}

impl ImplicitHammer {
    /// Prepares the hammer for a pair: draws TLB eviction sets from the pool
    /// and runs Algorithm 2 to select the LLC eviction sets for both L1PTEs.
    pub fn prepare(
        sys: &mut System,
        pid: Pid,
        pair: HammerPair,
        tlb_pool: &TlbEvictionPool,
        llc_pool: &LlcEvictionPool,
        selection_trials: usize,
    ) -> Result<Self, AttackError> {
        let tlb_low = tlb_pool.minimal_eviction_set_for(pair.low);
        let tlb_high = tlb_pool.minimal_eviction_set_for(pair.high);
        if tlb_low.is_empty() || tlb_high.is_empty() {
            return Err(AttackError::EvictionSetUnavailable(
                "TLB eviction pool has no pages for the target's sets".to_string(),
            ));
        }
        let llc_low = llc_pool.select_for_l1pte(sys, pid, pair.low, &tlb_low, selection_trials)?;
        let llc_high =
            llc_pool.select_for_l1pte(sys, pid, pair.high, &tlb_high, selection_trials)?;
        Ok(Self {
            pair,
            tlb_low,
            tlb_high,
            llc_low,
            llc_high,
        })
    }

    /// Total simulated cycles spent on Algorithm 2 selection for this pair.
    pub fn selection_cycles(&self) -> u64 {
        self.llc_low.selection_cycles + self.llc_high.selection_cycles
    }

    /// Performs one double-sided hammering iteration. Returns the iteration's
    /// cycle cost and whether each target's L1PTE load reached DRAM.
    pub fn hammer_round(
        &self,
        sys: &mut System,
        pid: Pid,
    ) -> Result<(u64, bool, bool), AttackError> {
        let start = sys.rdtsc();
        // Evict both targets' TLB entries and L1PTE cache lines.
        self.tlb_low.evict(sys, pid)?;
        self.tlb_high.evict(sys, pid)?;
        self.llc_low.evict(sys, pid)?;
        self.llc_high.evict(sys, pid)?;
        // Touch the targets: the walks implicitly access the aggressor rows.
        let low = sys.touch(pid, self.pair.low)?;
        let high = sys.touch(pid, self.pair.high)?;
        Ok((
            sys.rdtsc() - start,
            low.l1pte_from_dram,
            high.l1pte_from_dram,
        ))
    }

    /// Hammers for `rounds` iterations, accumulating statistics.
    pub fn hammer(
        &self,
        sys: &mut System,
        pid: Pid,
        rounds: u64,
    ) -> Result<HammerStats, AttackError> {
        let mut stats = HammerStats {
            min_round_cycles: u64::MAX,
            ..HammerStats::default()
        };
        for _ in 0..rounds {
            let (cycles, low_dram, high_dram) = self.hammer_round(sys, pid)?;
            stats.rounds += 1;
            stats.total_cycles += cycles;
            stats.min_round_cycles = stats.min_round_cycles.min(cycles);
            stats.max_round_cycles = stats.max_round_cycles.max(cycles);
            stats.low_dram_hits += u64::from(low_dram);
            stats.high_dram_hits += u64::from(high_dram);
        }
        if stats.rounds == 0 {
            stats.min_round_cycles = 0;
        }
        Ok(stats)
    }

    /// Collects per-iteration cycle samples (the Figure 6 measurement).
    pub fn round_cycle_samples(
        &self,
        sys: &mut System,
        pid: Pid,
        samples: usize,
    ) -> Result<Vec<u64>, AttackError> {
        (0..samples)
            .map(|_| self.hammer_round(sys, pid).map(|(c, _, _)| c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AttackConfig;
    use crate::eviction::llc::LlcEvictionPool;
    use crate::eviction::tlb::TlbEvictionPool;
    use crate::pairs::{candidate_pairs, pair_stride};
    use crate::spray::spray_page_tables;
    use pthammer_cache::{CacheHierarchyConfig, LlcConfig, ReplacementPolicy};
    use pthammer_dram::FlipModelProfile;
    use pthammer_machine::MachineConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Small machine with a small LLC so pool construction stays fast, but a
    /// realistic TLB and DRAM mapping.
    fn test_system() -> (System, Pid) {
        let mut cfg = MachineConfig::test_small(FlipModelProfile::invulnerable(), 21);
        cfg.cache = CacheHierarchyConfig {
            llc: LlcConfig {
                slices: 2,
                sets_per_slice: 256,
                ways: 8,
                latency: 18,
                replacement: ReplacementPolicy::Srrip,
                inclusive: true,
            },
            ..CacheHierarchyConfig::test_small(21)
        };
        let mut sys = System::undefended(cfg);
        let pid = sys.spawn_process(1000).unwrap();
        (sys, pid)
    }

    #[test]
    fn hammer_round_reaches_dram_for_both_l1ptes() {
        let (mut sys, pid) = test_system();
        let config = AttackConfig {
            spray_bytes: 512 << 20,
            llc_profile_trials: 6,
            ..AttackConfig::quick_test(3, false)
        };
        let tlb_pool = TlbEvictionPool::build(&mut sys, pid, &config, 12).unwrap();
        let llc_pool = LlcEvictionPool::build(&mut sys, pid, &config, 9).unwrap();
        let spray = spray_page_tables(&mut sys, pid, &config).unwrap();
        let row_span = sys.machine().config().dram.geometry.row_span_bytes();
        let mut rng = StdRng::seed_from_u64(3);
        let pairs = candidate_pairs(&spray, row_span, 4, &mut rng);
        assert!(!pairs.is_empty());
        let hammer =
            ImplicitHammer::prepare(&mut sys, pid, pairs[0], &tlb_pool, &llc_pool, 6).unwrap();

        let stats = hammer.hammer(&mut sys, pid, 40).unwrap();
        assert_eq!(stats.rounds, 40);
        assert!(
            stats.low_dram_rate() > 0.8,
            "low L1PTE should usually come from DRAM, rate {}",
            stats.low_dram_rate()
        );
        assert!(
            stats.high_dram_rate() > 0.8,
            "high L1PTE should usually come from DRAM, rate {}",
            stats.high_dram_rate()
        );
        // Iteration cost is bounded: well below the no-flip threshold of
        // Figure 5 (1500-1600 cycles) and above the cost of a pure cache hit.
        let avg = stats.avg_round_cycles();
        assert!(avg > 200.0, "avg {avg}");
        assert!(avg < 3_500.0, "avg {avg}");
        assert!(stats.min_round_cycles <= stats.max_round_cycles);
        assert!(hammer.selection_cycles() > 0);
        let _ = pair_stride(row_span);
    }

    #[test]
    fn round_cycle_samples_have_low_variance_after_warmup() {
        let (mut sys, pid) = test_system();
        let config = AttackConfig {
            spray_bytes: 512 << 20,
            llc_profile_trials: 6,
            ..AttackConfig::quick_test(5, false)
        };
        let tlb_pool = TlbEvictionPool::build(&mut sys, pid, &config, 12).unwrap();
        let llc_pool = LlcEvictionPool::build(&mut sys, pid, &config, 9).unwrap();
        let spray = spray_page_tables(&mut sys, pid, &config).unwrap();
        let row_span = sys.machine().config().dram.geometry.row_span_bytes();
        let mut rng = StdRng::seed_from_u64(5);
        let pair = candidate_pairs(&spray, row_span, 1, &mut rng)[0];
        let hammer = ImplicitHammer::prepare(&mut sys, pid, pair, &tlb_pool, &llc_pool, 6).unwrap();
        // Warm up, then sample (mirrors the 50-round measurement of Fig. 6).
        hammer.hammer(&mut sys, pid, 10).unwrap();
        let samples = hammer.round_cycle_samples(&mut sys, pid, 50).unwrap();
        assert_eq!(samples.len(), 50);
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        assert!(
            max < 4 * min,
            "cycle samples too spread: min {min}, max {max}"
        );
    }
}

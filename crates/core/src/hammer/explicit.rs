//! Explicit-hammer baselines (Section II-B of the paper).
//!
//! These are the conventional rowhammer techniques that require the attacker
//! to *own* memory in the aggressor rows: `clflush`-based double-sided and
//! single-sided hammering, eviction-based hammering, and one-location
//! hammering. They serve three purposes in the reproduction: as the
//! comparison baseline for the implicit hammer, as the calibration tool for
//! Figure 5 (time-to-first-flip as a function of the per-iteration cost,
//! obtained by padding the loop with NOPs), and as the workload that the
//! ANVIL-style detector *can* see.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use pthammer_kernel::{MmapOptions, Pid, System, VmaBacking};
use pthammer_types::{VirtAddr, PAGE_SIZE};

use crate::error::AttackError;

/// The hammering technique used by the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExplicitMode {
    /// Two aggressor rows around a victim, flushed with `clflush`.
    ClflushDoubleSided,
    /// Several random addresses hammered together (Seaborn-style).
    ClflushSingleSided {
        /// Number of simultaneously hammered addresses.
        addresses: usize,
    },
    /// A single address; relies on the memory controller's preemptive
    /// row-buffer close policy.
    OneLocation,
}

/// Configuration of one explicit-hammer run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExplicitHammerConfig {
    /// Hammering technique.
    pub mode: ExplicitMode,
    /// Extra cycles of computation added to every iteration (the NOP padding
    /// used for the Figure 5 sweep).
    pub nop_padding_cycles: u64,
    /// Iterations per aggressor set before moving to the next one.
    pub rounds_per_target: u64,
    /// Maximum simulated cycles to spend before giving up.
    pub max_total_cycles: u64,
    /// Seed for aggressor selection.
    pub seed: u64,
}

/// Result of hammering until the first flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FirstFlip {
    /// Simulated cycles from the start of the run until the flip was found.
    pub cycles_until_flip: u64,
    /// Virtual address whose content changed.
    pub vaddr: VirtAddr,
    /// Value read after the flip (the buffer was filled with a known pattern).
    pub observed: u64,
}

/// An explicit-hammer workspace: a large buffer owned by the attacker, filled
/// with a known pattern so flips are visible by scanning.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExplicitHammer {
    buffer: VirtAddr,
    buffer_len: u64,
    pattern: u64,
    row_span: u64,
}

impl ExplicitHammer {
    /// Allocates and populates the hammer buffer. The all-ones pattern makes
    /// true-cell (1→0) flips visible; callers interested in anti-cell flips
    /// can choose a different pattern.
    pub fn setup(
        sys: &mut System,
        pid: Pid,
        buffer_len: u64,
        pattern: u64,
    ) -> Result<Self, AttackError> {
        let buffer = sys.mmap(
            pid,
            buffer_len,
            MmapOptions {
                populate: true,
                backing: VmaBacking::Anonymous {
                    fill_pattern: pattern,
                },
                ..MmapOptions::default()
            },
        )?;
        let row_span = sys.machine().config().dram.geometry.row_span_bytes();
        Ok(Self {
            buffer,
            buffer_len,
            pattern,
            row_span,
        })
    }

    /// The buffer base address.
    pub fn buffer(&self) -> VirtAddr {
        self.buffer
    }

    /// The fill pattern.
    pub fn pattern(&self) -> u64 {
        self.pattern
    }

    /// Picks the aggressor addresses for one hammering target according to
    /// the mode. For double-sided, the two aggressors are one row span apart
    /// on each side of a victim row inside the buffer.
    fn pick_aggressors(&self, mode: ExplicitMode, rng: &mut StdRng) -> Vec<VirtAddr> {
        let rows_in_buffer = self.buffer_len / self.row_span;
        match mode {
            ExplicitMode::ClflushDoubleSided => {
                let victim_row = rng.gen_range(1..rows_in_buffer.saturating_sub(1).max(2));
                let offset = rng.gen_range(0..self.row_span / PAGE_SIZE) * PAGE_SIZE;
                vec![
                    self.buffer + (victim_row - 1) * self.row_span + offset,
                    self.buffer + (victim_row + 1) * self.row_span + offset,
                ]
            }
            ExplicitMode::ClflushSingleSided { addresses } => (0..addresses)
                .map(|_| {
                    let row = rng.gen_range(0..rows_in_buffer);
                    let offset = rng.gen_range(0..self.row_span / 64) * 64;
                    self.buffer + row * self.row_span + offset
                })
                .collect(),
            ExplicitMode::OneLocation => {
                let row = rng.gen_range(0..rows_in_buffer);
                vec![self.buffer + row * self.row_span]
            }
        }
    }

    /// Performs one hammering iteration over the aggressor set: access each
    /// address, flush it with `clflush`, then burn the configured NOP padding.
    pub fn hammer_iteration(
        &self,
        sys: &mut System,
        pid: Pid,
        aggressors: &[VirtAddr],
        nop_padding_cycles: u64,
    ) -> Result<u64, AttackError> {
        let start = sys.rdtsc();
        for &addr in aggressors {
            sys.access(pid, addr)?;
        }
        for &addr in aggressors {
            sys.clflush(pid, addr)?;
        }
        if nop_padding_cycles > 0 {
            sys.advance_cycles(nop_padding_cycles);
        }
        Ok(sys.rdtsc() - start)
    }

    /// Scans the buffer (one read per cache line) for deviations from the
    /// fill pattern.
    pub fn scan_for_flips(
        &self,
        sys: &mut System,
        pid: Pid,
    ) -> Result<Vec<(VirtAddr, u64)>, AttackError> {
        let mut flips = Vec::new();
        let mut offset = 0;
        while offset < self.buffer_len {
            let addr = self.buffer + offset;
            let value = sys.read_u64(pid, addr)?.value;
            if value != self.pattern {
                flips.push((addr, value));
            }
            offset += 64;
        }
        Ok(flips)
    }

    /// Hammers aggressor sets (rotating over targets) until the first bit
    /// flip is observed in the buffer or the cycle budget is exhausted —
    /// the measurement behind Figure 5.
    pub fn run_until_first_flip(
        &self,
        sys: &mut System,
        pid: Pid,
        config: &ExplicitHammerConfig,
    ) -> Result<Option<FirstFlip>, AttackError> {
        let mut rng = rand::SeedableRng::seed_from_u64(config.seed);
        let start = sys.rdtsc();
        loop {
            let aggressors = self.pick_aggressors(config.mode, &mut rng);
            for _ in 0..config.rounds_per_target {
                self.hammer_iteration(sys, pid, &aggressors, config.nop_padding_cycles)?;
            }
            // Scan only the rows adjacent to the aggressors for speed.
            for &aggr in &aggressors {
                for neighbour_row in [-1i64, 1] {
                    let aggr_offset = aggr - self.buffer;
                    let row = (aggr_offset / self.row_span) as i64 + neighbour_row;
                    if row < 0 || (row as u64 + 1) * self.row_span > self.buffer_len {
                        continue;
                    }
                    let row_base = self.buffer + row as u64 * self.row_span;
                    let mut offset = 0;
                    while offset < self.row_span {
                        let addr = row_base + offset;
                        let value = sys.read_u64(pid, addr)?.value;
                        if value != self.pattern {
                            return Ok(Some(FirstFlip {
                                cycles_until_flip: sys.rdtsc() - start,
                                vaddr: addr,
                                observed: value,
                            }));
                        }
                        offset += 64;
                    }
                }
            }
            if sys.rdtsc() - start > config.max_total_cycles {
                return Ok(None);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pthammer_dram::{DramTimings, FlipModelProfile};
    use pthammer_machine::MachineConfig;

    fn vulnerable_system() -> (System, Pid) {
        let mut cfg = MachineConfig::test_small(FlipModelProfile::ci(), 33);
        // Short refresh window so window-based thresholds are reachable fast.
        cfg.dram.timings = DramTimings::fast_test();
        let mut sys = System::undefended(cfg);
        let pid = sys.spawn_process(1000).unwrap();
        (sys, pid)
    }

    fn base_config(nop: u64) -> ExplicitHammerConfig {
        ExplicitHammerConfig {
            mode: ExplicitMode::ClflushDoubleSided,
            nop_padding_cycles: nop,
            rounds_per_target: 800,
            max_total_cycles: 40_000_000,
            seed: 9,
        }
    }

    #[test]
    fn double_sided_clflush_hammering_finds_a_flip() {
        let (mut sys, pid) = vulnerable_system();
        let hammer = ExplicitHammer::setup(&mut sys, pid, 8 << 20, u64::MAX).unwrap();
        let result = hammer
            .run_until_first_flip(&mut sys, pid, &base_config(0))
            .unwrap();
        let flip = result.expect("ci-profile DRAM should flip quickly");
        assert_ne!(flip.observed, u64::MAX);
        assert!(flip.cycles_until_flip > 0);
        assert!(!hammer.scan_for_flips(&mut sys, pid).unwrap().is_empty());
    }

    #[test]
    fn heavy_nop_padding_prevents_flips() {
        // Mirrors the Figure 5 cutoff: when each iteration takes too long,
        // too few activations accumulate within a refresh window.
        let (mut sys, pid) = vulnerable_system();
        let hammer = ExplicitHammer::setup(&mut sys, pid, 8 << 20, u64::MAX).unwrap();
        let mut config = base_config(50_000);
        config.max_total_cycles = 30_000_000;
        let result = hammer.run_until_first_flip(&mut sys, pid, &config).unwrap();
        assert!(
            result.is_none(),
            "padded hammering should not flip within the budget"
        );
    }

    #[test]
    fn one_location_hammering_needs_closed_page_policy() {
        // With the default open-page policy, re-accessing a single address
        // hits the row buffer and never re-activates the row, so no flips.
        let (mut sys, pid) = vulnerable_system();
        let hammer = ExplicitHammer::setup(&mut sys, pid, 4 << 20, u64::MAX).unwrap();
        let config = ExplicitHammerConfig {
            mode: ExplicitMode::OneLocation,
            ..base_config(0)
        };
        let mut cfg = config;
        cfg.max_total_cycles = 10_000_000;
        let result = hammer.run_until_first_flip(&mut sys, pid, &cfg).unwrap();
        assert!(result.is_none());
    }

    #[test]
    fn iteration_cost_grows_with_padding() {
        let (mut sys, pid) = vulnerable_system();
        let hammer = ExplicitHammer::setup(&mut sys, pid, 1 << 20, u64::MAX).unwrap();
        let aggressors = vec![hammer.buffer(), hammer.buffer() + hammer.row_span * 2];
        // Warm up translations and caches first so the comparison measures
        // the steady-state iteration cost rather than cold misses.
        hammer
            .hammer_iteration(&mut sys, pid, &aggressors, 0)
            .unwrap();
        let plain = hammer
            .hammer_iteration(&mut sys, pid, &aggressors, 0)
            .unwrap();
        let padded = hammer
            .hammer_iteration(&mut sys, pid, &aggressors, 1_000)
            .unwrap();
        assert!(padded >= plain + 1_000, "plain {plain}, padded {padded}");
    }
}

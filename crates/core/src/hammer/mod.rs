//! Hammering primitives: the implicit (PThammer) primitive and the explicit
//! baselines it is compared against.

pub mod explicit;
pub mod implicit;

pub use explicit::{ExplicitHammer, ExplicitHammerConfig, ExplicitMode, FirstFlip};
pub use implicit::{HammerStats, ImplicitHammer};

//! Hammering primitives: the implicit (PThammer) primitive, the explicit
//! baselines it is compared against, and the pluggable strategy layer the
//! attack pipeline selects between.

pub mod explicit;
pub mod implicit;
pub mod strategy;

pub use explicit::{ExplicitHammer, ExplicitHammerConfig, ExplicitMode, FirstFlip};
pub use implicit::{HammerStats, ImplicitHammer};
pub use strategy::{
    ArmResult, ArmedPair, HammerMode, HammerStrategy, RoundOp, RoundOutcome, Target,
};

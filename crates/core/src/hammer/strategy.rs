//! Pluggable hammer strategies.
//!
//! PThammer is one point in a family of cross-boundary hammering techniques
//! (TeleHammer generalises the pattern; "Another Flip in the Wall" shows
//! one-location hammering defeats pair-based defenses). The attack pipeline
//! therefore does not hardcode implicit double-sided hammering: a
//! [`HammerStrategy`] decides, per candidate pair, how eviction state is
//! built ([`HammerStrategy::arm`]), whether the pair is accepted, and which
//! exact per-iteration touch pattern ([`HammerStrategy::round_ops`]) the
//! hammer phase executes.
//!
//! Four strategies are provided, selected by [`HammerMode`]:
//!
//! * [`HammerMode::ImplicitDoubleSided`] — the paper's attack: same-bank
//!   verified pairs, both targets' TLB entries and L1PTE lines evicted, both
//!   targets touched. Byte-identical to the pre-pipeline driver.
//! * [`HammerMode::ExplicitDoubleSided`] — the conventional baseline: the
//!   attacker accesses and `clflush`es the pair targets itself. Its DRAM
//!   traffic lands in the attacker's own (aliased) data frame, never in the
//!   kernel's page-table rows — the contrast motivating the paper.
//! * [`HammerMode::ImplicitSingleSided`] — Seaborn-style: every candidate
//!   pair is hammered without same-bank verification; the two targets act as
//!   independent single-sided aggressors.
//! * [`HammerMode::ImplicitOneLocation`] — a single implicit aggressor: only
//!   the low target is armed and touched each iteration.

use std::fmt;
use std::str::FromStr;

use serde::ser::JsonWriter;
use serde::{Deserialize, Serialize};

use pthammer_kernel::{Pid, System};
use pthammer_types::VirtAddr;

use crate::config::AttackConfig;
use crate::error::AttackError;
use crate::eviction::llc::SelectedEvictionSet;
use crate::eviction::tlb::TlbEvictionSet;
use crate::hammer::implicit::ImplicitHammer;
use crate::pairs::{verify_same_bank, HammerPair, PairVerification};
use crate::pipeline::PreparedAttack;

/// Which hammer strategy the attack pipeline runs.
///
/// Flows end-to-end: `AttackConfig` → the campaign matrix axis → cell
/// reports and attack outcomes → the repro binaries and perf workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HammerMode {
    /// Paper-faithful implicit double-sided hammering (the default).
    #[default]
    ImplicitDoubleSided,
    /// Explicit `clflush`-based double-sided baseline.
    ExplicitDoubleSided,
    /// Implicit single-sided hammering (unverified aggressor pairs).
    ImplicitSingleSided,
    /// Implicit one-location hammering (a single aggressor).
    ImplicitOneLocation,
}

impl HammerMode {
    /// Every mode, default first (matrix-axis order).
    pub fn all() -> Vec<HammerMode> {
        vec![
            HammerMode::ImplicitDoubleSided,
            HammerMode::ExplicitDoubleSided,
            HammerMode::ImplicitSingleSided,
            HammerMode::ImplicitOneLocation,
        ]
    }

    /// Canonical kebab-case name (used in reports and tables).
    pub fn name(&self) -> &'static str {
        match self {
            HammerMode::ImplicitDoubleSided => "implicit-double-sided",
            HammerMode::ExplicitDoubleSided => "explicit-double-sided",
            HammerMode::ImplicitSingleSided => "implicit-single-sided",
            HammerMode::ImplicitOneLocation => "implicit-one-location",
        }
    }

    /// True for the paper's default mode — the one the golden campaign
    /// snapshot pins byte-for-byte.
    pub fn is_default(&self) -> bool {
        *self == HammerMode::ImplicitDoubleSided
    }

    /// Instantiates the strategy implementing this mode.
    pub fn strategy(&self) -> Box<dyn HammerStrategy> {
        match self {
            HammerMode::ImplicitDoubleSided => Box::new(ImplicitDoubleSided),
            HammerMode::ExplicitDoubleSided => Box::new(ExplicitDoubleSided),
            HammerMode::ImplicitSingleSided => Box::new(ImplicitSingleSided),
            HammerMode::ImplicitOneLocation => Box::new(ImplicitOneLocation),
        }
    }
}

impl fmt::Display for HammerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for HammerMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        HammerMode::all()
            .into_iter()
            .find(|m| m.name() == s)
            .ok_or_else(|| format!("unknown hammer mode `{s}`"))
    }
}

// Hand-written so every serialization site — the campaign matrix axis,
// cell/summary rows, attack configs and outcomes — emits the one canonical
// kebab-case spelling that `FromStr` accepts and the `--mode` CLI uses.
impl Serialize for HammerMode {
    fn serialize(&self, w: &mut JsonWriter) {
        w.string(self.name());
    }
}

impl Deserialize for HammerMode {}

/// One member of a hammer pair — or, for many-sided patterns, an indexed
/// aggressor of the armed aggressor set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// The lower virtual address of the pair.
    Low,
    /// The upper virtual address of the pair.
    High,
    /// The `i`-th aggressor of a many-sided armed set (pattern strategies;
    /// index 0 is the base pair's low target, 1 its high target).
    Aggressor(u8),
}

/// One operation of a hammer iteration. A strategy's per-round touch pattern
/// is a sequence of these, executed in order by
/// [`ArmedPair::hammer_round`] — and assertable verbatim in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundOp {
    /// Evict the target's TLB entry (Algorithm 1 eviction set).
    EvictTlb(Target),
    /// Evict the target's Level-1 PTE from the LLC (Algorithm 2 set).
    EvictLlc(Target),
    /// Touch the target, triggering a page-table walk whose L1PTE load is
    /// the implicit DRAM access.
    TouchImplicit(Target),
    /// Plain data access to the target (explicit hammering).
    AccessData(Target),
    /// `clflush` the target's own cache line (explicit hammering).
    Clflush(Target),
}

/// Per-pair eviction state built by [`HammerStrategy::arm`].
#[derive(Debug, Clone, PartialEq)]
pub struct ArmedPair {
    /// The pair being hammered.
    pub pair: HammerPair,
    /// Strategy-specific eviction state.
    state: ArmedState,
}

/// What an armed pair carries, by strategy family.
#[derive(Debug, Clone, PartialEq)]
enum ArmedState {
    /// Both targets fully armed (double-/single-sided implicit hammering).
    Implicit(ImplicitHammer),
    /// Only the low target armed (one-location hammering).
    ImplicitLow {
        /// TLB eviction set for the low target.
        tlb: TlbEvictionSet,
        /// LLC eviction set for the low target's L1PTE.
        llc: SelectedEvictionSet,
    },
    /// No eviction state (explicit hammering).
    Explicit,
    /// An n-sided aggressor set, each aggressor fully armed (pattern
    /// hammering). Aggressor 0 is the base pair's low target, aggressor 1
    /// its high target.
    Multi {
        /// Virtual address of every aggressor, in pattern index order.
        aggressors: Vec<VirtAddr>,
        /// Per-aggressor `(TLB set, LLC set)` eviction state, parallel to
        /// `aggressors`.
        sets: Vec<(TlbEvictionSet, SelectedEvictionSet)>,
    },
}

/// Result of arming one candidate pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmResult {
    /// The armed pair, or `None` when the strategy rejected the candidate
    /// (e.g. the same-bank verification failed).
    pub armed: Option<ArmedPair>,
    /// Simulated cycles spent drawing TLB eviction sets.
    pub tlb_selection_cycles: u64,
    /// Simulated cycles spent on LLC eviction-set selection (Algorithm 2).
    pub llc_selection_cycles: u64,
    /// The timing-based verification, for strategies that perform one.
    pub verification: Option<PairVerification>,
}

/// Outcome of executing one hammer iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundOutcome {
    /// Simulated cycles the iteration took.
    pub cycles: u64,
    /// Whether the low target's implicit L1PTE load reached DRAM.
    pub low_dram: bool,
    /// Whether the high target's implicit L1PTE load reached DRAM.
    pub high_dram: bool,
    /// Implicit [`Target::Aggressor`] touches of this iteration whose L1PTE
    /// load reached DRAM (0 for the pair-addressed strategies).
    pub aggressor_dram_hits: u64,
}

impl ArmedPair {
    /// Arms an n-sided aggressor set for pattern hammering: `aggressors[i]`
    /// is addressed by [`Target::Aggressor`]`(i)` and hammered with
    /// `sets[i]`. Aggressor 0 must be `pair.low` and aggressor 1 `pair.high`
    /// (the timing-verified base pair the detection phase scans around).
    ///
    /// # Panics
    ///
    /// Panics if `aggressors` and `sets` differ in length, fewer than two
    /// aggressors are supplied, or the first two aggressors are not the base
    /// pair.
    pub fn multi(
        pair: HammerPair,
        aggressors: Vec<VirtAddr>,
        sets: Vec<(TlbEvictionSet, SelectedEvictionSet)>,
    ) -> Self {
        assert_eq!(
            aggressors.len(),
            sets.len(),
            "one eviction-set pair per aggressor"
        );
        assert!(aggressors.len() >= 2, "a pattern needs the base pair");
        assert_eq!(aggressors[0], pair.low, "aggressor 0 is the base low");
        assert_eq!(aggressors[1], pair.high, "aggressor 1 is the base high");
        Self {
            pair,
            state: ArmedState::Multi { aggressors, sets },
        }
    }

    fn low_sets(&self) -> Result<(&TlbEvictionSet, &SelectedEvictionSet), AttackError> {
        match &self.state {
            ArmedState::Implicit(h) => Ok((&h.tlb_low, &h.llc_low)),
            ArmedState::ImplicitLow { tlb, llc } => Ok((tlb, llc)),
            ArmedState::Multi { sets, .. } => Ok((&sets[0].0, &sets[0].1)),
            ArmedState::Explicit => Err(AttackError::EvictionSetUnavailable(
                "explicit strategy has no eviction sets".to_string(),
            )),
        }
    }

    fn high_sets(&self) -> Result<(&TlbEvictionSet, &SelectedEvictionSet), AttackError> {
        match &self.state {
            ArmedState::Implicit(h) => Ok((&h.tlb_high, &h.llc_high)),
            ArmedState::Multi { sets, .. } => Ok((&sets[1].0, &sets[1].1)),
            ArmedState::ImplicitLow { .. } | ArmedState::Explicit => {
                Err(AttackError::EvictionSetUnavailable(
                    "strategy did not arm the high target".to_string(),
                ))
            }
        }
    }

    fn aggressor_sets(
        &self,
        index: u8,
    ) -> Result<(&TlbEvictionSet, &SelectedEvictionSet), AttackError> {
        match &self.state {
            ArmedState::Multi { sets, .. } => sets
                .get(usize::from(index))
                .map(|(tlb, llc)| (tlb, llc))
                .ok_or_else(|| {
                    AttackError::EvictionSetUnavailable(format!(
                        "pattern armed {} aggressors, op addresses index {index}",
                        sets.len()
                    ))
                }),
            _ => Err(AttackError::EvictionSetUnavailable(
                "strategy did not arm an aggressor set".to_string(),
            )),
        }
    }

    /// The armed `(TLB, LLC)` eviction sets for `target` — the resolution
    /// the trace compiler ([`crate::trace::CompiledTrace`]) hoists out of
    /// the per-round loop.
    pub(crate) fn sets_for(
        &self,
        target: Target,
    ) -> Result<(&TlbEvictionSet, &SelectedEvictionSet), AttackError> {
        match target {
            Target::Low => self.low_sets(),
            Target::High => self.high_sets(),
            Target::Aggressor(i) => self.aggressor_sets(i),
        }
    }

    /// The virtual address `target` resolves to, likewise hoisted to
    /// compile time by the trace compiler.
    pub(crate) fn addr(&self, target: Target) -> Result<VirtAddr, AttackError> {
        match target {
            Target::Low => Ok(self.pair.low),
            Target::High => Ok(self.pair.high),
            Target::Aggressor(i) => match &self.state {
                ArmedState::Multi { aggressors, .. } => {
                    aggressors.get(usize::from(i)).copied().ok_or_else(|| {
                        AttackError::EvictionSetUnavailable(format!(
                            "pattern armed {} aggressors, op addresses index {i}",
                            aggressors.len()
                        ))
                    })
                }
                _ => Err(AttackError::EvictionSetUnavailable(
                    "strategy did not arm an aggressor set".to_string(),
                )),
            },
        }
    }

    /// Executes one hammer iteration: runs `ops` in order and reports the
    /// iteration's cycle cost plus which implicit loads reached DRAM.
    ///
    /// For the default double-sided pattern this performs exactly the
    /// operation sequence of [`ImplicitHammer::hammer_round`], so the
    /// pipeline's default path simulates identically to the historical
    /// driver. This is the *reference interpreter*: the hammer phase itself
    /// replays a [`crate::trace::CompiledTrace`] compiled from the same ops,
    /// which must be (and is property-tested to be) event- and
    /// counter-identical to this method.
    pub fn hammer_round(
        &self,
        sys: &mut System,
        pid: Pid,
        ops: &[RoundOp],
    ) -> Result<RoundOutcome, AttackError> {
        let start = sys.rdtsc();
        let mut low_dram = false;
        let mut high_dram = false;
        let mut aggressor_dram_hits = 0u64;
        for op in ops {
            match op {
                RoundOp::EvictTlb(t) => {
                    let (tlb, _) = self.sets_for(*t)?;
                    tlb.evict(sys, pid)?;
                }
                RoundOp::EvictLlc(t) => {
                    let (_, llc) = self.sets_for(*t)?;
                    llc.evict(sys, pid)?;
                }
                RoundOp::TouchImplicit(t) => {
                    let acc = sys.touch(pid, self.addr(*t)?)?;
                    match t {
                        Target::Low => low_dram = acc.l1pte_from_dram,
                        Target::High => high_dram = acc.l1pte_from_dram,
                        Target::Aggressor(_) => {
                            aggressor_dram_hits += u64::from(acc.l1pte_from_dram);
                        }
                    }
                }
                RoundOp::AccessData(t) => {
                    sys.access(pid, self.addr(*t)?)?;
                }
                RoundOp::Clflush(t) => {
                    sys.clflush(pid, self.addr(*t)?)?;
                }
            }
        }
        Ok(RoundOutcome {
            cycles: sys.rdtsc() - start,
            low_dram,
            high_dram,
            aggressor_dram_hits,
        })
    }
}

/// A hammer strategy: how one candidate pair is armed, gated and hammered.
///
/// Strategies are pure policy — they run simulated work only through the
/// unprivileged syscall surface and report what they did; events are emitted
/// by the pipeline that drives them.
pub trait HammerStrategy: fmt::Debug + Send {
    /// The mode this strategy implements.
    fn mode(&self) -> HammerMode;

    /// The exact per-iteration operation pattern the hammer phase executes.
    /// Borrowed from the strategy so synthesized (non-`'static`) patterns
    /// work like the built-in modes. The hammer phase compiles this schedule
    /// once per attempt into a [`crate::trace::CompiledTrace`] and replays
    /// the dense trace; [`ArmedPair::hammer_round`] interprets the same ops
    /// directly and stays as the reference semantics the compiled path is
    /// property-tested against.
    fn round_ops(&self) -> &[RoundOp];

    /// Number of implicit (page-walk) target touches per iteration — the
    /// denominator of the implicit DRAM rate. Counted over
    /// [`round_ops`](Self::round_ops), so it holds for both the compiled
    /// replay and the interpreted reference path.
    fn implicit_touches_per_round(&self) -> u64 {
        self.round_ops()
            .iter()
            .filter(|op| matches!(op, RoundOp::TouchImplicit(_)))
            .count() as u64
    }

    /// Builds the per-pair eviction state and decides whether the candidate
    /// is hammered at all.
    fn arm(
        &self,
        sys: &mut System,
        pid: Pid,
        pair: HammerPair,
        prepared: &PreparedAttack,
        config: &AttackConfig,
        conflict_threshold: u64,
    ) -> Result<ArmResult, AttackError>;
}

/// Times the (pool-local, side-effect-free) TLB eviction-set draws for both
/// targets, mirroring the historical driver's selection bookkeeping.
fn timed_tlb_draw(
    sys: &System,
    prepared: &PreparedAttack,
    pair: HammerPair,
    both: bool,
) -> (u64, TlbEvictionSet, Option<TlbEvictionSet>) {
    let start = sys.rdtsc();
    let low = prepared.tlb_pool.minimal_eviction_set_for(pair.low);
    let high = both.then(|| prepared.tlb_pool.minimal_eviction_set_for(pair.high));
    (sys.rdtsc() - start, low, high)
}

/// The paper's implicit double-sided strategy (the default mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ImplicitDoubleSided;

/// Per-round pattern of the implicit double-sided strategy — the exact
/// sequence of [`ImplicitHammer::hammer_round`].
const IMPLICIT_DOUBLE_SIDED_OPS: [RoundOp; 6] = [
    RoundOp::EvictTlb(Target::Low),
    RoundOp::EvictTlb(Target::High),
    RoundOp::EvictLlc(Target::Low),
    RoundOp::EvictLlc(Target::High),
    RoundOp::TouchImplicit(Target::Low),
    RoundOp::TouchImplicit(Target::High),
];

impl HammerStrategy for ImplicitDoubleSided {
    fn mode(&self) -> HammerMode {
        HammerMode::ImplicitDoubleSided
    }

    fn round_ops(&self) -> &[RoundOp] {
        &IMPLICIT_DOUBLE_SIDED_OPS
    }

    fn arm(
        &self,
        sys: &mut System,
        pid: Pid,
        pair: HammerPair,
        prepared: &PreparedAttack,
        config: &AttackConfig,
        conflict_threshold: u64,
    ) -> Result<ArmResult, AttackError> {
        let (tlb_selection_cycles, _, _) = timed_tlb_draw(sys, prepared, pair, true);
        let hammer = ImplicitHammer::prepare(
            sys,
            pid,
            pair,
            &prepared.tlb_pool,
            &prepared.llc_pool,
            config.llc_profile_trials,
        )?;
        let llc_selection_cycles = hammer.selection_cycles();
        let verification = verify_same_bank(
            sys,
            pid,
            pair,
            &hammer.tlb_low,
            &hammer.tlb_high,
            &hammer.llc_low,
            &hammer.llc_high,
            conflict_threshold,
            5,
        )?;
        let armed = verification.same_bank.then_some(ArmedPair {
            pair,
            state: ArmedState::Implicit(hammer),
        });
        Ok(ArmResult {
            armed,
            tlb_selection_cycles,
            llc_selection_cycles,
            verification: Some(verification),
        })
    }
}

/// The explicit `clflush`-based double-sided baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExplicitDoubleSided;

const EXPLICIT_DOUBLE_SIDED_OPS: [RoundOp; 4] = [
    RoundOp::AccessData(Target::Low),
    RoundOp::AccessData(Target::High),
    RoundOp::Clflush(Target::Low),
    RoundOp::Clflush(Target::High),
];

impl HammerStrategy for ExplicitDoubleSided {
    fn mode(&self) -> HammerMode {
        HammerMode::ExplicitDoubleSided
    }

    fn round_ops(&self) -> &[RoundOp] {
        &EXPLICIT_DOUBLE_SIDED_OPS
    }

    fn arm(
        &self,
        _sys: &mut System,
        _pid: Pid,
        pair: HammerPair,
        _prepared: &PreparedAttack,
        _config: &AttackConfig,
        _conflict_threshold: u64,
    ) -> Result<ArmResult, AttackError> {
        // No eviction sets and no same-bank gate: the attacker flushes its
        // own lines, which is all an explicit hammer can do.
        Ok(ArmResult {
            armed: Some(ArmedPair {
                pair,
                state: ArmedState::Explicit,
            }),
            tlb_selection_cycles: 0,
            llc_selection_cycles: 0,
            verification: None,
        })
    }
}

/// Implicit single-sided hammering: every candidate pair is armed like the
/// double-sided strategy but hammered without same-bank verification — the
/// two targets act as independent aggressors (Seaborn-style random pairs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ImplicitSingleSided;

impl HammerStrategy for ImplicitSingleSided {
    fn mode(&self) -> HammerMode {
        HammerMode::ImplicitSingleSided
    }

    fn round_ops(&self) -> &[RoundOp] {
        &IMPLICIT_DOUBLE_SIDED_OPS
    }

    fn arm(
        &self,
        sys: &mut System,
        pid: Pid,
        pair: HammerPair,
        prepared: &PreparedAttack,
        config: &AttackConfig,
        _conflict_threshold: u64,
    ) -> Result<ArmResult, AttackError> {
        let (tlb_selection_cycles, _, _) = timed_tlb_draw(sys, prepared, pair, true);
        let hammer = ImplicitHammer::prepare(
            sys,
            pid,
            pair,
            &prepared.tlb_pool,
            &prepared.llc_pool,
            config.llc_profile_trials,
        )?;
        let llc_selection_cycles = hammer.selection_cycles();
        Ok(ArmResult {
            armed: Some(ArmedPair {
                pair,
                state: ArmedState::Implicit(hammer),
            }),
            tlb_selection_cycles,
            llc_selection_cycles,
            verification: None,
        })
    }
}

/// Implicit one-location hammering: a single aggressor, armed and touched
/// alone. Defeats defenses that assume double-sided aggressor pairs
/// ("Another Flip in the Wall").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ImplicitOneLocation;

const IMPLICIT_ONE_LOCATION_OPS: [RoundOp; 3] = [
    RoundOp::EvictTlb(Target::Low),
    RoundOp::EvictLlc(Target::Low),
    RoundOp::TouchImplicit(Target::Low),
];

impl HammerStrategy for ImplicitOneLocation {
    fn mode(&self) -> HammerMode {
        HammerMode::ImplicitOneLocation
    }

    fn round_ops(&self) -> &[RoundOp] {
        &IMPLICIT_ONE_LOCATION_OPS
    }

    fn arm(
        &self,
        sys: &mut System,
        pid: Pid,
        pair: HammerPair,
        prepared: &PreparedAttack,
        config: &AttackConfig,
        _conflict_threshold: u64,
    ) -> Result<ArmResult, AttackError> {
        let (tlb_selection_cycles, tlb_low, _) = timed_tlb_draw(sys, prepared, pair, false);
        if tlb_low.is_empty() {
            return Err(AttackError::EvictionSetUnavailable(
                "TLB eviction pool has no pages for the target's sets".to_string(),
            ));
        }
        let llc = prepared.llc_pool.select_for_l1pte(
            sys,
            pid,
            pair.low,
            &tlb_low,
            config.llc_profile_trials,
        )?;
        let llc_selection_cycles = llc.selection_cycles;
        Ok(ArmResult {
            armed: Some(ArmedPair {
                pair,
                state: ArmedState::ImplicitLow { tlb: tlb_low, llc },
            }),
            tlb_selection_cycles,
            llc_selection_cycles,
            verification: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::prepare_attack;
    use pthammer_cache::{CacheHierarchyConfig, LlcConfig, ReplacementPolicy};
    use pthammer_dram::FlipModelProfile;
    use pthammer_machine::MachineConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Small machine with a small LLC so pool construction stays fast, but a
    /// realistic TLB and DRAM mapping (same shape as the implicit-hammer
    /// tests).
    fn tiny_system(seed: u64) -> (System, Pid) {
        let mut cfg = MachineConfig::test_small(FlipModelProfile::invulnerable(), seed);
        cfg.cache = CacheHierarchyConfig {
            llc: LlcConfig {
                slices: 2,
                sets_per_slice: 256,
                ways: 8,
                latency: 18,
                replacement: ReplacementPolicy::Srrip,
                inclusive: true,
            },
            ..CacheHierarchyConfig::test_small(seed)
        };
        let mut sys = System::undefended(cfg);
        let pid = sys.spawn_process(1000).unwrap();
        (sys, pid)
    }

    fn tiny_config(seed: u64) -> AttackConfig {
        AttackConfig {
            spray_bytes: 512 << 20,
            llc_profile_trials: 6,
            ..AttackConfig::quick_test(seed, false)
        }
    }

    fn armed_for(
        mode: HammerMode,
        sys: &mut System,
        pid: Pid,
        config: &AttackConfig,
    ) -> (Box<dyn HammerStrategy>, ArmedPair) {
        let prepared = prepare_attack(sys, pid, config).unwrap();
        let row_span = sys.machine().config().dram.geometry.row_span_bytes();
        let threshold = crate::pairs::conflict_threshold(sys);
        let strategy = mode.strategy();
        let mut rng = StdRng::seed_from_u64(config.seed);
        for _ in 0..8 {
            for pair in candidate_pairs(&prepared.spray, row_span, 4, &mut rng) {
                let arm = strategy
                    .arm(sys, pid, pair, &prepared, config, threshold)
                    .unwrap();
                if let Some(armed) = arm.armed {
                    return (strategy, armed);
                }
            }
        }
        panic!("no armable pair for {mode:?}");
    }

    use crate::pairs::candidate_pairs;

    #[test]
    fn mode_names_round_trip_and_default_is_the_paper_mode() {
        assert_eq!(HammerMode::all().len(), 4);
        for mode in HammerMode::all() {
            assert_eq!(mode.name().parse::<HammerMode>().unwrap(), mode);
            assert_eq!(mode.to_string(), mode.name());
            assert_eq!(mode.strategy().mode(), mode);
        }
        assert!(HammerMode::default().is_default());
        assert!(!HammerMode::ImplicitOneLocation.is_default());
        assert!("seventeen-sided".parse::<HammerMode>().is_err());
    }

    /// The exact per-iteration touch pattern of every strategy, asserted
    /// verbatim. The default pattern must match
    /// [`ImplicitHammer::hammer_round`] operation for operation — the
    /// byte-identity of the pipeline's default path rests on it.
    #[test]
    fn round_op_patterns_are_exact() {
        use RoundOp::*;
        use Target::*;
        assert_eq!(
            ImplicitDoubleSided.round_ops(),
            [
                EvictTlb(Low),
                EvictTlb(High),
                EvictLlc(Low),
                EvictLlc(High),
                TouchImplicit(Low),
                TouchImplicit(High),
            ]
        );
        assert_eq!(
            ImplicitSingleSided.round_ops(),
            ImplicitDoubleSided.round_ops(),
            "single-sided hammers the same unverified touch pattern"
        );
        assert_eq!(
            ImplicitOneLocation.round_ops(),
            [EvictTlb(Low), EvictLlc(Low), TouchImplicit(Low)]
        );
        assert_eq!(
            ExplicitDoubleSided.round_ops(),
            [
                AccessData(Low),
                AccessData(High),
                Clflush(Low),
                Clflush(High),
            ]
        );
        assert_eq!(ImplicitDoubleSided.implicit_touches_per_round(), 2);
        assert_eq!(ImplicitSingleSided.implicit_touches_per_round(), 2);
        assert_eq!(ImplicitOneLocation.implicit_touches_per_round(), 1);
        assert_eq!(ExplicitDoubleSided.implicit_touches_per_round(), 0);
    }

    /// The strategy executor replays [`ImplicitHammer::hammer_round`]
    /// exactly: on two identically-seeded systems, the op-interpreted rounds
    /// and the hand-written rounds report identical cycles and DRAM flags.
    #[test]
    fn default_strategy_rounds_match_the_implicit_hammer_primitive() {
        let config = tiny_config(29);

        // System A: the historical path (prepare + verify + hammer_round).
        let (mut sys_a, pid_a) = tiny_system(29);
        let prepared = prepare_attack(&mut sys_a, pid_a, &config).unwrap();
        let row_span = sys_a.machine().config().dram.geometry.row_span_bytes();
        let threshold = crate::pairs::conflict_threshold(&sys_a);
        let mut rng = StdRng::seed_from_u64(29);
        let mut reference = None;
        'outer: for _ in 0..8 {
            for pair in candidate_pairs(&prepared.spray, row_span, 4, &mut rng) {
                let start = sys_a.rdtsc();
                let _ = prepared.tlb_pool.minimal_eviction_set_for(pair.low);
                let _ = prepared.tlb_pool.minimal_eviction_set_for(pair.high);
                let _ = sys_a.rdtsc() - start;
                let hammer = ImplicitHammer::prepare(
                    &mut sys_a,
                    pid_a,
                    pair,
                    &prepared.tlb_pool,
                    &prepared.llc_pool,
                    config.llc_profile_trials,
                )
                .unwrap();
                let verification = verify_same_bank(
                    &mut sys_a,
                    pid_a,
                    pair,
                    &hammer.tlb_low,
                    &hammer.tlb_high,
                    &hammer.llc_low,
                    &hammer.llc_high,
                    threshold,
                    5,
                )
                .unwrap();
                if verification.same_bank {
                    reference = Some(hammer);
                    break 'outer;
                }
            }
        }
        let hammer = reference.expect("a verified pair");
        let rounds_a: Vec<(u64, bool, bool)> = (0..5)
            .map(|_| hammer.hammer_round(&mut sys_a, pid_a).unwrap())
            .collect();

        // System B: the strategy path over the identical seed.
        let (mut sys_b, pid_b) = tiny_system(29);
        let (strategy, armed) =
            armed_for(HammerMode::ImplicitDoubleSided, &mut sys_b, pid_b, &config);
        let rounds_b: Vec<(u64, bool, bool)> = (0..5)
            .map(|_| {
                let r = armed
                    .hammer_round(&mut sys_b, pid_b, strategy.round_ops())
                    .unwrap();
                (r.cycles, r.low_dram, r.high_dram)
            })
            .collect();

        assert_eq!(armed.pair, hammer.pair, "both paths arm the same pair");
        assert_eq!(
            rounds_a, rounds_b,
            "op-interpreted rounds must be identical"
        );
    }

    #[test]
    fn one_location_strategy_touches_only_the_low_target() {
        let config = tiny_config(31);
        let (mut sys, pid) = tiny_system(31);
        let (strategy, armed) = armed_for(HammerMode::ImplicitOneLocation, &mut sys, pid, &config);
        let round = armed
            .hammer_round(&mut sys, pid, strategy.round_ops())
            .unwrap();
        assert!(round.low_dram, "the single implicit load must reach DRAM");
        assert!(!round.high_dram, "the high target is never touched");
        // The armed pair has no high-target sets: running the double-sided
        // pattern against it is a usage error, not silent misbehavior.
        assert!(armed
            .hammer_round(&mut sys, pid, ImplicitDoubleSided.round_ops())
            .is_err());
    }

    #[test]
    fn explicit_strategy_performs_no_implicit_loads() {
        let config = tiny_config(37);
        let (mut sys, pid) = tiny_system(37);
        let (strategy, armed) = armed_for(HammerMode::ExplicitDoubleSided, &mut sys, pid, &config);
        let walks_before = sys.machine().tlb_pmc().walks;
        // Warm the pair's translations once, then measure steady state.
        armed
            .hammer_round(&mut sys, pid, strategy.round_ops())
            .unwrap();
        let walks_warm = sys.machine().tlb_pmc().walks;
        let round = armed
            .hammer_round(&mut sys, pid, strategy.round_ops())
            .unwrap();
        assert!(!round.low_dram && !round.high_dram);
        assert!(round.cycles > 0);
        assert!(walks_warm >= walks_before);
        assert_eq!(
            sys.machine().tlb_pmc().walks,
            walks_warm,
            "steady-state explicit rounds never trigger page-table walks"
        );
    }

    #[test]
    fn single_sided_accepts_pairs_the_verifier_would_reject() {
        let config = tiny_config(41);
        let (mut sys, pid) = tiny_system(41);
        let prepared = prepare_attack(&mut sys, pid, &config).unwrap();
        let row_span = sys.machine().config().dram.geometry.row_span_bytes();
        let threshold = crate::pairs::conflict_threshold(&sys);
        let mut rng = StdRng::seed_from_u64(41);
        let pairs = candidate_pairs(&prepared.spray, row_span, 8, &mut rng);
        let mut ds_accepted = 0;
        let mut ss_accepted = 0;
        for pair in pairs {
            let ds = ImplicitDoubleSided
                .arm(&mut sys, pid, pair, &prepared, &config, threshold)
                .unwrap();
            assert!(ds.verification.is_some());
            ds_accepted += usize::from(ds.armed.is_some());
            let ss = ImplicitSingleSided
                .arm(&mut sys, pid, pair, &prepared, &config, threshold)
                .unwrap();
            assert!(ss.verification.is_none());
            ss_accepted += usize::from(ss.armed.is_some());
        }
        assert_eq!(ss_accepted, 8, "single-sided accepts every candidate");
        assert!(
            ds_accepted <= ss_accepted,
            "double-sided gates on the row-buffer conflict"
        );
    }
}

//! Attack outcome reporting (the data behind Table II and Section IV-F/G).

use std::fmt;
use std::str::FromStr;

use serde::ser::JsonWriter;
use serde::{Deserialize, Serialize};

use pthammer_kernel::DefenseKind;

use crate::hammer::strategy::HammerMode;
use crate::victim::VictimOutcome;

/// The system's page-size setting during the attack (Table II's "regular" vs
/// "superpage" columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageSetting {
    /// 4 KiB pages only.
    Regular,
    /// Transparent superpages enabled.
    Superpage,
}

impl PageSetting {
    /// The setting implied by an `AttackConfig::superpages` flag.
    pub fn from_superpages(superpages: bool) -> Self {
        if superpages {
            PageSetting::Superpage
        } else {
            PageSetting::Regular
        }
    }

    /// Canonical display name (also the canonical JSON serialization).
    pub fn name(&self) -> &'static str {
        match self {
            PageSetting::Regular => "regular",
            PageSetting::Superpage => "superpage",
        }
    }
}

impl fmt::Display for PageSetting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for PageSetting {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "regular" => Ok(PageSetting::Regular),
            "superpage" => Ok(PageSetting::Superpage),
            other => Err(format!("unknown page setting `{other}`")),
        }
    }
}

// Hand-written: the offline serde stub has no `rename` support and reports
// pin the historical lowercase strings.
impl Serialize for PageSetting {
    fn serialize(&self, w: &mut JsonWriter) {
        w.string(self.name());
    }
}

impl Deserialize for PageSetting {}

/// Simulated-cycle timings of the attack stages, mirroring the columns of
/// Table II in the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTimings {
    /// One-off TLB eviction-pool preparation.
    pub tlb_pool_prep_cycles: u64,
    /// One-off LLC eviction-pool preparation.
    pub llc_pool_prep_cycles: u64,
    /// Average TLB eviction-set selection per pair (drawing from the pool).
    pub tlb_selection_cycles: u64,
    /// Average LLC eviction-set selection per pair (Algorithm 2).
    pub llc_selection_cycles: u64,
    /// Average hammering time per attempt.
    pub hammer_cycles_per_attempt: u64,
    /// Average check (scan) time per attempt.
    pub check_cycles_per_attempt: u64,
    /// Simulated cycles from the start of the attack to the first observed
    /// bit flip (`None` if no flip was observed).
    pub time_to_first_flip_cycles: Option<u64>,
    /// Simulated cycles from the start of the attack to privilege escalation.
    pub time_to_escalation_cycles: Option<u64>,
}

impl StageTimings {
    /// Converts a cycle count to seconds at the given clock.
    pub fn seconds(cycles: u64, clock_hz: f64) -> f64 {
        cycles as f64 / clock_hz
    }
}

/// Complete outcome of one PThammer run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// Machine the attack ran on.
    pub machine: String,
    /// Nominal clock frequency (Hz) used to convert cycles to seconds.
    pub clock_hz: f64,
    /// The system's page-size setting ("regular" or "superpage").
    pub page_setting: PageSetting,
    /// Typed identity of the active placement policy / defense.
    pub defense: DefenseKind,
    /// The hammer strategy the pipeline ran.
    pub hammer_mode: HammerMode,
    /// Whether kernel privilege escalation succeeded.
    pub escalated: bool,
    /// The successful victim outcome, if the `Exploit` phase produced one
    /// (success may be key recovery rather than escalation).
    pub victim_outcome: Option<VictimOutcome>,
    /// Hammer attempts (pairs hammered).
    pub attempts: usize,
    /// Double-sided hammer iterations actually performed across all attempts
    /// (measured by the hammer loop — the single source of truth for
    /// iteration counts; perf reports must not re-derive this from
    /// configuration).
    pub hammer_iterations: u64,
    /// Total simulated cycles those iterations took (exact sum, unlike the
    /// integer-divided per-attempt average in [`StageTimings`]).
    pub hammer_cycles_total: u64,
    /// Bit-flip findings observed across all attempts (including
    /// unexploitable ones).
    pub flips_observed: usize,
    /// Findings that were exploitable (captured an L1PT or cred page).
    pub exploitable_flips: usize,
    /// uid of the attacker before the attack.
    pub uid_before: u32,
    /// Effective uid of the escalated process after the attack (0 on success).
    pub uid_after: u32,
    /// Stage timings (Table II).
    pub timings: StageTimings,
    /// Sample of per-iteration double-sided hammer costs in cycles (Figure 6).
    pub hammer_cycle_samples: Vec<u64>,
    /// Fraction of hammer iterations whose L1PTE loads reached DRAM.
    pub implicit_dram_rate: f64,
}

impl AttackOutcome {
    /// Simulated seconds until the first flip, if one was observed.
    pub fn seconds_to_first_flip(&self) -> Option<f64> {
        self.timings
            .time_to_first_flip_cycles
            .map(|c| StageTimings::seconds(c, self.clock_hz))
    }

    /// Simulated seconds until escalation, if it happened.
    pub fn seconds_to_escalation(&self) -> Option<f64> {
        self.timings
            .time_to_escalation_cycles
            .map(|c| StageTimings::seconds(c, self.clock_hz))
    }

    /// Simulated minutes until the first flip (the headline Table II number).
    pub fn minutes_to_first_flip(&self) -> Option<f64> {
        self.seconds_to_first_flip().map(|s| s / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> AttackOutcome {
        AttackOutcome {
            machine: "Test".to_string(),
            clock_hz: 2.6e9,
            page_setting: PageSetting::Regular,
            defense: DefenseKind::Undefended,
            hammer_mode: HammerMode::ImplicitDoubleSided,
            escalated: true,
            victim_outcome: Some(VictimOutcome::escalation(
                "pte-takeover",
                "PageTableTakeover",
                1,
            )),
            attempts: 3,
            hammer_iterations: 4_500,
            hammer_cycles_total: 9_000_000,
            flips_observed: 2,
            exploitable_flips: 1,
            uid_before: 1000,
            uid_after: 0,
            timings: StageTimings {
                time_to_first_flip_cycles: Some(156_000_000_000),
                time_to_escalation_cycles: Some(160_000_000_000),
                ..StageTimings::default()
            },
            hammer_cycle_samples: vec![700, 720, 800],
            implicit_dram_rate: 0.97,
        }
    }

    #[test]
    fn time_conversions() {
        let o = outcome();
        let minutes = o.minutes_to_first_flip().unwrap();
        assert!(
            (minutes - 1.0).abs() < 1e-9,
            "156e9 cycles at 2.6 GHz = 1 minute"
        );
        assert!(o.seconds_to_escalation().unwrap() > o.seconds_to_first_flip().unwrap());
    }

    #[test]
    fn missing_flip_yields_none() {
        let mut o = outcome();
        o.timings.time_to_first_flip_cycles = None;
        assert!(o.seconds_to_first_flip().is_none());
        assert!(o.minutes_to_first_flip().is_none());
    }

    #[test]
    fn debug_output_contains_key_fields() {
        let o = outcome();
        let debug = format!("{o:?}");
        assert!(debug.contains("escalated: true"));
        assert!(debug.contains("Test"));
        assert!(debug.contains("implicit_dram_rate"));
        assert!(debug.contains("ImplicitDoubleSided"));
    }

    #[test]
    fn page_setting_round_trips_and_serializes_canonically() {
        assert_eq!(PageSetting::from_superpages(false), PageSetting::Regular);
        assert_eq!(PageSetting::from_superpages(true), PageSetting::Superpage);
        for s in [PageSetting::Regular, PageSetting::Superpage] {
            assert_eq!(s.name().parse::<PageSetting>().unwrap(), s);
            assert_eq!(s.to_string(), s.name());
        }
        assert!("huge".parse::<PageSetting>().is_err());
        let mut w = JsonWriter::new(false);
        PageSetting::Superpage.serialize(&mut w);
        assert_eq!(w.into_string(), "\"superpage\"");
    }
}

//! LLC eviction sets (Section III-D of the paper, Algorithm 2).
//!
//! The attacker needs to evict a *kernel* cache line — the Level-1 PTE of its
//! target address — from the last-level cache without knowing its physical
//! address. It therefore prepares a one-off pool of eviction sets covering
//! every LLC (set, slice) and later selects the right one for a given L1PTE
//! by latency profiling (Algorithm 2), relying on the property that pages
//! whose first lines are congruent are congruent at every page offset
//! (Oren et al.).

use serde::{Deserialize, Serialize};

use pthammer_kernel::{MmapOptions, Pid, System, VmaBacking};
use pthammer_types::{PageSize, VirtAddr, CACHE_LINE_SIZE, PAGE_SIZE, PTE_SIZE};

use crate::config::AttackConfig;
use crate::error::AttackError;
use crate::eviction::tlb::TlbEvictionSet;

/// A group of pages that are mutually congruent in the LLC (same set-index
/// high bits and same slice). Accessing the first `minimal_lines` pages at
/// any given page offset evicts every line at that offset that is congruent
/// with the group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlcPageGroup {
    /// Page-aligned virtual addresses of the group members.
    pub pages: Vec<VirtAddr>,
}

/// The complete pool of LLC eviction sets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LlcEvictionPool {
    groups: Vec<LlcPageGroup>,
    minimal_lines: usize,
    prep_cycles: u64,
    latency_threshold: u64,
}

/// The eviction set Algorithm 2 selected for a concrete Level-1 PTE.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectedEvictionSet {
    /// Cache-line addresses to access in order to evict the target L1PTE.
    pub lines: Vec<VirtAddr>,
    /// Index of the pool group the set was drawn from.
    pub group_index: usize,
    /// Median access latency of the target observed while profiling this
    /// group (the maximum over groups identifies the congruent one).
    pub median_latency: u64,
    /// Simulated cycles spent selecting the set.
    pub selection_cycles: u64,
}

impl SelectedEvictionSet {
    /// Accesses every line of the set (twice, to defeat the scan-resistant
    /// LLC replacement), evicting the congruent L1PTE.
    pub fn evict(&self, sys: &mut System, pid: Pid) -> Result<(), AttackError> {
        traverse_eviction_lines(sys, pid, &self.lines)
    }
}

/// Sequential passes one LLC eviction traversal makes by default. A single
/// pass is not reliable against the scan-resistant (SRRIP-style) replacement
/// of the modelled LLC — repeated traversal is needed to age a recently
/// re-referenced victim out of a 12/16-way set. The calibrated trace profile
/// ([`crate::trace::CompiledTrace::compile_calibrated`]) probes whether a
/// specific armed set gets away with fewer.
pub const LLC_EVICTION_PASSES: usize = 3;

/// Traverses an LLC eviction set with the access pattern the attack uses:
/// [`LLC_EVICTION_PASSES`] sequential passes, to age a recently
/// re-referenced victim (here: the L1PTE, which every hammer iteration
/// re-references) out of the set. This mirrors the repeated-traversal
/// eviction strategies of Gruss et al.
pub fn traverse_eviction_lines(
    sys: &mut System,
    pid: Pid,
    lines: &[VirtAddr],
) -> Result<(), AttackError> {
    sys.access_batch_passes(pid, lines, LLC_EVICTION_PASSES)?;
    Ok(())
}

/// Calibrates the cached-vs-DRAM latency threshold the attacker uses to judge
/// evictions, by timing an access before and after `clflush` on its own
/// memory.
pub fn calibrate_latency_threshold(
    sys: &mut System,
    pid: Pid,
    probe: VirtAddr,
) -> Result<u64, AttackError> {
    let mut cached = u64::MAX;
    let mut uncached = 0u64;
    for _ in 0..8 {
        sys.access(pid, probe)?;
        let hit = sys.access(pid, probe)?.latency.as_u64();
        cached = cached.min(hit);
        sys.clflush(pid, probe)?;
        let miss = sys.access(pid, probe)?.latency.as_u64();
        uncached = uncached.max(miss);
    }
    Ok((cached + uncached) / 2)
}

/// Tests whether accessing `lines` evicts `target_line` from the cache
/// hierarchy, judged purely by access latency (no oracle).
///
/// Before the timed access we touch a *different* cache line of the same
/// page so that the page's translation (TLB entry and cached PTE) is warm;
/// otherwise page-walk latency would be indistinguishable from the data
/// coming from DRAM. Real eviction-set construction code does the same.
fn evicts_once(
    sys: &mut System,
    pid: Pid,
    target_line: VirtAddr,
    lines: &[VirtAddr],
    threshold: u64,
) -> Result<bool, AttackError> {
    // Bring the target into the cache.
    sys.access(pid, target_line)?;
    // Traverse the candidate eviction set. Pool construction uses one more
    // pass than the attack's hot path so that the outcome is a sharp
    // function of how many truly congruent lines the candidate set contains.
    sys.access_batch(pid, lines)?;
    traverse_eviction_lines(sys, pid, lines)?;
    // Warm the translation of the target's page without touching its line.
    let warm = if target_line.page_offset() >= CACHE_LINE_SIZE {
        target_line.page_base()
    } else {
        target_line + CACHE_LINE_SIZE
    };
    sys.access(pid, warm)?;
    // Time the target again.
    let latency = sys.access(pid, target_line)?.latency.as_u64();
    Ok(latency > threshold)
}

/// Majority vote over three single-trial eviction tests. Scan-resistant LLC
/// replacement makes individual trials probabilistic, so both the pool
/// partitioning and the page classification vote over repeated measurements
/// (as practical eviction-set tooling does).
fn evicts(
    sys: &mut System,
    pid: Pid,
    target_line: VirtAddr,
    lines: &[VirtAddr],
    threshold: u64,
) -> Result<bool, AttackError> {
    let mut hits = 0;
    for trial in 0..3 {
        if evicts_once(sys, pid, target_line, lines, threshold)? {
            hits += 1;
        }
        if hits >= 2 || hits + (2 - trial.min(2)) < 2 {
            break;
        }
    }
    Ok(hits >= 2)
}

impl LlcEvictionPool {
    /// The page-congruence groups.
    pub fn groups(&self) -> &[LlcPageGroup] {
        &self.groups
    }

    /// The minimal eviction-set size (lines per set).
    pub fn minimal_lines(&self) -> usize {
        self.minimal_lines
    }

    /// Simulated cycles spent preparing the pool (Table II, "Preparation LLC").
    pub fn prep_cycles(&self) -> u64 {
        self.prep_cycles
    }

    /// The latency threshold separating cached from DRAM-served accesses.
    pub fn latency_threshold(&self) -> u64 {
        self.latency_threshold
    }

    /// Builds the eviction lines of group `group_index` at byte offset
    /// `offset_in_page` (must be line-aligned).
    pub fn lines_at_offset(&self, group_index: usize, offset_in_page: u64) -> Vec<VirtAddr> {
        debug_assert_eq!(offset_in_page % CACHE_LINE_SIZE, 0);
        self.groups[group_index]
            .pages
            .iter()
            .take(self.minimal_lines)
            .map(|&p| p + offset_in_page)
            .collect()
    }

    /// Prepares the complete pool of LLC eviction sets (one-off cost).
    ///
    /// With superpages enabled the attacker knows physical-address bits 0–20
    /// of its buffer, so pages can be grouped by their known partial set
    /// index and only the slice must be resolved by conflict testing; with
    /// regular 4 KiB pages the whole partition is discovered by conflict
    /// testing, which is far slower — reproducing the Table II difference.
    pub fn build(
        sys: &mut System,
        pid: Pid,
        config: &AttackConfig,
        minimal_lines: usize,
    ) -> Result<Self, AttackError> {
        let llc = sys.machine().config().cache.llc;
        let buffer_bytes = ((llc.capacity_bytes() as f64) * config.eviction_buffer_factor) as u64;
        let buffer_pages = buffer_bytes / PAGE_SIZE;
        // Page classes distinguished by physical bits 12.. above the page
        // offset within the set index.
        let page_classes = (llc.sets_per_slice as u64 * CACHE_LINE_SIZE / PAGE_SIZE).max(1);
        let expected_groups = (page_classes * llc.slices as u64) as usize;

        let start = sys.rdtsc();
        let (base, page_size) = if config.superpages {
            let va = sys.mmap(
                pid,
                buffer_bytes.next_multiple_of(PageSize::Huge2M.bytes()),
                MmapOptions {
                    page_size: PageSize::Huge2M,
                    populate: true,
                    backing: VmaBacking::Anonymous {
                        fill_pattern: 0x4c4c_4320_6275_6600,
                    },
                },
            )?;
            (va, PageSize::Huge2M)
        } else {
            let va = sys.mmap(
                pid,
                buffer_pages * PAGE_SIZE,
                MmapOptions {
                    populate: true,
                    backing: VmaBacking::Anonymous {
                        fill_pattern: 0x4c4c_4320_6275_6600,
                    },
                    ..MmapOptions::default()
                },
            )?;
            (va, PageSize::Base4K)
        };

        let pages: Vec<VirtAddr> = (0..buffer_pages).map(|i| base + i * PAGE_SIZE).collect();
        let probe = pages[0];
        let latency_threshold = calibrate_latency_threshold(sys, pid, probe)?;

        let groups = if page_size.is_huge() {
            // Known partial set index: group by VA bits 12.. (== PA bits).
            let mut by_class: Vec<Vec<VirtAddr>> = vec![Vec::new(); page_classes as usize];
            for &page in &pages {
                let class = (page.as_u64() / PAGE_SIZE) % page_classes;
                by_class[class as usize].push(page);
            }
            let mut groups = Vec::new();
            for class_pages in by_class {
                let mut found = partition_by_conflict(
                    sys,
                    pid,
                    &class_pages,
                    minimal_lines,
                    llc.slices as usize,
                    latency_threshold,
                )?;
                groups.append(&mut found);
            }
            groups
        } else {
            partition_by_conflict(
                sys,
                pid,
                &pages,
                minimal_lines,
                expected_groups,
                latency_threshold,
            )?
        };

        if groups.len() < expected_groups / 2 {
            return Err(AttackError::EvictionSetUnavailable(format!(
                "only {} of ~{} LLC eviction groups found",
                groups.len(),
                expected_groups
            )));
        }
        let prep_cycles = sys.rdtsc() - start;

        Ok(Self {
            groups,
            minimal_lines,
            prep_cycles,
            latency_threshold,
        })
    }

    /// Algorithm 2: selects the eviction set for the Level-1 PTE of
    /// `target_addr` by profiling every candidate group and keeping the one
    /// that maximises the target's access latency.
    pub fn select_for_l1pte(
        &self,
        sys: &mut System,
        pid: Pid,
        target_addr: VirtAddr,
        tlb_set: &TlbEvictionSet,
        trials: usize,
    ) -> Result<SelectedEvictionSet, AttackError> {
        let start = sys.rdtsc();
        // Byte offset of the target's L1PTE within its page table page.
        let l1pte_offset = target_addr.pt_index(1) * PTE_SIZE;
        let line_offset = l1pte_offset & !(CACHE_LINE_SIZE - 1);

        let mut best: Option<(usize, u64)> = None;
        for group_index in 0..self.groups.len() {
            let lines = self.lines_at_offset(group_index, line_offset);
            let mut latencies = Vec::with_capacity(trials);
            for _ in 0..trials {
                // Flush the candidate congruent lines over the L1PTE...
                traverse_eviction_lines(sys, pid, &lines)?;
                // ...flush the target's TLB entry so the next access walks...
                tlb_set.evict(sys, pid)?;
                // ...and time the target access (slow iff the L1PTE came from DRAM).
                latencies.push(sys.access(pid, target_addr)?.latency.as_u64());
            }
            latencies.sort_unstable();
            let median = latencies[latencies.len() / 2];
            if best.map(|(_, b)| median > b).unwrap_or(true) {
                best = Some((group_index, median));
            }
        }
        let (group_index, median_latency) =
            best.ok_or_else(|| AttackError::EvictionSetUnavailable("empty pool".to_string()))?;
        let selection_cycles = sys.rdtsc() - start;
        Ok(SelectedEvictionSet {
            lines: self.lines_at_offset(group_index, line_offset),
            group_index,
            median_latency,
            selection_cycles,
        })
    }
}

/// Partitions `pages` into congruence groups by latency-based conflict
/// testing (Liu et al. style): repeatedly build a minimal eviction set for
/// the first unclassified page, then sweep the remaining pages to collect
/// every page congruent with it.
fn partition_by_conflict(
    sys: &mut System,
    pid: Pid,
    pages: &[VirtAddr],
    minimal_lines: usize,
    max_groups: usize,
    threshold: u64,
) -> Result<Vec<LlcPageGroup>, AttackError> {
    let mut remaining: Vec<VirtAddr> = pages.to_vec();
    let mut groups = Vec::new();

    while groups.len() < max_groups && remaining.len() > minimal_lines {
        let target = remaining[0];
        let candidates: Vec<VirtAddr> = remaining[1..].to_vec();
        // The full candidate set must evict the target, otherwise there are
        // not enough congruent pages left to form another group.
        if !evicts(sys, pid, target, &candidates, threshold)? {
            break;
        }
        let minimal = reduce_to_minimal(sys, pid, target, candidates, minimal_lines, threshold)?;
        // Classify every remaining page against the minimal set. The group is
        // ordered so that its first members are the target and the essential
        // (reduction-surviving) pages: eviction sets drawn from the group
        // later take its first `minimal_lines` pages, so they come from the
        // verified-congruent prefix even if classification has stragglers.
        let mut members = vec![target];
        members.extend(minimal.iter().copied());
        let mut rest = Vec::new();
        for &page in &remaining[1..] {
            if minimal.contains(&page) {
                continue;
            }
            if evicts(sys, pid, page, &minimal, threshold)? {
                members.push(page);
            } else {
                rest.push(page);
            }
        }
        groups.push(LlcPageGroup { pages: members });
        remaining = rest;
    }
    Ok(groups)
}

/// Reduces `candidates` to a minimal set that still evicts `target`, removing
/// chunks of pages at a time (group-testing refinement of the quadratic
/// one-at-a-time reduction; the end result is the same minimal set).
fn reduce_to_minimal(
    sys: &mut System,
    pid: Pid,
    target: VirtAddr,
    mut candidates: Vec<VirtAddr>,
    minimal_lines: usize,
    threshold: u64,
) -> Result<Vec<VirtAddr>, AttackError> {
    let mut chunk = (candidates.len() / 8).max(1);
    while candidates.len() > minimal_lines {
        let mut progress = false;
        let mut index = 0;
        while index < candidates.len() && candidates.len() > minimal_lines {
            let take = chunk
                .min(candidates.len() - index)
                .min(candidates.len() - minimal_lines);
            if take == 0 {
                break;
            }
            let mut trial: Vec<VirtAddr> = candidates.clone();
            trial.drain(index..index + take);
            if evicts(sys, pid, target, &trial, threshold)? {
                candidates = trial;
                progress = true;
            } else {
                index += take;
            }
        }
        if chunk == 1 && !progress {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    Ok(candidates)
}

/// Result of the offline minimal-eviction-set-size calibration for the LLC
/// (the Figure 4 sweep).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LlcCalibration {
    /// Chosen eviction-set size (one above the associativity, as in the paper).
    pub minimal_size: usize,
    /// Miss rate of the target line for each eviction-set size.
    pub miss_rates: Vec<(usize, f64)>,
}

/// Offline calibration of the minimal LLC eviction-set size, using the LLC
/// miss counter (`longest_lat_cache.miss`) like the paper's kernel module.
/// Congruent lines are identified with the evaluation oracle, which is
/// legitimate here because this phase runs offline on a machine the attacker
/// controls.
pub fn calibrate_llc_eviction(
    sys: &mut System,
    pid: Pid,
    config: &AttackConfig,
) -> Result<LlcCalibration, AttackError> {
    let llc = sys.machine().config().cache.llc;
    let ways = llc.ways as usize;
    let max_size = ways * 2 + 8;

    // Allocate a buffer and find lines congruent with a chosen target line.
    let buffer_pages = (llc.capacity_bytes() * 4) / PAGE_SIZE;
    let base = sys.mmap(
        pid,
        buffer_pages * PAGE_SIZE,
        MmapOptions {
            populate: true,
            ..MmapOptions::default()
        },
    )?;
    let target = base;
    let target_pa = sys
        .oracle_translate(pid, target)
        .ok_or_else(|| AttackError::EvictionSetUnavailable("target unmapped".to_string()))?;
    let (t_slice, t_set) = pthammer_machine::llc_location(sys.machine(), target_pa);

    let mut congruent = Vec::new();
    for i in 1..buffer_pages {
        let line = base + i * PAGE_SIZE;
        let pa = sys
            .oracle_translate(pid, line)
            .ok_or_else(|| AttackError::EvictionSetUnavailable("buffer unmapped".to_string()))?;
        if pthammer_machine::llc_location(sys.machine(), pa) == (t_slice, t_set) {
            congruent.push(line);
            if congruent.len() >= max_size {
                break;
            }
        }
    }
    if congruent.len() < ways + 1 {
        return Err(AttackError::EvictionSetUnavailable(format!(
            "found only {} congruent lines",
            congruent.len()
        )));
    }

    let mut miss_rates = Vec::new();
    let sweep_max = congruent.len();
    for size in (ways.saturating_sub(4).max(2))..=sweep_max {
        let set = &congruent[..size];
        let mut misses = 0;
        for _ in 0..config.llc_profile_trials {
            sys.access(pid, target)?;
            traverse_eviction_lines(sys, pid, set)?;
            let before = sys.machine().cache_pmc().llc_misses;
            sys.access(pid, target)?;
            if sys.machine().cache_pmc().llc_misses > before {
                misses += 1;
            }
        }
        miss_rates.push((size, misses as f64 / config.llc_profile_trials as f64));
    }

    // The paper chooses one more line than the associativity.
    let minimal_size = ways + 1;
    Ok(LlcCalibration {
        minimal_size,
        miss_rates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eviction::tlb::TlbEvictionPool;
    use pthammer_cache::{CacheHierarchyConfig, LlcConfig, ReplacementPolicy};
    use pthammer_dram::FlipModelProfile;
    use pthammer_kernel::KernelConfig;
    use pthammer_machine::MachineConfig;

    /// A machine with a deliberately tiny LLC so pool construction is fast.
    fn tiny_llc_machine(superpages: bool) -> (System, Pid) {
        let mut cfg = MachineConfig::test_small(FlipModelProfile::invulnerable(), 9);
        cfg.cache = CacheHierarchyConfig {
            llc: LlcConfig {
                slices: 2,
                sets_per_slice: 256,
                ways: 8,
                latency: 18,
                replacement: ReplacementPolicy::Srrip,
                inclusive: true,
            },
            ..CacheHierarchyConfig::test_small(9)
        };
        let kernel_config = if superpages {
            KernelConfig::with_superpages()
        } else {
            KernelConfig::default_config()
        };
        let mut sys = System::new(
            cfg,
            kernel_config,
            Box::new(pthammer_kernel::DefaultPolicy::new()),
        );
        let pid = sys.spawn_process(1000).unwrap();
        (sys, pid)
    }

    fn quick_config(superpages: bool) -> AttackConfig {
        AttackConfig {
            llc_profile_trials: 4,
            ..AttackConfig::quick_test(3, superpages)
        }
    }

    #[test]
    fn latency_threshold_separates_cache_from_dram() {
        let (mut sys, pid) = tiny_llc_machine(false);
        let probe = sys
            .mmap(
                pid,
                PAGE_SIZE,
                MmapOptions {
                    populate: true,
                    ..MmapOptions::default()
                },
            )
            .unwrap();
        let threshold = calibrate_latency_threshold(&mut sys, pid, probe).unwrap();
        sys.access(pid, probe).unwrap();
        let hit = sys.access(pid, probe).unwrap().latency.as_u64();
        sys.clflush(pid, probe).unwrap();
        let miss = sys.access(pid, probe).unwrap().latency.as_u64();
        assert!(hit < threshold, "hit {hit} vs threshold {threshold}");
        assert!(miss > threshold, "miss {miss} vs threshold {threshold}");
    }

    #[test]
    fn pool_groups_are_truly_congruent_regular_pages() {
        let (mut sys, pid) = tiny_llc_machine(false);
        let config = quick_config(false);
        let pool = LlcEvictionPool::build(&mut sys, pid, &config, 9).unwrap();
        assert!(pool.prep_cycles() > 0);
        // What matters for the attack is the prefix each eviction set is
        // drawn from: the first `minimal_lines` pages of a group should be
        // dominated by pages congruent with the group's first page. Verify
        // with the oracle that, on average, at least `minimal - 1` of the
        // prefix pages are congruent and that most groups are usable.
        let minimal = pool.minimal_lines();
        let mut usable_groups = 0;
        let mut prefix_purity_sum = 0usize;
        for group in pool.groups() {
            let locations: Vec<_> = group
                .pages
                .iter()
                .take(minimal)
                .filter_map(|&p| sys.oracle_translate(pid, p))
                .map(|pa| pthammer_machine::llc_location(sys.machine(), pa))
                .collect();
            let first = locations[0];
            let congruent = locations.iter().filter(|&&l| l == first).count();
            prefix_purity_sum += congruent;
            if congruent >= minimal - 1 {
                usable_groups += 1;
            }
        }
        let groups = pool.groups().len();
        let avg_purity = prefix_purity_sum as f64 / groups as f64;
        println!("avg prefix purity {avg_purity:.2}/{minimal}, usable {usable_groups}/{groups}");
        assert!(
            avg_purity >= (minimal - 1) as f64,
            "average prefix purity {avg_purity:.2} of {minimal}"
        );
        assert!(
            usable_groups * 10 >= groups * 7,
            "{usable_groups}/{groups} groups have a usable prefix"
        );
        // Groups are large enough to draw an eviction set from.
        assert!(pool.groups().iter().any(|g| g.pages.len() >= 9));
    }

    #[test]
    fn pool_build_is_much_faster_with_superpages() {
        let (mut sys_sp, pid_sp) = tiny_llc_machine(true);
        let config_sp = quick_config(true);
        let pool_sp = LlcEvictionPool::build(&mut sys_sp, pid_sp, &config_sp, 9).unwrap();

        let (mut sys_rp, pid_rp) = tiny_llc_machine(false);
        let config_rp = quick_config(false);
        let pool_rp = LlcEvictionPool::build(&mut sys_rp, pid_rp, &config_rp, 9).unwrap();

        assert!(
            pool_sp.prep_cycles() * 2 < pool_rp.prep_cycles(),
            "superpage prep {} should be well below regular-page prep {}",
            pool_sp.prep_cycles(),
            pool_rp.prep_cycles()
        );
    }

    #[test]
    fn selection_finds_the_group_congruent_with_the_l1pte() {
        let (mut sys, pid) = tiny_llc_machine(false);
        let config = quick_config(false);
        let tlb_pool = TlbEvictionPool::build(&mut sys, pid, &config, 12).unwrap();
        let pool = LlcEvictionPool::build(&mut sys, pid, &config, 9).unwrap();

        // A target page whose L1PTE we want to evict; choose one whose L1
        // index is non-zero so the eviction lines do not collide with the
        // target's own data line.
        let region = sys
            .mmap(
                pid,
                64 * PAGE_SIZE,
                MmapOptions {
                    populate: true,
                    ..MmapOptions::default()
                },
            )
            .unwrap();
        let target = region + 5 * PAGE_SIZE;
        sys.access(pid, target).unwrap();

        let tlb_set = tlb_pool.minimal_eviction_set_for(target);
        let selected = pool
            .select_for_l1pte(&mut sys, pid, target, &tlb_set, config.llc_profile_trials)
            .unwrap();
        assert_eq!(selected.lines.len(), pool.minimal_lines());
        assert!(selected.selection_cycles > 0);

        // Oracle check (Section IV-C): the selected group must be congruent
        // with the physical address of the target's L1PTE.
        let l1pte_pa = sys.oracle_l1pte_paddr(pid, target).unwrap();
        let expected = pthammer_machine::llc_location(sys.machine(), l1pte_pa);
        let line_pa = sys.oracle_translate(pid, selected.lines[0]).unwrap();
        let got = pthammer_machine::llc_location(sys.machine(), line_pa);
        assert_eq!(
            got, expected,
            "selected eviction set is not congruent with the L1PTE"
        );

        // Using the selected set + TLB eviction forces the next access of the
        // target to load its L1PTE from DRAM.
        selected.evict(&mut sys, pid).unwrap();
        tlb_set.evict(&mut sys, pid).unwrap();
        let acc = sys.access(pid, target).unwrap();
        assert!(acc.l1pte_from_dram, "L1PTE should have been served by DRAM");
    }

    #[test]
    fn calibration_produces_figure4_shaped_curve() {
        let (mut sys, pid) = tiny_llc_machine(false);
        let config = quick_config(false);
        let cal = calibrate_llc_eviction(&mut sys, pid, &config).unwrap();
        assert_eq!(cal.minimal_size, 9, "ways + 1");
        assert!(!cal.miss_rates.is_empty());
        // Sets larger than the associativity evict reliably; much smaller
        // sets do not.
        let big: Vec<f64> = cal
            .miss_rates
            .iter()
            .filter(|(s, _)| *s >= 9)
            .map(|(_, r)| *r)
            .collect();
        let small: Vec<f64> = cal
            .miss_rates
            .iter()
            .filter(|(s, _)| *s <= 6)
            .map(|(_, r)| *r)
            .collect();
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(avg(&big) > 0.85, "large sets evict: {:?}", cal.miss_rates);
        assert!(avg(&small) < avg(&big), "small sets evict less reliably");
    }
}

//! TLB eviction sets (Section III-C of the paper, Algorithm 1).
//!
//! The attacker cannot execute `invlpg`, so it evicts the target's TLB entry
//! by accessing pages that are congruent with it in the L1 dTLB and L2 sTLB
//! sets, using the reverse-engineered set mappings of Gras et al. Because the
//! TLB replacement is not true LRU, the minimal reliable eviction set is
//! larger than the combined associativity; Algorithm 1 determines that size
//! empirically with the help of the (offline, privileged) TLB-miss
//! performance counter.

use serde::{Deserialize, Serialize};

use pthammer_kernel::{MmapOptions, Pid, System, VmaBacking};
use pthammer_types::{VirtAddr, PAGE_SIZE};

use crate::config::AttackConfig;
use crate::error::AttackError;

/// Attacker-side knowledge of the TLB set mappings (public microarchitectural
/// information reverse engineered by Gras et al.).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbMapping {
    /// Number of L1 dTLB sets.
    pub l1_sets: u32,
    /// Number of L2 sTLB sets.
    pub l2_sets: u32,
    /// L1 dTLB indexing function.
    pub l1_indexing: pthammer_mmu::TlbIndexing,
    /// L2 sTLB indexing function.
    pub l2_indexing: pthammer_mmu::TlbIndexing,
}

impl TlbMapping {
    /// Reads the mapping for the machine under attack (equivalent to looking
    /// up the published mapping for the CPU model).
    pub fn for_system(sys: &System) -> Self {
        let mmu = &sys.machine().config().mmu;
        Self {
            l1_sets: mmu.l1_dtlb.sets,
            l2_sets: mmu.l2_stlb.sets,
            l1_indexing: mmu.l1_dtlb.indexing,
            l2_indexing: mmu.l2_stlb.indexing,
        }
    }

    /// L1 dTLB set of a virtual address.
    pub fn l1_set(&self, vaddr: VirtAddr) -> u32 {
        self.l1_indexing
            .set_index(vaddr.page_number(), self.l1_sets)
    }

    /// L2 sTLB set of a virtual address.
    pub fn l2_set(&self, vaddr: VirtAddr) -> u32 {
        self.l2_indexing
            .set_index(vaddr.page_number(), self.l2_sets)
    }
}

/// A concrete TLB eviction set for one target address.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbEvictionSet {
    pages: Vec<VirtAddr>,
}

impl TlbEvictionSet {
    /// The eviction pages.
    pub fn addresses(&self) -> &[VirtAddr] {
        &self.pages
    }

    /// Number of pages in the set.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Accesses every page of the set, evicting the target's TLB entries.
    pub fn evict(&self, sys: &mut System, pid: Pid) -> Result<(), AttackError> {
        sys.access_batch(pid, &self.pages)?;
        Ok(())
    }
}

/// A pool of pages bucketed by TLB set, from which eviction sets for any
/// target address can be drawn.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TlbEvictionPool {
    mapping: TlbMapping,
    by_l1_set: Vec<Vec<VirtAddr>>,
    by_l2_set: Vec<Vec<VirtAddr>>,
    minimal_size: usize,
    /// Simulated cycles spent preparing the pool.
    prep_cycles: u64,
}

impl TlbEvictionPool {
    /// Builds the pool: allocates eight times as many pages as TLB entries
    /// (as in the paper), touches each once so it is mapped, and buckets the
    /// pages by their L1 and L2 set indices.
    pub fn build(
        sys: &mut System,
        pid: Pid,
        config: &AttackConfig,
        minimal_size: usize,
    ) -> Result<Self, AttackError> {
        let mapping = TlbMapping::for_system(sys);
        let mmu = &sys.machine().config().mmu;
        let total_entries =
            mmu.l1_dtlb.sets * mmu.l1_dtlb.ways + mmu.l2_stlb.sets * mmu.l2_stlb.ways;
        let page_count = (total_entries as u64) * 8;

        let start = sys.rdtsc();
        let base = sys.mmap(
            pid,
            page_count * PAGE_SIZE,
            MmapOptions {
                populate: true,
                backing: VmaBacking::Anonymous {
                    fill_pattern: 0x7468_616d_6d65_7200,
                },
                ..MmapOptions::default()
            },
        )?;

        let mut by_l1_set = vec![Vec::new(); mapping.l1_sets as usize];
        let mut by_l2_set = vec![Vec::new(); mapping.l2_sets as usize];
        for i in 0..page_count {
            let page = base + i * PAGE_SIZE;
            // Touch the page so the address translation exists (paper: the
            // selected pages must be populated to be useful for eviction).
            sys.access(pid, page)?;
            by_l1_set[mapping.l1_set(page) as usize].push(page);
            by_l2_set[mapping.l2_set(page) as usize].push(page);
        }
        let prep_cycles = sys.rdtsc() - start;
        let _ = config;

        Ok(Self {
            mapping,
            by_l1_set,
            by_l2_set,
            minimal_size,
            prep_cycles,
        })
    }

    /// The reverse-engineered mapping used by the pool.
    pub fn mapping(&self) -> &TlbMapping {
        &self.mapping
    }

    /// The minimal eviction-set size the pool was built for.
    pub fn minimal_size(&self) -> usize {
        self.minimal_size
    }

    /// Simulated cycles spent preparing the pool (Table II, "Preparation TLB").
    pub fn prep_cycles(&self) -> u64 {
        self.prep_cycles
    }

    /// Builds an eviction set of `size` pages for `target`: half of the pages
    /// congruent with the target's L1 dTLB set, half with its L2 sTLB set.
    pub fn eviction_set_for(&self, target: VirtAddr, size: usize) -> TlbEvictionSet {
        let l1_count = size.div_ceil(2);
        let l2_count = size - l1_count;
        let l1_bucket = &self.by_l1_set[self.mapping.l1_set(target) as usize];
        let l2_bucket = &self.by_l2_set[self.mapping.l2_set(target) as usize];
        let mut pages: Vec<VirtAddr> = l1_bucket
            .iter()
            .copied()
            .filter(|p| p.page_number() != target.page_number())
            .take(l1_count)
            .collect();
        let l2_pages: Vec<VirtAddr> = l2_bucket
            .iter()
            .copied()
            .filter(|p| p.page_number() != target.page_number() && !pages.contains(p))
            .take(l2_count)
            .collect();
        pages.extend(l2_pages);
        TlbEvictionSet { pages }
    }

    /// Builds the minimal-size eviction set for `target`.
    pub fn minimal_eviction_set_for(&self, target: VirtAddr) -> TlbEvictionSet {
        self.eviction_set_for(target, self.minimal_size)
    }
}

/// Result of the offline Algorithm 1 calibration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TlbCalibration {
    /// Minimal eviction-set size that keeps the miss rate at the threshold.
    pub minimal_size: usize,
    /// TLB miss rate for each eviction-set size (the Figure 3 sweep).
    pub miss_rates: Vec<(usize, f64)>,
}

/// Measures the TLB miss probability that accessing `set_pages` induces on a
/// subsequent access to `target` (the `profile_tlb_set` function of
/// Algorithm 1). Uses the privileged walk counter, exactly like the paper's
/// evaluation kernel module.
pub fn profile_tlb_set(
    sys: &mut System,
    pid: Pid,
    target: VirtAddr,
    set_pages: &[VirtAddr],
    trials: usize,
) -> Result<f64, AttackError> {
    let mut misses = 0usize;
    for _ in 0..trials {
        // Make sure the target's translation is cached.
        sys.access(pid, target)?;
        // Access every page of the candidate eviction set.
        sys.access_batch(pid, set_pages)?;
        // Did the next access to the target cause a page-table walk?
        let before = sys.machine().tlb_pmc().walks;
        sys.access(pid, target)?;
        let after = sys.machine().tlb_pmc().walks;
        if after > before {
            misses += 1;
        }
    }
    Ok(misses as f64 / trials as f64)
}

/// Runs Algorithm 1: finds the minimal TLB eviction-set size and records the
/// miss-rate curve reproduced in Figure 3 of the paper.
pub fn calibrate_tlb_eviction(
    sys: &mut System,
    pid: Pid,
    config: &AttackConfig,
) -> Result<TlbCalibration, AttackError> {
    let mapping = TlbMapping::for_system(sys);
    let mmu = sys.machine().config().mmu;
    let assoc_total = (mmu.l1_dtlb.ways + mmu.l2_stlb.ways) as usize;
    let initial_size = assoc_total * 2;

    // A target page plus a buffer large enough to find congruent pages.
    let target = sys.mmap(
        pid,
        PAGE_SIZE,
        MmapOptions {
            populate: true,
            ..MmapOptions::default()
        },
    )?;
    let buf_pages = (mapping.l2_sets as u64) * 32;
    let buf = sys.mmap(
        pid,
        buf_pages * PAGE_SIZE,
        MmapOptions {
            populate: true,
            ..MmapOptions::default()
        },
    )?;

    // Collect pages congruent with the target in L1 and (separately) L2.
    let mut l1_congruent = Vec::new();
    let mut l2_congruent = Vec::new();
    for i in 0..buf_pages {
        let page = buf + i * PAGE_SIZE;
        if mapping.l1_set(page) == mapping.l1_set(target) && l1_congruent.len() < initial_size {
            l1_congruent.push(page);
        } else if mapping.l2_set(page) == mapping.l2_set(target)
            && l2_congruent.len() < initial_size
        {
            l2_congruent.push(page);
        }
        // Touching the pages populates their translations.
        sys.access(pid, page)?;
    }

    let build_set = |size: usize| -> Vec<VirtAddr> {
        let l1_count = size.div_ceil(2).min(l1_congruent.len());
        let l2_count = (size - l1_count).min(l2_congruent.len());
        let mut set: Vec<VirtAddr> = l1_congruent[..l1_count].to_vec();
        set.extend_from_slice(&l2_congruent[..l2_count]);
        set
    };

    // Threshold from the initial (oversized) eviction set.
    let mut current = build_set(initial_size);
    let threshold = profile_tlb_set(sys, pid, target, &current, config.tlb_profile_trials)?;

    // Trim pages one at a time while the miss rate stays at the threshold.
    loop {
        if current.len() <= 1 {
            break;
        }
        let removed = current.remove(0);
        let rate = profile_tlb_set(sys, pid, target, &current, config.tlb_profile_trials)?;
        if rate + config.tlb_trim_tolerance < threshold {
            current.insert(0, removed);
            break;
        }
    }
    let minimal_size = current.len().max(1);

    // Figure 3 sweep: miss rate across eviction-set sizes (the paper sweeps
    // 11..16; we extend the sweep downwards so the knee is visible).
    let mut miss_rates = Vec::new();
    for size in 3..=initial_size {
        let set = build_set(size);
        let rate = profile_tlb_set(sys, pid, target, &set, config.tlb_profile_trials)?;
        miss_rates.push((size, rate));
    }

    Ok(TlbCalibration {
        minimal_size,
        miss_rates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pthammer_dram::FlipModelProfile;
    use pthammer_machine::MachineConfig;

    fn test_system() -> (System, Pid) {
        let mut sys = System::undefended(MachineConfig::test_small(
            FlipModelProfile::invulnerable(),
            7,
        ));
        let pid = sys.spawn_process(1000).unwrap();
        (sys, pid)
    }

    #[test]
    fn mapping_matches_machine_configuration() {
        let (sys, _) = test_system();
        let mapping = TlbMapping::for_system(&sys);
        assert_eq!(mapping.l1_sets, 16);
        assert_eq!(mapping.l2_sets, 128);
        let va = VirtAddr::new(0x1234_5000);
        assert!(mapping.l1_set(va) < 16);
        assert!(mapping.l2_set(va) < 128);
    }

    #[test]
    fn pool_buckets_cover_all_sets() {
        let (mut sys, pid) = test_system();
        let config = AttackConfig::quick_test(1, false);
        let pool = TlbEvictionPool::build(&mut sys, pid, &config, 12).unwrap();
        for set in 0..pool.mapping().l1_sets {
            assert!(
                pool.by_l1_set[set as usize].len() >= 8,
                "L1 set {set} underpopulated"
            );
        }
        for set in 0..pool.mapping().l2_sets {
            assert!(
                pool.by_l2_set[set as usize].len() >= 8,
                "L2 set {set} underpopulated"
            );
        }
        assert!(pool.prep_cycles() > 0);
        assert_eq!(pool.minimal_size(), 12);
    }

    #[test]
    fn eviction_set_pages_are_congruent_with_target() {
        let (mut sys, pid) = test_system();
        let config = AttackConfig::quick_test(1, false);
        let pool = TlbEvictionPool::build(&mut sys, pid, &config, 12).unwrap();
        let target = VirtAddr::new(0x4000_5000);
        let set = pool.eviction_set_for(target, 12);
        assert_eq!(set.len(), 12);
        let mapping = pool.mapping();
        let l1_matches = set
            .addresses()
            .iter()
            .filter(|&&p| mapping.l1_set(p) == mapping.l1_set(target))
            .count();
        let l2_matches = set
            .addresses()
            .iter()
            .filter(|&&p| mapping.l2_set(p) == mapping.l2_set(target))
            .count();
        assert!(l1_matches >= 6);
        assert!(l2_matches >= 6);
        // The target itself is never part of its own eviction set.
        assert!(set
            .addresses()
            .iter()
            .all(|&p| p.page_number() != target.page_number()));
    }

    #[test]
    fn minimal_eviction_set_evicts_the_target_translation() {
        let (mut sys, pid) = test_system();
        let config = AttackConfig::quick_test(1, false);
        let pool = TlbEvictionPool::build(&mut sys, pid, &config, 12).unwrap();
        // A separate mapped target page.
        let target = sys
            .mmap(
                pid,
                PAGE_SIZE,
                MmapOptions {
                    populate: true,
                    ..MmapOptions::default()
                },
            )
            .unwrap();
        let set = pool.minimal_eviction_set_for(target);
        let mut evictions = 0;
        let trials = 20;
        for _ in 0..trials {
            sys.access(pid, target).unwrap();
            set.evict(&mut sys, pid).unwrap();
            let before = sys.machine().tlb_pmc().walks;
            sys.access(pid, target).unwrap();
            if sys.machine().tlb_pmc().walks > before {
                evictions += 1;
            }
        }
        assert!(
            evictions as f64 / trials as f64 > 0.9,
            "minimal eviction set should evict reliably, got {evictions}/{trials}"
        );
    }

    #[test]
    fn calibration_finds_a_size_above_single_level_associativity() {
        let (mut sys, pid) = test_system();
        let config = AttackConfig::quick_test(1, false);
        let cal = calibrate_tlb_eviction(&mut sys, pid, &config).unwrap();
        // The minimal set must at least cover one level's associativity. (On
        // real hardware the paper measures 12; our simulator has no
        // background TLB activity, so Algorithm 1 as written converges to a
        // smaller value — the attack still uses the paper's conservative 12,
        // see `AttackConfig` / EXPERIMENTS.md.)
        assert!(cal.minimal_size >= 4, "minimal size {}", cal.minimal_size);
        assert!(cal.minimal_size <= 16);
        // The Figure 3 curve is non-trivial and ends at a high miss rate.
        assert!(!cal.miss_rates.is_empty());
        let (_, last_rate) = *cal.miss_rates.last().unwrap();
        assert!(
            last_rate > 0.8,
            "16-page set should evict reliably, got {last_rate}"
        );
        // Miss rate at the largest size is at least the rate at the smallest.
        let (_, first_rate) = cal.miss_rates[0];
        assert!(last_rate >= first_rate - 0.1);
    }
}

//! Eviction-set machinery for the TLB and the last-level cache.
//!
//! PThammer needs two eviction capabilities per hammer target: flushing the
//! target's TLB entry (so the access triggers a page-table walk at all) and
//! flushing the target's Level-1 PTE from the inclusive LLC (so the walk's
//! final load reaches DRAM). Both are built purely from unprivileged memory
//! accesses; the privileged performance counters are only consulted in the
//! offline calibration phase, as in the paper.

pub mod llc;
pub mod tlb;

pub use llc::{
    calibrate_latency_threshold, calibrate_llc_eviction, LlcCalibration, LlcEvictionPool,
    LlcPageGroup, SelectedEvictionSet, LLC_EVICTION_PASSES,
};
pub use tlb::{
    calibrate_tlb_eviction, profile_tlb_set, TlbCalibration, TlbEvictionPool, TlbEvictionSet,
    TlbMapping,
};

//! End-to-end PThammer orchestration.
//!
//! [`PtHammer::run`] executes the complete attack of the paper against a
//! booted [`System`] by driving the staged pipeline of [`crate::pipeline`]:
//! `Prepare → PairSelect → Hammer → Detect → Exploit`, with the hammer
//! strategy selected by [`AttackConfig::hammer_mode`]. The returned
//! [`AttackOutcome`] carries the per-stage timings that Table II reports —
//! derived from the pipeline's event stream. [`PtHammer::run_observed`]
//! additionally attaches external [`EventSink`] subscribers to that stream.

use pthammer_kernel::{Pid, System};

use crate::config::AttackConfig;
use crate::error::AttackError;
use crate::events::EventSink;
use crate::pipeline::{self, AttackPipeline};
use crate::report::AttackOutcome;

pub use crate::pipeline::PreparedAttack;

/// The PThammer attack, parameterised by an [`AttackConfig`].
#[derive(Debug, Clone)]
pub struct PtHammer {
    config: AttackConfig,
}

impl PtHammer {
    /// Creates the attack.
    ///
    /// # Errors
    ///
    /// Fails if the configuration is invalid.
    pub fn new(config: AttackConfig) -> Result<Self, AttackError> {
        config.validate().map_err(AttackError::InvalidConfig)?;
        Ok(Self { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }

    /// Number of pages in the TLB eviction sets the attack uses: the paper's
    /// 12 on the Table I machines (`L1 ways + 2 × L2 ways`).
    pub fn tlb_eviction_pages(sys: &System) -> usize {
        pipeline::tlb_eviction_pages(sys)
    }

    /// Number of lines in the LLC eviction sets: one more than the LLC
    /// associativity (13 on the Lenovo machines, 17 on the Dell).
    pub fn llc_eviction_lines(sys: &System) -> usize {
        pipeline::llc_eviction_lines(sys)
    }

    /// Runs the one-off preparation: TLB pool, LLC pool and the spray.
    pub fn prepare(&self, sys: &mut System, pid: Pid) -> Result<PreparedAttack, AttackError> {
        pipeline::prepare_attack(sys, pid, &self.config)
    }

    /// Runs the full attack.
    pub fn run(&self, sys: &mut System, pid: Pid) -> Result<AttackOutcome, AttackError> {
        AttackPipeline::new(&self.config).run(sys, pid)
    }

    /// Runs the full attack with external event subscribers attached to the
    /// pipeline's bus. Sinks only observe — a run with subscribers is
    /// byte-identical to [`PtHammer::run`].
    pub fn run_observed(
        &self,
        sys: &mut System,
        pid: Pid,
        sinks: &mut [&mut dyn EventSink],
    ) -> Result<AttackOutcome, AttackError> {
        let mut pipeline = AttackPipeline::new(&self.config);
        for sink in sinks {
            pipeline.subscribe(*sink);
        }
        pipeline.run(sys, pid)
    }

    /// Like [`PtHammer::run_observed`], but drives an explicitly injected
    /// [`HammerStrategy`](crate::HammerStrategy) instead of the one
    /// `config.hammer_mode` names — the entry point pattern-synthesis
    /// strategies (crate `pthammer-patterns`) execute through. The injected
    /// strategy runs on the identical phase pipeline and emits the identical
    /// event stream as the built-in modes.
    pub fn run_observed_with_strategy(
        &self,
        sys: &mut System,
        pid: Pid,
        strategy: Box<dyn crate::HammerStrategy>,
        sinks: &mut [&mut dyn EventSink],
    ) -> Result<AttackOutcome, AttackError> {
        let mut pipeline = AttackPipeline::with_strategy(&self.config, strategy);
        for sink in sinks {
            pipeline.subscribe(*sink);
        }
        pipeline.run(sys, pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{AttackEvent, AttackPhase};
    use crate::hammer::strategy::HammerMode;
    use pthammer_cache::{CacheHierarchyConfig, LlcConfig, ReplacementPolicy};
    use pthammer_dram::FlipModelProfile;
    use pthammer_kernel::DefenseKind;
    use pthammer_machine::MachineConfig;

    /// A vulnerable machine small enough for an end-to-end attack in a test.
    pub(crate) fn vulnerable_test_machine(seed: u64) -> MachineConfig {
        let mut cfg = MachineConfig::test_small(FlipModelProfile::ci(), seed);
        cfg.cache = CacheHierarchyConfig {
            llc: LlcConfig {
                slices: 2,
                sets_per_slice: 256,
                ways: 8,
                latency: 18,
                replacement: ReplacementPolicy::Srrip,
                inclusive: true,
            },
            ..CacheHierarchyConfig::test_small(seed)
        };
        cfg
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut config = AttackConfig::quick_test(1, false);
        config.spray_bytes = 0;
        assert!(matches!(
            PtHammer::new(config),
            Err(AttackError::InvalidConfig(_))
        ));
    }

    #[test]
    fn eviction_set_sizes_follow_the_machine() {
        let sys = System::undefended(vulnerable_test_machine(3));
        assert_eq!(PtHammer::tlb_eviction_pages(&sys), 12);
        assert_eq!(PtHammer::llc_eviction_lines(&sys), 9);
    }

    #[test]
    fn end_to_end_attack_escalates_on_vulnerable_machine() {
        let mut sys = System::undefended(vulnerable_test_machine(7));
        let pid = sys.spawn_process(1000).unwrap();
        let config = AttackConfig {
            spray_bytes: 640 << 20,
            hammer_rounds_per_attempt: 1_500,
            max_attempts: 20,
            llc_profile_trials: 6,
            ..AttackConfig::quick_test(7, false)
        };
        let attack = PtHammer::new(config).unwrap();
        let outcome = attack.run(&mut sys, pid).unwrap();

        assert_eq!(outcome.uid_before, 1000);
        assert_eq!(outcome.defense, DefenseKind::Undefended);
        assert_eq!(outcome.hammer_mode, HammerMode::ImplicitDoubleSided);
        assert!(outcome.attempts >= 1);
        assert!(
            outcome.flips_observed >= 1,
            "ci-profile DRAM should produce flips: {outcome:?}"
        );
        assert!(outcome.timings.time_to_first_flip_cycles.is_some());
        assert!(outcome.implicit_dram_rate > 0.5);
        assert!(!outcome.hammer_cycle_samples.is_empty());
        // Escalation is probabilistic (the captured frame must be useful) but
        // with the ci profile and this budget it should normally succeed; if
        // it did, uid dropped to 0.
        if outcome.escalated {
            assert_eq!(outcome.uid_after, 0);
            assert!(outcome.timings.time_to_escalation_cycles.is_some());
        }
    }

    /// An event recorder asserting the pipeline's phase protocol: balanced
    /// enter/exit pairs, `Prepare` exactly once, and subscriber-derived
    /// counts matching the outcome.
    #[derive(Default)]
    struct Protocol {
        entered: Vec<AttackPhase>,
        exited: Vec<AttackPhase>,
        attempts: usize,
        iterations: u64,
        flips: usize,
    }

    impl EventSink for Protocol {
        fn on_event(&mut self, event: &AttackEvent) {
            match event {
                AttackEvent::PhaseEntered { phase, .. } => self.entered.push(*phase),
                AttackEvent::PhaseExited { phase, .. } => self.exited.push(*phase),
                AttackEvent::AttemptStarted { .. } => self.attempts += 1,
                AttackEvent::HammerFinished { stats, .. } => self.iterations += stats.rounds,
                AttackEvent::FlipObserved { .. } => self.flips += 1,
                _ => {}
            }
        }
    }

    #[test]
    fn observed_run_streams_consistent_events_and_identical_outcome() {
        let config = AttackConfig {
            spray_bytes: 640 << 20,
            hammer_rounds_per_attempt: 800,
            max_attempts: 4,
            llc_profile_trials: 6,
            ..AttackConfig::quick_test(11, false)
        };
        let attack = PtHammer::new(config).unwrap();

        let mut sys = System::undefended(vulnerable_test_machine(11));
        let pid = sys.spawn_process(1000).unwrap();
        let plain = attack.run(&mut sys, pid).unwrap();

        let mut sys = System::undefended(vulnerable_test_machine(11));
        let pid = sys.spawn_process(1000).unwrap();
        let mut protocol = Protocol::default();
        let observed = attack
            .run_observed(&mut sys, pid, &mut [&mut protocol])
            .unwrap();

        // Subscribers only observe: the outcome is identical either way.
        assert_eq!(plain, observed);
        // Balanced phase protocol, Prepare exactly once and first.
        assert_eq!(protocol.entered, protocol.exited);
        assert_eq!(protocol.entered[0], AttackPhase::Prepare);
        assert_eq!(
            protocol
                .entered
                .iter()
                .filter(|p| **p == AttackPhase::Prepare)
                .count(),
            1
        );
        // The event stream carries the same headline numbers the outcome
        // reports — no re-derivation needed.
        assert_eq!(protocol.attempts, observed.attempts);
        assert_eq!(protocol.iterations, observed.hammer_iterations);
        assert_eq!(protocol.flips, observed.flips_observed);
    }
}

//! End-to-end PThammer orchestration.
//!
//! [`PtHammer::run_with`] executes the complete attack of the paper against
//! a booted [`System`] by driving the staged pipeline of [`crate::pipeline`]:
//! `Prepare → PairSelect → Hammer → Detect → Exploit`. [`RunOptions`] is the
//! single configuration surface for everything that can be injected into a
//! run — event sinks, an explicit [`HammerStrategy`] and the [`Victim`]
//! the `Exploit` phase dispatches through; defaults come from
//! [`AttackConfig::hammer_mode`] and the paper's [`PteTakeover`] victim.
//! The returned
//! [`AttackOutcome`] carries the per-stage timings that Table II reports —
//! derived from the pipeline's event stream.
//!
//! The historical three-way entry-point sprawl (`run` / `run_observed` /
//! `run_observed_with_strategy`) is kept as thin deprecated wrappers over
//! `run_with`.

use pthammer_kernel::{Pid, System};

use crate::config::AttackConfig;
use crate::error::AttackError;
use crate::events::EventSink;
use crate::hammer::strategy::HammerStrategy;
use crate::pipeline::{self, AttackPipeline};
use crate::report::AttackOutcome;
use crate::victim::{PteTakeover, Victim};

pub use crate::pipeline::PreparedAttack;

/// Builder of everything injectable into one attack run: event sinks, the
/// hammer strategy and the victim.
///
/// An empty `RunOptions::new()` reproduces the historical default run
/// byte-for-byte: the strategy named by [`AttackConfig::hammer_mode`], the
/// [`PteTakeover`] victim and no subscribers.
///
/// # Examples
///
/// ```no_run
/// # use pthammer::{AttackConfig, PtHammer, RunOptions};
/// # use pthammer::victim::VictimChoice;
/// # fn run(sys: &mut pthammer_kernel::System, pid: pthammer_kernel::Pid)
/// # -> Result<(), pthammer::AttackError> {
/// let attack = PtHammer::new(AttackConfig::quick_test(42, false))?;
/// let outcome = attack.run_with(
///     sys,
///     pid,
///     RunOptions::new().victim(VictimChoice::CredCorruption.build()),
/// )?;
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct RunOptions<'s> {
    strategy: Option<Box<dyn HammerStrategy>>,
    victim: Option<Box<dyn Victim>>,
    sinks: Vec<&'s mut dyn EventSink>,
}

impl<'s> RunOptions<'s> {
    /// The default run: config-derived strategy, [`PteTakeover`] victim, no
    /// subscribers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Injects an explicit hammer strategy instead of the one
    /// `config.hammer_mode` names — the entry point pattern-synthesis
    /// strategies (crate `pthammer-patterns`) execute through.
    pub fn strategy(mut self, strategy: Box<dyn HammerStrategy>) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Injects the victim the `Exploit` phase dispatches through.
    pub fn victim(mut self, victim: Box<dyn Victim>) -> Self {
        self.victim = Some(victim);
        self
    }

    /// Attaches an external event subscriber. Sinks only observe — a run
    /// with subscribers is byte-identical to one without.
    pub fn observed_by(mut self, sink: &'s mut dyn EventSink) -> Self {
        self.sinks.push(sink);
        self
    }
}

impl std::fmt::Debug for RunOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOptions")
            .field("strategy", &self.strategy)
            .field("victim", &self.victim)
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

/// The PThammer attack, parameterised by an [`AttackConfig`].
#[derive(Debug, Clone)]
pub struct PtHammer {
    config: AttackConfig,
}

impl PtHammer {
    /// Creates the attack.
    ///
    /// # Errors
    ///
    /// Fails if the configuration is invalid.
    pub fn new(config: AttackConfig) -> Result<Self, AttackError> {
        config.validate().map_err(AttackError::InvalidConfig)?;
        Ok(Self { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }

    /// Number of pages in the TLB eviction sets the attack uses: the paper's
    /// 12 on the Table I machines (`L1 ways + 2 × L2 ways`).
    pub fn tlb_eviction_pages(sys: &System) -> usize {
        pipeline::tlb_eviction_pages(sys)
    }

    /// Number of lines in the LLC eviction sets: one more than the LLC
    /// associativity (13 on the Lenovo machines, 17 on the Dell).
    pub fn llc_eviction_lines(sys: &System) -> usize {
        pipeline::llc_eviction_lines(sys)
    }

    /// Runs the one-off preparation: TLB pool, LLC pool and the spray.
    pub fn prepare(&self, sys: &mut System, pid: Pid) -> Result<PreparedAttack, AttackError> {
        pipeline::prepare_attack(sys, pid, &self.config)
    }

    /// Runs the full attack with everything [`RunOptions`] injects: event
    /// sinks, an explicit hammer strategy and the victim the `Exploit`
    /// phase dispatches through.
    ///
    /// This is the single entry point; `RunOptions::new()` reproduces the
    /// historical default run byte-for-byte.
    pub fn run_with(
        &self,
        sys: &mut System,
        pid: Pid,
        options: RunOptions<'_>,
    ) -> Result<AttackOutcome, AttackError> {
        let strategy = options
            .strategy
            .unwrap_or_else(|| self.config.hammer_mode.strategy());
        let victim = options.victim.unwrap_or_else(|| Box::new(PteTakeover));
        let mut pipeline = AttackPipeline::with_parts(&self.config, strategy, victim);
        for sink in options.sinks {
            pipeline.subscribe(sink);
        }
        pipeline.run(sys, pid)
    }

    /// Runs the full attack with the default options. Deprecated: call
    /// [`Self::run_with`] with `RunOptions::new()` — this wrapper is that
    /// call verbatim.
    #[deprecated(since = "0.1.0", note = "use `run_with(sys, pid, RunOptions::new())`")]
    pub fn run(&self, sys: &mut System, pid: Pid) -> Result<AttackOutcome, AttackError> {
        self.run_with(sys, pid, RunOptions::new())
    }

    /// Runs the full attack with external event subscribers attached to the
    /// pipeline's bus. Deprecated: call [`Self::run_with`] with
    /// `RunOptions::new().observed_by(sink)` — sinks chain the same way and
    /// the run is byte-identical.
    #[deprecated(
        since = "0.1.0",
        note = "use `run_with(sys, pid, RunOptions::new().observed_by(sink))`"
    )]
    pub fn run_observed(
        &self,
        sys: &mut System,
        pid: Pid,
        sinks: &mut [&mut dyn EventSink],
    ) -> Result<AttackOutcome, AttackError> {
        let mut options = RunOptions::new();
        for sink in sinks {
            options = options.observed_by(&mut **sink);
        }
        self.run_with(sys, pid, options)
    }

    /// Like `run_observed`, but drives an explicitly injected
    /// [`HammerStrategy`]. Deprecated: call [`Self::run_with`] with
    /// `RunOptions::new().strategy(strategy).observed_by(sink)`.
    #[deprecated(
        since = "0.1.0",
        note = "use `run_with(sys, pid, RunOptions::new().strategy(strategy))`"
    )]
    pub fn run_observed_with_strategy(
        &self,
        sys: &mut System,
        pid: Pid,
        strategy: Box<dyn crate::HammerStrategy>,
        sinks: &mut [&mut dyn EventSink],
    ) -> Result<AttackOutcome, AttackError> {
        let mut options = RunOptions::new().strategy(strategy);
        for sink in sinks {
            options = options.observed_by(&mut **sink);
        }
        self.run_with(sys, pid, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{AttackEvent, AttackPhase};
    use crate::hammer::strategy::HammerMode;
    use pthammer_cache::{CacheHierarchyConfig, LlcConfig, ReplacementPolicy};
    use pthammer_dram::FlipModelProfile;
    use pthammer_kernel::DefenseKind;
    use pthammer_machine::MachineConfig;

    /// A vulnerable machine small enough for an end-to-end attack in a test.
    pub(crate) fn vulnerable_test_machine(seed: u64) -> MachineConfig {
        let mut cfg = MachineConfig::test_small(FlipModelProfile::ci(), seed);
        cfg.cache = CacheHierarchyConfig {
            llc: LlcConfig {
                slices: 2,
                sets_per_slice: 256,
                ways: 8,
                latency: 18,
                replacement: ReplacementPolicy::Srrip,
                inclusive: true,
            },
            ..CacheHierarchyConfig::test_small(seed)
        };
        cfg
    }

    /// Compat guarantee for the deprecated entry points: they must keep
    /// compiling (this test is the `#[allow(deprecated)]`-scoped witness
    /// under `clippy -D warnings`) and behave exactly like `run_with`.
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_run_with() {
        let config = AttackConfig {
            spray_bytes: 640 << 20,
            hammer_rounds_per_attempt: 800,
            max_attempts: 2,
            llc_profile_trials: 6,
            ..AttackConfig::quick_test(11, false)
        };
        let attack = PtHammer::new(config.clone()).unwrap();

        let mut sys = System::undefended(vulnerable_test_machine(11));
        let pid = sys.spawn_process(1000).unwrap();
        let via_builder = attack.run_with(&mut sys, pid, RunOptions::new()).unwrap();

        let mut sys = System::undefended(vulnerable_test_machine(11));
        let pid = sys.spawn_process(1000).unwrap();
        let via_run = attack.run(&mut sys, pid).unwrap();
        assert_eq!(via_builder, via_run);

        let mut sys = System::undefended(vulnerable_test_machine(11));
        let pid = sys.spawn_process(1000).unwrap();
        let via_observed = attack.run_observed(&mut sys, pid, &mut []).unwrap();
        assert_eq!(via_builder, via_observed);

        let mut sys = System::undefended(vulnerable_test_machine(11));
        let pid = sys.spawn_process(1000).unwrap();
        let via_strategy = attack
            .run_observed_with_strategy(&mut sys, pid, config.hammer_mode.strategy(), &mut [])
            .unwrap();
        assert_eq!(via_builder, via_strategy);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut config = AttackConfig::quick_test(1, false);
        config.spray_bytes = 0;
        assert!(matches!(
            PtHammer::new(config),
            Err(AttackError::InvalidConfig(_))
        ));
    }

    #[test]
    fn eviction_set_sizes_follow_the_machine() {
        let sys = System::undefended(vulnerable_test_machine(3));
        assert_eq!(PtHammer::tlb_eviction_pages(&sys), 12);
        assert_eq!(PtHammer::llc_eviction_lines(&sys), 9);
    }

    #[test]
    fn end_to_end_attack_escalates_on_vulnerable_machine() {
        let mut sys = System::undefended(vulnerable_test_machine(7));
        let pid = sys.spawn_process(1000).unwrap();
        let config = AttackConfig {
            spray_bytes: 640 << 20,
            hammer_rounds_per_attempt: 1_500,
            max_attempts: 20,
            llc_profile_trials: 6,
            ..AttackConfig::quick_test(7, false)
        };
        let attack = PtHammer::new(config).unwrap();
        let outcome = attack.run_with(&mut sys, pid, RunOptions::new()).unwrap();

        assert_eq!(outcome.uid_before, 1000);
        assert_eq!(outcome.defense, DefenseKind::Undefended);
        assert_eq!(outcome.hammer_mode, HammerMode::ImplicitDoubleSided);
        assert!(outcome.attempts >= 1);
        assert!(
            outcome.flips_observed >= 1,
            "ci-profile DRAM should produce flips: {outcome:?}"
        );
        assert!(outcome.timings.time_to_first_flip_cycles.is_some());
        assert!(outcome.implicit_dram_rate > 0.5);
        assert!(!outcome.hammer_cycle_samples.is_empty());
        // Escalation is probabilistic (the captured frame must be useful) but
        // with the ci profile and this budget it should normally succeed; if
        // it did, uid dropped to 0.
        if outcome.escalated {
            assert_eq!(outcome.uid_after, 0);
            assert!(outcome.timings.time_to_escalation_cycles.is_some());
        }
    }

    /// An event recorder asserting the pipeline's phase protocol: balanced
    /// enter/exit pairs, `Prepare` exactly once, and subscriber-derived
    /// counts matching the outcome.
    #[derive(Default)]
    struct Protocol {
        entered: Vec<AttackPhase>,
        exited: Vec<AttackPhase>,
        attempts: usize,
        iterations: u64,
        flips: usize,
    }

    impl EventSink for Protocol {
        fn on_event(&mut self, event: &AttackEvent) {
            match event {
                AttackEvent::PhaseEntered { phase, .. } => self.entered.push(*phase),
                AttackEvent::PhaseExited { phase, .. } => self.exited.push(*phase),
                AttackEvent::AttemptStarted { .. } => self.attempts += 1,
                AttackEvent::HammerFinished { stats, .. } => self.iterations += stats.rounds,
                AttackEvent::FlipObserved { .. } => self.flips += 1,
                _ => {}
            }
        }
    }

    #[test]
    fn observed_run_streams_consistent_events_and_identical_outcome() {
        let config = AttackConfig {
            spray_bytes: 640 << 20,
            hammer_rounds_per_attempt: 800,
            max_attempts: 4,
            llc_profile_trials: 6,
            ..AttackConfig::quick_test(11, false)
        };
        let attack = PtHammer::new(config).unwrap();

        let mut sys = System::undefended(vulnerable_test_machine(11));
        let pid = sys.spawn_process(1000).unwrap();
        let plain = attack.run_with(&mut sys, pid, RunOptions::new()).unwrap();

        let mut sys = System::undefended(vulnerable_test_machine(11));
        let pid = sys.spawn_process(1000).unwrap();
        let mut protocol = Protocol::default();
        let observed = attack
            .run_with(&mut sys, pid, RunOptions::new().observed_by(&mut protocol))
            .unwrap();

        // Subscribers only observe: the outcome is identical either way.
        assert_eq!(plain, observed);
        // Balanced phase protocol, Prepare exactly once and first.
        assert_eq!(protocol.entered, protocol.exited);
        assert_eq!(protocol.entered[0], AttackPhase::Prepare);
        assert_eq!(
            protocol
                .entered
                .iter()
                .filter(|p| **p == AttackPhase::Prepare)
                .count(),
            1
        );
        // The event stream carries the same headline numbers the outcome
        // reports — no re-derivation needed.
        assert_eq!(protocol.attempts, observed.attempts);
        assert_eq!(protocol.iterations, observed.hammer_iterations);
        assert_eq!(protocol.flips, observed.flips_observed);
    }
}

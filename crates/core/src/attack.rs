//! End-to-end PThammer orchestration.
//!
//! [`PtHammer::run`] executes the complete attack of the paper against a
//! booted [`System`]: one-off eviction-pool preparation, page-table spraying,
//! repeated pair selection / double-sided implicit hammering / checking, and
//! finally exploitation of the first usable bit flip. The returned
//! [`AttackOutcome`] carries the per-stage timings that Table II reports.

use rand::rngs::StdRng;
use rand::SeedableRng;

use pthammer_kernel::{Pid, System};

use crate::config::AttackConfig;
use crate::detect::scan_for_corrupted_mappings;
use crate::error::AttackError;
use crate::eviction::llc::LlcEvictionPool;
use crate::eviction::tlb::TlbEvictionPool;
use crate::exploit::attempt_escalation;
use crate::hammer::implicit::ImplicitHammer;
use crate::pairs::{candidate_pairs, conflict_threshold, verify_same_bank};
use crate::report::{AttackOutcome, StageTimings};
use crate::spray::spray_page_tables;

/// The PThammer attack, parameterised by an [`AttackConfig`].
#[derive(Debug, Clone)]
pub struct PtHammer {
    config: AttackConfig,
}

/// The prepared one-off state (pools + spray), exposed so that the benchmark
/// harness can time and reuse the stages individually.
#[derive(Debug, Clone)]
pub struct PreparedAttack {
    /// TLB eviction pool.
    pub tlb_pool: TlbEvictionPool,
    /// LLC eviction pool.
    pub llc_pool: LlcEvictionPool,
    /// The page-table spray region.
    pub spray: crate::spray::SprayRegion,
}

impl PtHammer {
    /// Creates the attack.
    ///
    /// # Errors
    ///
    /// Fails if the configuration is invalid.
    pub fn new(config: AttackConfig) -> Result<Self, AttackError> {
        config.validate().map_err(AttackError::InvalidConfig)?;
        Ok(Self { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }

    /// Number of pages in the TLB eviction sets the attack uses: the paper's
    /// 12 on the Table I machines (`L1 ways + 2 × L2 ways`).
    pub fn tlb_eviction_pages(sys: &System) -> usize {
        let mmu = &sys.machine().config().mmu;
        (mmu.l1_dtlb.ways + 2 * mmu.l2_stlb.ways) as usize
    }

    /// Number of lines in the LLC eviction sets: one more than the LLC
    /// associativity (13 on the Lenovo machines, 17 on the Dell).
    pub fn llc_eviction_lines(sys: &System) -> usize {
        sys.machine().config().cache.llc.ways as usize + 1
    }

    /// Runs the one-off preparation: TLB pool, LLC pool and the spray.
    pub fn prepare(&self, sys: &mut System, pid: Pid) -> Result<PreparedAttack, AttackError> {
        let tlb_pool =
            TlbEvictionPool::build(sys, pid, &self.config, Self::tlb_eviction_pages(sys))?;
        let llc_pool =
            LlcEvictionPool::build(sys, pid, &self.config, Self::llc_eviction_lines(sys))?;
        let spray = spray_page_tables(sys, pid, &self.config)?;
        Ok(PreparedAttack {
            tlb_pool,
            llc_pool,
            spray,
        })
    }

    /// Runs the full attack.
    pub fn run(&self, sys: &mut System, pid: Pid) -> Result<AttackOutcome, AttackError> {
        let attack_start = sys.rdtsc();
        let uid_before = sys.getuid(pid)?;
        let machine = sys.machine().config().name.clone();
        let clock_hz = sys.machine().clock_hz();
        let defense = sys.policy_name().to_string();
        let page_setting = if self.config.superpages {
            "superpage".to_string()
        } else {
            "regular".to_string()
        };

        let prepared = self.prepare(sys, pid)?;
        let row_span = sys.machine().config().dram.geometry.row_span_bytes();
        let conflict_thr = conflict_threshold(sys);
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        let mut timings = StageTimings {
            tlb_pool_prep_cycles: prepared.tlb_pool.prep_cycles(),
            llc_pool_prep_cycles: prepared.llc_pool.prep_cycles(),
            ..StageTimings::default()
        };

        let mut attempts = 0usize;
        let mut hammer_iterations = 0u64;
        let mut flips_observed = 0usize;
        let mut exploitable_flips = 0usize;
        let mut hammer_cycles_total = 0u64;
        let mut check_cycles_total = 0u64;
        let mut selection_cycles_total = 0u64;
        let mut tlb_selection_cycles_total = 0u64;
        let mut hammer_cycle_samples = Vec::new();
        let mut dram_hits = 0u64;
        let mut dram_rounds = 0u64;
        let mut route = None;
        let mut escalated_uid_after = uid_before;

        'attempts: while attempts < self.config.max_attempts
            && flips_observed < self.config.max_flips
        {
            let pairs = candidate_pairs(
                &prepared.spray,
                row_span,
                self.config.pair_candidates_per_round,
                &mut rng,
            );
            if pairs.is_empty() {
                return Err(AttackError::NoHammerPairs);
            }
            for pair in pairs {
                if attempts >= self.config.max_attempts {
                    break 'attempts;
                }
                attempts += 1;

                // Eviction-set selection for this pair.
                let tlb_sel_start = sys.rdtsc();
                let tlb_low = prepared.tlb_pool.minimal_eviction_set_for(pair.low);
                let tlb_high = prepared.tlb_pool.minimal_eviction_set_for(pair.high);
                tlb_selection_cycles_total += sys.rdtsc() - tlb_sel_start;
                let _ = (&tlb_low, &tlb_high);

                let hammer = ImplicitHammer::prepare(
                    sys,
                    pid,
                    pair,
                    &prepared.tlb_pool,
                    &prepared.llc_pool,
                    self.config.llc_profile_trials,
                )?;
                selection_cycles_total += hammer.selection_cycles();

                // Same-bank verification; skip pairs that do not conflict.
                let verification = verify_same_bank(
                    sys,
                    pid,
                    pair,
                    &hammer.tlb_low,
                    &hammer.tlb_high,
                    &hammer.llc_low,
                    &hammer.llc_high,
                    conflict_thr,
                    5,
                )?;
                if !verification.same_bank {
                    continue;
                }

                // Double-sided implicit hammering.
                let stats = hammer.hammer(sys, pid, self.config.hammer_rounds_per_attempt)?;
                hammer_cycles_total += stats.total_cycles;
                hammer_iterations += stats.rounds;
                dram_hits += stats.low_dram_hits + stats.high_dram_hits;
                dram_rounds += 2 * stats.rounds;
                if hammer_cycle_samples.len() < 50 {
                    hammer_cycle_samples.extend(hammer.round_cycle_samples(sys, pid, 10)?);
                }

                // Check for corrupted mappings.
                let (findings, check_cycles) =
                    scan_for_corrupted_mappings(sys, pid, &prepared.spray, &pair, row_span)?;
                check_cycles_total += check_cycles;
                if !findings.is_empty() && timings.time_to_first_flip_cycles.is_none() {
                    timings.time_to_first_flip_cycles = Some(sys.rdtsc() - attack_start);
                }
                flips_observed += findings.len();
                exploitable_flips += findings.iter().filter(|f| f.is_exploitable()).count();

                for finding in findings.iter().filter(|f| f.is_exploitable()) {
                    if let Some(found_route) = attempt_escalation(
                        sys,
                        pid,
                        &prepared.tlb_pool,
                        &prepared.spray,
                        finding,
                        uid_before,
                    )? {
                        timings.time_to_escalation_cycles = Some(sys.rdtsc() - attack_start);
                        escalated_uid_after = sys.getuid(found_route.escalated_pid())?;
                        route = Some(found_route);
                        break 'attempts;
                    }
                }
            }
        }

        let attempts_u64 = attempts.max(1) as u64;
        timings.tlb_selection_cycles = tlb_selection_cycles_total / attempts_u64;
        timings.llc_selection_cycles = selection_cycles_total / attempts_u64;
        timings.hammer_cycles_per_attempt = hammer_cycles_total / attempts_u64;
        timings.check_cycles_per_attempt = check_cycles_total / attempts_u64;

        let escalated = route.is_some();
        Ok(AttackOutcome {
            machine,
            clock_hz,
            page_setting,
            defense,
            escalated,
            route,
            attempts,
            hammer_iterations,
            hammer_cycles_total,
            flips_observed,
            exploitable_flips,
            uid_before,
            uid_after: escalated_uid_after,
            timings,
            hammer_cycle_samples,
            implicit_dram_rate: if dram_rounds == 0 {
                0.0
            } else {
                dram_hits as f64 / dram_rounds as f64
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pthammer_cache::{CacheHierarchyConfig, LlcConfig, ReplacementPolicy};
    use pthammer_dram::FlipModelProfile;
    use pthammer_machine::MachineConfig;

    /// A vulnerable machine small enough for an end-to-end attack in a test.
    pub(crate) fn vulnerable_test_machine(seed: u64) -> MachineConfig {
        let mut cfg = MachineConfig::test_small(FlipModelProfile::ci(), seed);
        cfg.cache = CacheHierarchyConfig {
            llc: LlcConfig {
                slices: 2,
                sets_per_slice: 256,
                ways: 8,
                latency: 18,
                replacement: ReplacementPolicy::Srrip,
                inclusive: true,
            },
            ..CacheHierarchyConfig::test_small(seed)
        };
        cfg
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut config = AttackConfig::quick_test(1, false);
        config.spray_bytes = 0;
        assert!(matches!(
            PtHammer::new(config),
            Err(AttackError::InvalidConfig(_))
        ));
    }

    #[test]
    fn eviction_set_sizes_follow_the_machine() {
        let sys = System::undefended(vulnerable_test_machine(3));
        assert_eq!(PtHammer::tlb_eviction_pages(&sys), 12);
        assert_eq!(PtHammer::llc_eviction_lines(&sys), 9);
    }

    #[test]
    fn end_to_end_attack_escalates_on_vulnerable_machine() {
        let mut sys = System::undefended(vulnerable_test_machine(7));
        let pid = sys.spawn_process(1000).unwrap();
        let config = AttackConfig {
            spray_bytes: 640 << 20,
            hammer_rounds_per_attempt: 1_500,
            max_attempts: 20,
            llc_profile_trials: 6,
            ..AttackConfig::quick_test(7, false)
        };
        let attack = PtHammer::new(config).unwrap();
        let outcome = attack.run(&mut sys, pid).unwrap();

        assert_eq!(outcome.uid_before, 1000);
        assert!(outcome.attempts >= 1);
        assert!(
            outcome.flips_observed >= 1,
            "ci-profile DRAM should produce flips: {outcome:?}"
        );
        assert!(outcome.timings.time_to_first_flip_cycles.is_some());
        assert!(outcome.implicit_dram_rate > 0.5);
        assert!(!outcome.hammer_cycle_samples.is_empty());
        // Escalation is probabilistic (the captured frame must be useful) but
        // with the ci profile and this budget it should normally succeed; if
        // it did, uid dropped to 0.
        if outcome.escalated {
            assert_eq!(outcome.uid_after, 0);
            assert!(outcome.timings.time_to_escalation_cycles.is_some());
        }
    }
}

//! Attack error types.

use core::fmt;

use pthammer_kernel::KernelError;

/// Errors surfaced by the attack library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackError {
    /// A system call made by the simulated attacker failed.
    Kernel(KernelError),
    /// The attack could not build a working eviction set / pool.
    EvictionSetUnavailable(String),
    /// No suitable double-sided hammer pairs could be found.
    NoHammerPairs,
    /// The hammering budget was exhausted without an exploitable bit flip.
    NoExploitableFlip {
        /// Number of hammer attempts performed.
        attempts: usize,
        /// Total bit flips observed (none of them exploitable).
        flips_observed: usize,
    },
    /// The page-table spray could not produce the layout the attack needs —
    /// distinct from [`AttackError::ExploitFailed`] so victims can match on
    /// spray exhaustion separately from exploitation failing on a real flip.
    SprayExhausted {
        /// Backing frames expected for the spray's user page.
        expected_frames: usize,
        /// Backing frames actually found.
        found_frames: usize,
    },
    /// A flip was found but exploitation failed.
    ExploitFailed(String),
    /// Invalid attack configuration.
    InvalidConfig(String),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Kernel(e) => write!(f, "system call failed: {e}"),
            AttackError::EvictionSetUnavailable(msg) => {
                write!(f, "could not build eviction set: {msg}")
            }
            AttackError::NoHammerPairs => write!(f, "no double-sided hammer pairs found"),
            AttackError::NoExploitableFlip {
                attempts,
                flips_observed,
            } => write!(
                f,
                "no exploitable bit flip after {attempts} attempts ({flips_observed} flips observed)"
            ),
            AttackError::SprayExhausted {
                expected_frames,
                found_frames,
            } => write!(
                f,
                "page-table spray exhausted: expected {expected_frames} backing frame(s) for the user page, found {found_frames}"
            ),
            AttackError::ExploitFailed(msg) => write!(f, "exploitation failed: {msg}"),
            AttackError::InvalidConfig(msg) => write!(f, "invalid attack configuration: {msg}"),
        }
    }
}

impl std::error::Error for AttackError {}

impl From<KernelError> for AttackError {
    fn from(e: KernelError) -> Self {
        AttackError::Kernel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(AttackError::NoHammerPairs.to_string().contains("pairs"));
        assert!(AttackError::Kernel(KernelError::OutOfMemory)
            .to_string()
            .contains("out of physical memory"));
        assert!(AttackError::NoExploitableFlip {
            attempts: 5,
            flips_observed: 2
        }
        .to_string()
        .contains('5'));
        assert!(AttackError::ExploitFailed("x".into())
            .to_string()
            .contains('x'));
        let spray = AttackError::SprayExhausted {
            expected_frames: 1,
            found_frames: 3,
        };
        assert!(spray.to_string().contains("spray exhausted"));
        assert!(spray.to_string().contains('3'));
        assert_ne!(
            std::mem::discriminant(&spray),
            std::mem::discriminant(&AttackError::ExploitFailed(String::new())),
            "spray exhaustion must be matchable apart from exploit failure"
        );
        assert!(AttackError::EvictionSetUnavailable("y".into())
            .to_string()
            .contains('y'));
        assert!(AttackError::InvalidConfig("z".into())
            .to_string()
            .contains('z'));
    }

    #[test]
    fn kernel_error_converts() {
        let e: AttackError = KernelError::OutOfMemory.into();
        assert_eq!(e, AttackError::Kernel(KernelError::OutOfMemory));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&AttackError::NoHammerPairs);
    }
}

//! Property tests pinning the incremental synthesizer scorer to its
//! reference oracle: `evaluate_incremental` — with recurrence-keyed
//! fast-forwarding and checkpointed prefix resumption — must be
//! bit-identical to the full `evaluate` loop on randomized patterns,
//! sampler shapes and evaluation budgets, including when one pattern's
//! saved prefix trace seeds the evaluation of a mutated sibling.

use proptest::prelude::*;

use pthammer_dram::{DramTimings, TrrConfig};
use pthammer_patterns::{evaluate, evaluate_incremental, HammerPattern, SynthesisConfig};

/// Candidate aggressor offsets beyond the mandatory base pair `[0, 1]`.
const EXTRA_OFFSETS: [i32; 12] = [-7, -6, -5, -4, -3, -2, -1, 2, 3, 4, 5, 6];

/// Builds a valid pattern from raw draws: `[0, 1]` plus deduplicated extra
/// offsets, then one coverage pass over every aggressor followed by the raw
/// schedule draws, dropping immediate repeats (the validator rejects
/// back-to-back touches — they would be row-buffer hits). The sanitization
/// is prefix-local, so two raw schedules sharing a prefix still share a
/// sanitized prefix — exactly the shape the synthesizer's mutations have.
fn pattern(extra: &[usize], schedule_raw: &[usize]) -> HammerPattern {
    let mut offsets = vec![0, 1];
    for &i in extra {
        let candidate = EXTRA_OFFSETS[i % EXTRA_OFFSETS.len()];
        if !offsets.contains(&candidate) {
            offsets.push(candidate);
        }
    }
    let mut schedule: Vec<u8> = (0..offsets.len() as u8).collect();
    for &s in schedule_raw {
        let idx = (s % offsets.len()) as u8;
        if schedule.last() != Some(&idx) {
            schedule.push(idx);
        }
    }
    schedule.truncate(16);
    let pattern = HammerPattern { offsets, schedule };
    pattern.validate().expect("generated pattern is valid");
    pattern
}

/// A synthesis configuration over the randomized sampler/budget draws; the
/// fast-test timings keep the refresh window far above any budget drawn
/// here, so the incremental path never falls back.
fn config(threshold: u32, capacity: usize, budget: u32, background: u32) -> SynthesisConfig {
    SynthesisConfig {
        trr: TrrConfig::enabled(threshold, capacity),
        timings: DramTimings::fast_test(),
        min_flip_threshold: 100,
        eval_op_budget: budget,
        background_rows_per_round: background,
        spray_strides: 8,
        generations: 2,
        population: 4,
        elites: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        if cfg!(debug_assertions) { 32 } else { 96 }
    ))]

    // Cold incremental evaluation (no prefix trace) must reproduce the
    // reference oracle exactly — same score, for any pattern shape, TRR
    // sampler geometry and op budget.
    #[test]
    fn incremental_scoring_matches_the_oracle(
        extra in prop::collection::vec(any::<usize>(), 0..7),
        schedule_raw in prop::collection::vec(any::<usize>(), 1..17),
        threshold in 3u32..80,
        capacity in 1usize..9,
        budget in 16u32..2_048,
        background in 0u32..5,
    ) {
        let pattern = pattern(&extra, &schedule_raw);
        let config = config(threshold, capacity, budget, background);
        let oracle = evaluate(&pattern, &config);
        let (incremental, trace, work) = evaluate_incremental(&pattern, &config, None);
        prop_assert_eq!(incremental, oracle);
        prop_assert!(trace.is_some(), "fast-test timings must not fall back");
        prop_assert_eq!(work.fallbacks, 0);
        // Stepped and prefix-reused ops never exceed the reference loop's
        // total (the remainder is fast-forwarded analytically).
        prop_assert!(work.ops_stepped + work.ops_reused <= work.ops_total);
    }

    // Resuming from a sibling's checkpointed prefix trace must stay
    // bit-identical to evaluating from scratch — for the mutation chains
    // the synthesizer produces (parent pattern scored first, then a mutant
    // sharing some schedule prefix) and for unrelated patterns sharing no
    // prefix at all.
    #[test]
    fn prefix_resumed_scoring_matches_the_oracle(
        extra in prop::collection::vec(any::<usize>(), 0..7),
        parent_raw in prop::collection::vec(any::<usize>(), 1..17),
        child_raw in prop::collection::vec(any::<usize>(), 1..17),
        shared_prefix in any::<usize>(),
        threshold in 3u32..80,
        capacity in 1usize..9,
        budget in 16u32..2_048,
        background in 0u32..5,
    ) {
        let parent = pattern(&extra, &parent_raw);
        // The child keeps a random-length prefix of the parent's schedule
        // (the synthesizer's mutation shape) and diverges after it.
        let keep = shared_prefix % (parent_raw.len() + 1);
        let mut child_schedule = parent_raw[..keep.min(parent_raw.len())].to_vec();
        child_schedule.extend_from_slice(&child_raw);
        child_schedule.truncate(16);
        let child = pattern(&extra, &child_schedule);

        let config = config(threshold, capacity, budget, background);
        let (_, parent_trace, _) = evaluate_incremental(&parent, &config, None);
        let parent_trace = parent_trace.expect("fast-test timings must not fall back");

        let oracle = evaluate(&child, &config);
        let (resumed, _, _) = evaluate_incremental(&child, &config, Some(&parent_trace));
        let (cold, _, _) = evaluate_incremental(&child, &config, None);
        prop_assert_eq!(&resumed, &oracle);
        prop_assert_eq!(&cold, &oracle);
    }
}

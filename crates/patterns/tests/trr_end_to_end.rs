//! End-to-end contrast on the TRR-equipped test machine: the paper's stock
//! implicit double-sided strategy is neutralized by the in-DRAM sampler,
//! while a synthesizer-found many-sided pattern still flips — through the
//! same implicit touch path, on the same machine, from the same seed.

use pthammer::{AttackConfig, HammerMode, PtHammer, RunOptions};
use pthammer_dram::FlipModelProfile;
use pthammer_kernel::System;
use pthammer_machine::MachineConfig;
use pthammer_patterns::{synthesize, PatternHammer, SynthesisConfig};

fn attack_config(seed: u64) -> AttackConfig {
    AttackConfig {
        // Eight pair strides of sprayed VA, so many-sided patterns have room
        // for aggressor sets larger than the TRR sampler.
        spray_bytes: 1 << 30,
        hammer_rounds_per_attempt: 1_200,
        max_attempts: 4,
        llc_profile_trials: 6,
        ..AttackConfig::quick_test(seed, false)
    }
}

#[test]
fn trr_stops_double_sided_but_not_the_synthesized_pattern() {
    let seed = 0x7472_7201; // "trr"
    let machine = MachineConfig::ci_small_trr(FlipModelProfile::ci(), seed);
    assert!(machine.dram.trr.enabled);

    // Stock implicit double-sided: the TRR sampler tracks both aggressors
    // and refreshes the victim's neighbours before any threshold is crossed.
    let mut sys = System::undefended(machine.clone());
    let pid = sys.spawn_process(1000).unwrap();
    let attack = PtHammer::new(attack_config(seed)).unwrap();
    let stock = attack.run_with(&mut sys, pid, RunOptions::new()).unwrap();
    assert_eq!(stock.hammer_mode, HammerMode::ImplicitDoubleSided);
    assert!(
        stock.implicit_dram_rate > 0.5,
        "the hammer itself works — TRR, not the touch path, stops it: {stock:?}"
    );
    assert_eq!(
        stock.flips_observed, 0,
        "TRR must neutralize stock double-sided hammering: {stock:?}"
    );

    // Synthesized many-sided pattern on the identical machine and seed.
    let synth = synthesize(&SynthesisConfig::for_machine(&machine), seed);
    eprintln!(
        "synthesized {} (peak {} / trr_fired {} over {} evaluations)",
        synth.best, synth.score.peak_victim_disturbance, synth.score.trr_fired, synth.evaluations
    );
    assert!(synth.best.sides() > machine.dram.trr.sampler_capacity);
    let strategy = Box::new(PatternHammer::new(synth.best.clone()).unwrap());
    let mut sys = System::undefended(machine);
    let pid = sys.spawn_process(1000).unwrap();
    let outcome = attack
        .run_with(&mut sys, pid, RunOptions::new().strategy(strategy))
        .unwrap();
    eprintln!(
        "pattern outcome: attempts {} flips {} dram rate {:.3}",
        outcome.attempts, outcome.flips_observed, outcome.implicit_dram_rate
    );
    assert!(
        outcome.flips_observed >= 1,
        "the synthesized pattern must slip past the sampler: {outcome:?}"
    );
}

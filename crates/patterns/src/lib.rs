//! # pthammer-patterns — many-sided pattern synthesis for the TRR era
//!
//! The paper's DDR3 machines carry no in-DRAM mitigation, but the DRAM
//! layer models a bounded Target Row Refresh sampler
//! ([`pthammer_dram::TrrConfig`]). This crate is the offensive counterpart:
//! the TRRespass/Blacksmith-style search for non-uniform, many-sided access
//! patterns that slip past such a sampler — rebuilt on PThammer's *implicit*
//! (PTE-walk) touch path, so the synthesized patterns hammer kernel
//! page-table rows the attacker never accesses directly.
//!
//! * [`HammerPattern`] — the typed pattern IR: aggressor offsets (in pair
//!   strides around a timing-verified base pair), phase/ordering, intensity.
//! * [`synth`] — the deterministic seeded synthesizer: mutate → score
//!   against the machine's actual TRR-enabled bank model (disturbance
//!   delivered past the sampler, `trr_fired` pressure) → keep elites. Fully
//!   reproducible from the seed.
//! * [`PatternHammer`] — a [`pthammer::HammerStrategy`] executing a pattern
//!   through the attack pipeline with the same `RoundOp`/event-bus
//!   telemetry as the built-in modes.
//! * [`SynthesisCache`] — content-addressed caching of synthesis results in
//!   a `pthammer-store` for tools that re-search the same machine (e.g.
//!   `repro_trr --synth-cache`); store-backed campaigns already cache whole
//!   pattern cells, so resumed campaigns never re-search either way.
//! * [`PatternChoice`] — the campaign-harness axis value naming how a cell
//!   obtains its pattern.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::str::FromStr;

use serde::ser::JsonWriter;
use serde::{Deserialize, Serialize};

pub mod cache;
pub mod pattern;
pub mod strategy;
pub mod synth;

pub use cache::{SynthesisCache, SynthesisSource, SYNTH_SCHEMA_VERSION};
pub use pattern::{pattern_from_json, HammerPattern, MAX_OFFSET, MAX_SCHEDULE, MAX_SIDES};
pub use strategy::PatternHammer;
pub use synth::{
    evaluate, evaluate_incremental, synthesis_result_from_json, synthesize,
    synthesize_with_telemetry, PatternScore, SchedulePrefixTrace, SynthTelemetry, SynthesisConfig,
    SynthesisResult,
};

/// How a campaign cell obtains its hammer pattern — the pattern axis of the
/// harness's `ScenarioMatrix`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternChoice {
    /// Run the deterministic synthesizer against the cell's machine (seeded
    /// from the cell seed) and hammer the best pattern found.
    Synthesized,
    /// Hammer a fixed uniform 4-sided rotation — the naive many-sided
    /// baseline TRRespass showed to be insufficient against orderly
    /// samplers, kept as a control for the synthesized patterns.
    UniformFourSided,
}

impl PatternChoice {
    /// Every pattern choice, in canonical axis order.
    pub fn all() -> Vec<PatternChoice> {
        vec![PatternChoice::Synthesized, PatternChoice::UniformFourSided]
    }

    /// Canonical kebab-case name (reports, store keys, CLI).
    pub fn name(&self) -> &'static str {
        match self {
            PatternChoice::Synthesized => "synthesized",
            PatternChoice::UniformFourSided => "uniform-4-sided",
        }
    }

    /// Resolves the choice to a concrete pattern for a synthesis
    /// configuration and seed (the synthesizer runs only for
    /// [`PatternChoice::Synthesized`]).
    pub fn resolve(&self, config: &SynthesisConfig, seed: u64) -> HammerPattern {
        match self {
            PatternChoice::Synthesized => synthesize(config, seed).best,
            PatternChoice::UniformFourSided => HammerPattern::uniform_n_sided(4),
        }
    }
}

impl fmt::Display for PatternChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for PatternChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PatternChoice::all()
            .into_iter()
            .find(|p| p.name() == s)
            .ok_or_else(|| format!("unknown pattern choice `{s}`"))
    }
}

// Hand-written: the canonical kebab-case spelling `FromStr` accepts.
impl Serialize for PatternChoice {
    fn serialize(&self, w: &mut JsonWriter) {
        w.string(self.name());
    }
}

impl Deserialize for PatternChoice {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choice_names_round_trip() {
        for choice in PatternChoice::all() {
            assert_eq!(choice.name().parse::<PatternChoice>().unwrap(), choice);
            assert_eq!(choice.to_string(), choice.name());
        }
        assert!("nine-sided".parse::<PatternChoice>().is_err());
        let mut w = JsonWriter::new(false);
        PatternChoice::Synthesized.serialize(&mut w);
        assert_eq!(w.into_string(), "\"synthesized\"");
    }

    #[test]
    fn uniform_choice_resolves_without_searching() {
        let config = SynthesisConfig {
            trr: pthammer_dram::TrrConfig::enabled(40, 4),
            timings: pthammer_dram::DramTimings::fast_test(),
            min_flip_threshold: 100,
            eval_op_budget: 1_024,
            background_rows_per_round: 2,
            spray_strides: 8,
            generations: 2,
            population: 4,
            elites: 1,
        };
        assert_eq!(
            PatternChoice::UniformFourSided.resolve(&config, 1),
            HammerPattern::uniform_n_sided(4)
        );
        assert_eq!(
            PatternChoice::Synthesized.resolve(&config, 1),
            synthesize(&config, 1).best
        );
    }
}

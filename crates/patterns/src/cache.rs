//! Content-addressed caching of synthesis results.
//!
//! Synthesis is deterministic, so its results are perfect cache fodder: the
//! key hashes everything the result depends on — the synthesis schema
//! version, the full [`SynthesisConfig`] fingerprint and the seed — and the
//! value is the canonical [`SynthesisResult`] JSON. The cache reuses the
//! [`CellStore`] machinery of `pthammer-store` (atomic write-through,
//! content-hash-verified reads, manifest-guarded opens), and a hit hands
//! back exactly the bytes a fresh search would produce. Tools that
//! re-search the same machine (e.g. `repro_trr --synth-cache`) consult it;
//! store-backed campaigns cache whole pattern cells instead, so resumed
//! campaigns never re-search either way.

use std::path::{Path, PathBuf};

use pthammer_store::{
    fnv1a_128, CellKey, CellLookup, CellStore, StoreError, StoreManifest, STORE_SCHEMA_VERSION,
};

use crate::synth::{synthesis_result_from_json, synthesize, SynthesisConfig, SynthesisResult};

/// Version of the synthesis scheme (the evaluator, the search loop, and the
/// result encoding). Bump on any behavioral change so stale cached patterns
/// are invalidated instead of resurrected.
pub const SYNTH_SCHEMA_VERSION: u32 = 1;

/// How a cached synthesis request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthesisSource {
    /// Served from the store (hash-verified, byte-identical to a fresh run).
    Cached,
    /// Computed by this invocation and written through.
    Computed,
    /// Computed because a store entry existed but failed verification or
    /// decoding.
    Recomputed,
}

/// A content-addressed, on-disk synthesis cache.
#[derive(Debug)]
pub struct SynthesisCache {
    store: CellStore,
}

impl SynthesisCache {
    /// The manifest binding a cache directory to the synthesis schema.
    ///
    /// Per-request variability (config, seed) lives entirely in the keys, so
    /// one cache serves every machine and seed; the manifest only refuses
    /// directories written by an incompatible store or synthesis schema.
    pub fn manifest() -> StoreManifest {
        StoreManifest {
            store_schema: STORE_SCHEMA_VERSION,
            seed_schema: SYNTH_SCHEMA_VERSION,
            base_seed: 0,
            superpages: false,
            config_fingerprint: format!("{:032x}", fnv1a_128(b"pthammer-patterns synthesis cache")),
        }
    }

    /// Opens (or initializes) the cache at `root`.
    ///
    /// # Errors
    ///
    /// Propagates [`CellStore::open`] errors, including a manifest mismatch
    /// for directories created under another schema.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Ok(Self {
            store: CellStore::open(root, &Self::manifest())?,
        })
    }

    /// Deletes a cache directory (missing is fine).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than "not found".
    pub fn wipe(root: impl AsRef<Path>) -> std::io::Result<()> {
        CellStore::wipe(root)
    }

    /// The content-address of one synthesis request.
    pub fn key(config: &SynthesisConfig, seed: u64) -> CellKey {
        CellKey::from_canonical(&format!(
            "pthammer-synth|s{}|{}|seed={}",
            SYNTH_SCHEMA_VERSION,
            config.canonical_string(),
            seed,
        ))
    }

    /// Returns the cached result for `(config, seed)`, if present and valid.
    pub fn get(&self, config: &SynthesisConfig, seed: u64) -> Option<SynthesisResult> {
        match self.store.get(&Self::key(config, seed)) {
            CellLookup::Hit(body) => synthesis_result_from_json(&body).ok(),
            CellLookup::Miss | CellLookup::Corrupt => None,
        }
    }

    /// Synthesizes through the cache: a verified hit is returned as-is
    /// (byte-identical to a fresh search, by determinism plus the canonical
    /// JSON round trip); a miss or corrupt entry triggers the search and an
    /// atomic write-through.
    ///
    /// # Errors
    ///
    /// Returns store errors from the write-through; lookups never fail
    /// (corruption means recompute).
    pub fn synthesize_cached(
        &self,
        config: &SynthesisConfig,
        seed: u64,
    ) -> Result<(SynthesisResult, SynthesisSource), StoreError> {
        let key = Self::key(config, seed);
        let corrupt = match self.store.get(&key) {
            CellLookup::Hit(body) => match synthesis_result_from_json(&body) {
                Ok(result) => return Ok((result, SynthesisSource::Cached)),
                Err(_) => true,
            },
            CellLookup::Corrupt => true,
            CellLookup::Miss => false,
        };
        let result = synthesize(config, seed);
        let body = serde_json::to_string(&result).expect("synthesis result serializes");
        self.store.put(&key, &body)?;
        Ok((
            result,
            if corrupt {
                SynthesisSource::Recomputed
            } else {
                SynthesisSource::Computed
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pthammer_dram::{DramTimings, TrrConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_cache() -> (SynthesisCache, std::path::PathBuf) {
        let root = std::env::temp_dir().join(format!(
            "pthammer-synth-cache-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = SynthesisCache::wipe(&root);
        (SynthesisCache::open(&root).unwrap(), root)
    }

    fn config() -> SynthesisConfig {
        SynthesisConfig {
            trr: TrrConfig::enabled(40, 4),
            timings: DramTimings::fast_test(),
            min_flip_threshold: 100,
            eval_op_budget: 2_048,
            background_rows_per_round: 2,
            spray_strides: 8,
            generations: 4,
            population: 8,
            elites: 2,
        }
    }

    #[test]
    fn keys_separate_config_and_seed() {
        let a = SynthesisCache::key(&config(), 1);
        assert_eq!(a, SynthesisCache::key(&config(), 1));
        assert_ne!(a, SynthesisCache::key(&config(), 2));
        let mut other = config();
        other.trr.sampler_capacity += 1;
        assert_ne!(a, SynthesisCache::key(&other, 1));
    }

    #[test]
    fn cold_then_warm_requests_are_byte_identical() {
        let (cache, root) = temp_cache();
        let cfg = config();
        let (cold, source) = cache.synthesize_cached(&cfg, 11).unwrap();
        assert_eq!(source, SynthesisSource::Computed);
        let (warm, source) = cache.synthesize_cached(&cfg, 11).unwrap();
        assert_eq!(source, SynthesisSource::Cached);
        assert_eq!(cold, warm);
        assert_eq!(
            serde_json::to_string(&cold).unwrap(),
            serde_json::to_string(&warm).unwrap(),
            "a cache hit must reproduce the fresh search byte for byte"
        );
        assert_eq!(cache.get(&cfg, 11), Some(cold));
        assert_eq!(cache.get(&cfg, 12), None);
        SynthesisCache::wipe(&root).unwrap();
    }

    #[test]
    fn corrupt_entries_are_recomputed_not_trusted() {
        let (cache, root) = temp_cache();
        let cfg = config();
        let (fresh, _) = cache.synthesize_cached(&cfg, 3).unwrap();
        // Corrupt the stored body on disk.
        let key = SynthesisCache::key(&cfg, 3);
        let path = root.join("cells").join(format!("{}.json", key.hex()));
        assert!(path.exists(), "cache entry should exist at {path:?}");
        std::fs::write(&path, "garbage").unwrap();
        let (recovered, source) = cache.synthesize_cached(&cfg, 3).unwrap();
        assert_eq!(source, SynthesisSource::Recomputed);
        assert_eq!(recovered, fresh);
        SynthesisCache::wipe(&root).unwrap();
    }
}

//! Deterministic, seeded synthesis of TRR-evading hammer patterns.
//!
//! The synthesizer searches pattern space (aggressor offsets, per-round
//! ordering, intensity) with a small elitist evolutionary loop. Candidates
//! are scored against the *actual* bank-level DRAM model of the target
//! machine — [`pthammer_dram::Bank`] with the machine's
//! [`TrrConfig`] and timings — by the disturbance they deliver **past the
//! TRR sampler** to the detectable victim row (the row between the base
//! pair, which the attack's detection phase scans). A deterministic
//! round-robin stream of background rows models the eviction-set DRAM
//! traffic that accompanies a real implicit-hammer round and keeps the
//! sampler under the same churn pressure it sees in the full simulation.
//!
//! Everything is a pure function of the [`SynthesisConfig`] and the seed:
//! same inputs, same best pattern, bit for bit — which is what lets campaign
//! cells synthesize on the fly at any thread count and lets the
//! content-addressed cache ([`crate::SynthesisCache`]) resume searches
//! byte-identically.
//!
//! # Incremental scoring
//!
//! Candidate scoring dominates synthesis cost, so the loop scores through
//! [`evaluate_incremental`] instead of the reference [`evaluate`] loop. The
//! incremental path exploits two structural facts of the evaluation, and is
//! bit-identical to the reference by construction (property-tested):
//!
//! * **Round-boundary recurrence.** Within one refresh window the bank's
//!   future behaviour under the open-page policy is fully determined by
//!   `(open row, TRR sampler state, background-stream phase)`. The scorer
//!   checkpoints that reduced state at every round boundary; as soon as a
//!   round starts in a previously seen state the remaining rounds are a
//!   known cycle and their TRR fires and victim disturbance are computed
//!   analytically instead of simulated.
//! * **Prefix reuse.** A mutated schedule shares a prefix with its parent.
//!   Scoring captures a [`BankCheckpoint`] after every schedule entry of the
//!   first round; a child resumes from the longest shared prefix
//!   (delta-evaluation from the mutation point) instead of replaying it.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::ser::JsonWriter;
use serde::{Deserialize, Serialize};

use pthammer_dram::{
    Bank, BankCheckpoint, DramTimings, FlipModel, FlipModelProfile, RowBufferPolicy, TrrConfig,
};
use pthammer_machine::MachineConfig;
use pthammer_types::Cycles;

use crate::pattern::{pattern_from_json, HammerPattern, MAX_OFFSET, MAX_SCHEDULE, MAX_SIDES};

/// Domain-separation salt folded into every synthesis RNG seed.
const SYNTH_SEED_SALT: u64 = 0x5452_5265_7370_6173; // "TRRespas"

/// Rows in the evaluation bank; aggressors live around the middle.
const EVAL_ROWS: u32 = 96;

/// Base aggressor row inside the evaluation bank (`offset 0`). Chosen so
/// every legal offset (±[`MAX_OFFSET`] strides = ±14 rows) stays in range.
const EVAL_BASE_ROW: u32 = 40;

/// First background row; the churn stream rotates from here upward, far from
/// any aggressor neighbourhood.
const EVAL_BACKGROUND_BASE_ROW: u32 = 72;

/// Distinct rows the background stream rotates over, mimicking eviction-set
/// lines whose frames are spread across the bank.
const EVAL_BACKGROUND_ROWS: u32 = 12;

/// Simulated cycles charged per evaluation DRAM access (the order of one
/// evict-evict-touch trio of the real hammer loop).
const EVAL_CYCLES_PER_ACCESS: u64 = 300;

/// Everything a synthesis run depends on. All fields enter the cache
/// fingerprint; two configs with equal [`canonical_string`]s
/// (plus equal seeds) produce bit-identical results.
///
/// [`canonical_string`]: SynthesisConfig::canonical_string
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthesisConfig {
    /// The TRR mitigation of the machine under attack.
    pub trr: TrrConfig,
    /// DRAM timings of the machine (drives refresh-window rollovers during
    /// evaluation).
    pub timings: DramTimings,
    /// The flip profile's minimum disturbance threshold — the score a
    /// pattern must beat for a weak victim cell to flip at all.
    pub min_flip_threshold: u32,
    /// Total DRAM accesses each candidate may spend during evaluation (a
    /// fair op budget: schedules with fewer touches get more rounds).
    pub eval_op_budget: u32,
    /// Background (eviction-traffic stand-in) accesses interleaved per
    /// pattern round.
    pub background_rows_per_round: u32,
    /// How many pair strides of sprayed virtual address space the attack
    /// has. A pattern spanning `s` strides only arms for base pairs at
    /// least `s` strides from the region edges, so wide sets trade delivered
    /// disturbance against how often they fit — the score accounts for it.
    pub spray_strides: u32,
    /// Search generations.
    pub generations: u32,
    /// Population size per generation.
    pub population: u32,
    /// Elites carried over unchanged per generation.
    pub elites: u32,
}

impl SynthesisConfig {
    /// Synthesis configuration for a machine: its TRR sampler, timings and
    /// flip thresholds, with a CI-friendly search budget.
    pub fn for_machine(machine: &MachineConfig) -> Self {
        Self {
            trr: machine.dram.trr,
            timings: machine.dram.timings,
            min_flip_threshold: machine.dram.flip_profile.min_threshold,
            eval_op_budget: 4_096,
            // Conservative lower bound: no background churn is assumed, so a
            // winning pattern must defeat the sampler entirely on its own
            // (real eviction-set DRAM traffic only adds pressure).
            background_rows_per_round: 0,
            spray_strides: 8,
            generations: 10,
            population: 14,
            elites: 4,
        }
    }

    /// Validates the search knobs.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.population == 0 || self.generations == 0 {
            return Err("population and generations must be non-zero".to_string());
        }
        if self.elites == 0 || self.elites > self.population {
            return Err("elites must be in 1..=population".to_string());
        }
        if self.eval_op_budget < MAX_SCHEDULE as u32 {
            return Err("eval_op_budget must cover at least one round".to_string());
        }
        if self.spray_strides == 0 {
            return Err("spray_strides must be non-zero".to_string());
        }
        Ok(())
    }

    /// Canonical, versioned textual form of every field — the input to the
    /// cache fingerprint. Field order is fixed; extending the struct must
    /// extend this string (changing every fingerprint, which is the point).
    pub fn canonical_string(&self) -> String {
        format!(
            "trr={},{},{}|t={},{},{},{}|minflip={}|budget={}|bg={}|strides={}|gen={}|pop={}|elite={}",
            self.trr.enabled,
            self.trr.activation_threshold,
            self.trr.sampler_capacity,
            self.timings.cas,
            self.timings.rcd,
            self.timings.rp,
            self.timings.refresh_window,
            self.min_flip_threshold,
            self.eval_op_budget,
            self.background_rows_per_round,
            self.spray_strides,
            self.generations,
            self.population,
            self.elites,
        )
    }
}

/// Deterministic score of one candidate pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternScore {
    /// Peak disturbance the detectable victim row (between the base pair)
    /// accumulated during evaluation — the quantity TRR exists to suppress.
    pub peak_victim_disturbance: u32,
    /// [`peak_victim_disturbance`](Self::peak_victim_disturbance) discounted
    /// by how often the pattern's span fits a random base pair inside the
    /// configured spray — the synthesizer's actual objective. A physically
    /// devastating pattern that never arms is worthless.
    pub expected_disturbance: u32,
    /// Targeted refreshes TRR issued against the pattern during evaluation
    /// (a pattern that never trips the sampler scores 0 here).
    pub trr_fired: u32,
    /// Implicit touches one round of the pattern costs.
    pub touches_per_round: u32,
}

impl PatternScore {
    /// Whether the delivered disturbance can flip a weakest-threshold cell.
    pub fn beats_threshold(&self, min_flip_threshold: u32) -> bool {
        self.peak_victim_disturbance >= min_flip_threshold
    }
}

/// Scores `pattern` on a fresh TRR-enabled bank — the **reference oracle**.
///
/// The evaluation replays the pattern's activation schedule (plus the
/// deterministic background stream) through [`Bank::access`] — the same
/// row-buffer, refresh-window and TRR-sampler code the full simulation runs
/// — and tracks the peak disturbance of the detectable victim row.
///
/// This is the semantic definition of a pattern's score. The synthesis loop
/// itself scores through [`evaluate_incremental`], which is bit-identical
/// but skips work via recurrence fast-forwarding and prefix reuse; this full
/// loop remains the oracle the incremental path is property-tested against
/// (and its fallback when a refresh-window rollover is possible).
pub fn evaluate(pattern: &HammerPattern, config: &SynthesisConfig) -> PatternScore {
    let mut bank = Bank::new(0, EVAL_ROWS);
    // Invulnerable cells: evaluation measures disturbance, not flips, and
    // skips the weak-cell derivation entirely.
    let flip_model = FlipModel::new(FlipModelProfile::invulnerable(), 0, 8_192);
    let rows: Vec<u32> = pattern
        .aggressor_rows(i64::from(EVAL_BASE_ROW))
        .into_iter()
        .map(|r| u32::try_from(r).expect("validated offsets stay in the eval bank"))
        .collect();
    let victim = EVAL_BASE_ROW + 1;

    let mut now = Cycles::ZERO;
    let mut ops = 0u32;
    let mut peak = 0u32;
    let mut trr_fired = 0u32;
    let mut background_cursor = 0u32;
    let access = |bank: &mut Bank, row: u32, now: &mut Cycles| {
        let result = bank.access(
            row,
            *now,
            &config.timings,
            RowBufferPolicy::OpenPage,
            &flip_model,
            &config.trr,
        );
        *now += Cycles::new(EVAL_CYCLES_PER_ACCESS);
        u32::from(result.trr_fired)
    };
    while ops < config.eval_op_budget {
        for &entry in &pattern.schedule {
            trr_fired += access(&mut bank, rows[usize::from(entry)], &mut now);
            ops += 1;
        }
        for _ in 0..config.background_rows_per_round {
            let row = EVAL_BACKGROUND_BASE_ROW + (background_cursor % EVAL_BACKGROUND_ROWS);
            background_cursor += 1;
            trr_fired += access(&mut bank, row, &mut now);
            ops += 1;
        }
        peak = peak.max(bank.disturbance_of(victim));
    }

    // Expected delivered disturbance: a pattern spanning `s` strides fits a
    // uniformly drawn base pair with probability ~`(strides - s) / strides`.
    let strides = config.spray_strides;
    let fit = strides.saturating_sub(pattern.span().unsigned_abs()) as u64;
    PatternScore {
        peak_victim_disturbance: peak,
        expected_disturbance: (u64::from(peak) * fit / u64::from(strides)) as u32,
        trr_fired,
        touches_per_round: pattern.touches_per_round() as u32,
    }
}

/// Work accounting of the incremental scorer, summed over a synthesis run
/// (or reported per evaluation by [`evaluate_incremental`]).
///
/// `ops_total / ops_stepped` is the scorer's effective speedup over the
/// reference loop: every avoided op is one [`Bank::access`] (plus its TRR
/// and disturbance bookkeeping) that was fast-forwarded or reused instead of
/// simulated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SynthTelemetry {
    /// DRAM accesses the reference loop would have simulated.
    pub ops_total: u64,
    /// DRAM accesses actually simulated through [`Bank::access`].
    pub ops_stepped: u64,
    /// Accesses skipped by resuming from a parent's schedule-prefix
    /// checkpoint.
    pub ops_reused: u64,
    /// Evaluations that hit a round-boundary recurrence and fast-forwarded
    /// the remaining rounds analytically.
    pub fast_forwards: u64,
    /// Evaluations that fell back to the reference loop (possible
    /// refresh-window rollover or counter-range limits).
    pub fallbacks: u64,
}

impl SynthTelemetry {
    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: &SynthTelemetry) {
        self.ops_total += other.ops_total;
        self.ops_stepped += other.ops_stepped;
        self.ops_reused += other.ops_reused;
        self.fast_forwards += other.fast_forwards;
        self.fallbacks += other.fallbacks;
    }

    /// Effective speedup over the reference loop, ×100 (integer, so it can
    /// be pinned exactly in the perf baselines): `500` means the scorer
    /// simulated a fifth of the reference loop's accesses.
    pub fn speedup_x100(&self) -> u64 {
        (self.ops_total * 100)
            .checked_div(self.ops_stepped)
            .unwrap_or(0)
    }
}

/// Checkpoints of one evaluation's first round, taken after every schedule
/// entry, plus the entry's resolved bank rows. A mutated child schedule
/// resumes scoring from the longest prefix whose resolved rows match the
/// parent's — delta-evaluation from the mutation point.
///
/// Only valid for the exact [`SynthesisConfig`] it was captured under; the
/// config's canonical string is embedded and checked on resume.
#[derive(Debug, Clone)]
pub struct SchedulePrefixTrace {
    /// The capturing config's [`SynthesisConfig::canonical_string`].
    config_key: String,
    /// Resolved bank row of each round-0 schedule entry.
    entry_rows: Vec<u32>,
    /// `boundaries[j]`: bank state and cumulative TRR fires after executing
    /// `j` schedule entries of round 0 (`boundaries[0]` is the fresh bank).
    boundaries: Vec<(BankCheckpoint, u32)>,
}

/// Reduced round-start state of the evaluation bank: `(open row,
/// TRR-tracked rows with their counters, background-row phase)`. Within one
/// refresh window this key fully determines the bank's future behavior on
/// the scoring path, so a repeat marks a cycle to fast-forward.
type RoundStateKey = (Option<u32>, Vec<(u32, u32)>, u32);

/// Per-round summary recorded while stepping concretely, sufficient to
/// replay the round's effect on the score analytically once the round is
/// known to repeat.
#[derive(Debug, Clone, Copy, Default)]
struct RoundRecord {
    /// Targeted refreshes TRR issued during the round.
    trr: u32,
    /// Whether any of them cleared the victim row's disturbance.
    clear: bool,
    /// Victim disturbance accumulated after the round's last victim clear
    /// (the round-end value when `clear` is set, regardless of the value the
    /// round started from).
    tail: u32,
    /// Total victim disturbance the round adds when nothing clears it.
    inc: u32,
    /// Victim disturbance at the end of the round as simulated.
    v_end: u32,
}

/// One evaluation access plus its score bookkeeping (shared by the schedule
/// and background portions of a round).
#[allow(clippy::too_many_arguments)]
#[inline]
fn eval_step(
    bank: &mut Bank,
    row: u32,
    now: &mut Cycles,
    config: &SynthesisConfig,
    flip_model: &FlipModel,
    victim: u32,
    rec: &mut RoundRecord,
    trr_fired: &mut u32,
) {
    let result = bank.access(
        row,
        *now,
        &config.timings,
        RowBufferPolicy::OpenPage,
        flip_model,
        &config.trr,
    );
    *now += Cycles::new(EVAL_CYCLES_PER_ACCESS);
    if result.trr_fired {
        rec.trr += 1;
        *trr_fired += 1;
    }
    // The victim row's disturbance changes only on activations of adjacent
    // rows: a targeted refresh of the activated row's neighbours clears it
    // (before this access's own increment lands), then the activation adds
    // one.
    if result.outcome.activated() && row.abs_diff(victim) == 1 {
        if result.trr_fired {
            rec.clear = true;
            rec.tail = 0;
        }
        rec.tail += 1;
        rec.inc += 1;
    }
}

/// Scores `pattern` bit-identically to [`evaluate`], skipping simulation
/// work that cannot change the result.
///
/// Two accelerations apply (see the module docs): resuming from the longest
/// shared schedule prefix of `resume` (a parent candidate's
/// [`SchedulePrefixTrace`], ignored unless it was captured under the same
/// config), and fast-forwarding the remaining rounds analytically once a
/// round starts in a previously seen reduced bank state. When a
/// refresh-window rollover is possible within the op budget (the reduced
/// state would no longer determine future behaviour), the reference loop
/// runs instead and the returned trace is `None`.
///
/// Returns the score, the captured prefix trace for this pattern (for its
/// future children), and the work telemetry of this single evaluation.
pub fn evaluate_incremental(
    pattern: &HammerPattern,
    config: &SynthesisConfig,
    resume: Option<&SchedulePrefixTrace>,
) -> (PatternScore, Option<SchedulePrefixTrace>, SynthTelemetry) {
    let per_round = pattern.schedule.len() as u64 + u64::from(config.background_rows_per_round);
    let n_rounds = u64::from(config.eval_op_budget).div_ceil(per_round);
    let ops_total = n_rounds * per_round;
    let mut telemetry = SynthTelemetry {
        ops_total,
        ..SynthTelemetry::default()
    };

    // The recurrence argument needs the refresh window to never roll (a
    // roll resets counters the analytic fast-forward does not model), and
    // the analytic sums need headroom in `u32`. Outside that envelope the
    // reference loop is the scorer.
    if ops_total.saturating_mul(EVAL_CYCLES_PER_ACCESS) >= config.timings.refresh_window
        || ops_total > u64::from(u32::MAX / 4)
    {
        telemetry.ops_stepped = ops_total;
        telemetry.fallbacks = 1;
        return (evaluate(pattern, config), None, telemetry);
    }

    let config_key = config.canonical_string();
    let flip_model = FlipModel::new(FlipModelProfile::invulnerable(), 0, 8_192);
    let rows: Vec<u32> = pattern
        .aggressor_rows(i64::from(EVAL_BASE_ROW))
        .into_iter()
        .map(|r| u32::try_from(r).expect("validated offsets stay in the eval bank"))
        .collect();
    let entry_rows: Vec<u32> = pattern
        .schedule
        .iter()
        .map(|&e| rows[usize::from(e)])
        .collect();
    let victim = EVAL_BASE_ROW + 1;

    let mut bank = Bank::new(0, EVAL_ROWS);
    let mut now = Cycles::ZERO;
    let mut trr_fired = 0u32;
    let mut peak = 0u32;
    let mut background_cursor = 0u32;

    // Resume round 0 from the longest shared schedule prefix of the parent.
    let mut start_entry = 0usize;
    let mut boundaries: Vec<(BankCheckpoint, u32)> = vec![(bank.checkpoint(), 0)];
    if let Some(trace) = resume.filter(|t| t.config_key == config_key) {
        let p = entry_rows
            .iter()
            .zip(&trace.entry_rows)
            .take_while(|(a, b)| a == b)
            .count()
            .min(trace.boundaries.len() - 1);
        if p > 0 {
            let (checkpoint, fired) = &trace.boundaries[p];
            bank.restore(checkpoint);
            trr_fired = *fired;
            now = Cycles::new(p as u64 * EVAL_CYCLES_PER_ACCESS);
            start_entry = p;
            boundaries = trace.boundaries[..=p].to_vec();
            telemetry.ops_reused = p as u64;
        }
    }

    // Step rounds concretely until one starts in a previously seen reduced
    // state. Under the open-page policy, within one refresh window, `(open
    // row, TRR sampler, background phase)` fully determines the bank's
    // future activations and targeted refreshes — activation counts and
    // last-activation times are write-only here, and the invulnerable flip
    // profile keeps the weak-cell path dead — so a repeated round-start key
    // makes every remaining round a known cycle. Round 0 is excluded: its
    // closed-row start state cannot recur without a window roll.
    let mut records: Vec<RoundRecord> = Vec::new();
    let mut seen: BTreeMap<RoundStateKey, u64> = BTreeMap::new();
    let mut recurrence = None;
    let mut round = 0u64;
    while round < n_rounds {
        if round > 0 {
            let key = (
                bank.open_row(),
                bank.trr_tracked().to_vec(),
                background_cursor % EVAL_BACKGROUND_ROWS,
            );
            match seen.get(&key) {
                Some(&start) => {
                    recurrence = Some((start, round));
                    break;
                }
                None => {
                    seen.insert(key, round);
                }
            }
        }
        let v_start = bank.disturbance_of(victim);
        let mut rec = RoundRecord::default();
        let first = if round == 0 { start_entry } else { 0 };
        for &row in &entry_rows[first..] {
            eval_step(
                &mut bank,
                row,
                &mut now,
                config,
                &flip_model,
                victim,
                &mut rec,
                &mut trr_fired,
            );
            telemetry.ops_stepped += 1;
            if round == 0 {
                boundaries.push((bank.checkpoint(), trr_fired));
            }
        }
        for _ in 0..config.background_rows_per_round {
            let row = EVAL_BACKGROUND_BASE_ROW + (background_cursor % EVAL_BACKGROUND_ROWS);
            background_cursor += 1;
            eval_step(
                &mut bank,
                row,
                &mut now,
                config,
                &flip_model,
                victim,
                &mut rec,
                &mut trr_fired,
            );
            telemetry.ops_stepped += 1;
        }
        rec.v_end = bank.disturbance_of(victim);
        debug_assert_eq!(
            rec.v_end,
            if rec.clear {
                rec.tail
            } else {
                v_start + rec.inc
            },
            "round summary must reproduce the simulated victim disturbance"
        );
        peak = peak.max(rec.v_end);
        records.push(rec);
        round += 1;
    }

    if let Some((start, repeat)) = recurrence {
        telemetry.fast_forwards = 1;
        let cycle = &records[start as usize..repeat as usize];
        let len = cycle.len() as u64;
        let remaining = n_rounds - repeat;
        let full = remaining / len;
        let partial = (remaining % len) as usize;

        // TRR fires repeat exactly with the cycle.
        let cycle_trr: u64 = cycle.iter().map(|c| u64::from(c.trr)).sum();
        let prefix_trr: u64 = cycle[..partial].iter().map(|c| u64::from(c.trr)).sum();
        trr_fired += (full * cycle_trr + prefix_trr) as u32;

        // The reference loop samples the victim's disturbance once per
        // round, at the round end, so only the per-round end values matter.
        let carry = records[repeat as usize - 1].v_end;
        let roll = |carry: u32| {
            let mut v = carry;
            let mut out = Vec::with_capacity(cycle.len());
            for c in cycle {
                v = if c.clear { c.tail } else { v + c.inc };
                out.push(v);
            }
            out
        };
        if cycle.iter().any(|c| c.clear) {
            // A clear inside the cycle makes the round-end values
            // carry-independent from that point on: the first repetition
            // (from `carry`) can differ, every later one equals the second.
            let seq1 = roll(carry);
            let seq2 = roll(seq1[cycle.len() - 1]);
            let ff_peak = if full == 0 {
                seq1[..partial].iter().copied().max().unwrap_or(0)
            } else {
                let mut m = seq1.iter().copied().max().unwrap_or(0);
                if full >= 2 {
                    m = m.max(seq2.iter().copied().max().unwrap_or(0));
                }
                m.max(seq2[..partial].iter().copied().max().unwrap_or(0))
            };
            peak = peak.max(ff_peak);
        } else {
            // Nothing ever clears the victim inside the cycle: disturbance
            // is monotone, the final value is the peak.
            let cycle_inc: u64 = cycle.iter().map(|c| u64::from(c.inc)).sum();
            let prefix_inc: u64 = cycle[..partial].iter().map(|c| u64::from(c.inc)).sum();
            peak = peak.max((u64::from(carry) + full * cycle_inc + prefix_inc) as u32);
        }
    }

    let strides = config.spray_strides;
    let fit = u64::from(strides.saturating_sub(pattern.span().unsigned_abs()));
    let score = PatternScore {
        peak_victim_disturbance: peak,
        expected_disturbance: (u64::from(peak) * fit / u64::from(strides)) as u32,
        trr_fired,
        touches_per_round: pattern.touches_per_round() as u32,
    };
    let trace = SchedulePrefixTrace {
        config_key,
        entry_rows,
        boundaries,
    };
    (score, Some(trace), telemetry)
}

/// Result of one synthesis run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthesisResult {
    /// The best pattern found.
    pub best: HammerPattern,
    /// Its score.
    pub score: PatternScore,
    /// Candidate evaluations performed (distinct patterns only: elites and
    /// re-discovered mutants are scored once and memoized).
    pub evaluations: u32,
    /// Generations run.
    pub generations: u32,
}

// Hand-written canonical JSON; `synthesis_result_from_json` is the exact
// inverse (the cache's byte-identity rests on the round trip).
impl Serialize for SynthesisResult {
    fn serialize(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("best");
        self.best.serialize(w);
        w.key("score");
        self.score.serialize(w);
        w.key("evaluations");
        self.evaluations.serialize(w);
        w.key("generations");
        self.generations.serialize(w);
        w.end_object();
    }
}

impl Deserialize for SynthesisResult {}

/// Parses the canonical JSON form written by [`SynthesisResult`]'s
/// `Serialize` impl.
///
/// # Errors
///
/// Describes the first missing or mistyped field.
pub fn synthesis_result_from_json(body: &str) -> Result<SynthesisResult, String> {
    let value =
        serde_json::from_str(body).map_err(|e| format!("synthesis body is not JSON: {e}"))?;
    let u32_of = |v: &serde_json::Value, name: &str| -> Result<u32, String> {
        v.get(name)
            .and_then(|f| f.as_u64())
            .and_then(|f| u32::try_from(f).ok())
            .ok_or_else(|| format!("synthesis field `{name}` is not a u32"))
    };
    let best = pattern_from_json(
        value
            .get("best")
            .ok_or_else(|| "synthesis body is missing `best`".to_string())?,
    )?;
    let score = value
        .get("score")
        .ok_or_else(|| "synthesis body is missing `score`".to_string())?;
    Ok(SynthesisResult {
        best,
        score: PatternScore {
            peak_victim_disturbance: u32_of(score, "peak_victim_disturbance")?,
            expected_disturbance: u32_of(score, "expected_disturbance")?,
            trr_fired: u32_of(score, "trr_fired")?,
            touches_per_round: u32_of(score, "touches_per_round")?,
        },
        evaluations: u32_of(&value, "evaluations")?,
        generations: u32_of(&value, "generations")?,
    })
}

/// Runs the deterministic synthesis loop. Identical to
/// [`synthesize_with_telemetry`] with the work accounting dropped.
///
/// # Panics
///
/// Panics if `config` fails [`SynthesisConfig::validate`].
pub fn synthesize(config: &SynthesisConfig, seed: u64) -> SynthesisResult {
    synthesize_with_telemetry(config, seed).0
}

/// Runs the deterministic synthesis loop, also returning the incremental
/// scorer's work accounting (summed over every evaluation of the run).
///
/// Seeds the population with the double-sided baseline and uniform n-sided
/// rotations, then evolves it: score → rank (score, then canonical name, so
/// ties never depend on insertion order) → keep elites → refill with seeded
/// mutations of the elites. Scoring goes through [`evaluate_incremental`]:
/// each freshly mutated child resumes from its parent's schedule-prefix
/// checkpoints, and the telemetry records how much of the reference loop's
/// work was skipped. The result — and the RNG stream — are bit-identical to
/// scoring with the reference [`evaluate`].
///
/// # Panics
///
/// Panics if `config` fails [`SynthesisConfig::validate`].
pub fn synthesize_with_telemetry(
    config: &SynthesisConfig,
    seed: u64,
) -> (SynthesisResult, SynthTelemetry) {
    config
        .validate()
        .unwrap_or_else(|e| panic!("invalid synthesis config: {e}"));
    let mut rng = StdRng::seed_from_u64(seed ^ SYNTH_SEED_SALT);

    // Each candidate carries the canonical name of the parent it was mutated
    // from (`None` for presets and carried-over elites), so its evaluation
    // can resume from the parent's schedule-prefix checkpoints.
    let mut population: Vec<(HammerPattern, Option<String>)> =
        vec![(HammerPattern::double_sided(), None)];
    for n in 3..=MAX_SIDES {
        population.push((HammerPattern::uniform_n_sided(n), None));
        let centered = HammerPattern::centered_n_sided(n);
        if !population.iter().any(|(p, _)| *p == centered) {
            population.push((centered, None));
        }
    }
    // The preset seeds respect the configured population size (small search
    // budgets keep the earliest/simplest presets), and the remainder is
    // filled with seeded mutations.
    population.truncate(config.population as usize);
    while population.len() < config.population as usize {
        let (parent, _) = population[rng.gen_range(0..population.len())].clone();
        let child = mutate(&parent, &mut rng);
        population.push((child, Some(parent.canonical_name())));
    }

    // Evaluation is a pure function of (pattern, config), so each distinct
    // pattern is scored exactly once: carried-over elites and re-discovered
    // mutants hit the memo instead of re-running the bank simulation.
    let mut score_memo: BTreeMap<String, PatternScore> = BTreeMap::new();
    let mut prefix_memo: BTreeMap<String, SchedulePrefixTrace> = BTreeMap::new();
    let mut telemetry = SynthTelemetry::default();
    let mut evaluations = 0u32;
    let mut scored: Vec<(HammerPattern, PatternScore)> = Vec::new();
    for generation in 0..config.generations {
        scored = population
            .iter()
            .map(|(p, parent)| {
                let name = p.canonical_name();
                let score = *score_memo.entry(name.clone()).or_insert_with(|| {
                    evaluations += 1;
                    let resume = parent.as_deref().and_then(|n| prefix_memo.get(n));
                    let (score, trace, work) = evaluate_incremental(p, config, resume);
                    telemetry.absorb(&work);
                    if let Some(trace) = trace {
                        prefix_memo.insert(name.clone(), trace);
                    }
                    score
                });
                (p.clone(), score)
            })
            .collect();
        // Deterministic total order: delivered disturbance first; among
        // peers, compact spans (which arm far more often inside a finite
        // spray), then cheaper rounds, then fewer TRR interventions, then
        // the canonical name — nothing positional or map-ordered.
        scored.sort_by(|(pa, sa), (pb, sb)| {
            sb.expected_disturbance
                .cmp(&sa.expected_disturbance)
                .then_with(|| pa.span().cmp(&pb.span()))
                .then_with(|| sa.touches_per_round.cmp(&sb.touches_per_round))
                .then_with(|| sa.trr_fired.cmp(&sb.trr_fired))
                .then_with(|| pa.canonical_name().cmp(&pb.canonical_name()))
        });
        if generation + 1 == config.generations {
            break;
        }
        let elites: Vec<HammerPattern> = scored
            .iter()
            .take(config.elites as usize)
            .map(|(p, _)| p.clone())
            .collect();
        population = elites.iter().map(|p| (p.clone(), None)).collect();
        while population.len() < config.population as usize {
            let parent = &elites[rng.gen_range(0..elites.len())];
            let child = mutate(parent, &mut rng);
            population.push((child, Some(parent.canonical_name())));
        }
    }

    let (best, score) = scored.swap_remove(0);
    (
        SynthesisResult {
            best,
            score,
            evaluations,
            generations: config.generations,
        },
        telemetry,
    )
}

/// One seeded mutation of `parent`; falls back to a clone when every
/// attempted edit would violate the pattern invariants.
fn mutate(parent: &HammerPattern, rng: &mut StdRng) -> HammerPattern {
    for _ in 0..8 {
        let mut p = parent.clone();
        match rng.gen_range(0u32..5) {
            // Add an aggressor and touch it once.
            0 => {
                let offset = rng.gen_range(0..=(2 * MAX_OFFSET) as u32) as i32 - MAX_OFFSET;
                if p.offsets.contains(&offset) || p.offsets.len() >= MAX_SIDES {
                    continue;
                }
                p.offsets.push(offset);
                let index = (p.offsets.len() - 1) as u8;
                let at = rng.gen_range(0..=p.schedule.len());
                p.schedule.insert(at, index);
            }
            // Drop a non-base aggressor (and its touches).
            1 => {
                if p.offsets.len() <= 2 {
                    continue;
                }
                let victim = rng.gen_range(2..p.offsets.len()) as u8;
                p.offsets.remove(usize::from(victim));
                p.schedule.retain(|&s| s != victim);
                for s in &mut p.schedule {
                    if *s > victim {
                        *s -= 1;
                    }
                }
            }
            // Swap two schedule positions (reorder the phase).
            2 => {
                if p.schedule.len() < 2 {
                    continue;
                }
                let a = rng.gen_range(0..p.schedule.len());
                let b = rng.gen_range(0..p.schedule.len());
                p.schedule.swap(a, b);
            }
            // Raise an aggressor's intensity by one touch.
            3 => {
                if p.schedule.len() >= MAX_SCHEDULE {
                    continue;
                }
                let index = rng.gen_range(0..p.offsets.len()) as u8;
                let at = rng.gen_range(0..=p.schedule.len());
                p.schedule.insert(at, index);
            }
            // Lower an aggressor's intensity by one touch.
            _ => {
                if p.schedule.len() <= p.offsets.len() {
                    continue;
                }
                let at = rng.gen_range(0..p.schedule.len());
                p.schedule.remove(at);
            }
        }
        if p.validate().is_ok() {
            return p;
        }
    }
    parent.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trr_config() -> SynthesisConfig {
        SynthesisConfig {
            trr: TrrConfig::enabled(40, 4),
            timings: DramTimings::fast_test(),
            min_flip_threshold: 100,
            eval_op_budget: 4_096,
            background_rows_per_round: 2,
            spray_strides: 8,
            generations: 10,
            population: 14,
            elites: 4,
        }
    }

    #[test]
    fn config_validation() {
        assert!(trr_config().validate().is_ok());
        let mut bad = trr_config();
        bad.elites = 0;
        assert!(bad.validate().is_err());
        let mut bad = trr_config();
        bad.elites = bad.population + 1;
        assert!(bad.validate().is_err());
        let mut bad = trr_config();
        bad.eval_op_budget = 1;
        assert!(bad.validate().is_err());
        assert!(trr_config().canonical_string().contains("trr=true,40,4"));
    }

    #[test]
    fn trr_suppresses_the_double_sided_baseline_in_evaluation() {
        let config = trr_config();
        let score = evaluate(&HammerPattern::double_sided(), &config);
        assert!(
            !score.beats_threshold(config.min_flip_threshold),
            "TRR must keep the double-sided victim below the flip threshold, \
             delivered {}",
            score.peak_victim_disturbance
        );
        assert!(score.trr_fired > 0, "the sampler must have intervened");

        // Without TRR the same budget sails past the threshold — the
        // evaluator models the mitigation, not a generally weak hammer.
        let mut open = config;
        open.trr = TrrConfig::disabled();
        let unmitigated = evaluate(&HammerPattern::double_sided(), &open);
        assert!(unmitigated.beats_threshold(open.min_flip_threshold));
        assert_eq!(unmitigated.trr_fired, 0);
    }

    #[test]
    fn synthesis_is_deterministic_and_beats_the_sampler() {
        let config = trr_config();
        let a = synthesize(&config, 0xDEAD);
        let b = synthesize(&config, 0xDEAD);
        assert_eq!(a, b, "same seed, same result, bit for bit");
        // A different seed explores differently but may legitimately
        // converge to the same optimum; only reproducibility is asserted.
        let c = synthesize(&config, 0xBEEF);
        assert_eq!(c, synthesize(&config, 0xBEEF));
        assert!(
            a.score.beats_threshold(config.min_flip_threshold),
            "synthesis must find a pattern that slips past the sampler: \
             best {} delivered {}",
            a.best,
            a.score.peak_victim_disturbance
        );
        assert!(
            a.best.sides() > 2,
            "the winner must be many-sided: {}",
            a.best
        );
        // Distinct candidates only: at least the first generation's
        // population, at most one evaluation per candidate ever considered.
        assert!(a.evaluations >= config.population);
        assert!(a.evaluations <= config.population * config.generations);
    }

    #[test]
    fn synthesis_result_json_round_trips() {
        let result = synthesize(&trr_config(), 7);
        let json = serde_json::to_string(&result).unwrap();
        let decoded = synthesis_result_from_json(&json).unwrap();
        assert_eq!(decoded, result);
        assert_eq!(serde_json::to_string(&decoded).unwrap(), json);
        assert!(synthesis_result_from_json("][").is_err());
        assert!(synthesis_result_from_json("{}").is_err());
    }

    #[test]
    fn incremental_evaluation_matches_the_reference_oracle() {
        let mut no_trr = trr_config();
        no_trr.trr = TrrConfig::disabled();
        let mut no_background = trr_config();
        no_background.background_rows_per_round = 0;
        let mut hair_trigger = trr_config();
        hair_trigger.trr = TrrConfig::enabled(1, 1);
        for config in [trr_config(), no_trr, no_background, hair_trigger] {
            let mut rng = StdRng::seed_from_u64(17);
            let mut patterns = vec![HammerPattern::double_sided()];
            for n in 3..=MAX_SIDES {
                patterns.push(HammerPattern::uniform_n_sided(n));
                patterns.push(HammerPattern::centered_n_sided(n));
            }
            for _ in 0..60 {
                let parent = patterns[rng.gen_range(0..patterns.len())].clone();
                patterns.push(mutate(&parent, &mut rng));
            }
            for p in &patterns {
                let (fast, trace, work) = evaluate_incremental(p, &config, None);
                assert_eq!(fast, evaluate(p, &config), "{p} under {config:?}");
                assert!(trace.is_some());
                assert_eq!(work.fallbacks, 0);
                assert!(
                    work.ops_stepped < work.ops_total,
                    "recurrence fast-forward must skip work for {p}"
                );
            }
        }
    }

    #[test]
    fn prefix_resumed_evaluation_is_bit_identical() {
        let config = trr_config();
        let mut rng = StdRng::seed_from_u64(23);
        let mut parent = HammerPattern::uniform_n_sided(5);
        for _ in 0..80 {
            let (_, trace, _) = evaluate_incremental(&parent, &config, None);
            let child = mutate(&parent, &mut rng);
            let (resumed, _, work) = evaluate_incremental(&child, &config, trace.as_ref());
            assert_eq!(resumed, evaluate(&child, &config), "{parent} -> {child}");
            let _ = work.ops_reused; // zero when the first schedule entry mutated
            parent = child;
        }
    }

    #[test]
    fn stale_config_prefix_traces_are_ignored() {
        let config = trr_config();
        let pattern = HammerPattern::uniform_n_sided(4);
        let (_, trace, _) = evaluate_incremental(&pattern, &config, None);
        let mut other = config;
        other.trr = TrrConfig::enabled(12, 2);
        let (score, _, work) = evaluate_incremental(&pattern, &other, trace.as_ref());
        assert_eq!(score, evaluate(&pattern, &other));
        assert_eq!(
            work.ops_reused, 0,
            "a foreign config's trace must not resume"
        );
    }

    #[test]
    fn possible_window_rollover_falls_back_to_the_reference_loop() {
        let mut config = trr_config();
        // A window shorter than the evaluation span: rollovers would break
        // the recurrence argument, so the scorer must run the oracle.
        config.timings.refresh_window = 10_000;
        let pattern = HammerPattern::double_sided();
        let (score, trace, work) = evaluate_incremental(&pattern, &config, None);
        assert_eq!(score, evaluate(&pattern, &config));
        assert!(trace.is_none());
        assert_eq!(work.fallbacks, 1);
        assert_eq!(work.ops_stepped, work.ops_total);
    }

    #[test]
    fn telemetry_shows_at_least_the_target_speedup() {
        let config = trr_config();
        let (result, telemetry) = synthesize_with_telemetry(&config, 0xDEAD);
        assert_eq!(result, synthesize(&config, 0xDEAD));
        assert_eq!(telemetry.fallbacks, 0);
        assert!(telemetry.fast_forwards > 0);
        assert!(
            telemetry.speedup_x100() >= 500,
            "incremental scoring must be >= 5x: {telemetry:?}"
        );
    }

    #[test]
    fn mutations_preserve_validity() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut p = HammerPattern::double_sided();
        for _ in 0..500 {
            p = mutate(&p, &mut rng);
            assert!(p.validate().is_ok(), "{p}");
        }
    }
}

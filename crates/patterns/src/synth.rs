//! Deterministic, seeded synthesis of TRR-evading hammer patterns.
//!
//! The synthesizer searches pattern space (aggressor offsets, per-round
//! ordering, intensity) with a small elitist evolutionary loop. Candidates
//! are scored against the *actual* bank-level DRAM model of the target
//! machine — [`pthammer_dram::Bank`] with the machine's
//! [`TrrConfig`] and timings — by the disturbance they deliver **past the
//! TRR sampler** to the detectable victim row (the row between the base
//! pair, which the attack's detection phase scans). A deterministic
//! round-robin stream of background rows models the eviction-set DRAM
//! traffic that accompanies a real implicit-hammer round and keeps the
//! sampler under the same churn pressure it sees in the full simulation.
//!
//! Everything is a pure function of the [`SynthesisConfig`] and the seed:
//! same inputs, same best pattern, bit for bit — which is what lets campaign
//! cells synthesize on the fly at any thread count and lets the
//! content-addressed cache ([`crate::SynthesisCache`]) resume searches
//! byte-identically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::ser::JsonWriter;
use serde::{Deserialize, Serialize};

use pthammer_dram::{Bank, DramTimings, FlipModel, FlipModelProfile, RowBufferPolicy, TrrConfig};
use pthammer_machine::MachineConfig;
use pthammer_types::Cycles;

use crate::pattern::{pattern_from_json, HammerPattern, MAX_OFFSET, MAX_SCHEDULE, MAX_SIDES};

/// Domain-separation salt folded into every synthesis RNG seed.
const SYNTH_SEED_SALT: u64 = 0x5452_5265_7370_6173; // "TRRespas"

/// Rows in the evaluation bank; aggressors live around the middle.
const EVAL_ROWS: u32 = 96;

/// Base aggressor row inside the evaluation bank (`offset 0`). Chosen so
/// every legal offset (±[`MAX_OFFSET`] strides = ±14 rows) stays in range.
const EVAL_BASE_ROW: u32 = 40;

/// First background row; the churn stream rotates from here upward, far from
/// any aggressor neighbourhood.
const EVAL_BACKGROUND_BASE_ROW: u32 = 72;

/// Distinct rows the background stream rotates over, mimicking eviction-set
/// lines whose frames are spread across the bank.
const EVAL_BACKGROUND_ROWS: u32 = 12;

/// Simulated cycles charged per evaluation DRAM access (the order of one
/// evict-evict-touch trio of the real hammer loop).
const EVAL_CYCLES_PER_ACCESS: u64 = 300;

/// Everything a synthesis run depends on. All fields enter the cache
/// fingerprint; two configs with equal [`canonical_string`]s
/// (plus equal seeds) produce bit-identical results.
///
/// [`canonical_string`]: SynthesisConfig::canonical_string
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthesisConfig {
    /// The TRR mitigation of the machine under attack.
    pub trr: TrrConfig,
    /// DRAM timings of the machine (drives refresh-window rollovers during
    /// evaluation).
    pub timings: DramTimings,
    /// The flip profile's minimum disturbance threshold — the score a
    /// pattern must beat for a weak victim cell to flip at all.
    pub min_flip_threshold: u32,
    /// Total DRAM accesses each candidate may spend during evaluation (a
    /// fair op budget: schedules with fewer touches get more rounds).
    pub eval_op_budget: u32,
    /// Background (eviction-traffic stand-in) accesses interleaved per
    /// pattern round.
    pub background_rows_per_round: u32,
    /// How many pair strides of sprayed virtual address space the attack
    /// has. A pattern spanning `s` strides only arms for base pairs at
    /// least `s` strides from the region edges, so wide sets trade delivered
    /// disturbance against how often they fit — the score accounts for it.
    pub spray_strides: u32,
    /// Search generations.
    pub generations: u32,
    /// Population size per generation.
    pub population: u32,
    /// Elites carried over unchanged per generation.
    pub elites: u32,
}

impl SynthesisConfig {
    /// Synthesis configuration for a machine: its TRR sampler, timings and
    /// flip thresholds, with a CI-friendly search budget.
    pub fn for_machine(machine: &MachineConfig) -> Self {
        Self {
            trr: machine.dram.trr,
            timings: machine.dram.timings,
            min_flip_threshold: machine.dram.flip_profile.min_threshold,
            eval_op_budget: 4_096,
            // Conservative lower bound: no background churn is assumed, so a
            // winning pattern must defeat the sampler entirely on its own
            // (real eviction-set DRAM traffic only adds pressure).
            background_rows_per_round: 0,
            spray_strides: 8,
            generations: 10,
            population: 14,
            elites: 4,
        }
    }

    /// Validates the search knobs.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.population == 0 || self.generations == 0 {
            return Err("population and generations must be non-zero".to_string());
        }
        if self.elites == 0 || self.elites > self.population {
            return Err("elites must be in 1..=population".to_string());
        }
        if self.eval_op_budget < MAX_SCHEDULE as u32 {
            return Err("eval_op_budget must cover at least one round".to_string());
        }
        if self.spray_strides == 0 {
            return Err("spray_strides must be non-zero".to_string());
        }
        Ok(())
    }

    /// Canonical, versioned textual form of every field — the input to the
    /// cache fingerprint. Field order is fixed; extending the struct must
    /// extend this string (changing every fingerprint, which is the point).
    pub fn canonical_string(&self) -> String {
        format!(
            "trr={},{},{}|t={},{},{},{}|minflip={}|budget={}|bg={}|strides={}|gen={}|pop={}|elite={}",
            self.trr.enabled,
            self.trr.activation_threshold,
            self.trr.sampler_capacity,
            self.timings.cas,
            self.timings.rcd,
            self.timings.rp,
            self.timings.refresh_window,
            self.min_flip_threshold,
            self.eval_op_budget,
            self.background_rows_per_round,
            self.spray_strides,
            self.generations,
            self.population,
            self.elites,
        )
    }
}

/// Deterministic score of one candidate pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternScore {
    /// Peak disturbance the detectable victim row (between the base pair)
    /// accumulated during evaluation — the quantity TRR exists to suppress.
    pub peak_victim_disturbance: u32,
    /// [`peak_victim_disturbance`](Self::peak_victim_disturbance) discounted
    /// by how often the pattern's span fits a random base pair inside the
    /// configured spray — the synthesizer's actual objective. A physically
    /// devastating pattern that never arms is worthless.
    pub expected_disturbance: u32,
    /// Targeted refreshes TRR issued against the pattern during evaluation
    /// (a pattern that never trips the sampler scores 0 here).
    pub trr_fired: u32,
    /// Implicit touches one round of the pattern costs.
    pub touches_per_round: u32,
}

impl PatternScore {
    /// Whether the delivered disturbance can flip a weakest-threshold cell.
    pub fn beats_threshold(&self, min_flip_threshold: u32) -> bool {
        self.peak_victim_disturbance >= min_flip_threshold
    }
}

/// Scores `pattern` on a fresh TRR-enabled bank.
///
/// The evaluation replays the pattern's activation schedule (plus the
/// deterministic background stream) through [`Bank::access`] — the same
/// row-buffer, refresh-window and TRR-sampler code the full simulation runs
/// — and tracks the peak disturbance of the detectable victim row.
pub fn evaluate(pattern: &HammerPattern, config: &SynthesisConfig) -> PatternScore {
    let mut bank = Bank::new(0, EVAL_ROWS);
    // Invulnerable cells: evaluation measures disturbance, not flips, and
    // skips the weak-cell derivation entirely.
    let flip_model = FlipModel::new(FlipModelProfile::invulnerable(), 0, 8_192);
    let rows: Vec<u32> = pattern
        .aggressor_rows(i64::from(EVAL_BASE_ROW))
        .into_iter()
        .map(|r| u32::try_from(r).expect("validated offsets stay in the eval bank"))
        .collect();
    let victim = EVAL_BASE_ROW + 1;

    let mut now = Cycles::ZERO;
    let mut ops = 0u32;
    let mut peak = 0u32;
    let mut trr_fired = 0u32;
    let mut background_cursor = 0u32;
    let access = |bank: &mut Bank, row: u32, now: &mut Cycles| {
        let result = bank.access(
            row,
            *now,
            &config.timings,
            RowBufferPolicy::OpenPage,
            &flip_model,
            &config.trr,
        );
        *now += Cycles::new(EVAL_CYCLES_PER_ACCESS);
        u32::from(result.trr_fired)
    };
    while ops < config.eval_op_budget {
        for &entry in &pattern.schedule {
            trr_fired += access(&mut bank, rows[usize::from(entry)], &mut now);
            ops += 1;
        }
        for _ in 0..config.background_rows_per_round {
            let row = EVAL_BACKGROUND_BASE_ROW + (background_cursor % EVAL_BACKGROUND_ROWS);
            background_cursor += 1;
            trr_fired += access(&mut bank, row, &mut now);
            ops += 1;
        }
        peak = peak.max(bank.disturbance_of(victim));
    }

    // Expected delivered disturbance: a pattern spanning `s` strides fits a
    // uniformly drawn base pair with probability ~`(strides - s) / strides`.
    let strides = config.spray_strides;
    let fit = strides.saturating_sub(pattern.span().unsigned_abs()) as u64;
    PatternScore {
        peak_victim_disturbance: peak,
        expected_disturbance: (u64::from(peak) * fit / u64::from(strides)) as u32,
        trr_fired,
        touches_per_round: pattern.touches_per_round() as u32,
    }
}

/// Result of one synthesis run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthesisResult {
    /// The best pattern found.
    pub best: HammerPattern,
    /// Its score.
    pub score: PatternScore,
    /// Candidate evaluations performed (distinct patterns only: elites and
    /// re-discovered mutants are scored once and memoized).
    pub evaluations: u32,
    /// Generations run.
    pub generations: u32,
}

// Hand-written canonical JSON; `synthesis_result_from_json` is the exact
// inverse (the cache's byte-identity rests on the round trip).
impl Serialize for SynthesisResult {
    fn serialize(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("best");
        self.best.serialize(w);
        w.key("score");
        self.score.serialize(w);
        w.key("evaluations");
        self.evaluations.serialize(w);
        w.key("generations");
        self.generations.serialize(w);
        w.end_object();
    }
}

impl Deserialize for SynthesisResult {}

/// Parses the canonical JSON form written by [`SynthesisResult`]'s
/// `Serialize` impl.
///
/// # Errors
///
/// Describes the first missing or mistyped field.
pub fn synthesis_result_from_json(body: &str) -> Result<SynthesisResult, String> {
    let value =
        serde_json::from_str(body).map_err(|e| format!("synthesis body is not JSON: {e}"))?;
    let u32_of = |v: &serde_json::Value, name: &str| -> Result<u32, String> {
        v.get(name)
            .and_then(|f| f.as_u64())
            .and_then(|f| u32::try_from(f).ok())
            .ok_or_else(|| format!("synthesis field `{name}` is not a u32"))
    };
    let best = pattern_from_json(
        value
            .get("best")
            .ok_or_else(|| "synthesis body is missing `best`".to_string())?,
    )?;
    let score = value
        .get("score")
        .ok_or_else(|| "synthesis body is missing `score`".to_string())?;
    Ok(SynthesisResult {
        best,
        score: PatternScore {
            peak_victim_disturbance: u32_of(score, "peak_victim_disturbance")?,
            expected_disturbance: u32_of(score, "expected_disturbance")?,
            trr_fired: u32_of(score, "trr_fired")?,
            touches_per_round: u32_of(score, "touches_per_round")?,
        },
        evaluations: u32_of(&value, "evaluations")?,
        generations: u32_of(&value, "generations")?,
    })
}

/// Runs the deterministic synthesis loop.
///
/// Seeds the population with the double-sided baseline and uniform n-sided
/// rotations, then evolves it: score → rank (score, then canonical name, so
/// ties never depend on insertion order) → keep elites → refill with seeded
/// mutations of the elites.
///
/// # Panics
///
/// Panics if `config` fails [`SynthesisConfig::validate`].
pub fn synthesize(config: &SynthesisConfig, seed: u64) -> SynthesisResult {
    config
        .validate()
        .unwrap_or_else(|e| panic!("invalid synthesis config: {e}"));
    let mut rng = StdRng::seed_from_u64(seed ^ SYNTH_SEED_SALT);

    let mut population: Vec<HammerPattern> = vec![HammerPattern::double_sided()];
    for n in 3..=MAX_SIDES {
        population.push(HammerPattern::uniform_n_sided(n));
        let centered = HammerPattern::centered_n_sided(n);
        if !population.contains(&centered) {
            population.push(centered);
        }
    }
    // The preset seeds respect the configured population size (small search
    // budgets keep the earliest/simplest presets), and the remainder is
    // filled with seeded mutations.
    population.truncate(config.population as usize);
    while population.len() < config.population as usize {
        let parent = population[rng.gen_range(0..population.len())].clone();
        population.push(mutate(&parent, &mut rng));
    }

    // Evaluation is a pure function of (pattern, config), so each distinct
    // pattern is scored exactly once: carried-over elites and re-discovered
    // mutants hit the memo instead of re-running the bank simulation.
    let mut score_memo: std::collections::BTreeMap<String, PatternScore> =
        std::collections::BTreeMap::new();
    let mut evaluations = 0u32;
    let mut scored: Vec<(HammerPattern, PatternScore)> = Vec::new();
    for generation in 0..config.generations {
        scored = population
            .iter()
            .map(|p| {
                let score = *score_memo.entry(p.canonical_name()).or_insert_with(|| {
                    evaluations += 1;
                    evaluate(p, config)
                });
                (p.clone(), score)
            })
            .collect();
        // Deterministic total order: delivered disturbance first; among
        // peers, compact spans (which arm far more often inside a finite
        // spray), then cheaper rounds, then fewer TRR interventions, then
        // the canonical name — nothing positional or map-ordered.
        scored.sort_by(|(pa, sa), (pb, sb)| {
            sb.expected_disturbance
                .cmp(&sa.expected_disturbance)
                .then_with(|| pa.span().cmp(&pb.span()))
                .then_with(|| sa.touches_per_round.cmp(&sb.touches_per_round))
                .then_with(|| sa.trr_fired.cmp(&sb.trr_fired))
                .then_with(|| pa.canonical_name().cmp(&pb.canonical_name()))
        });
        if generation + 1 == config.generations {
            break;
        }
        let elites: Vec<HammerPattern> = scored
            .iter()
            .take(config.elites as usize)
            .map(|(p, _)| p.clone())
            .collect();
        population = elites.clone();
        while population.len() < config.population as usize {
            let parent = &elites[rng.gen_range(0..elites.len())];
            population.push(mutate(parent, &mut rng));
        }
    }

    let (best, score) = scored.swap_remove(0);
    SynthesisResult {
        best,
        score,
        evaluations,
        generations: config.generations,
    }
}

/// One seeded mutation of `parent`; falls back to a clone when every
/// attempted edit would violate the pattern invariants.
fn mutate(parent: &HammerPattern, rng: &mut StdRng) -> HammerPattern {
    for _ in 0..8 {
        let mut p = parent.clone();
        match rng.gen_range(0u32..5) {
            // Add an aggressor and touch it once.
            0 => {
                let offset = rng.gen_range(0..=(2 * MAX_OFFSET) as u32) as i32 - MAX_OFFSET;
                if p.offsets.contains(&offset) || p.offsets.len() >= MAX_SIDES {
                    continue;
                }
                p.offsets.push(offset);
                let index = (p.offsets.len() - 1) as u8;
                let at = rng.gen_range(0..=p.schedule.len());
                p.schedule.insert(at, index);
            }
            // Drop a non-base aggressor (and its touches).
            1 => {
                if p.offsets.len() <= 2 {
                    continue;
                }
                let victim = rng.gen_range(2..p.offsets.len()) as u8;
                p.offsets.remove(usize::from(victim));
                p.schedule.retain(|&s| s != victim);
                for s in &mut p.schedule {
                    if *s > victim {
                        *s -= 1;
                    }
                }
            }
            // Swap two schedule positions (reorder the phase).
            2 => {
                if p.schedule.len() < 2 {
                    continue;
                }
                let a = rng.gen_range(0..p.schedule.len());
                let b = rng.gen_range(0..p.schedule.len());
                p.schedule.swap(a, b);
            }
            // Raise an aggressor's intensity by one touch.
            3 => {
                if p.schedule.len() >= MAX_SCHEDULE {
                    continue;
                }
                let index = rng.gen_range(0..p.offsets.len()) as u8;
                let at = rng.gen_range(0..=p.schedule.len());
                p.schedule.insert(at, index);
            }
            // Lower an aggressor's intensity by one touch.
            _ => {
                if p.schedule.len() <= p.offsets.len() {
                    continue;
                }
                let at = rng.gen_range(0..p.schedule.len());
                p.schedule.remove(at);
            }
        }
        if p.validate().is_ok() {
            return p;
        }
    }
    parent.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trr_config() -> SynthesisConfig {
        SynthesisConfig {
            trr: TrrConfig::enabled(40, 4),
            timings: DramTimings::fast_test(),
            min_flip_threshold: 100,
            eval_op_budget: 4_096,
            background_rows_per_round: 2,
            spray_strides: 8,
            generations: 10,
            population: 14,
            elites: 4,
        }
    }

    #[test]
    fn config_validation() {
        assert!(trr_config().validate().is_ok());
        let mut bad = trr_config();
        bad.elites = 0;
        assert!(bad.validate().is_err());
        let mut bad = trr_config();
        bad.elites = bad.population + 1;
        assert!(bad.validate().is_err());
        let mut bad = trr_config();
        bad.eval_op_budget = 1;
        assert!(bad.validate().is_err());
        assert!(trr_config().canonical_string().contains("trr=true,40,4"));
    }

    #[test]
    fn trr_suppresses_the_double_sided_baseline_in_evaluation() {
        let config = trr_config();
        let score = evaluate(&HammerPattern::double_sided(), &config);
        assert!(
            !score.beats_threshold(config.min_flip_threshold),
            "TRR must keep the double-sided victim below the flip threshold, \
             delivered {}",
            score.peak_victim_disturbance
        );
        assert!(score.trr_fired > 0, "the sampler must have intervened");

        // Without TRR the same budget sails past the threshold — the
        // evaluator models the mitigation, not a generally weak hammer.
        let mut open = config;
        open.trr = TrrConfig::disabled();
        let unmitigated = evaluate(&HammerPattern::double_sided(), &open);
        assert!(unmitigated.beats_threshold(open.min_flip_threshold));
        assert_eq!(unmitigated.trr_fired, 0);
    }

    #[test]
    fn synthesis_is_deterministic_and_beats_the_sampler() {
        let config = trr_config();
        let a = synthesize(&config, 0xDEAD);
        let b = synthesize(&config, 0xDEAD);
        assert_eq!(a, b, "same seed, same result, bit for bit");
        // A different seed explores differently but may legitimately
        // converge to the same optimum; only reproducibility is asserted.
        let c = synthesize(&config, 0xBEEF);
        assert_eq!(c, synthesize(&config, 0xBEEF));
        assert!(
            a.score.beats_threshold(config.min_flip_threshold),
            "synthesis must find a pattern that slips past the sampler: \
             best {} delivered {}",
            a.best,
            a.score.peak_victim_disturbance
        );
        assert!(
            a.best.sides() > 2,
            "the winner must be many-sided: {}",
            a.best
        );
        // Distinct candidates only: at least the first generation's
        // population, at most one evaluation per candidate ever considered.
        assert!(a.evaluations >= config.population);
        assert!(a.evaluations <= config.population * config.generations);
    }

    #[test]
    fn synthesis_result_json_round_trips() {
        let result = synthesize(&trr_config(), 7);
        let json = serde_json::to_string(&result).unwrap();
        let decoded = synthesis_result_from_json(&json).unwrap();
        assert_eq!(decoded, result);
        assert_eq!(serde_json::to_string(&decoded).unwrap(), json);
        assert!(synthesis_result_from_json("][").is_err());
        assert!(synthesis_result_from_json("{}").is_err());
    }

    #[test]
    fn mutations_preserve_validity() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut p = HammerPattern::double_sided();
        for _ in 0..500 {
            p = mutate(&p, &mut rng);
            assert!(p.validate().is_ok(), "{p}");
        }
    }
}

//! The typed n-sided hammer-pattern representation.
//!
//! A [`HammerPattern`] describes one iteration of a (possibly non-uniform)
//! many-sided hammer entirely in attacker-visible terms:
//!
//! * **Aggressor set** — positions in units of the double-sided pair stride
//!   relative to a timing-verified base pair (offset 0 is the base low,
//!   offset 1 the base high; one stride moves the target's Level-1 PTE by
//!   two DRAM rows within the same bank, cf. `pthammer::pairs`).
//! * **Phase / ordering** — the `schedule` lists, in execution order, which
//!   aggressor each implicit touch of the round addresses.
//! * **Intensity** — an aggressor referenced several times per round is
//!   hammered proportionally harder (the schedule *is* the intensity
//!   vector).
//!
//! Patterns compile to the same interpretable
//! [`RoundOp`] sequences the built-in strategies declare,
//! with each touch addressed by `Target::Aggressor(i)`.

use std::fmt;

use serde::ser::JsonWriter;
use serde::{Deserialize, Serialize};

use pthammer::{RoundOp, Target};

/// Largest aggressor set a pattern may use. Bounded by how many pair
/// strides fit in a CI-sized page-table spray, with margin.
pub const MAX_SIDES: usize = 8;

/// Largest per-round schedule (total implicit touches per iteration).
pub const MAX_SCHEDULE: usize = 16;

/// Largest absolute aggressor offset, in pair strides.
pub const MAX_OFFSET: i32 = 7;

/// One n-sided, possibly non-uniform hammer pattern.
///
/// # Examples
///
/// ```
/// use pthammer_patterns::HammerPattern;
/// let ds = HammerPattern::double_sided();
/// assert_eq!(ds.sides(), 2);
/// assert!(ds.validate().is_ok());
/// assert_eq!(ds.round_ops().len(), 6, "two touches, each with two evictions");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HammerPattern {
    /// Aggressor positions in pair strides relative to the base low target.
    /// `offsets[0]` must be 0 (the base low) and `offsets[1]` must be 1 (the
    /// base high); further entries extend the set in either direction. One
    /// stride is two DRAM rows, so offset `k` is aggressor row
    /// `base_row + 2k`.
    pub offsets: Vec<i32>,
    /// Execution order of the round's implicit touches: indices into
    /// [`offsets`](Self::offsets). Repeating an index raises that
    /// aggressor's intensity.
    pub schedule: Vec<u8>,
}

impl HammerPattern {
    /// The classic double-sided pattern: the base pair, touched once each.
    pub fn double_sided() -> Self {
        Self {
            offsets: vec![0, 1],
            schedule: vec![0, 1],
        }
    }

    /// A uniform n-sided pattern: aggressors at strides `0..n`, rotated once
    /// per round in position order.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not in `2..=MAX_SIDES`.
    pub fn uniform_n_sided(n: usize) -> Self {
        assert!((2..=MAX_SIDES).contains(&n), "n must be in 2..={MAX_SIDES}");
        Self {
            offsets: (0..n as i32).collect(),
            schedule: (0..n as u8).collect(),
        }
    }

    /// A centered n-sided pattern: the base pair plus aggressors alternating
    /// outward on both sides (`0, 1, -1, 2, -2, …`), rotated once per round.
    /// Centered sets minimize the [`span`](Self::span) an aggressor set
    /// needs inside the sprayed region, so they arm far more often than
    /// one-directional runs of the same size.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not in `2..=MAX_SIDES`.
    pub fn centered_n_sided(n: usize) -> Self {
        assert!((2..=MAX_SIDES).contains(&n), "n must be in 2..={MAX_SIDES}");
        let mut offsets = vec![0, 1];
        let mut k = 1;
        while offsets.len() < n {
            offsets.push(-k);
            if offsets.len() < n {
                offsets.push(k + 1);
            }
            k += 1;
        }
        Self {
            offsets,
            schedule: (0..n as u8).collect(),
        }
    }

    /// Largest absolute offset of the set — the number of pair strides of
    /// sprayed address space the pattern needs on the wider side of the base
    /// pair. Smaller spans fit more candidate base pairs.
    pub fn span(&self) -> i32 {
        self.offsets.iter().map(|o| o.abs()).max().unwrap_or(0)
    }

    /// Number of aggressors in the set.
    pub fn sides(&self) -> usize {
        self.offsets.len()
    }

    /// How many times aggressor `index` is touched per round.
    pub fn intensity(&self, index: u8) -> usize {
        self.schedule.iter().filter(|&&s| s == index).count()
    }

    /// Touches per round (the schedule length).
    pub fn touches_per_round(&self) -> usize {
        self.schedule.len()
    }

    /// The aggressor DRAM rows of this pattern for a base-pair low target in
    /// `base_row`, in offset order (two rows per stride).
    pub fn aggressor_rows(&self, base_row: i64) -> Vec<i64> {
        self.offsets
            .iter()
            .map(|&o| base_row + 2 * i64::from(o))
            .collect()
    }

    /// Validates the structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.len() < 2 || self.offsets.len() > MAX_SIDES {
            return Err(format!(
                "pattern needs 2..={MAX_SIDES} aggressors, has {}",
                self.offsets.len()
            ));
        }
        if self.offsets[0] != 0 || self.offsets[1] != 1 {
            return Err("offsets must start with the base pair [0, 1]".to_string());
        }
        for (i, &o) in self.offsets.iter().enumerate() {
            if o.abs() > MAX_OFFSET {
                return Err(format!("offset {o} exceeds ±{MAX_OFFSET} strides"));
            }
            if self.offsets[..i].contains(&o) {
                return Err(format!("duplicate aggressor offset {o}"));
            }
        }
        if self.schedule.is_empty() || self.schedule.len() > MAX_SCHEDULE {
            return Err(format!(
                "schedule needs 1..={MAX_SCHEDULE} touches, has {}",
                self.schedule.len()
            ));
        }
        for &s in &self.schedule {
            if usize::from(s) >= self.offsets.len() {
                return Err(format!(
                    "schedule references aggressor {s}, only {} exist",
                    self.offsets.len()
                ));
            }
        }
        for i in 0..self.offsets.len() as u8 {
            if !self.schedule.contains(&i) {
                return Err(format!("aggressor {i} is never touched by the schedule"));
            }
        }
        for w in self.schedule.windows(2) {
            if w[0] == w[1] {
                return Err(format!(
                    "schedule touches aggressor {} twice in a row (row-buffer hit, no activation)",
                    w[0]
                ));
            }
        }
        Ok(())
    }

    /// The interpretable per-round op sequence: for each schedule entry, the
    /// aggressor's TLB eviction, its L1PTE LLC eviction, and the implicit
    /// touch — the exact trio of the built-in implicit strategies, addressed
    /// through [`Target::Aggressor`].
    pub fn round_ops(&self) -> Vec<RoundOp> {
        let mut ops = Vec::with_capacity(self.schedule.len() * 3);
        for &i in &self.schedule {
            ops.push(RoundOp::EvictTlb(Target::Aggressor(i)));
            ops.push(RoundOp::EvictLlc(Target::Aggressor(i)));
            ops.push(RoundOp::TouchImplicit(Target::Aggressor(i)));
        }
        ops
    }

    /// Canonical compact name, e.g. `5s[0,1,-1,-2,-3]@[2,0,3,1,4]` — stable
    /// across runs, used in store keys, reports and logs.
    pub fn canonical_name(&self) -> String {
        let offsets: Vec<String> = self.offsets.iter().map(|o| o.to_string()).collect();
        let schedule: Vec<String> = self.schedule.iter().map(|s| s.to_string()).collect();
        format!(
            "{}s[{}]@[{}]",
            self.sides(),
            offsets.join(","),
            schedule.join(",")
        )
    }
}

impl fmt::Display for HammerPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical_name())
    }
}

// Hand-written canonical JSON (the offline serde stub has no derive-based
// deserializer); `pattern_from_json` below is the exact inverse.
impl Serialize for HammerPattern {
    fn serialize(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("offsets");
        self.offsets.serialize(w);
        w.key("schedule");
        self.schedule.serialize(w);
        w.end_object();
    }
}

impl Deserialize for HammerPattern {}

/// Parses the canonical JSON form written by [`HammerPattern`]'s
/// `Serialize` impl.
///
/// # Errors
///
/// Describes the first missing or mistyped field; the decoded pattern is
/// re-validated so a cache can never hand out a structurally invalid
/// pattern.
pub fn pattern_from_json(value: &serde_json::Value) -> Result<HammerPattern, String> {
    let array = |name: &str| -> Result<&[serde_json::Value], String> {
        value
            .get(name)
            .and_then(|v| v.as_array())
            .ok_or_else(|| format!("pattern field `{name}` is not an array"))
    };
    let offsets = array("offsets")?
        .iter()
        .map(|v| {
            v.as_i64()
                .and_then(|i| i32::try_from(i).ok())
                .ok_or_else(|| "pattern offset is not an i32".to_string())
        })
        .collect::<Result<Vec<i32>, String>>()?;
    let schedule = array("schedule")?
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|i| u8::try_from(i).ok())
                .ok_or_else(|| "pattern schedule entry is not a u8".to_string())
        })
        .collect::<Result<Vec<u8>, String>>()?;
    let pattern = HammerPattern { offsets, schedule };
    pattern.validate()?;
    Ok(pattern)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(HammerPattern::double_sided().validate().is_ok());
        for n in 2..=MAX_SIDES {
            let p = HammerPattern::uniform_n_sided(n);
            assert!(p.validate().is_ok(), "{p}");
            assert_eq!(p.sides(), n);
            assert_eq!(p.touches_per_round(), n);
        }
    }

    #[test]
    fn invariants_are_enforced() {
        let base = HammerPattern::double_sided();

        let mut p = base.clone();
        p.offsets = vec![1, 0];
        assert!(p.validate().is_err(), "base pair order");

        let mut p = base.clone();
        p.offsets.push(0);
        assert!(p.validate().is_err(), "duplicate offset");

        let mut p = base.clone();
        p.offsets.push(MAX_OFFSET + 1);
        p.schedule = vec![0, 1, 2];
        assert!(p.validate().is_err(), "offset bound");

        let mut p = base.clone();
        p.schedule = vec![0, 7];
        assert!(p.validate().is_err(), "schedule index out of range");

        let mut p = base.clone();
        p.schedule = vec![0, 0, 1];
        assert!(p.validate().is_err(), "adjacent repeat");

        let mut p = base.clone();
        p.schedule = vec![0];
        assert!(p.validate().is_err(), "aggressor 1 never touched");

        let mut p = base.clone();
        p.schedule = [0, 1].repeat(MAX_SCHEDULE);
        assert!(p.validate().is_err(), "schedule too long");
    }

    #[test]
    fn round_ops_follow_the_schedule_with_the_implicit_trio() {
        let p = HammerPattern {
            offsets: vec![0, 1, -1],
            schedule: vec![2, 0, 1],
        };
        assert!(p.validate().is_ok());
        let ops = p.round_ops();
        assert_eq!(ops.len(), 9);
        for (k, &i) in p.schedule.iter().enumerate() {
            assert_eq!(ops[3 * k], RoundOp::EvictTlb(Target::Aggressor(i)));
            assert_eq!(ops[3 * k + 1], RoundOp::EvictLlc(Target::Aggressor(i)));
            assert_eq!(ops[3 * k + 2], RoundOp::TouchImplicit(Target::Aggressor(i)));
        }
        assert_eq!(p.intensity(0), 1);
        assert_eq!(p.aggressor_rows(10), vec![10, 12, 8]);
    }

    #[test]
    fn canonical_name_and_json_round_trip() {
        let p = HammerPattern {
            offsets: vec![0, 1, -1, -2],
            schedule: vec![2, 0, 3, 1],
        };
        assert_eq!(p.canonical_name(), "4s[0,1,-1,-2]@[2,0,3,1]");
        assert_eq!(p.to_string(), p.canonical_name());
        let json = serde_json::to_string(&p).unwrap();
        let value = serde_json::from_str(&json).unwrap();
        let decoded = pattern_from_json(&value).unwrap();
        assert_eq!(decoded, p);
        assert_eq!(serde_json::to_string(&decoded).unwrap(), json);
    }

    #[test]
    fn decoding_rejects_invalid_patterns() {
        let value = serde_json::from_str(r#"{"offsets":[0,1,1],"schedule":[0,1,2]}"#).unwrap();
        assert!(pattern_from_json(&value).unwrap_err().contains("duplicate"));
        let value = serde_json::from_str(r#"{"offsets":[0,1]}"#).unwrap();
        assert!(pattern_from_json(&value).is_err());
    }
}

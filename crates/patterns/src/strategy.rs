//! [`PatternHammer`]: executing synthesized patterns through the attack
//! pipeline.
//!
//! The strategy implements the existing
//! [`HammerStrategy`] trait, so a synthesized
//! many-sided pattern runs on the same phase pipeline, through the same
//! implicit (PTE-walk) touch path, and emits the same
//! [`RoundOp`]/event-bus telemetry as the four built-in
//! modes. Arming mirrors the paper's double-sided methodology: the base pair
//! is timing-verified for a row-buffer conflict (same bank), then the
//! pattern's further aggressors are materialized at multiples of the pair
//! stride — which moves a target's Level-1 PTE two DRAM rows within the same
//! bank — and each receives its own TLB eviction set and Algorithm 2 LLC
//! eviction set.

use pthammer::pairs::verify_same_bank;
use pthammer::pipeline::PreparedAttack;
use pthammer::{AttackConfig, AttackError, HammerMode, HammerStrategy, ImplicitHammer, RoundOp};
use pthammer_kernel::{Pid, System};
use pthammer_types::VirtAddr;

use crate::pattern::HammerPattern;

/// A hammer strategy executing one fixed [`HammerPattern`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternHammer {
    pattern: HammerPattern,
    ops: Vec<RoundOp>,
}

impl PatternHammer {
    /// Creates the strategy for a validated pattern.
    ///
    /// # Errors
    ///
    /// Returns the pattern's validation error.
    pub fn new(pattern: HammerPattern) -> Result<Self, String> {
        pattern.validate()?;
        let ops = pattern.round_ops();
        Ok(Self { pattern, ops })
    }

    /// The pattern this strategy executes.
    pub fn pattern(&self) -> &HammerPattern {
        &self.pattern
    }

    /// The virtual address of aggressor `offset` for a base pair at `low`
    /// with the given stride, if it exists (offsets may be negative).
    fn aggressor_va(low: VirtAddr, stride: u64, offset: i32) -> Option<VirtAddr> {
        let delta = stride.checked_mul(offset.unsigned_abs() as u64)?;
        if offset >= 0 {
            Some(low + delta)
        } else if low.as_u64() >= delta {
            Some(VirtAddr::new(low.as_u64() - delta))
        } else {
            None
        }
    }

    /// Shifts a candidate base low by whole pair strides until the whole
    /// aggressor window (`min_offset..=max_offset` strides around it) fits
    /// the sprayed region; `None` when the spray is too small for the
    /// pattern at any position.
    ///
    /// The candidate generator draws uniform pair positions without knowing
    /// the strategy; an attacker hammering a wide pattern simply re-bases
    /// its window inside the region it sprayed. Stride-granular shifts
    /// preserve the candidate's Level-1 index and chunk phase, so shifted
    /// candidates remain as valid (and as random) as unshifted ones.
    fn fit_low(
        &self,
        low: VirtAddr,
        stride: u64,
        spray: &pthammer::SprayRegion,
    ) -> Option<VirtAddr> {
        let min_offset = *self.pattern.offsets.iter().min().expect("validated");
        let max_offset = *self.pattern.offsets.iter().max().expect("validated");
        // Lowest admissible low: `|min_offset|` strides above the base.
        let floor = spray.base.as_u64() + stride * u64::from(min_offset.unsigned_abs());
        // Exclusive ceiling: the `max_offset` aggressor must stay inside.
        let ceiling = spray
            .end()
            .as_u64()
            .checked_sub(stride * max_offset.unsigned_abs() as u64)?;
        if floor >= ceiling {
            return None;
        }
        let mut low = low.as_u64();
        while low < floor {
            low += stride;
        }
        while low >= ceiling {
            low = low.checked_sub(stride)?;
        }
        (low >= floor).then(|| VirtAddr::new(low))
    }
}

impl HammerStrategy for PatternHammer {
    /// Pattern strategies hammer through the implicit touch path of the
    /// paper's default mode; the pattern descriptor — not the mode — is what
    /// identifies them in reports.
    fn mode(&self) -> HammerMode {
        HammerMode::ImplicitDoubleSided
    }

    fn round_ops(&self) -> &[RoundOp] {
        &self.ops
    }

    fn arm(
        &self,
        sys: &mut System,
        pid: Pid,
        pair: pthammer::HammerPair,
        prepared: &PreparedAttack,
        config: &AttackConfig,
        conflict_threshold: u64,
    ) -> Result<pthammer::hammer::strategy::ArmResult, AttackError> {
        use pthammer::hammer::strategy::{ArmResult, ArmedPair};

        let stride = pair.high - pair.low;

        // Re-base the candidate so the whole aggressor window fits the
        // sprayed region; candidates are rejected only when the spray is too
        // small for the pattern at any position.
        let Some(low) = self.fit_low(pair.low, stride, &prepared.spray) else {
            return Ok(ArmResult {
                armed: None,
                tlb_selection_cycles: 0,
                llc_selection_cycles: 0,
                verification: None,
            });
        };
        let pair = pthammer::HammerPair {
            low,
            high: low + stride,
        };

        // Every aggressor must resolve to a sprayed address.
        let mut aggressors = Vec::with_capacity(self.pattern.sides());
        for &offset in &self.pattern.offsets {
            match Self::aggressor_va(pair.low, stride, offset) {
                Some(va) if prepared.spray.contains(va) => aggressors.push(va),
                _ => {
                    return Ok(ArmResult {
                        armed: None,
                        tlb_selection_cycles: 0,
                        llc_selection_cycles: 0,
                        verification: None,
                    })
                }
            }
        }

        // Draw the extra aggressors' TLB eviction sets (timed, like the
        // built-in strategies' selection bookkeeping); the base pair's sets
        // come from `ImplicitHammer::prepare` below. `extra_tlb_sets[i]`
        // belongs to `aggressors[i + 2]`.
        let tlb_start = sys.rdtsc();
        let extra_tlb_sets: Vec<_> = aggressors[2..]
            .iter()
            .map(|&va| prepared.tlb_pool.minimal_eviction_set_for(va))
            .collect();
        let tlb_selection_cycles = sys.rdtsc() - tlb_start;
        if extra_tlb_sets.iter().any(|s| s.is_empty()) {
            return Err(AttackError::EvictionSetUnavailable(
                "TLB eviction pool has no pages for an aggressor's sets".to_string(),
            ));
        }

        // The base pair is armed and gated exactly like the paper's
        // double-sided strategy: Algorithm 2 LLC selection plus the timed
        // row-buffer-conflict verification.
        let base = ImplicitHammer::prepare(
            sys,
            pid,
            pair,
            &prepared.tlb_pool,
            &prepared.llc_pool,
            config.llc_profile_trials,
        )?;
        let mut llc_selection_cycles = base.selection_cycles();
        let verification = verify_same_bank(
            sys,
            pid,
            pair,
            &base.tlb_low,
            &base.tlb_high,
            &base.llc_low,
            &base.llc_high,
            conflict_threshold,
            5,
        )?;
        if !verification.same_bank {
            return Ok(ArmResult {
                armed: None,
                tlb_selection_cycles,
                llc_selection_cycles,
                verification: Some(verification),
            });
        }

        // Arm the remaining aggressors: per-aggressor Algorithm 2 selection
        // plus the same row-buffer-conflict probe the base pair passed, run
        // against the base target. Stride arithmetic makes an aggressor's
        // L1PTE *likely* to share the bank, but the kernel's own mid-spray
        // page-table allocations can shift part of the window into another
        // bank — and a split aggressor set hands the TRR sampler two small
        // row groups it can track. Timing verification (all the attacker can
        // measure) rejects such windows; the pipeline then tries the next
        // candidate.
        let mut sets = vec![
            (base.tlb_low.clone(), base.llc_low.clone()),
            (base.tlb_high.clone(), base.llc_high.clone()),
        ];
        for (extra, &va) in aggressors.iter().skip(2).enumerate() {
            let tlb = &extra_tlb_sets[extra];
            let llc =
                prepared
                    .llc_pool
                    .select_for_l1pte(sys, pid, va, tlb, config.llc_profile_trials)?;
            llc_selection_cycles += llc.selection_cycles;
            let probe = pthammer::HammerPair {
                low: pair.low.min(va),
                high: pair.low.max(va),
            };
            let (tlb_a, llc_a, tlb_b, llc_b) = if probe.low == pair.low {
                (&base.tlb_low, &base.llc_low, tlb, &llc)
            } else {
                (tlb, &llc, &base.tlb_low, &base.llc_low)
            };
            let aggressor_verification = verify_same_bank(
                sys,
                pid,
                probe,
                tlb_a,
                tlb_b,
                llc_a,
                llc_b,
                conflict_threshold,
                5,
            )?;
            if !aggressor_verification.same_bank {
                // Report the probe that actually failed, so event-bus
                // consumers see why the candidate was rejected.
                return Ok(ArmResult {
                    armed: None,
                    tlb_selection_cycles,
                    llc_selection_cycles,
                    verification: Some(aggressor_verification),
                });
            }
            sets.push((tlb.clone(), llc));
        }

        Ok(ArmResult {
            armed: Some(ArmedPair::multi(pair, aggressors, sets)),
            tlb_selection_cycles,
            llc_selection_cycles,
            verification: Some(verification),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pthammer::pairs::{candidate_pairs, conflict_threshold};
    use pthammer::pipeline::prepare_attack;
    use pthammer::Target;
    use pthammer_cache::{CacheHierarchyConfig, LlcConfig, ReplacementPolicy};
    use pthammer_dram::FlipModelProfile;
    use pthammer_machine::MachineConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_system(seed: u64) -> (System, Pid) {
        let mut cfg = MachineConfig::test_small(FlipModelProfile::invulnerable(), seed);
        cfg.cache = CacheHierarchyConfig {
            llc: LlcConfig {
                slices: 2,
                sets_per_slice: 256,
                ways: 8,
                latency: 18,
                replacement: ReplacementPolicy::Srrip,
                inclusive: true,
            },
            ..CacheHierarchyConfig::test_small(seed)
        };
        let mut sys = System::undefended(cfg);
        let pid = sys.spawn_process(1000).unwrap();
        (sys, pid)
    }

    fn tiny_config(seed: u64) -> AttackConfig {
        AttackConfig {
            spray_bytes: 640 << 20,
            llc_profile_trials: 6,
            ..AttackConfig::quick_test(seed, false)
        }
    }

    #[test]
    fn invalid_patterns_are_rejected_at_construction() {
        let mut bad = HammerPattern::double_sided();
        bad.schedule = vec![0, 0, 1];
        assert!(PatternHammer::new(bad).is_err());
    }

    #[test]
    fn aggressor_va_resolution_handles_negative_offsets() {
        let low = VirtAddr::new(0x4000_0000);
        let stride = 0x100_0000u64;
        assert_eq!(PatternHammer::aggressor_va(low, stride, 0), Some(low));
        assert_eq!(
            PatternHammer::aggressor_va(low, stride, 2),
            Some(low + 2 * stride)
        );
        assert_eq!(
            PatternHammer::aggressor_va(low, stride, -1),
            Some(VirtAddr::new(0x4000_0000 - 0x100_0000))
        );
        assert_eq!(
            PatternHammer::aggressor_va(VirtAddr::new(0x1000), stride, -1),
            None,
            "offsets below the address space are rejected"
        );
    }

    /// End to end against the simulated machine: a 4-sided pattern arms a
    /// verified base pair plus two negative-stride aggressors, all of its
    /// implicit touches reach DRAM, and the round op stream matches the
    /// schedule verbatim.
    #[test]
    fn pattern_rounds_execute_through_the_implicit_touch_path() {
        let config = tiny_config(47);
        let (mut sys, pid) = tiny_system(47);
        let prepared = prepare_attack(&mut sys, pid, &config).unwrap();
        let row_span = sys.machine().config().dram.geometry.row_span_bytes();
        let threshold = conflict_threshold(&sys);
        let pattern = HammerPattern {
            offsets: vec![0, 1, -1, -2],
            schedule: vec![2, 0, 3, 1],
        };
        let strategy = PatternHammer::new(pattern.clone()).unwrap();
        assert_eq!(strategy.implicit_touches_per_round(), 4);
        assert_eq!(strategy.round_ops(), pattern.round_ops().as_slice());

        let mut rng = StdRng::seed_from_u64(47);
        let mut armed = None;
        'search: for _ in 0..12 {
            for pair in candidate_pairs(&prepared.spray, row_span, 4, &mut rng) {
                let arm = strategy
                    .arm(&mut sys, pid, pair, &prepared, &config, threshold)
                    .unwrap();
                if let Some(a) = arm.armed {
                    assert!(arm.verification.unwrap().same_bank);
                    assert!(arm.llc_selection_cycles > 0);
                    armed = Some(a);
                    break 'search;
                }
            }
        }
        let armed = armed.expect("an armable 4-sided candidate");
        let round = armed
            .hammer_round(&mut sys, pid, strategy.round_ops())
            .unwrap();
        assert_eq!(
            round.aggressor_dram_hits, 4,
            "every implicit touch of the pattern must reach DRAM: {round:?}"
        );
        assert!(!round.low_dram && !round.high_dram);
        assert!(round.cycles > 0);
        // Ops address only pattern aggressors, never the pair targets.
        assert!(strategy.round_ops().iter().all(|op| matches!(
            op,
            RoundOp::EvictTlb(Target::Aggressor(_))
                | RoundOp::EvictLlc(Target::Aggressor(_))
                | RoundOp::TouchImplicit(Target::Aggressor(_))
        )));
    }

    /// Candidates whose aggressors would fall outside the sprayed region are
    /// rejected (armed: None), not errored.
    #[test]
    fn out_of_spray_candidates_are_rejected() {
        let config = tiny_config(53);
        let (mut sys, pid) = tiny_system(53);
        let prepared = prepare_attack(&mut sys, pid, &config).unwrap();
        let row_span = sys.machine().config().dram.geometry.row_span_bytes();
        let threshold = conflict_threshold(&sys);
        // Six strides below the base cannot fit: the spray is five strides.
        let pattern = HammerPattern {
            offsets: vec![0, 1, -6],
            schedule: vec![2, 0, 1],
        };
        let strategy = PatternHammer::new(pattern).unwrap();
        let mut rng = StdRng::seed_from_u64(53);
        for pair in candidate_pairs(&prepared.spray, row_span, 8, &mut rng) {
            let arm = strategy
                .arm(&mut sys, pid, pair, &prepared, &config, threshold)
                .unwrap();
            assert!(arm.armed.is_none());
            assert!(arm.verification.is_none(), "rejected before verification");
        }
    }
}

//! The memory subsystem: cache hierarchy + DRAM + physical contents.

use serde::{Deserialize, Serialize};

use pthammer_cache::CacheHierarchy;
use pthammer_dram::DramModule;
use pthammer_types::{Cycles, MemAccessOutcome, MemoryLevel, PhysAddr, PhysicalMemoryAccess};

use crate::phys_mem::{AppliedFlip, PhysicalMemory};

/// Caches, DRAM and physical contents glued together.
///
/// Every line access consults the cache hierarchy; on a miss it accesses the
/// DRAM model (which may emit rowhammer flips — these are applied to the
/// physical contents immediately) and fills the caches. The subsystem
/// implements [`PhysicalMemoryAccess`], so the MMU's page-table walker issues
/// its implicit PTE loads through exactly the same path as ordinary data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemorySubsystem {
    caches: CacheHierarchy,
    dram: DramModule,
    phys: PhysicalMemory,
    /// Current simulated time, provided by the machine before each operation.
    now: Cycles,
    /// When true, DRAM-served accesses are charged the overlapped latency.
    batch_mode: bool,
    dram_overlap_latency: Cycles,
    applied_flips: Vec<AppliedFlip>,
}

impl MemorySubsystem {
    /// Creates the subsystem.
    pub fn new(
        caches: CacheHierarchy,
        dram: DramModule,
        phys: PhysicalMemory,
        dram_overlap_latency: u32,
    ) -> Self {
        Self {
            caches,
            dram,
            phys,
            now: Cycles::ZERO,
            batch_mode: false,
            dram_overlap_latency: Cycles::new(u64::from(dram_overlap_latency)),
            applied_flips: Vec::new(),
        }
    }

    /// Read access to the cache hierarchy (for oracles and statistics).
    pub fn caches(&self) -> &CacheHierarchy {
        &self.caches
    }

    /// Mutable access to the cache hierarchy (used for clflush and by tests).
    pub fn caches_mut(&mut self) -> &mut CacheHierarchy {
        &mut self.caches
    }

    /// Read access to the DRAM module.
    pub fn dram(&self) -> &DramModule {
        &self.dram
    }

    /// Read access to the physical contents.
    pub fn phys(&self) -> &PhysicalMemory {
        &self.phys
    }

    /// Mutable access to the physical contents (privileged / kernel writes
    /// that bypass the timing model).
    pub fn phys_mut(&mut self) -> &mut PhysicalMemory {
        &mut self.phys
    }

    /// Updates the subsystem's notion of the current time.
    pub fn set_now(&mut self, now: Cycles) {
        self.now = now;
    }

    /// Enables or disables batch (pipelined) charging of DRAM latencies.
    pub fn set_batch_mode(&mut self, batch: bool) {
        self.batch_mode = batch;
    }

    /// All bit flips applied to physical memory so far.
    pub fn applied_flips(&self) -> &[AppliedFlip] {
        &self.applied_flips
    }

    /// Performs a timed access to the cache line containing `paddr`.
    ///
    /// In batch (pipelined) mode the charged latency models an out-of-order
    /// core overlapping independent accesses: cache hits are charged roughly
    /// a third of their serialized latency and DRAM accesses the configured
    /// overlap cost.
    #[inline]
    pub fn access_line(&mut self, paddr: PhysAddr) -> MemAccessOutcome {
        let (lookup, fill_plan) = self.caches.access_planning_fill(paddr);
        if let Some(level) = lookup.hit_level {
            let latency = if self.batch_mode {
                Cycles::new(lookup.latency.as_u64().div_ceil(3))
            } else {
                lookup.latency
            };
            return MemAccessOutcome {
                paddr,
                served_by: level,
                latency,
                row_buffer_hit: false,
            };
        }
        let dram_access = self.dram.access(paddr, self.now);
        for flip in &dram_access.flips {
            if let Some(applied) = self.phys.apply_flip(flip) {
                self.applied_flips.push(applied);
            }
        }
        // The lookup above just missed every level and captured where the
        // fill should land, so no way re-scan runs here. (The DRAM access in
        // between never touches the caches, keeping the plan valid.)
        self.caches.fill_with_plan(paddr, fill_plan);
        let dram_latency = if self.batch_mode {
            self.dram_overlap_latency
        } else {
            dram_access.latency
        };
        MemAccessOutcome {
            paddr,
            served_by: MemoryLevel::Dram,
            latency: lookup.latency + dram_latency,
            row_buffer_hit: dram_access.row_buffer == pthammer_dram::RowBufferOutcome::Hit,
        }
    }

    /// Flushes the line containing `paddr` from every cache level.
    pub fn clflush_line(&mut self, paddr: PhysAddr) {
        self.caches.clflush(paddr);
    }
}

impl PhysicalMemoryAccess for MemorySubsystem {
    fn load_qword(&mut self, paddr: PhysAddr) -> (u64, MemAccessOutcome) {
        let outcome = self.access_line(paddr);
        let aligned = PhysAddr::new(paddr.as_u64() & !7);
        (self.phys.read_u64(aligned), outcome)
    }

    fn store_qword(&mut self, paddr: PhysAddr, value: u64) -> MemAccessOutcome {
        let outcome = self.access_line(paddr);
        let aligned = PhysAddr::new(paddr.as_u64() & !7);
        self.phys.write_u64(aligned, value);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pthammer_cache::CacheHierarchyConfig;
    use pthammer_dram::{DramConfig, FlipModelProfile};

    fn subsystem() -> MemorySubsystem {
        let caches = CacheHierarchy::new(CacheHierarchyConfig::test_small(1));
        let dram = DramModule::new(DramConfig::test_small(FlipModelProfile::invulnerable(), 1));
        let phys = PhysicalMemory::new(32 << 20);
        MemorySubsystem::new(caches, dram, phys, 60)
    }

    #[test]
    fn miss_then_hit_latency() {
        let mut m = subsystem();
        let a = PhysAddr::new(0x10_000);
        let miss = m.access_line(a);
        assert_eq!(miss.served_by, MemoryLevel::Dram);
        let hit = m.access_line(a);
        assert_eq!(hit.served_by, MemoryLevel::L1);
        assert!(hit.latency < miss.latency);
    }

    #[test]
    fn batch_mode_charges_overlap_latency() {
        let mut serial = subsystem();
        let full = serial.access_line(PhysAddr::new(0x20_000)).latency;

        let mut batched = subsystem();
        batched.set_batch_mode(true);
        let overlapped = batched.access_line(PhysAddr::new(0x20_000)).latency;
        assert!(overlapped < full);
    }

    #[test]
    fn load_and_store_qword_roundtrip() {
        let mut m = subsystem();
        let addr = PhysAddr::new(0x30_008);
        m.store_qword(addr, 0xfeed_face_dead_beef);
        let (value, outcome) = m.load_qword(addr);
        assert_eq!(value, 0xfeed_face_dead_beef);
        assert_eq!(outcome.served_by, MemoryLevel::L1, "line was just filled");
    }

    #[test]
    fn load_qword_is_qword_granular_within_line() {
        let mut m = subsystem();
        m.phys_mut().write_u64(PhysAddr::new(0x40), 11);
        m.phys_mut().write_u64(PhysAddr::new(0x48), 22);
        assert_eq!(m.load_qword(PhysAddr::new(0x40)).0, 11);
        assert_eq!(m.load_qword(PhysAddr::new(0x48)).0, 22);
    }

    #[test]
    fn clflush_forces_next_access_to_dram() {
        let mut m = subsystem();
        let a = PhysAddr::new(0x50_000);
        m.access_line(a);
        assert_eq!(m.access_line(a).served_by, MemoryLevel::L1);
        m.clflush_line(a);
        assert_eq!(m.access_line(a).served_by, MemoryLevel::Dram);
    }

    #[test]
    fn flips_are_applied_to_physical_memory() {
        // Use a vulnerable profile and hammer two rows adjacent to a weak row.
        let caches = CacheHierarchy::new(CacheHierarchyConfig::test_small(1));
        let dram = DramModule::new(DramConfig::test_small(FlipModelProfile::ci(), 5));
        let geometry = dram.config().geometry;
        let model = dram.flip_model().clone();
        let mapping = *dram.mapping();
        let base_unit = mapping.to_dram(PhysAddr::new(0)).bank_unit(&geometry);
        let victim_row = (1..geometry.rows_per_bank - 1)
            .find(|&r| model.row_is_weak(base_unit, r))
            .expect("weak row exists");
        let phys = PhysicalMemory::new(geometry.capacity_bytes());
        let mut m = MemorySubsystem::new(caches, dram, phys, 60);

        // Fill the victim row's frames with all-ones so true-cell flips apply.
        let row_span = geometry.row_span_bytes();
        let victim_base = u64::from(victim_row) * row_span;
        for frame in (victim_base / 4096)..((victim_base + row_span) / 4096) {
            m.phys_mut().write_frame_uniform(frame, u64::MAX);
        }

        let low = PhysAddr::new(victim_base - row_span);
        let high = PhysAddr::new(victim_base + row_span);
        let mut now = 0u64;
        for _ in 0..1500 {
            for addr in [low, high] {
                m.set_now(Cycles::new(now));
                m.access_line(addr);
                m.clflush_line(addr);
                now += 300;
            }
        }
        assert!(
            !m.applied_flips().is_empty(),
            "hammering adjacent rows should flip bits in the weak victim row"
        );
        for flip in m.applied_flips() {
            assert_ne!(flip.old, flip.new);
        }
    }
}

//! Named machine models (the paper's Table I plus the CI-scale test machine).

use pthammer_dram::FlipModelProfile;
use serde::{Deserialize, Serialize};

use crate::MachineConfig;

/// Which machine model to instantiate.
///
/// The three Table I machines are the paper's evaluation targets;
/// [`MachineChoice::TestSmall`] is the deliberately small but fully modelled
/// machine the integration tests and the campaign harness's CI-scale
/// matrices run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MachineChoice {
    /// Lenovo T420 (Sandy Bridge, 3 MiB 12-way LLC).
    LenovoT420,
    /// Lenovo X230 (Ivy Bridge, 3 MiB 12-way LLC).
    LenovoX230,
    /// Dell E6420 (Sandy Bridge, 4 MiB 16-way LLC).
    DellE6420,
    /// Small test machine (CI scale; not part of Table I).
    TestSmall,
    /// The small test machine with an in-DRAM TRR mitigation (CI scale;
    /// post-DDR3 era, not part of Table I).
    TestSmallTrr,
    /// DDR4-class 8 GiB machine with TRR (post-DDR3 era, not part of
    /// Table I).
    Ddr4Trr,
}

impl MachineChoice {
    /// All Table I machines (excludes [`MachineChoice::TestSmall`]).
    pub fn all() -> Vec<MachineChoice> {
        vec![
            MachineChoice::LenovoT420,
            MachineChoice::LenovoX230,
            MachineChoice::DellE6420,
        ]
    }

    /// The machines to run given the `PTHAMMER_ALL_MACHINES` environment
    /// variable (default: only the T420, to keep host time reasonable).
    pub fn selected() -> Vec<MachineChoice> {
        if std::env::var("PTHAMMER_ALL_MACHINES")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            Self::all()
        } else {
            vec![MachineChoice::LenovoT420]
        }
    }

    /// The TRR-era machines (in-DRAM mitigation enabled; not part of
    /// Table I — the paper's DDR3 machines have no TRR).
    pub fn trr_machines() -> Vec<MachineChoice> {
        vec![MachineChoice::TestSmallTrr, MachineChoice::Ddr4Trr]
    }

    /// Whether this machine models an in-DRAM TRR mitigation.
    pub fn has_trr(&self) -> bool {
        matches!(self, MachineChoice::TestSmallTrr | MachineChoice::Ddr4Trr)
    }

    /// Human-readable machine name.
    pub fn name(&self) -> &'static str {
        match self {
            MachineChoice::LenovoT420 => "Lenovo T420",
            MachineChoice::LenovoX230 => "Lenovo X230",
            MachineChoice::DellE6420 => "Dell E6420",
            MachineChoice::TestSmall => "Test Small",
            MachineChoice::TestSmallTrr => "Test Small TRR",
            MachineChoice::Ddr4Trr => "DDR4 TRR",
        }
    }

    /// Builds the machine configuration with the given weak-cell profile.
    pub fn config(&self, profile: FlipModelProfile, seed: u64) -> MachineConfig {
        match self {
            MachineChoice::LenovoT420 => MachineConfig::lenovo_t420(profile, seed),
            MachineChoice::LenovoX230 => MachineConfig::lenovo_x230(profile, seed),
            MachineChoice::DellE6420 => MachineConfig::dell_e6420(profile, seed),
            MachineChoice::TestSmall => MachineConfig::ci_small(profile, seed),
            MachineChoice::TestSmallTrr => MachineConfig::ci_small_trr(profile, seed),
            MachineChoice::Ddr4Trr => MachineConfig::ddr4_trr(profile, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_machines_and_names() {
        assert_eq!(MachineChoice::all().len(), 3);
        assert!(!MachineChoice::all().contains(&MachineChoice::TestSmall));
        assert!(!MachineChoice::selected().is_empty());
        assert_eq!(MachineChoice::LenovoT420.name(), "Lenovo T420");
        let cfg = MachineChoice::DellE6420.config(FlipModelProfile::fast(), 1);
        assert_eq!(cfg.cache.llc.ways, 16);
    }

    #[test]
    fn test_small_uses_the_ci_machine() {
        let cfg = MachineChoice::TestSmall.config(FlipModelProfile::ci(), 7);
        assert_eq!(cfg, MachineConfig::ci_small(FlipModelProfile::ci(), 7));
        assert_eq!(cfg.name, "Test Small");
    }

    #[test]
    fn trr_machines_enable_the_sampler_and_stay_out_of_table1() {
        for machine in MachineChoice::trr_machines() {
            assert!(machine.has_trr());
            assert!(!MachineChoice::all().contains(&machine));
            let cfg = machine.config(FlipModelProfile::ci(), 7);
            assert!(cfg.validate().is_ok(), "{} invalid", cfg.name);
            assert!(cfg.dram.trr.enabled, "{} must enable TRR", cfg.name);
            assert!(cfg.dram.trr.sampler_capacity > 0);
            assert_eq!(cfg.name, machine.name());
        }
        assert!(!MachineChoice::TestSmall.has_trr());
        // Apart from the name and the TRR sampler, the TRR test machine is
        // the CI machine — same caches, TLBs and DRAM geometry — so flips
        // deltas against TestSmall isolate the mitigation itself.
        let trr = MachineChoice::TestSmallTrr.config(FlipModelProfile::ci(), 7);
        let mut base = MachineConfig::ci_small(FlipModelProfile::ci(), 7);
        base.name = trr.name.clone();
        base.dram.trr = trr.dram.trr;
        assert_eq!(trr, base);
    }
}

//! Machine configurations, including the Table I presets.

use serde::{Deserialize, Serialize};

use pthammer_cache::CacheHierarchyConfig;
use pthammer_dram::{DramConfig, DramGeometry, DramTimings, FlipModelProfile};
use pthammer_mmu::MmuConfig;

/// Complete configuration of a simulated machine.
///
/// The three presets mirror Table I of the paper:
///
/// | Machine      | CPU               | TLB              | LLC            | DRAM |
/// |--------------|-------------------|------------------|----------------|------|
/// | Lenovo T420  | Sandy Bridge i5   | 4-way L1d/L2s    | 12-way, 3 MiB  | 8 GiB DDR3 |
/// | Lenovo X230  | Ivy Bridge i5     | 4-way L1d/L2s    | 12-way, 3 MiB  | 8 GiB DDR3 |
/// | Dell E6420   | Sandy Bridge i7   | 4-way L1d/L2s    | 16-way, 4 MiB  | 8 GiB DDR3 |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Human-readable machine name (used in experiment reports).
    pub name: String,
    /// Nominal CPU clock in Hz; converts simulated cycles to seconds.
    pub clock_hz: f64,
    /// Cache hierarchy configuration.
    pub cache: CacheHierarchyConfig,
    /// MMU (TLBs, paging-structure caches, walker) configuration.
    pub mmu: MmuConfig,
    /// DRAM module configuration.
    pub dram: DramConfig,
    /// Latency charged for a DRAM-served access issued from a pipelined
    /// (batched) access sequence, modelling memory-level parallelism of the
    /// out-of-order core. Serialized (timed) accesses pay the full DRAM
    /// latency.
    pub dram_overlap_latency: u32,
    /// Fixed per-access front-end overhead in cycles.
    pub access_overhead: u32,
}

impl MachineConfig {
    /// Lenovo T420 (Sandy Bridge i5-2540M, 3 MiB 12-way LLC, 8 GiB DDR3).
    pub fn lenovo_t420(flip_profile: FlipModelProfile, seed: u64) -> Self {
        Self {
            name: "Lenovo T420".to_string(),
            clock_hz: 2.6e9,
            cache: CacheHierarchyConfig::sandy_bridge_3mib(seed ^ 0x1420),
            mmu: MmuConfig::sandy_bridge(seed ^ 0x2420),
            dram: DramConfig {
                timings: DramTimings::ddr3_default(),
                ..DramConfig::ddr3_8gib(flip_profile, seed ^ 0x3420)
            },
            dram_overlap_latency: 35,
            access_overhead: 2,
        }
    }

    /// Lenovo X230 (Ivy Bridge i5-3230M, 3 MiB 12-way LLC, 8 GiB DDR3).
    pub fn lenovo_x230(flip_profile: FlipModelProfile, seed: u64) -> Self {
        let mut cfg = Self::lenovo_t420(flip_profile, seed ^ 0x230);
        cfg.name = "Lenovo X230".to_string();
        cfg.clock_hz = 2.6e9;
        // Ivy Bridge: marginally faster DRAM path than the T420.
        cfg.dram.timings = DramTimings {
            cas: 105,
            rcd: 42,
            rp: 42,
            refresh_window: 166_400_000,
        };
        cfg
    }

    /// Dell E6420 (Sandy Bridge i7-2640M, 4 MiB 16-way LLC, 8 GiB DDR3).
    pub fn dell_e6420(flip_profile: FlipModelProfile, seed: u64) -> Self {
        Self {
            name: "Dell E6420".to_string(),
            clock_hz: 2.8e9,
            cache: CacheHierarchyConfig::sandy_bridge_4mib(seed ^ 0x6420),
            mmu: MmuConfig::sandy_bridge(seed ^ 0x7420),
            dram: DramConfig {
                timings: DramTimings::ddr3_slow(),
                ..DramConfig::ddr3_8gib(flip_profile, seed ^ 0x8420)
            },
            dram_overlap_latency: 50,
            access_overhead: 3,
        }
    }

    /// All three Table I machines.
    pub fn table1_machines(flip_profile: FlipModelProfile, seed: u64) -> Vec<Self> {
        vec![
            Self::lenovo_t420(flip_profile, seed),
            Self::lenovo_x230(flip_profile, seed),
            Self::dell_e6420(flip_profile, seed),
        ]
    }

    /// A scaled-down machine (1 GiB DRAM, small caches unchanged TLBs) for
    /// integration tests and examples that need to finish quickly.
    pub fn test_small(flip_profile: FlipModelProfile, seed: u64) -> Self {
        Self {
            name: "Test Small".to_string(),
            clock_hz: 2.6e9,
            cache: CacheHierarchyConfig::sandy_bridge_3mib(seed ^ 0x51),
            mmu: MmuConfig::sandy_bridge(seed ^ 0x52),
            dram: DramConfig {
                geometry: DramGeometry::small_1gib(),
                timings: DramTimings::fast_test(),
                ..DramConfig::ddr3_8gib(flip_profile, seed ^ 0x53)
            },
            dram_overlap_latency: 35,
            access_overhead: 2,
        }
    }

    /// The CI-scale machine: [`test_small`](Self::test_small) with the small
    /// cache hierarchy and a trimmed 2-slice, 256-set, 8-way LLC, so
    /// eviction-pool construction costs seconds instead of minutes of host
    /// time. This is the machine the integration tests and the campaign
    /// harness's golden-snapshot matrix attack.
    pub fn ci_small(flip_profile: FlipModelProfile, seed: u64) -> Self {
        use pthammer_cache::{LlcConfig, ReplacementPolicy};
        let mut cfg = Self::test_small(flip_profile, seed);
        cfg.cache = CacheHierarchyConfig {
            llc: LlcConfig {
                slices: 2,
                sets_per_slice: 256,
                ways: 8,
                latency: 18,
                replacement: ReplacementPolicy::Srrip,
                inclusive: true,
            },
            ..CacheHierarchyConfig::test_small(seed)
        };
        cfg
    }

    /// The CI-scale machine with an in-DRAM Target Row Refresh mitigation:
    /// [`ci_small`](Self::ci_small) plus a bounded TRR sampler. The sampler
    /// threshold is set so that a tracked aggressor's neighbours are
    /// refreshed well before the `ci` profile's minimum flip threshold (100
    /// disturbances) accumulates, and the capacity is deliberately small —
    /// like real DDR4 TRR implementations — so many-sided access patterns
    /// with more simultaneous aggressors than sampler slots can still slip
    /// past it (the TRRespass effect).
    pub fn ci_small_trr(flip_profile: FlipModelProfile, seed: u64) -> Self {
        use pthammer_dram::TrrConfig;
        let mut cfg = Self::ci_small(flip_profile, seed);
        cfg.name = "Test Small TRR".to_string();
        cfg.dram.trr = TrrConfig::enabled(40, 6);
        cfg
    }

    /// A DDR4-class 8 GiB machine with TRR: the T420's platform with faster
    /// DRAM timings and an in-DRAM mitigation scaled to the paper profile's
    /// flip thresholds (min 30 000 disturbances → refresh tracked aggressors'
    /// neighbours every 12 000 activations; sampler capacity 4).
    pub fn ddr4_trr(flip_profile: FlipModelProfile, seed: u64) -> Self {
        use pthammer_dram::TrrConfig;
        let mut cfg = Self::lenovo_t420(flip_profile, seed ^ 0x0DD4);
        cfg.name = "DDR4 TRR".to_string();
        // DDR4-1866-class timings at the same 2.6 GHz core clock: shorter
        // CAS/RCD/RP than the DDR3 presets.
        cfg.dram.timings = DramTimings {
            cas: 90,
            rcd: 36,
            rp: 36,
            refresh_window: 166_400_000,
        };
        cfg.dram.trr = TrrConfig::enabled(12_000, 4);
        cfg
    }

    /// Validates every component configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid component.
    pub fn validate(&self) -> Result<(), String> {
        if self.clock_hz <= 0.0 || self.clock_hz.is_nan() {
            return Err("clock_hz must be positive".to_string());
        }
        self.cache.validate()?;
        self.mmu.validate()?;
        self.dram.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_presets_are_valid_and_distinct() {
        let machines = MachineConfig::table1_machines(FlipModelProfile::paper(), 1);
        assert_eq!(machines.len(), 3);
        for m in &machines {
            assert!(m.validate().is_ok(), "{} invalid", m.name);
            assert_eq!(m.dram.geometry.capacity_bytes(), 8 << 30);
        }
        assert_eq!(machines[0].cache.llc.ways, 12);
        assert_eq!(machines[1].cache.llc.ways, 12);
        assert_eq!(machines[2].cache.llc.ways, 16);
        assert_eq!(machines[2].cache.llc.capacity_bytes(), 4 << 20);
    }

    #[test]
    fn test_machine_is_small_and_valid() {
        let m = MachineConfig::test_small(FlipModelProfile::ci(), 7);
        assert!(m.validate().is_ok());
        assert_eq!(m.dram.geometry.capacity_bytes(), 1 << 30);
    }

    #[test]
    fn validation_rejects_bad_clock() {
        let mut m = MachineConfig::test_small(FlipModelProfile::ci(), 7);
        m.clock_hz = 0.0;
        assert!(m.validate().is_err());
    }
}

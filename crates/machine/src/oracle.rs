//! Privileged evaluation oracle.
//!
//! The paper uses a small kernel module to verify the attack's internal steps
//! (reading performance counters, obtaining the physical address of Level-1
//! PTEs, checking eviction-set congruence). This module provides the same
//! ground truth for the simulation. **The simulated attacker never calls
//! these functions while attacking** — they are used by the evaluation
//! harness and tests only.

use serde::{Deserialize, Serialize};

use pthammer_dram::DramAddress;
use pthammer_mmu::Pte;
use pthammer_types::{PhysAddr, VirtAddr, PTE_SIZE};

use crate::machine::Machine;

/// Result of a software page-table walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoftwareWalk {
    /// Final translated physical address.
    pub paddr: PhysAddr,
    /// Physical address of the leaf entry (the Level-1 PTE for 4 KiB pages,
    /// the PDE for 2 MiB pages).
    pub leaf_entry_paddr: PhysAddr,
    /// Level at which the walk terminated (1 for 4 KiB pages, 2 for 2 MiB).
    pub level: u8,
    /// The leaf entry value.
    pub leaf_entry: Pte,
}

/// Walks the page tables in software (no caches, no timing, no TLB effects).
/// Returns `None` if any level is non-present.
pub fn software_walk(machine: &Machine, cr3: PhysAddr, vaddr: VirtAddr) -> Option<SoftwareWalk> {
    let mut table = cr3;
    for level in (1..=4u8).rev() {
        let entry_paddr = table + vaddr.pt_index(level) * PTE_SIZE;
        let entry = Pte::from_raw(machine.phys_read_u64(entry_paddr));
        if !entry.present() {
            return None;
        }
        if level == 2 && entry.huge() {
            return Some(SoftwareWalk {
                paddr: entry.frame() + vaddr.huge_page_offset(),
                leaf_entry_paddr: entry_paddr,
                level: 2,
                leaf_entry: entry,
            });
        }
        if level == 1 {
            return Some(SoftwareWalk {
                paddr: entry.frame() + vaddr.page_offset(),
                leaf_entry_paddr: entry_paddr,
                level: 1,
                leaf_entry: entry,
            });
        }
        table = entry.frame();
    }
    unreachable!("loop always returns at level 1")
}

/// Physical address of the Level-1 PTE that maps `vaddr` (the quantity the
/// paper's kernel module exposes to verify Algorithm 2's eviction-set
/// selection and the double-sided pair selection).
pub fn l1pte_paddr(machine: &Machine, cr3: PhysAddr, vaddr: VirtAddr) -> Option<PhysAddr> {
    let walk = software_walk(machine, cr3, vaddr)?;
    (walk.level == 1).then_some(walk.leaf_entry_paddr)
}

/// LLC (slice, set) of a physical address — ground truth for eviction-set
/// congruence checks (Section IV-C of the paper).
pub fn llc_location(machine: &Machine, paddr: PhysAddr) -> (u32, u32) {
    machine.caches().llc_slice_and_set(paddr)
}

/// DRAM location of a physical address — ground truth for the double-sided
/// pair-selection evaluation (Section IV-D of the paper).
pub fn dram_location(machine: &Machine, paddr: PhysAddr) -> DramAddress {
    machine.dram().locate(paddr)
}

/// True when the two physical addresses are in the same DRAM bank.
pub fn same_bank(machine: &Machine, a: PhysAddr, b: PhysAddr) -> bool {
    machine.dram().same_bank(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use pthammer_dram::FlipModelProfile;
    use pthammer_mmu::PteFlags;

    fn machine() -> (Machine, PhysAddr) {
        let mut m = Machine::new(MachineConfig::test_small(
            FlipModelProfile::invulnerable(),
            3,
        ));
        let cr3 = PhysAddr::new(0x40_0000);
        let va = VirtAddr::new(0x1234_5000);
        let pdpt = 0x40_1000u64;
        let pd = 0x40_2000u64;
        let pt = 0x40_3000u64;
        m.phys_write_u64(
            cr3 + va.pt_index(4) * 8,
            Pte::table(PhysAddr::new(pdpt)).raw(),
        );
        m.phys_write_u64(
            PhysAddr::new(pdpt) + va.pt_index(3) * 8,
            Pte::table(PhysAddr::new(pd)).raw(),
        );
        m.phys_write_u64(
            PhysAddr::new(pd) + va.pt_index(2) * 8,
            Pte::table(PhysAddr::new(pt)).raw(),
        );
        m.phys_write_u64(
            PhysAddr::new(pt) + va.pt_index(1) * 8,
            Pte::page(PhysAddr::new(0xa000), PteFlags::user_rw()).raw(),
        );
        (m, cr3)
    }

    #[test]
    fn software_walk_resolves_mapping() {
        let (m, cr3) = machine();
        let walk = software_walk(&m, cr3, VirtAddr::new(0x1234_5678)).unwrap();
        assert_eq!(walk.paddr, PhysAddr::new(0xa678));
        assert_eq!(walk.level, 1);
        assert_eq!(
            walk.leaf_entry_paddr,
            PhysAddr::new(0x40_3000) + VirtAddr::new(0x1234_5678).pt_index(1) * 8
        );
    }

    #[test]
    fn software_walk_returns_none_for_unmapped() {
        let (m, cr3) = machine();
        assert!(software_walk(&m, cr3, VirtAddr::new(0xdead_0000_0000)).is_none());
    }

    #[test]
    fn l1pte_paddr_matches_walk() {
        let (m, cr3) = machine();
        let va = VirtAddr::new(0x1234_5000);
        let pte_pa = l1pte_paddr(&m, cr3, va).unwrap();
        assert_eq!(pte_pa, software_walk(&m, cr3, va).unwrap().leaf_entry_paddr);
    }

    #[test]
    fn llc_and_dram_oracles_are_consistent_with_components() {
        let (m, _) = machine();
        let pa = PhysAddr::new(0x12_3440);
        assert_eq!(llc_location(&m, pa), m.caches().llc_slice_and_set(pa));
        assert_eq!(dram_location(&m, pa), m.dram().locate(pa));
        assert!(same_bank(&m, pa, pa));
    }
}

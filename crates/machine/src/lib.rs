//! Simulated machine composition for the PThammer reproduction.
//!
//! Glues the substrates together into the machines of Table I: sparse
//! physical memory, the DRAM model, the cache hierarchy, the MMU and a
//! simulated cycle clock. The [`Machine`] type exposes the user-level
//! operations the simulated attacker is allowed to perform (timed virtual
//! accesses, `clflush`, `rdtsc`) and the privileged operations the kernel
//! substrate needs (physical reads/writes, TLB shoot-downs), plus an
//! evaluation [`oracle`] that mirrors the kernel module the paper uses to
//! verify its attack steps.
//!
//! # Examples
//!
//! ```
//! use pthammer_machine::{Machine, MachineConfig};
//! use pthammer_dram::FlipModelProfile;
//!
//! let machine = Machine::new(MachineConfig::lenovo_t420(FlipModelProfile::paper(), 42));
//! assert_eq!(machine.config().name, "Lenovo T420");
//! assert_eq!(machine.rdtsc(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod choice;
mod config;
mod machine;
mod memory;
pub mod oracle;
mod phys_mem;

pub use choice::MachineChoice;
pub use config::MachineConfig;
pub use machine::{Machine, TouchAccess, VirtualAccess};
pub use memory::MemorySubsystem;
pub use oracle::{
    dram_location, l1pte_paddr, llc_location, same_bank, software_walk, SoftwareWalk,
};
pub use phys_mem::{AppliedFlip, PhysicalMemory};

//! Sparse physical-memory contents.

use serde::{Deserialize, Serialize};

use pthammer_dram::FlipEvent;
use pthammer_types::{DetHashMap, FlipDirection, PhysAddr, PAGE_SIZE};

/// Contents of one 4 KiB physical frame.
///
/// Frames whose 512 qwords are all equal (zeroed frames, freshly sprayed
/// Level-1 page tables) are stored as a single value; they are upgraded to a
/// full byte array on the first non-uniform write. This keeps multi-gigabyte
/// page-table sprays cheap in host memory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum FrameContents {
    /// Every aligned 64-bit word of the frame holds this value.
    Uniform(u64),
    /// Fully materialised frame contents.
    Bytes(Box<[u8]>),
}

impl FrameContents {
    fn materialise(&mut self) -> &mut [u8] {
        if let FrameContents::Uniform(value) = *self {
            let mut bytes = vec![0u8; PAGE_SIZE as usize];
            for chunk in bytes.chunks_exact_mut(8) {
                chunk.copy_from_slice(&value.to_le_bytes());
            }
            *self = FrameContents::Bytes(bytes.into_boxed_slice());
        }
        match self {
            FrameContents::Bytes(b) => b,
            FrameContents::Uniform(_) => unreachable!("just materialised"),
        }
    }
}

/// A bit flip that was actually applied to physical memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppliedFlip {
    /// Physical address of the affected byte.
    pub paddr: PhysAddr,
    /// Bit index within the byte.
    pub bit: u8,
    /// Byte value before the flip.
    pub old: u8,
    /// Byte value after the flip.
    pub new: u8,
}

/// Sparse physical memory: only frames that were ever written are stored.
///
/// Reads of untouched frames return zero, mirroring zero-initialised DRAM in
/// the simulation (real DRAM content would be arbitrary; zero keeps the
/// experiments deterministic). The frame map is the single hottest map in
/// the simulator (every data value and page-table entry read goes through
/// it), so it uses the deterministic fast hasher; hash order is never
/// observable — the map is only ever probed by key, and serialization sorts
/// entries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PhysicalMemory {
    frames: DetHashMap<u64, FrameContents>,
    capacity_bytes: u64,
}

impl PhysicalMemory {
    /// Creates a physical memory of the given capacity.
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            frames: DetHashMap::default(),
            capacity_bytes,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Number of frames with materialised or uniform contents.
    pub fn resident_frames(&self) -> usize {
        self.frames.len()
    }

    fn check(&self, paddr: PhysAddr, len: u64) {
        assert!(
            paddr.as_u64() + len <= self.capacity_bytes,
            "physical access at {paddr} (+{len}) beyond capacity {:#x}",
            self.capacity_bytes
        );
    }

    /// Reads the naturally-aligned u64 at `paddr`.
    ///
    /// # Panics
    ///
    /// Panics if the address is unaligned or out of range.
    #[inline]
    pub fn read_u64(&self, paddr: PhysAddr) -> u64 {
        self.check(paddr, 8);
        assert!(paddr.is_pte_aligned(), "read_u64 requires 8-byte alignment");
        match self.frames.get(&paddr.frame_number()) {
            None => 0,
            Some(FrameContents::Uniform(v)) => *v,
            Some(FrameContents::Bytes(bytes)) => {
                let off = paddr.page_offset() as usize;
                u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"))
            }
        }
    }

    /// Writes the naturally-aligned u64 at `paddr`.
    ///
    /// # Panics
    ///
    /// Panics if the address is unaligned or out of range.
    pub fn write_u64(&mut self, paddr: PhysAddr, value: u64) {
        self.check(paddr, 8);
        assert!(
            paddr.is_pte_aligned(),
            "write_u64 requires 8-byte alignment"
        );
        let frame = paddr.frame_number();
        let entry = self
            .frames
            .entry(frame)
            .or_insert(FrameContents::Uniform(0));
        if let FrameContents::Uniform(current) = entry {
            if *current == value {
                return; // already uniform with this value
            }
        }
        let bytes = entry.materialise();
        let off = paddr.page_offset() as usize;
        bytes[off..off + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads a single byte.
    pub fn read_u8(&self, paddr: PhysAddr) -> u8 {
        self.check(paddr, 1);
        match self.frames.get(&paddr.frame_number()) {
            None => 0,
            Some(FrameContents::Uniform(v)) => v.to_le_bytes()[(paddr.as_u64() % 8) as usize],
            Some(FrameContents::Bytes(bytes)) => bytes[paddr.page_offset() as usize],
        }
    }

    /// Writes a single byte.
    pub fn write_u8(&mut self, paddr: PhysAddr, value: u8) {
        self.check(paddr, 1);
        let frame = paddr.frame_number();
        let entry = self
            .frames
            .entry(frame)
            .or_insert(FrameContents::Uniform(0));
        let bytes = entry.materialise();
        bytes[paddr.page_offset() as usize] = value;
    }

    /// Fills the whole frame containing `paddr` with a repeated u64 value in
    /// O(1) space (used when the kernel populates uniform page tables or
    /// zeroes a frame).
    pub fn write_frame_uniform(&mut self, frame: u64, value: u64) {
        assert!(
            (frame + 1) * PAGE_SIZE <= self.capacity_bytes,
            "frame {frame} beyond capacity"
        );
        self.frames.insert(frame, FrameContents::Uniform(value));
    }

    /// Copies `data` into memory starting at `paddr`.
    pub fn write_bytes(&mut self, paddr: PhysAddr, data: &[u8]) {
        for (i, &b) in data.iter().enumerate() {
            self.write_u8(paddr + i as u64, b);
        }
    }

    /// Reads `len` bytes starting at `paddr`.
    pub fn read_bytes(&self, paddr: PhysAddr, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(paddr + i as u64)).collect()
    }

    /// Applies a DRAM flip event to the stored contents, honouring the cell
    /// orientation. Returns the applied change, or `None` when the current
    /// bit value cannot flip in the event's direction.
    pub fn apply_flip(&mut self, event: &FlipEvent) -> Option<AppliedFlip> {
        let old = self.read_u8(event.paddr);
        let new = match event.direction() {
            FlipDirection::OneToZero => FlipDirection::OneToZero.apply(old, event.bit)?,
            FlipDirection::ZeroToOne => FlipDirection::ZeroToOne.apply(old, event.bit)?,
        };
        self.write_u8(event.paddr, new);
        Some(AppliedFlip {
            paddr: event.paddr,
            bit: event.bit,
            old,
            new,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pthammer_dram::DramAddress;
    use pthammer_types::CellOrientation;

    fn mem() -> PhysicalMemory {
        PhysicalMemory::new(1 << 20)
    }

    #[test]
    fn zero_initialised_reads() {
        let m = mem();
        assert_eq!(m.read_u64(PhysAddr::new(0x1000)), 0);
        assert_eq!(m.read_u8(PhysAddr::new(0xfff)), 0);
        assert_eq!(m.resident_frames(), 0);
    }

    #[test]
    fn u64_roundtrip() {
        let mut m = mem();
        m.write_u64(PhysAddr::new(0x2008), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u64(PhysAddr::new(0x2008)), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u64(PhysAddr::new(0x2000)), 0);
        assert_eq!(m.read_u8(PhysAddr::new(0x2008)), 0x0d);
    }

    #[test]
    fn uniform_frames_stay_compact_until_heterogeneous_write() {
        let mut m = mem();
        m.write_frame_uniform(5, 0x1111_2222_3333_4444);
        assert_eq!(
            m.read_u64(PhysAddr::from_frame(5, 8)),
            0x1111_2222_3333_4444
        );
        assert_eq!(m.read_u8(PhysAddr::from_frame(5, 0)), 0x44);
        // Writing the same value keeps the compact representation.
        m.write_u64(PhysAddr::from_frame(5, 16), 0x1111_2222_3333_4444);
        // A different value materialises the frame.
        m.write_u64(PhysAddr::from_frame(5, 24), 7);
        assert_eq!(m.read_u64(PhysAddr::from_frame(5, 24)), 7);
        assert_eq!(
            m.read_u64(PhysAddr::from_frame(5, 32)),
            0x1111_2222_3333_4444
        );
    }

    #[test]
    fn byte_and_bytes_helpers() {
        let mut m = mem();
        m.write_bytes(PhysAddr::new(0x3000), b"CRED");
        assert_eq!(m.read_bytes(PhysAddr::new(0x3000), 4), b"CRED");
        m.write_u8(PhysAddr::new(0x3004), 0xff);
        assert_eq!(m.read_u8(PhysAddr::new(0x3004)), 0xff);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn out_of_range_write_panics() {
        let mut m = mem();
        m.write_u64(PhysAddr::new(1 << 20), 1);
    }

    #[test]
    #[should_panic(expected = "alignment")]
    fn unaligned_u64_panics() {
        let m = mem();
        let _ = m.read_u64(PhysAddr::new(0x1001));
    }

    fn flip_event(paddr: u64, bit: u8, orientation: CellOrientation) -> FlipEvent {
        FlipEvent {
            paddr: PhysAddr::new(paddr),
            location: DramAddress {
                channel: 0,
                rank: 0,
                bank: 0,
                row: 1,
                col: 0,
            },
            bit,
            orientation,
            disturbance: 1000,
        }
    }

    #[test]
    fn apply_flip_true_cell_only_clears_set_bits() {
        let mut m = mem();
        m.write_u8(PhysAddr::new(0x100), 0b0000_0100);
        let applied = m
            .apply_flip(&flip_event(0x100, 2, CellOrientation::TrueCell))
            .expect("bit is set, can flip to zero");
        assert_eq!(applied.old, 0b0000_0100);
        assert_eq!(applied.new, 0);
        assert_eq!(m.read_u8(PhysAddr::new(0x100)), 0);
        // Flipping again has no effect: the cell is already discharged.
        assert!(m
            .apply_flip(&flip_event(0x100, 2, CellOrientation::TrueCell))
            .is_none());
    }

    #[test]
    fn apply_flip_anti_cell_only_sets_cleared_bits() {
        let mut m = mem();
        let applied = m
            .apply_flip(&flip_event(0x208, 5, CellOrientation::AntiCell))
            .expect("bit is clear, can flip to one");
        assert_eq!(applied.new, 1 << 5);
        assert!(m
            .apply_flip(&flip_event(0x208, 5, CellOrientation::AntiCell))
            .is_none());
    }

    #[test]
    fn apply_flip_on_uniform_frame_materialises_it() {
        let mut m = mem();
        let pte = 0x0000_0000_0700_0027u64; // some PTE-looking value; byte 3 is 0x07
        m.write_frame_uniform(8, pte);
        let target = PhysAddr::from_frame(8, 2 * 8 + 3); // byte 3 of entry 2
        let applied = m
            .apply_flip(&flip_event(target.as_u64(), 0, CellOrientation::TrueCell))
            .expect("bit 24 of the PTE is set");
        assert_eq!(applied.old & 1, 1);
        // Only the targeted entry changed; its neighbours still hold the PTE.
        assert_eq!(m.read_u64(PhysAddr::from_frame(8, 8)), pte);
        assert_ne!(m.read_u64(PhysAddr::from_frame(8, 16)), pte);
    }
}

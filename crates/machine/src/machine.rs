//! The simulated machine: MMU + memory subsystem + cycle clock.

use serde::{Deserialize, Serialize};

use pthammer_cache::{CacheHierarchy, CachePmc};
use pthammer_dram::{DramModule, DramStats};
use pthammer_mmu::{Mmu, PageFault, PscLevel, TlbLevel, TlbPmc};
use pthammer_types::{AccessKind, Cycles, MemoryLevel, PhysAddr, VirtAddr};

use crate::config::MachineConfig;
use crate::memory::MemorySubsystem;
use crate::phys_mem::{AppliedFlip, PhysicalMemory};

/// The outcome of one user-level virtual memory access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualAccess {
    /// The accessed virtual address.
    pub vaddr: VirtAddr,
    /// Translated physical address (`None` on a page fault).
    pub paddr: Option<PhysAddr>,
    /// Fault raised by the translation, if any.
    pub fault: Option<PageFault>,
    /// Total modelled latency of the access (translation + data).
    pub latency: Cycles,
    /// TLB level that served the translation, if any.
    pub tlb_hit: Option<TlbLevel>,
    /// Paging-structure cache that provided a partial translation, if any.
    pub psc_hit: Option<PscLevel>,
    /// Whether the walk loaded the Level-1 PTE from DRAM — the implicit
    /// hammer blow PThammer aims to trigger on every iteration.
    pub l1pte_from_dram: bool,
    /// Level that served the *data* access (None on fault).
    pub data_level: Option<MemoryLevel>,
    /// Value read (zero for writes and faults).
    pub value: u64,
}

/// Outcome of a lean timed touch ([`Machine::touch_lean`]): latency, fault
/// and the implicit-access bit — everything the hammer loop observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TouchAccess {
    /// Total modelled latency of the access (translation + data).
    pub latency: Cycles,
    /// Fault raised by the translation, if any.
    pub fault: Option<PageFault>,
    /// Whether the walk loaded the Level-1 PTE from DRAM — the implicit
    /// hammer blow PThammer aims to trigger on every iteration.
    pub l1pte_from_dram: bool,
}

/// A complete simulated machine.
///
/// The machine exposes two API surfaces:
///
/// * **privileged** operations used by the kernel substrate (direct physical
///   reads/writes, TLB shoot-downs) that do not advance the simulated clock;
/// * **user-level** operations used by the simulated attacker (timed virtual
///   accesses, `clflush`, `rdtsc`) that behave exactly like the corresponding
///   instructions, including every microarchitectural side effect the attack
///   depends on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Machine {
    config: MachineConfig,
    mmu: Mmu,
    mem: MemorySubsystem,
    clock: Cycles,
}

impl Machine {
    /// Builds a machine from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: MachineConfig) -> Self {
        config.validate().expect("invalid machine configuration");
        let caches = CacheHierarchy::new(config.cache);
        let dram = DramModule::new(config.dram.clone());
        let phys = PhysicalMemory::new(config.dram.geometry.capacity_bytes());
        let mem = MemorySubsystem::new(caches, dram, phys, config.dram_overlap_latency);
        let mmu = Mmu::new(config.mmu);
        Self {
            config,
            mmu,
            mem,
            clock: Cycles::ZERO,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycles {
        self.clock
    }

    /// The nominal clock frequency in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.config.clock_hz
    }

    /// Reads the timestamp counter (user-visible, like `rdtsc`).
    pub fn rdtsc(&self) -> u64 {
        self.clock.as_u64()
    }

    /// Advances the simulated clock, e.g. to model computation between
    /// memory operations (the NOP padding of Figure 5).
    pub fn advance_clock(&mut self, cycles: Cycles) {
        self.clock += cycles;
    }

    /// Converts a number of simulated cycles to seconds on this machine.
    pub fn cycles_to_seconds(&self, cycles: Cycles) -> f64 {
        cycles.as_seconds(self.config.clock_hz)
    }

    // ------------------------------------------------------------------
    // Privileged (kernel substrate) operations — no timing side effects.
    // ------------------------------------------------------------------

    /// Reads a u64 from physical memory without timing side effects.
    pub fn phys_read_u64(&self, paddr: PhysAddr) -> u64 {
        self.mem.phys().read_u64(paddr)
    }

    /// Writes a u64 to physical memory without timing side effects.
    pub fn phys_write_u64(&mut self, paddr: PhysAddr, value: u64) {
        self.mem.phys_mut().write_u64(paddr, value);
    }

    /// Fills an entire frame with a repeated u64 value (cheap uniform frame).
    pub fn phys_write_frame_uniform(&mut self, frame: u64, value: u64) {
        self.mem.phys_mut().write_frame_uniform(frame, value);
    }

    /// Reads raw bytes from physical memory without timing side effects.
    pub fn phys_read_bytes(&self, paddr: PhysAddr, len: usize) -> Vec<u8> {
        self.mem.phys().read_bytes(paddr, len)
    }

    /// Writes raw bytes to physical memory without timing side effects.
    pub fn phys_write_bytes(&mut self, paddr: PhysAddr, data: &[u8]) {
        self.mem.phys_mut().write_bytes(paddr, data);
    }

    /// Invalidates cached translations for the page containing `vaddr`
    /// (`invlpg`), used by the kernel after changing page tables.
    pub fn invalidate_page(&mut self, vaddr: VirtAddr) {
        self.mmu.invalidate_page(vaddr);
    }

    /// Flushes all TLBs and paging-structure caches (CR3 reload).
    pub fn flush_translation_caches(&mut self) {
        self.mmu.flush_all();
    }

    // ------------------------------------------------------------------
    // User-level operations.
    // ------------------------------------------------------------------

    fn do_access(
        &mut self,
        cr3: PhysAddr,
        vaddr: VirtAddr,
        kind: AccessKind,
        write_value: u64,
        batch: bool,
    ) -> VirtualAccess {
        self.mem.set_now(self.clock);
        self.mem.set_batch_mode(batch);
        let translation = self.mmu.translate(cr3, vaddr, &mut self.mem);
        let mut latency = translation.latency + Cycles::new(u64::from(self.config.access_overhead));
        let l1pte_from_dram = translation
            .l1pte_load()
            .map(|l| l.outcome.served_by == MemoryLevel::Dram)
            .unwrap_or(false);

        // A translation that points beyond the installed DRAM (e.g. because a
        // rowhammer flip set a high bit of a PTE's frame field) behaves like a
        // fault: on real hardware the access would hit unpopulated physical
        // address space and the process would be killed by the kernel.
        let capacity = self.config.dram.geometry.capacity_bytes();
        let translation_paddr = translation.paddr.filter(|p| p.as_u64() + 8 <= capacity);
        let fault = if translation.paddr.is_some() && translation_paddr.is_none() {
            Some(PageFault { vaddr, level: 0 })
        } else {
            translation.fault
        };

        let (paddr, data_level, value) = match translation_paddr {
            None => (None, None, 0),
            Some(paddr) => {
                let outcome = self.mem.access_line(paddr);
                latency += outcome.latency;
                let value = match kind {
                    AccessKind::Read => {
                        let aligned = PhysAddr::new(paddr.as_u64() & !7);
                        self.mem.phys().read_u64(aligned)
                    }
                    AccessKind::Write => {
                        let aligned = PhysAddr::new(paddr.as_u64() & !7);
                        self.mem.phys_mut().write_u64(aligned, write_value);
                        0
                    }
                };
                (Some(paddr), Some(outcome.served_by), value)
            }
        };
        self.mem.set_batch_mode(false);
        self.clock += latency;

        VirtualAccess {
            vaddr,
            paddr,
            fault,
            latency,
            tlb_hit: translation.tlb_hit,
            psc_hit: translation.psc_hit,
            l1pte_from_dram,
            data_level,
            value,
        }
    }

    /// Performs a timed user-level read of the u64 at `vaddr`.
    pub fn read_u64(&mut self, cr3: PhysAddr, vaddr: VirtAddr) -> VirtualAccess {
        self.do_access(cr3, vaddr, AccessKind::Read, 0, false)
    }

    /// Performs a timed user-level write of the u64 at `vaddr`.
    pub fn write_u64(&mut self, cr3: PhysAddr, vaddr: VirtAddr, value: u64) -> VirtualAccess {
        self.do_access(cr3, vaddr, AccessKind::Write, value, false)
    }

    /// Touches `vaddr` (read, value ignored). Equivalent to the paper's
    /// `access target_addr` step.
    pub fn touch(&mut self, cr3: PhysAddr, vaddr: VirtAddr) -> VirtualAccess {
        self.read_u64(cr3, vaddr)
    }

    /// Accesses a sequence of addresses back-to-back as an out-of-order core
    /// would: independent DRAM misses overlap, so each DRAM-served access is
    /// charged the configured overlap latency instead of the full latency.
    /// Returns the total latency and any faults encountered.
    ///
    /// This is the simulator's hottest entry point — eviction-set traversal
    /// (the bulk of every hammer iteration) runs through it — so it drives
    /// the translation walker and the cache hierarchy directly, without
    /// constructing a [`VirtualAccess`] per address and without reading the
    /// (ignored) data values. The modelled state transitions are identical
    /// to calling [`Machine::touch`] per address in batch mode.
    pub fn access_batch(&mut self, cr3: PhysAddr, vaddrs: &[VirtAddr]) -> (Cycles, Vec<PageFault>) {
        self.access_batch_passes(cr3, vaddrs, 1)
    }

    /// Runs [`Machine::access_batch`] over the same address sequence
    /// `passes` times in one call — the access pattern of repeated
    /// eviction-set traversal. Identical state transitions to calling
    /// `access_batch` `passes` times; one entry/exit of the batch machinery.
    pub fn access_batch_passes(
        &mut self,
        cr3: PhysAddr,
        vaddrs: &[VirtAddr],
        passes: usize,
    ) -> (Cycles, Vec<PageFault>) {
        let mut total = Cycles::ZERO;
        let mut faults = Vec::new();
        let overhead = Cycles::new(u64::from(self.config.access_overhead));
        let capacity = self.config.dram.geometry.capacity_bytes();
        self.mem.set_batch_mode(true);
        for _ in 0..passes {
            for &vaddr in vaddrs {
                self.mem.set_now(self.clock);
                let translation = self.mmu.translate_touch(cr3, vaddr, &mut self.mem);
                let mut latency = translation.latency + overhead;
                // Same out-of-range-translation handling as the single-access
                // path: a PTE pointing beyond installed DRAM faults.
                let translation_paddr = translation.paddr.filter(|p| p.as_u64() + 8 <= capacity);
                if let Some(paddr) = translation_paddr {
                    latency += self.mem.access_line(paddr).latency;
                } else if translation.paddr.is_some() {
                    faults.push(PageFault { vaddr, level: 0 });
                } else if let Some(fault) = translation.fault {
                    faults.push(fault);
                }
                self.clock += latency;
                total += latency;
            }
        }
        self.mem.set_batch_mode(false);
        (total, faults)
    }

    /// A timed touch without reading the (ignored) data value or building a
    /// [`VirtualAccess`]: identical simulated state transitions and latency
    /// accounting to [`Machine::touch`] (serial mode — *not* the overlapped
    /// batch charging). This is what the hammer loop uses for its two target
    /// accesses per iteration.
    pub fn touch_lean(&mut self, cr3: PhysAddr, vaddr: VirtAddr) -> TouchAccess {
        let overhead = Cycles::new(u64::from(self.config.access_overhead));
        let capacity = self.config.dram.geometry.capacity_bytes();
        self.mem.set_batch_mode(false);
        self.mem.set_now(self.clock);
        let translation = self.mmu.translate_touch(cr3, vaddr, &mut self.mem);
        let mut latency = translation.latency + overhead;
        let translation_paddr = translation.paddr.filter(|p| p.as_u64() + 8 <= capacity);
        let fault = if let Some(paddr) = translation_paddr {
            latency += self.mem.access_line(paddr).latency;
            None
        } else if translation.paddr.is_some() {
            Some(PageFault { vaddr, level: 0 })
        } else {
            translation.fault
        };
        self.clock += latency;
        TouchAccess {
            latency,
            fault,
            l1pte_from_dram: translation.l1pte_from_dram,
        }
    }

    /// Executes `clflush` on the line containing `vaddr`: translates the
    /// address (a TLB-filling operation, as on real hardware) and flushes the
    /// line from every cache level.
    pub fn clflush(&mut self, cr3: PhysAddr, vaddr: VirtAddr) -> VirtualAccess {
        let mut acc = self.do_access(cr3, vaddr, AccessKind::Read, 0, false);
        if let Some(paddr) = acc.paddr {
            self.mem.clflush_line(paddr);
            let flush_cost = Cycles::new(40);
            acc.latency += flush_cost;
            self.clock += flush_cost;
        }
        acc
    }

    // ------------------------------------------------------------------
    // Component access for oracles, kernels and tests.
    // ------------------------------------------------------------------

    /// The MMU (read-only).
    pub fn mmu(&self) -> &Mmu {
        &self.mmu
    }

    /// The cache hierarchy (read-only).
    pub fn caches(&self) -> &CacheHierarchy {
        self.mem.caches()
    }

    /// The DRAM module (read-only).
    pub fn dram(&self) -> &DramModule {
        self.mem.dram()
    }

    /// TLB performance counters (privileged; the paper reads these through a
    /// kernel module during offline calibration).
    pub fn tlb_pmc(&self) -> TlbPmc {
        *self.mmu.tlbs().pmc()
    }

    /// Cache performance counters (privileged).
    pub fn cache_pmc(&self) -> CachePmc {
        *self.mem.caches().pmc()
    }

    /// DRAM statistics.
    pub fn dram_stats(&self) -> DramStats {
        *self.mem.dram().stats()
    }

    /// Every bit flip applied to physical memory so far (evaluation oracle —
    /// the simulated attacker never reads this; it detects flips by scanning
    /// its own address space).
    pub fn applied_flips(&self) -> &[AppliedFlip] {
        self.mem.applied_flips()
    }

    /// Direct access to the memory subsystem for the kernel substrate.
    pub fn memory_mut(&mut self) -> &mut MemorySubsystem {
        &mut self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::software_walk;
    use pthammer_dram::FlipModelProfile;
    use pthammer_mmu::{Pte, PteFlags};

    /// Builds a machine with a single 4 KiB page mapped: VA `va` -> PA `pa`.
    fn machine_with_mapping(va: u64, pa: u64) -> (Machine, PhysAddr) {
        let mut m = Machine::new(MachineConfig::test_small(
            FlipModelProfile::invulnerable(),
            3,
        ));
        let cr3 = PhysAddr::new(0x40_0000);
        let pdpt = 0x40_1000u64;
        let pd = 0x40_2000u64;
        let pt = 0x40_3000u64;
        let vaddr = VirtAddr::new(va);
        m.phys_write_u64(
            cr3 + vaddr.pt_index(4) * 8,
            Pte::table(PhysAddr::new(pdpt)).raw(),
        );
        m.phys_write_u64(
            PhysAddr::new(pdpt) + vaddr.pt_index(3) * 8,
            Pte::table(PhysAddr::new(pd)).raw(),
        );
        m.phys_write_u64(
            PhysAddr::new(pd) + vaddr.pt_index(2) * 8,
            Pte::table(PhysAddr::new(pt)).raw(),
        );
        m.phys_write_u64(
            PhysAddr::new(pt) + vaddr.pt_index(1) * 8,
            Pte::page(PhysAddr::new(pa), PteFlags::user_rw()).raw(),
        );
        (m, cr3)
    }

    #[test]
    fn read_write_through_virtual_mapping() {
        let (mut m, cr3) = machine_with_mapping(0x7000_0000, 0x9000);
        let va = VirtAddr::new(0x7000_0008);
        m.write_u64(cr3, va, 0x1234_5678);
        let acc = m.read_u64(cr3, va);
        assert_eq!(acc.value, 0x1234_5678);
        assert_eq!(acc.paddr, Some(PhysAddr::new(0x9008)));
        assert!(acc.fault.is_none());
        assert_eq!(m.phys_read_u64(PhysAddr::new(0x9008)), 0x1234_5678);
    }

    #[test]
    fn first_access_walks_second_hits_tlb() {
        let (mut m, cr3) = machine_with_mapping(0x7000_0000, 0x9000);
        let va = VirtAddr::new(0x7000_0000);
        let first = m.read_u64(cr3, va);
        assert_eq!(first.tlb_hit, None);
        let second = m.read_u64(cr3, va);
        assert_eq!(second.tlb_hit, Some(TlbLevel::L1));
        assert!(second.latency < first.latency);
    }

    #[test]
    fn clock_advances_with_accesses() {
        let (mut m, cr3) = machine_with_mapping(0x7000_0000, 0x9000);
        let t0 = m.rdtsc();
        m.read_u64(cr3, VirtAddr::new(0x7000_0000));
        let t1 = m.rdtsc();
        assert!(t1 > t0);
        m.advance_clock(Cycles::new(100));
        assert_eq!(m.rdtsc(), t1 + 100);
    }

    #[test]
    fn unmapped_access_faults_without_data_access() {
        let (mut m, cr3) = machine_with_mapping(0x7000_0000, 0x9000);
        let acc = m.read_u64(cr3, VirtAddr::new(0x9000_0000));
        assert!(acc.fault.is_some());
        assert_eq!(acc.paddr, None);
        assert_eq!(acc.data_level, None);
    }

    #[test]
    fn clflush_then_access_reaches_dram_for_data() {
        let (mut m, cr3) = machine_with_mapping(0x7000_0000, 0x9000);
        let va = VirtAddr::new(0x7000_0000);
        m.read_u64(cr3, va);
        let cached = m.read_u64(cr3, va);
        assert_eq!(cached.data_level, Some(MemoryLevel::L1));
        m.clflush(cr3, va);
        let after_flush = m.read_u64(cr3, va);
        assert_eq!(after_flush.data_level, Some(MemoryLevel::Dram));
        assert!(after_flush.latency > cached.latency);
    }

    #[test]
    fn l1pte_from_dram_flag_reflects_walk_source() {
        let (mut m, cr3) = machine_with_mapping(0x7000_0000, 0x9000);
        let va = VirtAddr::new(0x7000_0000);
        // Cold: everything (including the PTE) comes from DRAM.
        let first = m.read_u64(cr3, va);
        assert!(first.l1pte_from_dram);
        // Warm TLB: no walk at all.
        let second = m.read_u64(cr3, va);
        assert!(!second.l1pte_from_dram);
        // Evict only the TLB entry (kernel-style invlpg) but keep the PTE line
        // cached: the walk happens but the L1PTE is served by the caches.
        m.invalidate_page(va);
        let third = m.read_u64(cr3, va);
        assert!(!third.l1pte_from_dram);
        assert!(third.tlb_hit.is_none());
    }

    #[test]
    fn batch_access_is_cheaper_than_serial_for_dram_misses() {
        let (mut m, cr3) = machine_with_mapping(0x7000_0000, 0x9000);
        let (mut m2, cr3_2) = machine_with_mapping(0x7000_0000, 0x9000);
        // Touch several distinct lines of the mapped page.
        let vaddrs: Vec<VirtAddr> = (0..8u64)
            .map(|i| VirtAddr::new(0x7000_0000 + i * 64))
            .collect();
        let (batched, faults) = m.access_batch(cr3, &vaddrs);
        assert!(faults.is_empty());
        let mut serial = Cycles::ZERO;
        for &va in &vaddrs {
            serial += m2.read_u64(cr3_2, va).latency;
        }
        assert!(batched < serial);
    }

    #[test]
    fn oracle_walk_matches_hardware_walk() {
        let (mut m, cr3) = machine_with_mapping(0x7000_0000, 0x9000);
        let va = VirtAddr::new(0x7000_0123);
        let hw = m.read_u64(cr3, va);
        let sw = software_walk(&m, cr3, va).expect("mapped");
        assert_eq!(Some(sw.paddr), hw.paddr);
        assert_eq!(sw.level, 1);
    }
}

//! Minimal fixed-width table printing for the reproduction binaries.

/// Prints a header line followed by a separator.
pub fn header(title: &str, columns: &[&str], widths: &[usize]) {
    println!("\n=== {title} ===");
    let mut line = String::new();
    for (c, w) in columns.iter().zip(widths) {
        line.push_str(&format!("{c:<w$} ", w = w));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
}

/// Prints one row of already-formatted cells.
pub fn row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{c:<w$} ", w = w));
    }
    println!("{line}");
}

/// Formats a floating point value with the given precision.
pub fn fmt_f64(value: f64, precision: usize) -> String {
    format!("{value:.precision$}")
}

/// Formats an optional value, printing `-` when absent.
pub fn fmt_opt<T: std::fmt::Display>(value: Option<T>) -> String {
    match value {
        Some(v) => v.to_string(),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_opt(Some(5)), "5");
        assert_eq!(fmt_opt::<u64>(None), "-");
    }

    #[test]
    fn header_and_row_do_not_panic() {
        header("Test", &["a", "b"], &[5, 5]);
        row(&["x".to_string(), "y".to_string()], &[5, 5]);
    }
}

//! Reproduction harness for every table and figure of the PThammer paper.
//!
//! The experiment logic lives in [`scenarios`]; each `repro_*` binary is a
//! thin wrapper that runs one scenario and prints the corresponding table or
//! figure series. Criterion benches (under `benches/`) measure the simulator
//! hot paths themselves.
//!
//! Scale knobs: by default the scenarios run in a *scaled* mode (the Table I
//! machine models with the `fast` weak-cell profile and a reduced spray) so a
//! full reproduction finishes in minutes of host time; set the environment
//! variable `PTHAMMER_FULL=1` to use the paper-calibrated profile and spray
//! sizes, and `PTHAMMER_ALL_MACHINES=1` to run every Table I machine instead
//! of only the Lenovo T420. The shapes reported in EXPERIMENTS.md hold in
//! either mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenarios;
pub mod table;

pub use scenarios::{DefenseChoice, ExperimentScale, MachineChoice};

//! Emits and gates the canonical `BENCH_perf.json` perf report.
//!
//! Runs a pinned workload set — the TestSmall hammer microbenchmark, one
//! per-mode microbenchmark for every non-default hammer strategy, one
//! Table I attack cell, and the 30-cell golden campaign matrix — and records
//! every deterministic simulator counter plus host wall time per workload.
//!
//! Modes:
//!
//! * `perf_report` / `perf_report --update` — run the workloads and write
//!   `BENCH_perf.json` at the repository root (the committed baseline).
//! * `perf_report --check` — run the workloads and compare against the
//!   committed baseline, ignoring wall time. Exits non-zero if any counter
//!   deviates; this is what the `perf-smoke` CI job runs.
//! * `perf_report --list` — print the pinned workload names (one per line)
//!   and exit without running anything; PERF.md's workload table is checked
//!   against this.
//! * `perf_report --only <name>` (repeatable) — restrict the run to the
//!   named workloads. With `--check` the subset is compared against the
//!   matching baseline entries; without it the results are printed but the
//!   baseline is left untouched (a subset can never refresh it). Unknown
//!   names fail fast, listing the known workloads.
//!
//! See `PERF.md` for the schema and the refresh workflow.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use pthammer::{HammerMode, TraceProfile};
use pthammer_bench::scenarios::{
    hammer_compiled_microbench, hammer_microbench, hammer_mode_microbench,
};
use pthammer_bench::{ExperimentScale, MachineChoice};
use pthammer_dram::FlipModelProfile;
use pthammer_harness::{
    run_campaign_instrumented, run_campaign_resumable_instrumented, run_cell_instrumented,
    store_manifest, CampaignConfig, CellCoord, CellPerf, CellStore, DefenseChoice, ProfileChoice,
    ScenarioMatrix,
};
use pthammer_machine::MachineConfig;
use pthammer_patterns::{synthesize, synthesize_with_telemetry, SynthesisConfig};
use pthammer_perf::{PerfReport, Stopwatch, WorkloadPerf};

/// Base seed of every pinned workload; the campaign seed matches the golden
/// snapshot so this report and `tests/golden/campaign_ci_matrix.json` pin the
/// same simulated behavior.
const GOLDEN_BASE_SEED: u64 = 0x7453_4861_4d21;
const MICROBENCH_SEED: u64 = 42;
const MICROBENCH_ROUNDS: u64 = 600;

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_perf.json")
}

/// Workload 1: the TestSmall double-sided implicit hammer loop — the
/// simulator's hottest path, measured in isolation.
fn hammer_loop_workload() -> WorkloadPerf {
    let bench = hammer_microbench(
        MachineChoice::TestSmall,
        ExperimentScale::scaled(),
        MICROBENCH_ROUNDS,
        MICROBENCH_SEED,
    );
    let mut counters = bench.counters.named();
    counters.insert("hammer_iterations".to_string(), bench.accounting.iterations);
    counters.insert(
        "cycles_per_iteration".to_string(),
        bench.accounting.cycles_per_iteration(),
    );
    counters.insert("sim_cycles".to_string(), bench.accounting.sim_cycles);
    println!(
        "hammer_loop_test_small: {} iters, {} cyc/iter, {:.0} sim iters/s, {:.0} host iters/s",
        bench.accounting.iterations,
        bench.accounting.cycles_per_iteration(),
        bench.accounting.sim_iterations_per_second(),
        bench.accounting.host_iterations_per_second(bench.wall_ns),
    );
    WorkloadPerf::new("hammer_loop_test_small", counters, bench.wall_ns)
}

/// Per-mode variants of the measured hammer loop — the cost/behavior
/// trajectory of the strategy layer, one workload per non-default strategy.
fn hammer_mode_workload(mode: HammerMode) -> WorkloadPerf {
    let bench = hammer_mode_microbench(
        MachineChoice::TestSmall,
        ExperimentScale::scaled(),
        mode,
        MICROBENCH_ROUNDS,
        MICROBENCH_SEED,
    );
    let mut counters = bench.counters.named();
    counters.insert("hammer_iterations".to_string(), bench.accounting.iterations);
    counters.insert(
        "cycles_per_iteration".to_string(),
        bench.accounting.cycles_per_iteration(),
    );
    counters.insert("sim_cycles".to_string(), bench.accounting.sim_cycles);
    let name = format!("hammer_loop_test_small_{}", mode.name().replace('-', "_"));
    println!(
        "{name}: {} iters, {} cyc/iter, dram rate {:.3}",
        bench.accounting.iterations,
        bench.accounting.cycles_per_iteration(),
        bench.implicit_dram_rate,
    );
    WorkloadPerf::new(&name, counters, bench.wall_ns)
}

/// The compiled-trace hammer loop (the production `phase_hammer` path).
///
/// The exact profile is cross-checked on the spot against the `RoundOp`
/// interpreter driving the identical armed attempt: iteration count, total
/// simulated cycles and every hardware counter must match, or the workload
/// aborts. The calibrated profile additionally pins the probed minimal LLC
/// pass count and must land under the ROADMAP's ~2500 cycles/iteration
/// target for the hammer loop.
fn hammer_compiled_workload(profile: TraceProfile, name: &str) -> WorkloadPerf {
    let (bench, llc_passes) = hammer_compiled_microbench(
        MachineChoice::TestSmall,
        ExperimentScale::scaled(),
        profile,
        MICROBENCH_ROUNDS,
        MICROBENCH_SEED,
    );
    if profile == TraceProfile::Exact {
        let interpreted = hammer_mode_microbench(
            MachineChoice::TestSmall,
            ExperimentScale::scaled(),
            HammerMode::default(),
            MICROBENCH_ROUNDS,
            MICROBENCH_SEED,
        );
        assert_eq!(
            bench.accounting, interpreted.accounting,
            "exact-profile replay must cost exactly what the interpreter costs"
        );
        assert_eq!(
            bench.counters, interpreted.counters,
            "exact-profile replay must produce the interpreter's event stream"
        );
    } else {
        assert!(
            bench.accounting.cycles_per_iteration() <= 2_500,
            "calibrated hammer loop must meet the ~2500 cyc/iter target, got {}",
            bench.accounting.cycles_per_iteration()
        );
    }
    let mut counters = bench.counters.named();
    counters.insert("hammer_iterations".to_string(), bench.accounting.iterations);
    counters.insert(
        "cycles_per_iteration".to_string(),
        bench.accounting.cycles_per_iteration(),
    );
    counters.insert("sim_cycles".to_string(), bench.accounting.sim_cycles);
    counters.insert("llc_eviction_passes".to_string(), llc_passes as u64);
    println!(
        "{name}: {} iters, {} cyc/iter, {} LLC passes, dram rate {:.3}",
        bench.accounting.iterations,
        bench.accounting.cycles_per_iteration(),
        llc_passes,
        bench.implicit_dram_rate,
    );
    WorkloadPerf::new(name, counters, bench.wall_ns)
}

/// The synthesis configuration both pattern workloads pin: the TRR test
/// machine's search, exactly as a synthesized campaign cell runs it.
fn pinned_synthesis_config() -> SynthesisConfig {
    let machine = MachineConfig::ci_small_trr(FlipModelProfile::ci(), MICROBENCH_SEED);
    CampaignConfig::trr_ci(GOLDEN_BASE_SEED).synthesis_config(&machine)
}

/// Workload: the deterministic pattern-synthesis loop against the TRR test
/// machine — the search `pthammer-patterns` runs for every synthesized
/// campaign cell. Counters are the search's own deterministic accounting
/// (evaluations, winner shape, delivered disturbance); wall time tracks the
/// cost of the loop itself.
fn pattern_synthesis_workload() -> WorkloadPerf {
    let config = pinned_synthesis_config();
    let watch = Stopwatch::start();
    let result = synthesize(&config, MICROBENCH_SEED);
    let wall_ns = watch.elapsed_ns();
    let mut counters = BTreeMap::new();
    counters.insert("evaluations".to_string(), u64::from(result.evaluations));
    counters.insert("generations".to_string(), u64::from(result.generations));
    counters.insert("best_sides".to_string(), result.best.sides() as u64);
    counters.insert(
        "best_touches_per_round".to_string(),
        result.best.touches_per_round() as u64,
    );
    counters.insert(
        "best_span_strides".to_string(),
        result.best.span().unsigned_abs() as u64,
    );
    counters.insert(
        "peak_victim_disturbance".to_string(),
        u64::from(result.score.peak_victim_disturbance),
    );
    counters.insert(
        "expected_disturbance".to_string(),
        u64::from(result.score.expected_disturbance),
    );
    counters.insert("trr_fired".to_string(), u64::from(result.score.trr_fired));
    println!(
        "pattern_synthesis_test_small_trr: best {} after {} evaluations (peak {})",
        result.best, result.evaluations, result.score.peak_victim_disturbance
    );
    WorkloadPerf::new("pattern_synthesis_test_small_trr", counters, wall_ns)
}

/// Workload: the same pinned synthesis run, measured through the incremental
/// scorer's work telemetry. The pinned counters are the scorer's exact op
/// accounting — `speedup_x100` is the reference-loop-to-simulated-op ratio
/// ×100, so the committed baseline itself gates the ROADMAP's ≥5×
/// candidates/sec target (`speedup_x100 >= 500`). The candidates/sec line
/// is host-wall derived and therefore reported, never gated (see
/// EXPERIMENTS.md).
fn synth_throughput_workload() -> WorkloadPerf {
    let config = pinned_synthesis_config();
    let watch = Stopwatch::start();
    let (result, telemetry) = synthesize_with_telemetry(&config, MICROBENCH_SEED);
    let wall_ns = watch.elapsed_ns();
    assert!(
        telemetry.speedup_x100() >= 500,
        "incremental scoring must be at least 5x over the reference loop: {telemetry:?}"
    );
    let mut counters = BTreeMap::new();
    counters.insert("evaluations".to_string(), u64::from(result.evaluations));
    counters.insert("ops_total".to_string(), telemetry.ops_total);
    counters.insert("ops_stepped".to_string(), telemetry.ops_stepped);
    counters.insert("ops_reused".to_string(), telemetry.ops_reused);
    counters.insert("fast_forwards".to_string(), telemetry.fast_forwards);
    counters.insert("fallbacks".to_string(), telemetry.fallbacks);
    counters.insert("speedup_x100".to_string(), telemetry.speedup_x100());
    let candidates_per_sec = result.evaluations as f64 / (wall_ns.max(1) as f64 / 1e9);
    println!(
        "synth_throughput_test_small_trr: {candidates_per_sec:.0} candidates/sec \
         ({} evaluations, {}/{} ops simulated, {:.2}x effective speedup)",
        result.evaluations,
        telemetry.ops_stepped,
        telemetry.ops_total,
        telemetry.speedup_x100() as f64 / 100.0,
    );
    WorkloadPerf::new("synth_throughput_test_small_trr", counters, wall_ns)
}

fn cell_counters(perf: &CellPerf) -> BTreeMap<String, u64> {
    let mut counters = perf.counters.named();
    counters.insert("hammer_iterations".to_string(), perf.hammer_iterations);
    counters.insert("sim_cycles".to_string(), perf.sim_cycles);
    counters
}

/// Workload 2: one Table I attack cell (Lenovo T420, undefended, fast
/// profile) at CI scale, via the campaign harness.
fn table1_cell_workload() -> WorkloadPerf {
    let coord = CellCoord {
        machine: MachineChoice::LenovoT420,
        defense: DefenseChoice::None,
        profile: ProfileChoice::Fast,
        hammer_mode: HammerMode::default(),
        pattern: None,
        victim: None,
        repetition: 0,
    };
    let config = CampaignConfig::ci(GOLDEN_BASE_SEED);
    let watch = Stopwatch::start();
    let (report, perf) = run_cell_instrumented(&coord, &config);
    let wall_ns = watch.elapsed_ns();
    assert!(
        report.error.is_none(),
        "table1 cell aborted: {:?}",
        report.error
    );
    println!(
        "table1_cell_lenovo_t420: {} attempts, {} hammer iterations, {} flips",
        report.attempts, perf.hammer_iterations, report.flips_observed
    );
    WorkloadPerf::new("table1_cell_lenovo_t420", cell_counters(&perf), wall_ns)
}

/// Workload 3: the full 30-cell golden campaign matrix (the same matrix,
/// seed and scale the golden snapshot pins), aggregated over all cells.
fn campaign_workload() -> WorkloadPerf {
    let matrix = ScenarioMatrix::ci_default();
    let config = CampaignConfig {
        threads: 2,
        ..CampaignConfig::ci(GOLDEN_BASE_SEED)
    };
    let watch = Stopwatch::start();
    let (report, perf) = run_campaign_instrumented(&matrix, &config);
    let wall_ns = watch.elapsed_ns();
    let mut counters = cell_counters(&perf);
    counters.insert("cells".to_string(), report.cells.len() as u64);
    counters.insert(
        "attempts".to_string(),
        report.cells.iter().map(|c| c.attempts as u64).sum(),
    );
    counters.insert(
        "flips_observed".to_string(),
        report.cells.iter().map(|c| c.flips_observed as u64).sum(),
    );
    counters.insert(
        "escalations".to_string(),
        report.cells.iter().filter(|c| c.escalated).count() as u64,
    );
    println!(
        "campaign_ci_matrix: {} cells, {} hammer iterations",
        report.cells.len(),
        perf.hammer_iterations
    );
    WorkloadPerf::new("campaign_ci_matrix", counters, wall_ns)
}

/// Final workload: the golden campaign through the content-addressed cell store
/// — a cold pass (every cell computed and written through) followed by a
/// warm pass (every cell served from cache). The store counters pin the
/// cache-hit accounting; the simulator counters come from the cold pass
/// only, since a warm pass performs no simulation at all — which is exactly
/// the property worth gating.
fn campaign_resume_workload() -> WorkloadPerf {
    let matrix = ScenarioMatrix::ci_default();
    let config = CampaignConfig {
        threads: 2,
        ..CampaignConfig::ci(GOLDEN_BASE_SEED)
    };
    let root =
        std::env::temp_dir().join(format!("pthammer-perf-resume-store-{}", std::process::id()));
    CellStore::wipe(&root).expect("wipe perf store");
    let store = CellStore::open(&root, &store_manifest(&config)).expect("open perf store");
    let watch = Stopwatch::start();
    let (cold_report, perf, cold) =
        run_campaign_resumable_instrumented(&matrix, &config, &store).expect("cold store pass");
    let (warm_report, warm_perf, warm) =
        run_campaign_resumable_instrumented(&matrix, &config, &store).expect("warm store pass");
    let wall_ns = watch.elapsed_ns();
    CellStore::wipe(&root).expect("clean up perf store");
    assert_eq!(
        cold_report.to_canonical_json(),
        warm_report.to_canonical_json(),
        "a warm store pass must reproduce the cold report byte-for-byte"
    );
    assert_eq!(
        warm_perf,
        CellPerf::default(),
        "cache hits must not simulate"
    );
    let mut counters = cell_counters(&perf);
    counters.insert("cells".to_string(), matrix.len() as u64);
    counters.insert(
        "store_cold_cells_computed".to_string(),
        cold.computed as u64,
    );
    counters.insert("store_cold_cache_hits".to_string(), cold.cache_hits as u64);
    counters.insert("store_warm_cache_hits".to_string(), warm.cache_hits as u64);
    counters.insert(
        "store_warm_cells_computed".to_string(),
        warm.computed as u64,
    );
    println!(
        "campaign_resume_ci_matrix: cold {} computed / {} hits, warm {} computed / {} hits",
        cold.computed, cold.cache_hits, warm.computed, warm.cache_hits
    );
    WorkloadPerf::new("campaign_resume_ci_matrix", counters, wall_ns)
}

/// One pinned workload: its name and the function that runs it.
type WorkloadEntry = (String, fn() -> WorkloadPerf);

/// The pinned workload registry, in report order — the single list `--list`
/// prints, `--only` filters and `main` executes, so none of them can drift.
fn workload_registry() -> Vec<WorkloadEntry> {
    let mut registry: Vec<WorkloadEntry> = vec![(
        "hammer_loop_test_small".to_string(),
        hammer_loop_workload as fn() -> WorkloadPerf,
    )];
    for mode in HammerMode::all().into_iter().filter(|m| !m.is_default()) {
        let name = format!("hammer_loop_test_small_{}", mode.name().replace('-', "_"));
        registry.push((
            name,
            match mode {
                HammerMode::ImplicitDoubleSided => {
                    || hammer_mode_workload(HammerMode::ImplicitDoubleSided)
                }
                HammerMode::ExplicitDoubleSided => {
                    || hammer_mode_workload(HammerMode::ExplicitDoubleSided)
                }
                HammerMode::ImplicitSingleSided => {
                    || hammer_mode_workload(HammerMode::ImplicitSingleSided)
                }
                HammerMode::ImplicitOneLocation => {
                    || hammer_mode_workload(HammerMode::ImplicitOneLocation)
                }
            },
        ));
    }
    registry.push(("hammer_loop_compiled_test_small".to_string(), || {
        hammer_compiled_workload(TraceProfile::Exact, "hammer_loop_compiled_test_small")
    }));
    registry.push((
        "hammer_loop_compiled_calibrated_test_small".to_string(),
        || {
            hammer_compiled_workload(
                TraceProfile::Calibrated,
                "hammer_loop_compiled_calibrated_test_small",
            )
        },
    ));
    registry.push(("table1_cell_lenovo_t420".to_string(), table1_cell_workload));
    registry.push(("campaign_ci_matrix".to_string(), campaign_workload));
    registry.push((
        "campaign_resume_ci_matrix".to_string(),
        campaign_resume_workload,
    ));
    registry.push((
        "pattern_synthesis_test_small_trr".to_string(),
        pattern_synthesis_workload,
    ));
    registry.push((
        "synth_throughput_test_small_trr".to_string(),
        synth_throughput_workload,
    ));
    registry
}

/// The pinned workload names, in report order.
fn workload_names() -> Vec<String> {
    workload_registry().into_iter().map(|(n, _)| n).collect()
}

/// The workload names of a committed `BENCH_perf.json` text.
fn baseline_workload_names(committed: &str) -> Result<Vec<String>, String> {
    let value = serde_json::from_str(committed)
        .map_err(|e| format!("committed baseline is not JSON: {e}"))?;
    let workloads = value
        .get("workloads")
        .and_then(|w| w.as_array())
        .ok_or_else(|| "committed baseline has no `workloads` array".to_string())?;
    workloads
        .iter()
        .map(|w| {
            w.get("name")
                .and_then(|n| n.as_str())
                .map(str::to_string)
                .ok_or_else(|| "committed baseline workload without a `name`".to_string())
        })
        .collect()
}

/// Asserts the two-way invariant between the committed baseline and the
/// pinned registry: every workload in `BENCH_perf.json` is a known pinned
/// workload and every pinned workload has a committed baseline entry, in the
/// same order.
fn check_baseline_names(committed: &str) -> Result<(), String> {
    let baseline = baseline_workload_names(committed)?;
    let pinned = workload_names();
    if baseline == pinned {
        return Ok(());
    }
    let missing: Vec<&String> = pinned.iter().filter(|n| !baseline.contains(n)).collect();
    let unknown: Vec<&String> = baseline.iter().filter(|n| !pinned.contains(n)).collect();
    Err(format!(
        "BENCH_perf.json and the pinned workloads disagree \
         (missing from baseline: {missing:?}; unknown in baseline: {unknown:?}; \
         baseline order: {baseline:?}; pinned order: {pinned:?})"
    ))
}

/// Parses repeatable `--only <name>` / `--only=<name>` selections; errors on
/// a dangling `--only`.
fn parse_only(args: &[String]) -> Result<Vec<String>, String> {
    let mut only = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--only" {
            match iter.next() {
                Some(name) => only.push(name.clone()),
                None => return Err("--only needs a workload name".to_string()),
            }
        } else if let Some(name) = arg.strip_prefix("--only=") {
            only.push(name.to_string());
        }
    }
    Ok(only)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for name in workload_names() {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    let check = args.iter().any(|a| a == "--check");
    let only = match parse_only(&args) {
        Ok(only) => only,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let registry = workload_registry();
    for name in &only {
        if !registry.iter().any(|(n, _)| n == name) {
            eprintln!("unknown workload `{name}`; known workloads:");
            for (known, _) in &registry {
                eprintln!("  {known}");
            }
            return ExitCode::FAILURE;
        }
    }
    let selected: Vec<&WorkloadEntry> = registry
        .iter()
        .filter(|(n, _)| only.is_empty() || only.contains(n))
        .collect();
    let workloads: Vec<WorkloadPerf> = selected.iter().map(|(_, run)| run()).collect();
    let report = PerfReport::new(workloads);
    // A hard assert (perf_report only ever runs in release): the registry
    // names must be exactly what just executed.
    assert_eq!(
        report.workload_names(),
        selected.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
        "the registry and the executed workloads must agree"
    );
    let path = baseline_path();

    if check {
        let committed = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!(
                    "missing committed baseline {} ({e}); run `perf_report --update` and commit it",
                    path.display()
                );
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = check_baseline_names(&committed) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        let verdict = if only.is_empty() {
            report.check_against(&committed)
        } else {
            check_subset_against(&report, &committed)
        };
        match verdict {
            Ok(()) => {
                println!("perf counters match the committed baseline (wall time not gated)");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                eprintln!(
                    "If the behavior change is intentional, refresh with \
                     `cargo run --release -p pthammer-bench --bin perf_report -- --update` \
                     and commit BENCH_perf.json."
                );
                ExitCode::FAILURE
            }
        }
    } else if only.is_empty() {
        std::fs::write(&path, report.to_canonical_json()).expect("write BENCH_perf.json");
        println!("wrote {}", path.display());
        ExitCode::SUCCESS
    } else {
        println!(
            "subset run ({} of {} workloads): BENCH_perf.json left untouched; \
             a full `--update` run refreshes the baseline",
            selected.len(),
            registry.len(),
        );
        ExitCode::SUCCESS
    }
}

/// Compares a subset report's counters against the matching workloads of the
/// committed baseline.
fn check_subset_against(report: &PerfReport, committed: &str) -> Result<(), String> {
    let value = serde_json::from_str(committed)
        .map_err(|e| format!("committed baseline is not JSON: {e}"))?;
    let entries = value
        .get("workloads")
        .and_then(|w| w.as_array())
        .ok_or_else(|| "committed baseline has no `workloads` array".to_string())?;
    for workload in &report.workloads {
        let baseline = entries
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some(workload.name.as_str()))
            .ok_or_else(|| format!("baseline has no workload `{}`", workload.name))?;
        let counters = baseline
            .get("counters")
            .and_then(|c| c.as_object())
            .ok_or_else(|| format!("baseline workload `{}` has no counters", workload.name))?;
        let baseline_counters: BTreeMap<String, u64> = counters
            .iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|v| (k.clone(), v))
                    .ok_or_else(|| format!("baseline counter `{k}` is not a u64"))
            })
            .collect::<Result<_, _>>()?;
        if baseline_counters != workload.counters {
            let diverging: Vec<String> = workload
                .counters
                .iter()
                .filter(|(k, v)| baseline_counters.get(*k) != Some(v))
                .map(|(k, v)| {
                    format!(
                        "{k}: baseline {:?} vs current {v}",
                        baseline_counters.get(k)
                    )
                })
                .chain(
                    baseline_counters
                        .keys()
                        .filter(|k| !workload.counters.contains_key(*k))
                        .map(|k| format!("{k}: missing from current run")),
                )
                .collect();
            return Err(format!(
                "perf counters of `{}` deviate from the committed baseline: {}",
                workload.name,
                diverging.join("; ")
            ));
        }
    }
    Ok(())
}

//! Emits and gates the canonical `BENCH_perf.json` perf report.
//!
//! Runs a pinned workload set — the TestSmall hammer microbenchmark, one
//! per-mode microbenchmark for every non-default hammer strategy, one
//! Table I attack cell, and the 30-cell golden campaign matrix — and records
//! every deterministic simulator counter plus host wall time per workload.
//!
//! Modes:
//!
//! * `perf_report` / `perf_report --update` — run the workloads and write
//!   `BENCH_perf.json` at the repository root (the committed baseline).
//! * `perf_report --check` — run the workloads and compare against the
//!   committed baseline, ignoring wall time. Exits non-zero if any counter
//!   deviates; this is what the `perf-smoke` CI job runs.
//! * `perf_report --list` — print the pinned workload names (one per line)
//!   and exit without running anything; PERF.md's workload table is checked
//!   against this.
//!
//! See `PERF.md` for the schema and the refresh workflow.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use pthammer::HammerMode;
use pthammer_bench::scenarios::{hammer_microbench, hammer_mode_microbench};
use pthammer_bench::{ExperimentScale, MachineChoice};
use pthammer_dram::FlipModelProfile;
use pthammer_harness::{
    run_campaign_instrumented, run_campaign_resumable_instrumented, run_cell_instrumented,
    store_manifest, CampaignConfig, CellCoord, CellPerf, CellStore, DefenseChoice, ProfileChoice,
    ScenarioMatrix,
};
use pthammer_machine::MachineConfig;
use pthammer_patterns::synthesize;
use pthammer_perf::{PerfReport, Stopwatch, WorkloadPerf};

/// Base seed of every pinned workload; the campaign seed matches the golden
/// snapshot so this report and `tests/golden/campaign_ci_matrix.json` pin the
/// same simulated behavior.
const GOLDEN_BASE_SEED: u64 = 0x7453_4861_4d21;
const MICROBENCH_SEED: u64 = 42;
const MICROBENCH_ROUNDS: u64 = 600;

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_perf.json")
}

/// Workload 1: the TestSmall double-sided implicit hammer loop — the
/// simulator's hottest path, measured in isolation.
fn hammer_loop_workload() -> WorkloadPerf {
    let bench = hammer_microbench(
        MachineChoice::TestSmall,
        ExperimentScale::scaled(),
        MICROBENCH_ROUNDS,
        MICROBENCH_SEED,
    );
    let mut counters = bench.counters.named();
    counters.insert("hammer_iterations".to_string(), bench.accounting.iterations);
    counters.insert(
        "cycles_per_iteration".to_string(),
        bench.accounting.cycles_per_iteration(),
    );
    counters.insert("sim_cycles".to_string(), bench.accounting.sim_cycles);
    println!(
        "hammer_loop_test_small: {} iters, {} cyc/iter, {:.0} sim iters/s, {:.0} host iters/s",
        bench.accounting.iterations,
        bench.accounting.cycles_per_iteration(),
        bench.accounting.sim_iterations_per_second(),
        bench.accounting.host_iterations_per_second(bench.wall_ns),
    );
    WorkloadPerf::new("hammer_loop_test_small", counters, bench.wall_ns)
}

/// Workloads 2–4: the same measured hammer loop under each non-default
/// strategy — the per-mode cost/behavior trajectory of the strategy layer.
fn hammer_mode_workloads() -> Vec<WorkloadPerf> {
    HammerMode::all()
        .into_iter()
        .filter(|m| !m.is_default())
        .map(|mode| {
            let bench = hammer_mode_microbench(
                MachineChoice::TestSmall,
                ExperimentScale::scaled(),
                mode,
                MICROBENCH_ROUNDS,
                MICROBENCH_SEED,
            );
            let mut counters = bench.counters.named();
            counters.insert("hammer_iterations".to_string(), bench.accounting.iterations);
            counters.insert(
                "cycles_per_iteration".to_string(),
                bench.accounting.cycles_per_iteration(),
            );
            counters.insert("sim_cycles".to_string(), bench.accounting.sim_cycles);
            let name = format!("hammer_loop_test_small_{}", mode.name().replace('-', "_"));
            println!(
                "{name}: {} iters, {} cyc/iter, dram rate {:.3}",
                bench.accounting.iterations,
                bench.accounting.cycles_per_iteration(),
                bench.implicit_dram_rate,
            );
            WorkloadPerf::new(&name, counters, bench.wall_ns)
        })
        .collect()
}

/// Workload: the deterministic pattern-synthesis loop against the TRR test
/// machine — the search `pthammer-patterns` runs for every synthesized
/// campaign cell. Counters are the search's own deterministic accounting
/// (evaluations, winner shape, delivered disturbance); wall time tracks the
/// cost of the loop itself.
fn pattern_synthesis_workload() -> WorkloadPerf {
    let machine = MachineConfig::ci_small_trr(FlipModelProfile::ci(), MICROBENCH_SEED);
    let config = CampaignConfig::trr_ci(GOLDEN_BASE_SEED).synthesis_config(&machine);
    let watch = Stopwatch::start();
    let result = synthesize(&config, MICROBENCH_SEED);
    let wall_ns = watch.elapsed_ns();
    let mut counters = BTreeMap::new();
    counters.insert("evaluations".to_string(), u64::from(result.evaluations));
    counters.insert("generations".to_string(), u64::from(result.generations));
    counters.insert("best_sides".to_string(), result.best.sides() as u64);
    counters.insert(
        "best_touches_per_round".to_string(),
        result.best.touches_per_round() as u64,
    );
    counters.insert(
        "best_span_strides".to_string(),
        result.best.span().unsigned_abs() as u64,
    );
    counters.insert(
        "peak_victim_disturbance".to_string(),
        u64::from(result.score.peak_victim_disturbance),
    );
    counters.insert(
        "expected_disturbance".to_string(),
        u64::from(result.score.expected_disturbance),
    );
    counters.insert("trr_fired".to_string(), u64::from(result.score.trr_fired));
    println!(
        "pattern_synthesis_test_small_trr: best {} after {} evaluations (peak {})",
        result.best, result.evaluations, result.score.peak_victim_disturbance
    );
    WorkloadPerf::new("pattern_synthesis_test_small_trr", counters, wall_ns)
}

fn cell_counters(perf: &CellPerf) -> BTreeMap<String, u64> {
    let mut counters = perf.counters.named();
    counters.insert("hammer_iterations".to_string(), perf.hammer_iterations);
    counters.insert("sim_cycles".to_string(), perf.sim_cycles);
    counters
}

/// Workload 2: one Table I attack cell (Lenovo T420, undefended, fast
/// profile) at CI scale, via the campaign harness.
fn table1_cell_workload() -> WorkloadPerf {
    let coord = CellCoord {
        machine: MachineChoice::LenovoT420,
        defense: DefenseChoice::None,
        profile: ProfileChoice::Fast,
        hammer_mode: HammerMode::default(),
        pattern: None,
        victim: None,
        repetition: 0,
    };
    let config = CampaignConfig::ci(GOLDEN_BASE_SEED);
    let watch = Stopwatch::start();
    let (report, perf) = run_cell_instrumented(&coord, &config);
    let wall_ns = watch.elapsed_ns();
    assert!(
        report.error.is_none(),
        "table1 cell aborted: {:?}",
        report.error
    );
    println!(
        "table1_cell_lenovo_t420: {} attempts, {} hammer iterations, {} flips",
        report.attempts, perf.hammer_iterations, report.flips_observed
    );
    WorkloadPerf::new("table1_cell_lenovo_t420", cell_counters(&perf), wall_ns)
}

/// Workload 3: the full 30-cell golden campaign matrix (the same matrix,
/// seed and scale the golden snapshot pins), aggregated over all cells.
fn campaign_workload() -> WorkloadPerf {
    let matrix = ScenarioMatrix::ci_default();
    let config = CampaignConfig {
        threads: 2,
        ..CampaignConfig::ci(GOLDEN_BASE_SEED)
    };
    let watch = Stopwatch::start();
    let (report, perf) = run_campaign_instrumented(&matrix, &config);
    let wall_ns = watch.elapsed_ns();
    let mut counters = cell_counters(&perf);
    counters.insert("cells".to_string(), report.cells.len() as u64);
    counters.insert(
        "attempts".to_string(),
        report.cells.iter().map(|c| c.attempts as u64).sum(),
    );
    counters.insert(
        "flips_observed".to_string(),
        report.cells.iter().map(|c| c.flips_observed as u64).sum(),
    );
    counters.insert(
        "escalations".to_string(),
        report.cells.iter().filter(|c| c.escalated).count() as u64,
    );
    println!(
        "campaign_ci_matrix: {} cells, {} hammer iterations",
        report.cells.len(),
        perf.hammer_iterations
    );
    WorkloadPerf::new("campaign_ci_matrix", counters, wall_ns)
}

/// Final workload: the golden campaign through the content-addressed cell store
/// — a cold pass (every cell computed and written through) followed by a
/// warm pass (every cell served from cache). The store counters pin the
/// cache-hit accounting; the simulator counters come from the cold pass
/// only, since a warm pass performs no simulation at all — which is exactly
/// the property worth gating.
fn campaign_resume_workload() -> WorkloadPerf {
    let matrix = ScenarioMatrix::ci_default();
    let config = CampaignConfig {
        threads: 2,
        ..CampaignConfig::ci(GOLDEN_BASE_SEED)
    };
    let root =
        std::env::temp_dir().join(format!("pthammer-perf-resume-store-{}", std::process::id()));
    CellStore::wipe(&root).expect("wipe perf store");
    let store = CellStore::open(&root, &store_manifest(&config)).expect("open perf store");
    let watch = Stopwatch::start();
    let (cold_report, perf, cold) =
        run_campaign_resumable_instrumented(&matrix, &config, &store).expect("cold store pass");
    let (warm_report, warm_perf, warm) =
        run_campaign_resumable_instrumented(&matrix, &config, &store).expect("warm store pass");
    let wall_ns = watch.elapsed_ns();
    CellStore::wipe(&root).expect("clean up perf store");
    assert_eq!(
        cold_report.to_canonical_json(),
        warm_report.to_canonical_json(),
        "a warm store pass must reproduce the cold report byte-for-byte"
    );
    assert_eq!(
        warm_perf,
        CellPerf::default(),
        "cache hits must not simulate"
    );
    let mut counters = cell_counters(&perf);
    counters.insert("cells".to_string(), matrix.len() as u64);
    counters.insert(
        "store_cold_cells_computed".to_string(),
        cold.computed as u64,
    );
    counters.insert("store_cold_cache_hits".to_string(), cold.cache_hits as u64);
    counters.insert("store_warm_cache_hits".to_string(), warm.cache_hits as u64);
    counters.insert(
        "store_warm_cells_computed".to_string(),
        warm.computed as u64,
    );
    println!(
        "campaign_resume_ci_matrix: cold {} computed / {} hits, warm {} computed / {} hits",
        cold.computed, cold.cache_hits, warm.computed, warm.cache_hits
    );
    WorkloadPerf::new("campaign_resume_ci_matrix", counters, wall_ns)
}

/// The pinned workload names, in report order — the single list `--list`
/// prints and `main` executes, so the two can never drift apart.
fn workload_names() -> Vec<String> {
    let mut names = vec!["hammer_loop_test_small".to_string()];
    names.extend(
        HammerMode::all()
            .into_iter()
            .filter(|m| !m.is_default())
            .map(|mode| format!("hammer_loop_test_small_{}", mode.name().replace('-', "_"))),
    );
    names.push("table1_cell_lenovo_t420".to_string());
    names.push("campaign_ci_matrix".to_string());
    names.push("campaign_resume_ci_matrix".to_string());
    names.push("pattern_synthesis_test_small_trr".to_string());
    names
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--list") {
        for name in workload_names() {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    let check = std::env::args().any(|a| a == "--check");
    let mut workloads = vec![hammer_loop_workload()];
    workloads.extend(hammer_mode_workloads());
    workloads.push(table1_cell_workload());
    workloads.push(campaign_workload());
    workloads.push(campaign_resume_workload());
    workloads.push(pattern_synthesis_workload());
    let report = PerfReport::new(workloads);
    // A hard assert (perf_report only ever runs in release): `--list` must
    // enumerate exactly the workloads that just executed.
    assert_eq!(
        report.workload_names(),
        workload_names(),
        "--list and the executed workloads must agree"
    );
    let path = baseline_path();

    if check {
        let committed = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!(
                    "missing committed baseline {} ({e}); run `perf_report --update` and commit it",
                    path.display()
                );
                return ExitCode::FAILURE;
            }
        };
        match report.check_against(&committed) {
            Ok(()) => {
                println!("perf counters match the committed baseline (wall time not gated)");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                eprintln!(
                    "If the behavior change is intentional, refresh with \
                     `cargo run --release -p pthammer-bench --bin perf_report -- --update` \
                     and commit BENCH_perf.json."
                );
                ExitCode::FAILURE
            }
        }
    } else {
        std::fs::write(&path, report.to_canonical_json()).expect("write BENCH_perf.json");
        println!("wrote {}", path.display());
        ExitCode::SUCCESS
    }
}

//! Reproduces the Section IV-D experiment: accuracy of timing-based
//! double-sided pair selection (paper: >95% same bank, ~90% one row apart).
use pthammer_bench::{scenarios, ExperimentScale, MachineChoice};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("scale: {}", scale.describe());
    for machine in MachineChoice::selected() {
        let pairs = if scale.full { 64 } else { 16 };
        let acc = scenarios::pair_selection_accuracy(machine, scale, pairs, 42);
        println!(
            "{}: flagged {:.0}% of candidates; of those {:.1}% same bank (paper >95%), {:.1}% exactly two rows apart (paper ~90%)",
            machine.name(),
            acc.flagged_fraction * 100.0,
            acc.same_bank_fraction * 100.0,
            acc.two_rows_apart_fraction * 100.0
        );
    }
}

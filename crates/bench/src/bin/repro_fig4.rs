//! Reproduces Figure 4: LLC miss rate vs. LLC eviction-set size.
use pthammer_bench::{scenarios, table, ExperimentScale, MachineChoice};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("scale: {}", scale.describe());
    let widths = [14, 10, 12];
    table::header(
        "Figure 4: LLC miss rate vs. eviction-set size",
        &["Machine", "Lines", "MissRate"],
        &widths,
    );
    for machine in MachineChoice::selected() {
        let sweep = scenarios::fig4_llc_sweep(machine, scale, 42);
        for (size, rate) in sweep {
            table::row(
                &[
                    machine.name().to_string(),
                    size.to_string(),
                    table::fmt_f64(rate * 100.0, 1),
                ],
                &widths,
            );
        }
    }
}

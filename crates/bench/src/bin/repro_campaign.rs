//! Resumable, shardable campaign driver over the content-addressed cell
//! store — the operational entry point for large sweeps.
//!
//! ```text
//! repro_campaign run    --store DIR [--shard i/n] [--max-cells N]
//!                       [--threads N] [--base-seed N] [--out FILE]
//! repro_campaign resume --store DIR ...      # alias of `run`
//! repro_campaign merge  --store DIR [--store DIR ...] --out FILE
//! repro_campaign status --store DIR [--store DIR ...]
//! ```
//!
//! * `run` / `resume` execute the pinned golden CI matrix through the store:
//!   cached cells are served from disk, missing cells are computed and
//!   written through atomically, so a killed invocation loses at most its
//!   in-flight cells. `--shard i/n` computes only shard `i`'s cells;
//!   `--max-cells N` stops after computing `N` cells (the deterministic
//!   kill stand-in CI uses) and exits with code 75 (`EX_TEMPFAIL`) to
//!   signal "incomplete — resume to continue".
//! * `merge` combines any set of compatible stores into the complete
//!   campaign report, byte-identical to a single-process run.
//! * `status` verifies every store entry, prints valid/corrupt counts and
//!   the stores' combined matrix coverage, and exits 0 only when a `merge`
//!   over them would succeed (75 otherwise).
//!
//! A store is bound to its campaign (base seed, config, seed schema) by its
//! manifest; pointing at an incompatible store is an error, not silent
//! recomputation. See `EXPERIMENTS.md` ("Resumable and sharded campaigns")
//! for walkthroughs.

use std::path::PathBuf;
use std::process::ExitCode;

use pthammer_harness::{
    merge_stores, run_campaign_resumable, run_campaign_shard, store_manifest, CampaignConfig,
    CellStore, ScenarioMatrix, ShardSpec,
};

/// Base seed of the pinned campaign — the same one the golden snapshot and
/// the perf baseline use, so a complete run reproduces
/// `tests/golden/campaign_ci_matrix.json` byte-for-byte.
const GOLDEN_BASE_SEED: u64 = 0x7453_4861_4d21;

/// Exit code for "incomplete, resume to continue" (BSD `EX_TEMPFAIL`).
const EXIT_INCOMPLETE: u8 = 75;

struct Args {
    command: String,
    stores: Vec<PathBuf>,
    shard: ShardSpec,
    max_cells: Option<usize>,
    threads: usize,
    base_seed: u64,
    out: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: repro_campaign <run|resume|merge|status> --store DIR [--store DIR ...]\n\
         \x20       [--shard i/n] [--max-cells N] [--threads N] [--base-seed N] [--out FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().unwrap_or_else(|| usage());
    if !matches!(command.as_str(), "run" | "resume" | "merge" | "status") {
        usage();
    }
    let mut args = Args {
        command,
        stores: Vec::new(),
        shard: ShardSpec::full(),
        max_cells: None,
        threads: 0,
        base_seed: GOLDEN_BASE_SEED,
        out: None,
    };
    let value = |argv: &mut dyn Iterator<Item = String>, flag: &str| {
        argv.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--store" => args.stores.push(PathBuf::from(value(&mut argv, "--store"))),
            "--shard" => {
                args.shard = value(&mut argv, "--shard").parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                })
            }
            "--max-cells" => {
                args.max_cells =
                    Some(value(&mut argv, "--max-cells").parse().unwrap_or_else(|_| {
                        eprintln!("--max-cells requires an unsigned integer");
                        std::process::exit(2);
                    }))
            }
            "--threads" => {
                args.threads = value(&mut argv, "--threads").parse().unwrap_or_else(|_| {
                    eprintln!("--threads requires an unsigned integer");
                    std::process::exit(2);
                })
            }
            "--base-seed" => {
                args.base_seed = value(&mut argv, "--base-seed").parse().unwrap_or_else(|_| {
                    eprintln!("--base-seed requires an unsigned integer");
                    std::process::exit(2);
                })
            }
            "--out" => args.out = Some(PathBuf::from(value(&mut argv, "--out"))),
            _ => usage(),
        }
    }
    if args.stores.is_empty() {
        eprintln!("at least one --store DIR is required");
        std::process::exit(2);
    }
    args
}

fn open_stores(args: &Args, config: &CampaignConfig) -> Vec<CellStore> {
    let manifest = store_manifest(config);
    args.stores
        .iter()
        .map(|root| {
            CellStore::open(root, &manifest).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(1);
            })
        })
        .collect()
}

fn write_report(out: Option<&PathBuf>, json: &str) {
    match out {
        Some(path) => {
            std::fs::write(path, json).unwrap_or_else(|e| {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            });
            eprintln!("wrote {}", path.display());
        }
        None => print!("{json}"),
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let matrix = ScenarioMatrix::ci_default();
    let config = CampaignConfig {
        threads: args.threads,
        ..CampaignConfig::ci(args.base_seed)
    };

    match args.command.as_str() {
        "run" | "resume" => {
            if args.stores.len() != 1 {
                eprintln!("run/resume take exactly one --store");
                return ExitCode::from(2);
            }
            if args.out.is_some() && !args.shard.is_full() {
                eprintln!(
                    "a sharded invocation covers only its own cells and produces no \
                     report; drop --out here and run `merge` over the shard stores"
                );
                return ExitCode::from(2);
            }
            let store = &open_stores(&args, &config)[0];
            // A budgeted or sharded invocation fills the store without
            // holding every row in memory; if a budgeted full-matrix run
            // completes within its budget, the report is assembled from the
            // store afterwards (pure reads), so --out still gets written.
            if args.max_cells.is_some() || !args.shard.is_full() {
                let stats =
                    run_campaign_shard(&matrix, &config, store, &args.shard, args.max_cells)
                        .unwrap_or_else(|e| {
                            eprintln!("{e}");
                            std::process::exit(1);
                        });
                eprintln!(
                    "shard {}: {} cached, {} computed ({} after corruption), \
                     {} other-shard, {} beyond budget",
                    args.shard,
                    stats.cache_hits,
                    stats.computed,
                    stats.corrupt_recomputed,
                    stats.skipped_other_shard,
                    stats.budget_skipped,
                );
                if stats.incomplete() {
                    eprintln!(
                        "incomplete: resume with the same --store to continue{}",
                        if args.out.is_some() {
                            " (--out not written)"
                        } else {
                            ""
                        }
                    );
                    return ExitCode::from(EXIT_INCOMPLETE);
                }
                if args.shard.is_full() {
                    let (report, _) =
                        merge_stores(&matrix, &config, &[store]).unwrap_or_else(|e| {
                            eprintln!("{e}");
                            std::process::exit(1);
                        });
                    write_report(args.out.as_ref(), &report.to_canonical_json());
                }
                return ExitCode::SUCCESS;
            }
            let (report, stats) =
                run_campaign_resumable(&matrix, &config, store).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(1);
                });
            eprintln!(
                "campaign complete: {} cells, {} served from cache, {} computed \
                 ({} after corruption)",
                stats.cells_total, stats.cache_hits, stats.computed, stats.corrupt_recomputed,
            );
            write_report(args.out.as_ref(), &report.to_canonical_json());
            ExitCode::SUCCESS
        }
        "merge" => {
            let stores = open_stores(&args, &config);
            let refs: Vec<&CellStore> = stores.iter().collect();
            let (report, stats) = merge_stores(&matrix, &config, &refs).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(1);
            });
            eprintln!(
                "merged {} cells from {} stores ({:?} per store, {} corrupt entries skipped)",
                stats.cells,
                stats.per_store.len(),
                stats.per_store,
                stats.corrupt_skipped,
            );
            write_report(args.out.as_ref(), &report.to_canonical_json());
            ExitCode::SUCCESS
        }
        "status" => {
            let stores = open_stores(&args, &config);
            // One verified walk per store; the coverage check below reuses
            // the key sets instead of re-reading every file.
            let mut corrupt_files = 0;
            let mut key_sets: Vec<std::collections::HashSet<_>> = Vec::new();
            for (store, root) in stores.iter().zip(&args.stores) {
                let status = store.status().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(1);
                });
                println!(
                    "{}: {} valid cells, {} corrupt files",
                    root.display(),
                    status.entries,
                    status.corrupt,
                );
                corrupt_files += status.corrupt;
                key_sets.push(
                    store
                        .keys()
                        .unwrap_or_else(|e| {
                            eprintln!("{e}");
                            std::process::exit(1);
                        })
                        .into_iter()
                        .collect(),
                );
            }
            // Exit 0 exactly when `merge` over these stores would succeed:
            // every matrix cell has a verified entry in some store. Corrupt
            // files alone are reported but do not fail — merge skips them
            // whenever another store (or a recompute) covers the cell.
            let covered = matrix
                .cells()
                .iter()
                .filter(|coord| {
                    let key = pthammer_harness::cell_store_key(coord);
                    key_sets.iter().any(|keys| keys.contains(&key))
                })
                .count();
            println!(
                "coverage: {covered}/{} matrix cells present across {} store(s) \
                 (golden CI matrix)",
                matrix.len(),
                stores.len(),
            );
            if covered == matrix.len() {
                if corrupt_files > 0 {
                    println!(
                        "note: {corrupt_files} corrupt file(s) will be skipped by merge; \
                         a resume run would repair them"
                    );
                }
                ExitCode::SUCCESS
            } else {
                println!(
                    "incomplete: {} cell(s) missing — run or resume the missing \
                     shards before merging",
                    matrix.len() - covered
                );
                ExitCode::from(EXIT_INCOMPLETE)
            }
        }
        _ => unreachable!("validated in parse_args"),
    }
}

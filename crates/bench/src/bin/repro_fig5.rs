//! Reproduces Figure 5: time to the first bit flip as a function of the
//! cycles spent per double-sided hammering iteration (with a cutoff beyond
//! which no flips occur).
use pthammer_bench::{scenarios, table, ExperimentScale, MachineChoice};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("scale: {}", scale.describe());
    let paddings: Vec<u64> = if scale.full {
        vec![0, 200, 400, 800, 1200, 1600, 2400, 3200, 4800]
    } else {
        vec![0, 500, 1500, 4000, 12_000, 40_000]
    };
    let widths = [14, 12, 16, 20];
    table::header(
        "Figure 5: time to first flip vs. cycles per hammering iteration",
        &["Machine", "Padding", "Cycles/iter", "TimeToFlip (s)"],
        &widths,
    );
    for machine in MachineChoice::selected() {
        for p in scenarios::fig5_padding_sweep(machine, scale, &paddings, 42) {
            table::row(
                &[
                    machine.name().to_string(),
                    p.padding_cycles.to_string(),
                    p.cycles_per_iteration.to_string(),
                    table::fmt_opt(p.seconds_to_first_flip.map(|s| format!("{s:.2}"))),
                ],
                &widths,
            );
        }
    }
    println!("\nExpected shape: time to the first flip grows with the per-iteration cost,");
    println!("and beyond the cutoff no flip is observed within the budget (paper: ~1500-1600");
    println!("cycles on real DDR3; this model's cutoff is calibrated near ~3000 cycles).");
}

//! Sweeps the shipped victims (Section V's PTE takeover, the cred-corruption
//! peer, and the FrodoKEM-style key-recovery victim) over an undefended and
//! a CTA-defended small machine, reporting the per-cell `exploit_succeeded`
//! and `time_to_exploit` keys the victims axis adds to campaign reports.
//!
//! Usage:
//!
//! ```text
//! repro_victims [--seed N] [--reps N] [--profile-cache DIR]
//! ```
//!
//! With `--profile-cache DIR` the key-recovery flip profile goes through the
//! content-addressed [`VictimProfileCache`]: the first invocation templates
//! the machine's weak-cell map and writes through, repeat invocations get
//! the identical bytes back from disk.

use std::process::ExitCode;

use pthammer::HammerMode;
use pthammer_bench::MachineChoice;
use pthammer_harness::{
    run_cell, CampaignConfig, CellCoord, CellReport, DefenseChoice, ProfileChoice, VictimChoice,
    VictimProfileCache,
};

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_flag(name: &str) -> Option<u64> {
    flag_value(name).and_then(|v| v.parse().ok())
}

fn run(
    defense: DefenseChoice,
    victim: VictimChoice,
    rep: u32,
    config: &CampaignConfig,
) -> CellReport {
    run_cell(
        &CellCoord {
            machine: MachineChoice::TestSmall,
            defense,
            profile: ProfileChoice::Ci,
            hammer_mode: HammerMode::default(),
            pattern: None,
            victim: Some(victim),
            repetition: rep,
        },
        config,
    )
}

fn describe(label: &str, cell: &CellReport) {
    let time = cell
        .time_to_exploit
        .map_or_else(|| "-".to_string(), |t| t.to_string());
    println!(
        "  {label:<34} flips={:<3} exploit_succeeded={:<5} time_to_exploit={time:<7} route={:?}",
        cell.flips_observed,
        cell.exploit_succeeded == Some(true),
        cell.route
    );
}

fn main() -> ExitCode {
    let base_seed = parse_flag("--seed").unwrap_or(0x5669_6354_694d);
    let reps = parse_flag("--reps").unwrap_or(1) as u32;
    let config = CampaignConfig::ci(base_seed);

    // Show the key-recovery flip profile before the cells execute (cells
    // re-template it from their own machine configs). With --profile-cache,
    // repeat invocations get the template back from the content-addressed
    // store instead of re-walking the weak-cell map.
    let machine_cfg = MachineChoice::TestSmall.config(ProfileChoice::Ci.profile(), base_seed);
    match flag_value("--profile-cache") {
        Some(dir) => {
            let cache = VictimProfileCache::open(&dir).expect("open victim profile cache");
            let (profile, source) = cache
                .template_cached(&machine_cfg)
                .expect("cached flip profile");
            println!(
                "profile cache at {dir}: {source:?} ({} templated targets on {})",
                profile.targets.len(),
                machine_cfg.name
            );
        }
        None => {
            use pthammer::victim::KeyRecovery;
            let profile = KeyRecovery::template_profile(&machine_cfg);
            println!(
                "key-recovery template: {} targets on {}",
                profile.targets.len(),
                machine_cfg.name
            );
        }
    }

    let mut undefended_successes = 0usize;
    for rep in 0..reps {
        println!("rep {rep} (base seed {base_seed:#x}):");
        for &victim in &VictimChoice::all() {
            let open = run(DefenseChoice::None, victim, rep, &config);
            undefended_successes += usize::from(open.exploit_succeeded == Some(true));
            describe(&format!("undefended, {}:", victim.name()), &open);
            let defended = run(DefenseChoice::Cta, victim, rep, &config);
            describe(&format!("cta-defended, {}:", victim.name()), &defended);
        }
    }

    println!(
        "Expected shape: the undefended machine yields exploits (got {undefended_successes} \
         victim successes); CTA blocks the implicit-touch chain."
    );
    if undefended_successes > 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("no victim succeeded at this seed");
        ExitCode::FAILURE
    }
}

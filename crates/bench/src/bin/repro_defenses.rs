//! Reproduces Section IV-G: PThammer against the software-only defenses
//! (CATT, RIP-RH, CTA bypassed; ZebRAM stops the attack).
use pthammer_bench::{scenarios, table, ExperimentScale, MachineChoice};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("scale: {}", scale.describe());
    let widths = [12, 10, 8, 12, 10, 34];
    table::header(
        "Section IV-G: software-only defenses vs. PThammer",
        &["Defense", "Escalated", "Flips", "Exploitable", "Attempts", "Route"],
        &widths,
    );
    let machine = MachineChoice::selected()[0];
    for defense in scenarios::DefenseChoice::all() {
        let r = scenarios::defense_eval(machine, defense, scale, 42);
        table::row(
            &[
                r.defense.clone(),
                r.escalated.to_string(),
                r.flips_observed.to_string(),
                r.exploitable_flips.to_string(),
                r.attempts.to_string(),
                r.route.clone().unwrap_or_else(|| "-".to_string()),
            ],
            &widths,
        );
    }
    println!("\nExpected shape: the undefended baseline, CATT, RIP-RH and CTA fall to the attack");
    println!("(CTA via credential corruption rather than page-table takeover); ZebRAM does not.");
}

//! Reproduces Section IV-G: PThammer against the software-only defenses
//! (CATT, RIP-RH, CTA bypassed; ZebRAM stops the attack).
//!
//! The sweep runs as one parallel campaign through `pthammer-harness`; set
//! `PTHAMMER_CAMPAIGN_JSON=1` to dump the canonical campaign report instead
//! of the table.
use pthammer_bench::{table, ExperimentScale, MachineChoice};

fn main() {
    let scale = ExperimentScale::from_env();
    eprintln!("scale: {}", scale.describe());
    let machine = MachineChoice::selected()[0];
    let report = pthammer_bench::scenarios::defense_campaign(machine, scale, 1, 42);

    if std::env::var("PTHAMMER_CAMPAIGN_JSON")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        // Only the canonical JSON goes to stdout, so the output pipes
        // cleanly into jq / diff.
        print!("{}", report.to_canonical_json());
        return;
    }

    let widths = [12, 10, 8, 12, 10, 34];
    table::header(
        "Section IV-G: software-only defenses vs. PThammer",
        &[
            "Defense",
            "Escalated",
            "Flips",
            "Exploitable",
            "Attempts",
            "Route",
        ],
        &widths,
    );
    for cell in &report.cells {
        table::row(
            &[
                cell.defense.to_string(),
                cell.escalated.to_string(),
                cell.flips_observed.to_string(),
                cell.exploitable_flips.to_string(),
                cell.attempts.to_string(),
                cell.route
                    .clone()
                    .or(cell.error.clone())
                    .unwrap_or_else(|| "-".to_string()),
            ],
            &widths,
        );
    }
    let widths = [12, 18, 22];
    table::header(
        "Per-defense escalation rates",
        &["Defense", "Escalation rate", "Delta vs undefended"],
        &widths,
    );
    for summary in &report.summaries {
        table::row(
            &[
                summary.defense.to_string(),
                format!("{:.2}", summary.escalation_rate),
                summary
                    .escalation_rate_delta_vs_undefended
                    .map(|d| format!("{d:+.2}"))
                    .unwrap_or_else(|| "-".to_string()),
            ],
            &widths,
        );
    }
    println!("\nExpected shape: the undefended baseline, CATT, RIP-RH and CTA fall to the attack");
    println!("(CTA via credential corruption rather than page-table takeover); ZebRAM does not.");
}

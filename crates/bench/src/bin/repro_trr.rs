//! Reproduces the TRR-era headline result: on a machine with an in-DRAM
//! Target Row Refresh mitigation, the paper's stock implicit double-sided
//! attack observes **zero** flips, while a deterministically synthesized
//! many-sided pattern (crate `pthammer-patterns`) still flips — through the
//! same implicit (PTE-walk) touch path.
//!
//! Usage:
//!
//! ```text
//! repro_trr [--seed N] [--reps N] [--synth-cache DIR]
//! ```
//!
//! Runs TestSmall-sized cells (the host is expected to be small); the
//! machine axis contrasts `Test Small` (no TRR, DDR3-era) against
//! `Test Small TRR` (capacity-bounded sampler). With `--synth-cache DIR`
//! the synthesizer preview goes through the content-addressed
//! [`SynthesisCache`]: the first invocation searches and writes through,
//! repeat invocations get the identical bytes back from disk.

use std::process::ExitCode;

use pthammer::HammerMode;
use pthammer_bench::MachineChoice;
use pthammer_harness::{
    run_cell, CampaignConfig, CellCoord, CellReport, DefenseChoice, ProfileChoice,
};
use pthammer_patterns::{synthesize, PatternChoice, SynthesisCache, SynthesisResult};

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_flag(name: &str) -> Option<u64> {
    flag_value(name).and_then(|v| v.parse().ok())
}

fn run(
    machine: MachineChoice,
    pattern: Option<PatternChoice>,
    rep: u32,
    config: &CampaignConfig,
) -> CellReport {
    run_cell(
        &CellCoord {
            machine,
            defense: DefenseChoice::None,
            profile: ProfileChoice::Ci,
            hammer_mode: HammerMode::default(),
            pattern,
            victim: None,
            repetition: rep,
        },
        config,
    )
}

fn describe(label: &str, cell: &CellReport) {
    println!(
        "  {label:<28} flips={:<3} exploitable={:<2} attempts={:<2} trr_refreshes={}",
        cell.flips_observed, cell.exploitable_flips, cell.attempts, cell.trr_refreshes
    );
}

fn main() -> ExitCode {
    let base_seed = parse_flag("--seed").unwrap_or(0x5452_5265_7263);
    let reps = parse_flag("--reps").unwrap_or(1) as u32;
    let config = CampaignConfig::trr_ci(base_seed);

    // Show what the synthesizer would run on the TRR machine before the
    // cells execute it (cells re-derive it from their own seeds). With
    // --synth-cache, repeat invocations get the search result back from the
    // content-addressed store instead of re-searching.
    let machine_cfg = MachineChoice::TestSmallTrr.config(ProfileChoice::Ci.profile(), base_seed);
    let synth_cfg = config.synthesis_config(&machine_cfg);
    let synth: SynthesisResult = match flag_value("--synth-cache") {
        Some(dir) => {
            let cache = SynthesisCache::open(&dir).expect("open synthesis cache");
            let (result, source) = cache
                .synthesize_cached(&synth_cfg, base_seed)
                .expect("cached synthesis");
            println!("synthesis cache at {dir}: {source:?}");
            result
        }
        None => synthesize(&synth_cfg, base_seed),
    };
    println!(
        "synthesizer preview on {}: {} (peak victim disturbance {}, sampler capacity {})",
        machine_cfg.name,
        synth.best,
        synth.score.peak_victim_disturbance,
        machine_cfg.dram.trr.sampler_capacity
    );

    let mut trr_stock_flips = 0usize;
    let mut trr_pattern_flips = 0usize;
    for rep in 0..reps {
        println!("rep {rep} (base seed {base_seed:#x}):");
        let baseline = run(MachineChoice::TestSmall, None, rep, &config);
        describe("DDR3-era, double-sided:", &baseline);
        let stock = run(MachineChoice::TestSmallTrr, None, rep, &config);
        describe("TRR, double-sided:", &stock);
        trr_stock_flips += stock.flips_observed;
        let pattern = run(
            MachineChoice::TestSmallTrr,
            Some(PatternChoice::Synthesized),
            rep,
            &config,
        );
        describe("TRR, synthesized n-sided:", &pattern);
        trr_pattern_flips += pattern.flips_observed;
    }

    println!(
        "Expected shape: double-sided dies under TRR (got {trr_stock_flips} flips), \
         the synthesized pattern still flips (got {trr_pattern_flips})."
    );
    if trr_stock_flips == 0 && trr_pattern_flips > 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("contrast not reproduced at this seed");
        ExitCode::FAILURE
    }
}

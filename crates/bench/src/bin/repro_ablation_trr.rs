//! Ablation: flips observed with and without a Target Row Refresh mitigation
//! under the same explicit hammering workload.
use pthammer_bench::{scenarios, ExperimentScale, MachineChoice};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("scale: {}", scale.describe());
    let machine = MachineChoice::selected()[0];
    let (without, with_trr) = scenarios::ablation_trr(machine, scale, 42);
    println!(
        "{}: flips without TRR = {without}, flips with TRR = {with_trr}",
        machine.name()
    );
    println!("Expected shape: TRR suppresses (or strongly reduces) flips from simple double-sided hammering.");
}

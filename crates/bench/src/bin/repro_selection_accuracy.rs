//! Reproduces the Section IV-C experiment: false-positive rate of the LLC
//! eviction-set selection (paper: no more than 6%).
use pthammer_bench::{scenarios, ExperimentScale, MachineChoice};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("scale: {}", scale.describe());
    for machine in MachineChoice::selected() {
        let samples = if scale.full { 32 } else { 8 };
        let fp = scenarios::selection_accuracy(machine, scale, samples, 42);
        println!(
            "{}: Algorithm 2 false-positive rate = {:.1}% over {} selections (paper: <= 6%)",
            machine.name(),
            fp * 100.0,
            samples * 2
        );
    }
}

//! Reproduces Figure 6: per-iteration cost of double-sided implicit
//! hammering, in the default (6a) and superpage (6b) settings.
use pthammer_bench::{scenarios, table, ExperimentScale, MachineChoice};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("scale: {}", scale.describe());
    let widths = [14, 12, 10, 10, 10, 10];
    table::header(
        "Figure 6: cycles per double-sided implicit hammer iteration (50 samples)",
        &["Machine", "Setting", "Min", "Median", "P90", "Max"],
        &widths,
    );
    for machine in MachineChoice::selected() {
        for superpages in [false, true] {
            let mut samples = scenarios::fig6_hammer_samples(machine, superpages, scale, 42);
            samples.sort_unstable();
            let pct = |q: f64| samples[(q * (samples.len() - 1) as f64) as usize];
            table::row(
                &[
                    machine.name().to_string(),
                    if superpages { "superpage" } else { "regular" }.to_string(),
                    samples[0].to_string(),
                    pct(0.5).to_string(),
                    pct(0.9).to_string(),
                    samples[samples.len() - 1].to_string(),
                ],
                &widths,
            );
        }
    }
    println!("\nExpected shape: all samples sit well below the Figure 5 no-flip cutoff, and");
    println!("the Dell E6420 (16-way LLC, slower DRAM) costs more per iteration than the Lenovos.");
}

//! Reproduces Table I: system configurations of the modelled machines.
//!
//! With `--measured`, additionally runs the pinned hammer microbenchmark on
//! every machine (and every hammer strategy on the TestSmall machine) and
//! prints measured per-iteration costs. Those numbers are routed through the
//! `pthammer-perf` accounting (the same source `perf_report` and the
//! campaign harness report from), never re-derived from configuration.
use pthammer::HammerMode;
use pthammer_bench::scenarios::HammerMicrobench;
use pthammer_bench::{scenarios, table, ExperimentScale, MachineChoice};

/// Prints one measured-microbench table: `label_header` names the first
/// column, `rows` pairs each label with its measurement.
fn measured_table(title: &str, label_header: &str, rows: &[(String, HammerMicrobench)]) {
    let widths = [24, 10, 12, 12, 14, 12];
    table::header(
        title,
        &[
            label_header,
            "Iters",
            "Cyc/iter",
            "DRAMrate",
            "SimIters/s",
            "HostIt/s",
        ],
        &widths,
    );
    for (label, bench) in rows {
        table::row(
            &[
                label.clone(),
                bench.accounting.iterations.to_string(),
                bench.accounting.cycles_per_iteration().to_string(),
                table::fmt_f64(bench.implicit_dram_rate, 3),
                table::fmt_f64(bench.accounting.sim_iterations_per_second(), 0),
                table::fmt_f64(
                    bench.accounting.host_iterations_per_second(bench.wall_ns),
                    0,
                ),
            ],
            &widths,
        );
    }
}

fn main() {
    let widths = [14, 24, 16, 14, 10];
    table::header(
        "Table I: System Configurations",
        &["Machine", "TLB", "LLC", "DRAM", "Clock"],
        &widths,
    );
    for row in pthammer_bench::scenarios::table1_rows() {
        table::row(row.as_ref(), &widths);
    }

    if !std::env::args().any(|a| a == "--measured") {
        return;
    }
    let scale = ExperimentScale::from_env();
    println!("\nscale: {}", scale.describe());

    let per_machine: Vec<(String, HammerMicrobench)> = MachineChoice::selected()
        .into_iter()
        .map(|machine| {
            (
                machine.name().to_string(),
                scenarios::hammer_microbench(machine, scale, 300, 42),
            )
        })
        .collect();
    measured_table(
        "Measured: double-sided implicit hammer (pthammer-perf accounting)",
        "Machine",
        &per_machine,
    );

    let per_mode: Vec<(String, HammerMicrobench)> = HammerMode::all()
        .into_iter()
        .map(|mode| {
            (
                mode.name().to_string(),
                scenarios::hammer_mode_microbench(MachineChoice::TestSmall, scale, mode, 300, 42),
            )
        })
        .collect();
    measured_table(
        "Measured: per-strategy hammer loop on TestSmall",
        "Mode",
        &per_mode,
    );
}

//! Reproduces Table I: system configurations of the modelled machines.
//!
//! With `--measured`, additionally runs the pinned hammer microbenchmark on
//! every machine and prints measured per-iteration costs. Those numbers are
//! routed through the `pthammer-perf` accounting (the same source
//! `perf_report` and the campaign harness report from), never re-derived
//! from configuration.
use pthammer_bench::{scenarios, table, ExperimentScale, MachineChoice};

fn main() {
    let widths = [14, 24, 16, 14, 10];
    table::header(
        "Table I: System Configurations",
        &["Machine", "TLB", "LLC", "DRAM", "Clock"],
        &widths,
    );
    for row in pthammer_bench::scenarios::table1_rows() {
        table::row(row.as_ref(), &widths);
    }

    if !std::env::args().any(|a| a == "--measured") {
        return;
    }
    let scale = ExperimentScale::from_env();
    println!("\nscale: {}", scale.describe());
    let widths = [14, 10, 12, 12, 14, 12];
    table::header(
        "Measured: double-sided implicit hammer (pthammer-perf accounting)",
        &[
            "Machine",
            "Iters",
            "Cyc/iter",
            "DRAMrate",
            "SimIters/s",
            "HostIt/s",
        ],
        &widths,
    );
    for machine in MachineChoice::selected() {
        let bench = scenarios::hammer_microbench(machine, scale, 300, 42);
        table::row(
            &[
                machine.name().to_string(),
                bench.accounting.iterations.to_string(),
                bench.accounting.cycles_per_iteration().to_string(),
                table::fmt_f64(bench.implicit_dram_rate, 3),
                table::fmt_f64(bench.accounting.sim_iterations_per_second(), 0),
                table::fmt_f64(
                    bench.accounting.host_iterations_per_second(bench.wall_ns),
                    0,
                ),
            ],
            &widths,
        );
    }
}

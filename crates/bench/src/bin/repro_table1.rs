//! Reproduces Table I: system configurations of the modelled machines.
use pthammer_bench::table;

fn main() {
    let widths = [14, 24, 16, 14, 10];
    table::header(
        "Table I: System Configurations",
        &["Machine", "TLB", "LLC", "DRAM", "Clock"],
        &widths,
    );
    for row in pthammer_bench::scenarios::table1_rows() {
        table::row(row.as_ref(), &widths);
    }
}

//! Reproduces the Section V discussion: an unmodified ANVIL-style detector
//! sees explicit hammering but not PThammer; attributing implicit accesses
//! restores detection.
use pthammer_bench::{scenarios, ExperimentScale, MachineChoice};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("scale: {}", scale.describe());
    let machine = MachineChoice::selected()[0];
    let eval = scenarios::anvil_eval(machine, scale, 42);
    println!(
        "ANVIL (explicit loads only)  vs clflush double-sided hammer : detected = {} (rate {:.0}/Mcycle)",
        eval.explicit_detected, eval.explicit_rate
    );
    println!(
        "ANVIL (explicit loads only)  vs PThammer                    : detected = {}",
        eval.implicit_detected_naive
    );
    println!(
        "ANVIL (+implicit attribution) vs PThammer                   : detected = {} (implicit rate {:.0}/Mcycle)",
        eval.implicit_detected_extended, eval.implicit_rate
    );
}

//! Reproduces Section IV-F: kernel privilege escalation on an undefended
//! system (Figure 7 exploitation chain).
use pthammer_bench::{scenarios, ExperimentScale, MachineChoice};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("scale: {}", scale.describe());
    for machine in MachineChoice::selected() {
        let result = scenarios::defense_eval(machine, scenarios::DefenseChoice::None, scale, 42);
        println!(
            "{} (undefended): escalated={} after {} attempts, {} flips ({} exploitable), route {:?}",
            machine.name(),
            result.escalated,
            result.attempts,
            result.flips_observed,
            result.exploitable_flips,
            result.route
        );
    }
}

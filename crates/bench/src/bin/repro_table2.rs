//! Reproduces Table II: per-stage attack timings and time to the first flip.
//!
//! `--mode <name>` selects the hammer strategy the attack pipeline runs
//! (`implicit-double-sided` (default), `explicit-double-sided`,
//! `implicit-single-sided`, `implicit-one-location`).
use pthammer::HammerMode;
use pthammer_bench::{scenarios, table, ExperimentScale, MachineChoice};

fn mode_from_args() -> HammerMode {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--mode") {
        Some(i) => {
            let name = args.get(i + 1).unwrap_or_else(|| {
                eprintln!("--mode requires a value; one of:");
                for m in HammerMode::all() {
                    eprintln!("  {}", m.name());
                }
                std::process::exit(2);
            });
            name.parse().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            })
        }
        None => HammerMode::default(),
    }
}

fn main() {
    let scale = ExperimentScale::from_env();
    let mode = mode_from_args();
    println!("scale: {}", scale.describe());
    println!("hammer mode: {mode}");
    let widths = [14, 10, 22, 12, 12, 12, 12, 12, 10, 12, 14, 10];
    table::header(
        "Table II: PThammer stage timings (simulated time)",
        &[
            "Machine",
            "Setting",
            "Mode",
            "TLBprep(ms)",
            "LLCprep(s)",
            "TLBsel(us)",
            "LLCsel(ms)",
            "Hammer(ms)",
            "Iters",
            "Cyc/iter",
            "ToFlip(min)",
            "Escalated",
        ],
        &widths,
    );
    for machine in MachineChoice::selected() {
        for superpages in [true, false] {
            let row = scenarios::table2_run_mode(machine, superpages, scale, mode, 42);
            table::row(
                &[
                    row.machine.clone(),
                    row.setting.clone(),
                    row.hammer_mode.name().to_string(),
                    table::fmt_f64(row.tlb_prep_ms, 2),
                    table::fmt_f64(row.llc_prep_s, 2),
                    table::fmt_f64(row.tlb_select_us, 2),
                    table::fmt_f64(row.llc_select_ms, 2),
                    table::fmt_f64(row.hammer_ms, 2),
                    row.hammer_iterations.to_string(),
                    row.cycles_per_iteration.to_string(),
                    table::fmt_opt(row.time_to_flip_min.map(|m| format!("{m:.3}"))),
                    row.escalated.to_string(),
                ],
                &widths,
            );
        }
    }
    println!("\nExpected shape: LLC pool preparation is far cheaper with superpages than with");
    println!("regular pages; TLB selection is negligible; a first flip appears within the run.");
    println!("Iteration counts and cycles/iteration come from the pthammer-perf accounting");
    println!("(the same source perf_report gates on).");
}

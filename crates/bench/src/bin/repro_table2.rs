//! Reproduces Table II: per-stage attack timings and time to the first flip.
use pthammer_bench::{scenarios, table, ExperimentScale, MachineChoice};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("scale: {}", scale.describe());
    let widths = [14, 10, 12, 12, 12, 12, 12, 10, 12, 14, 10];
    table::header(
        "Table II: PThammer stage timings (simulated time)",
        &[
            "Machine",
            "Setting",
            "TLBprep(ms)",
            "LLCprep(s)",
            "TLBsel(us)",
            "LLCsel(ms)",
            "Hammer(ms)",
            "Iters",
            "Cyc/iter",
            "ToFlip(min)",
            "Escalated",
        ],
        &widths,
    );
    for machine in MachineChoice::selected() {
        for superpages in [true, false] {
            let row = scenarios::table2_run(machine, superpages, scale, 42);
            table::row(
                &[
                    row.machine.clone(),
                    row.setting.clone(),
                    table::fmt_f64(row.tlb_prep_ms, 2),
                    table::fmt_f64(row.llc_prep_s, 2),
                    table::fmt_f64(row.tlb_select_us, 2),
                    table::fmt_f64(row.llc_select_ms, 2),
                    table::fmt_f64(row.hammer_ms, 2),
                    row.hammer_iterations.to_string(),
                    row.cycles_per_iteration.to_string(),
                    table::fmt_opt(row.time_to_flip_min.map(|m| format!("{m:.3}"))),
                    row.escalated.to_string(),
                ],
                &widths,
            );
        }
    }
    println!("\nExpected shape: LLC pool preparation is far cheaper with superpages than with");
    println!("regular pages; TLB selection is negligible; a first flip appears within the run.");
    println!("Iteration counts and cycles/iteration come from the pthammer-perf accounting");
    println!("(the same source perf_report gates on).");
}

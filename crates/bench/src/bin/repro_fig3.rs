//! Reproduces Figure 3: TLB miss rate vs. TLB eviction-set size.
use pthammer_bench::{scenarios, table, ExperimentScale, MachineChoice};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("scale: {}", scale.describe());
    let widths = [14, 10, 12];
    table::header(
        "Figure 3: TLB miss rate vs. eviction-set size",
        &["Machine", "Pages", "MissRate"],
        &widths,
    );
    for machine in MachineChoice::selected() {
        let sweep = scenarios::fig3_tlb_sweep(machine, scale, 42);
        for (size, rate) in sweep {
            table::row(
                &[
                    machine.name().to_string(),
                    size.to_string(),
                    table::fmt_f64(rate * 100.0, 1),
                ],
                &widths,
            );
        }
    }
}

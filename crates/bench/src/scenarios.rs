//! Experiment implementations for every table and figure of the paper.

use pthammer::{
    eviction::{calibrate_llc_eviction, calibrate_tlb_eviction, LlcEvictionPool, TlbEvictionPool},
    hammer::{ExplicitHammer, ExplicitHammerConfig, ExplicitMode},
    pairs::{candidate_pairs, conflict_threshold, verify_same_bank},
    spray::spray_page_tables,
    AttackConfig, AttackOutcome, CompiledTrace, HammerMode, ImplicitHammer, PtHammer, RunOptions,
    TraceProfile,
};
use pthammer_defenses::{AnvilDetector, AnvilMode};
use pthammer_dram::{FlipModelProfile, TrrConfig};
use pthammer_harness::{
    run_campaign, run_cell, CampaignConfig, CampaignReport, CellCoord, ProfileChoice,
    ScenarioMatrix,
};
use pthammer_kernel::{DefaultPolicy, KernelConfig, PlacementPolicy, System};
use pthammer_perf::{HammerAccounting, MachineCounters, Stopwatch};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub use pthammer_defenses::DefenseChoice;
pub use pthammer_machine::MachineChoice;

/// Experiment scale: scaled (default, CI/laptop friendly) or full
/// (paper-calibrated weak-cell profile and spray size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentScale {
    /// Whether the full paper-calibrated profile is used.
    pub full: bool,
}

impl ExperimentScale {
    /// Reads the scale from the `PTHAMMER_FULL` environment variable.
    pub fn from_env() -> Self {
        Self {
            full: std::env::var("PTHAMMER_FULL")
                .map(|v| v == "1")
                .unwrap_or(false),
        }
    }

    /// Forced scaled mode (used by tests).
    pub fn scaled() -> Self {
        Self { full: false }
    }

    /// The weak-cell profile for this scale.
    pub fn flip_profile(&self) -> FlipModelProfile {
        self.profile_choice().profile()
    }

    /// The named profile axis value for this scale (campaign harness axis).
    pub fn profile_choice(&self) -> ProfileChoice {
        if self.full {
            ProfileChoice::Paper
        } else {
            ProfileChoice::Fast
        }
    }

    /// The campaign-harness configuration for this scale.
    pub fn campaign_config(&self, base_seed: u64) -> CampaignConfig {
        if self.full {
            CampaignConfig::full(base_seed)
        } else {
            CampaignConfig::scaled(base_seed)
        }
    }

    /// The attack configuration for this scale, derived from the campaign
    /// preset so bench scenarios and campaigns share one set of knobs.
    pub fn attack_config(&self, seed: u64, superpages: bool) -> AttackConfig {
        let mut campaign = self.campaign_config(seed);
        campaign.superpages = superpages;
        campaign.attack_config(seed, DefenseChoice::None, HammerMode::default())
    }

    /// Human-readable description of the scale.
    pub fn describe(&self) -> &'static str {
        if self.full {
            "full (paper-calibrated weak-cell profile)"
        } else {
            "scaled (fast weak-cell profile; set PTHAMMER_FULL=1 for the paper profile)"
        }
    }
}

/// Boots a system on the chosen machine with the given defense policy.
pub fn boot(
    machine: MachineChoice,
    scale: ExperimentScale,
    superpages: bool,
    policy: Box<dyn PlacementPolicy>,
    seed: u64,
) -> System {
    let config = machine.config(scale.flip_profile(), seed);
    let kernel = if superpages {
        KernelConfig::with_superpages()
    } else {
        KernelConfig::default_config()
    };
    System::new(config, kernel, policy)
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

/// One row of Table I (system configurations).
pub fn table1_rows() -> Vec<[String; 5]> {
    MachineChoice::all()
        .into_iter()
        .map(|m| {
            let cfg = m.config(FlipModelProfile::paper(), 1);
            [
                cfg.name.clone(),
                format!(
                    "{}-way L1d, {}-way L2s",
                    cfg.mmu.l1_dtlb.ways, cfg.mmu.l2_stlb.ways
                ),
                format!(
                    "{}-way, {} MiB",
                    cfg.cache.llc.ways,
                    cfg.cache.llc.capacity_bytes() >> 20
                ),
                format!("{} GiB DDR3", cfg.dram.geometry.capacity_bytes() >> 30),
                format!("{:.1} GHz", cfg.clock_hz / 1e9),
            ]
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 3 / Figure 4: eviction-set size sweeps
// ---------------------------------------------------------------------------

/// TLB miss rate as a function of the eviction-set size (Figure 3).
pub fn fig3_tlb_sweep(
    machine: MachineChoice,
    scale: ExperimentScale,
    seed: u64,
) -> Vec<(usize, f64)> {
    let mut sys = boot(machine, scale, false, Box::new(DefaultPolicy::new()), seed);
    let pid = sys.spawn_process(1000).expect("spawn");
    let config = scale.attack_config(seed, false);
    calibrate_tlb_eviction(&mut sys, pid, &config)
        .expect("TLB calibration")
        .miss_rates
}

/// LLC miss rate as a function of the eviction-set size (Figure 4).
pub fn fig4_llc_sweep(
    machine: MachineChoice,
    scale: ExperimentScale,
    seed: u64,
) -> Vec<(usize, f64)> {
    let mut sys = boot(machine, scale, false, Box::new(DefaultPolicy::new()), seed);
    let pid = sys.spawn_process(1000).expect("spawn");
    let config = scale.attack_config(seed, false);
    calibrate_llc_eviction(&mut sys, pid, &config)
        .expect("LLC calibration")
        .miss_rates
}

// ---------------------------------------------------------------------------
// Figure 5: time to first flip vs. cycles per hammering iteration
// ---------------------------------------------------------------------------

/// One point of the Figure 5 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Point {
    /// NOP padding added per iteration.
    pub padding_cycles: u64,
    /// Measured cycles per hammering iteration (including the padding).
    pub cycles_per_iteration: u64,
    /// Simulated seconds until the first flip, `None` if none occurred within
    /// the budget.
    pub seconds_to_first_flip: Option<f64>,
}

/// Runs the explicit double-sided hammer with increasing NOP padding and
/// records the simulated time to the first flip (Figure 5).
pub fn fig5_padding_sweep(
    machine: MachineChoice,
    scale: ExperimentScale,
    paddings: &[u64],
    seed: u64,
) -> Vec<Fig5Point> {
    paddings
        .iter()
        .map(|&padding| {
            let mut sys = boot(machine, scale, false, Box::new(DefaultPolicy::new()), seed);
            let clock_hz = sys.machine().clock_hz();
            let pid = sys.spawn_process(1000).expect("spawn");
            let buffer = if scale.full { 256 << 20 } else { 64 << 20 };
            let hammer = ExplicitHammer::setup(&mut sys, pid, buffer, u64::MAX).expect("setup");
            // Measure the per-iteration cost once.
            let aggressors = vec![
                hammer.buffer(),
                hammer.buffer() + 2 * sys.machine().config().dram.geometry.row_span_bytes(),
            ];
            hammer
                .hammer_iteration(&mut sys, pid, &aggressors, padding)
                .expect("warmup");
            let cycles_per_iteration = hammer
                .hammer_iteration(&mut sys, pid, &aggressors, padding)
                .expect("measure");
            let config = ExplicitHammerConfig {
                mode: ExplicitMode::ClflushDoubleSided,
                nop_padding_cycles: padding,
                rounds_per_target: if scale.full { 200_000 } else { 1_500 },
                max_total_cycles: if scale.full {
                    2_600_000_000_000
                } else {
                    400_000_000
                },
                seed,
            };
            let result = hammer
                .run_until_first_flip(&mut sys, pid, &config)
                .expect("hammer run");
            Fig5Point {
                padding_cycles: padding,
                cycles_per_iteration,
                seconds_to_first_flip: result.map(|f| f.cycles_until_flip as f64 / clock_hz),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 6: cycles per double-sided implicit hammer iteration
// ---------------------------------------------------------------------------

/// Collects 50 per-iteration cycle samples of the implicit double-sided
/// hammer (Figure 6a: regular pages, Figure 6b: superpages).
pub fn fig6_hammer_samples(
    machine: MachineChoice,
    superpages: bool,
    scale: ExperimentScale,
    seed: u64,
) -> Vec<u64> {
    let mut sys = boot(
        machine,
        scale,
        superpages,
        Box::new(DefaultPolicy::new()),
        seed,
    );
    let pid = sys.spawn_process(1000).expect("spawn");
    let config = scale.attack_config(seed, superpages);
    let tlb_pool = {
        let pages = PtHammer::tlb_eviction_pages(&sys);
        TlbEvictionPool::build(&mut sys, pid, &config, pages)
    }
    .expect("TLB pool");
    let llc_pool = {
        let lines = PtHammer::llc_eviction_lines(&sys);
        LlcEvictionPool::build(&mut sys, pid, &config, lines)
    }
    .expect("LLC pool");
    let spray = spray_page_tables(&mut sys, pid, &config).expect("spray");
    let row_span = sys.machine().config().dram.geometry.row_span_bytes();
    let mut rng = StdRng::seed_from_u64(seed);
    let pair = candidate_pairs(&spray, row_span, 1, &mut rng)[0];
    let hammer = ImplicitHammer::prepare(
        &mut sys,
        pid,
        pair,
        &tlb_pool,
        &llc_pool,
        config.llc_profile_trials,
    )
    .expect("prepare");
    hammer.hammer(&mut sys, pid, 10).expect("warm up");
    hammer
        .round_cycle_samples(&mut sys, pid, 50)
        .expect("samples")
}

// ---------------------------------------------------------------------------
// Hammer microbenchmark (perf-counter routed)
// ---------------------------------------------------------------------------

/// Measured result of the pinned hammer microbenchmark.
///
/// Every number is routed through `pthammer-perf`: iteration counts and
/// per-iteration costs come from [`HammerAccounting`], hardware events from
/// [`MachineCounters`] deltas. The repro binaries and `perf_report` consume
/// this struct instead of re-deriving timings ad hoc.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HammerMicrobench {
    /// Iteration count and simulated cycle cost of the measured loop.
    pub accounting: HammerAccounting,
    /// Simulated hardware events of the measured loop (counter deltas).
    pub counters: MachineCounters,
    /// Fraction of iterations whose L1PTE loads reached DRAM.
    pub implicit_dram_rate: f64,
    /// Host wall-clock time of the measured loop.
    pub wall_ns: u64,
}

/// Runs the pinned double-sided implicit-hammer microbenchmark: prepare the
/// attack on the chosen machine, warm up, then hammer `rounds` iterations
/// with perf counters bracketing the loop.
///
/// Superpages are used on the Table I machines so the one-off LLC pool
/// preparation stays cheap (the measured loop is identical in both
/// settings); the small test machine builds its pool quickly either way.
pub fn hammer_microbench(
    machine: MachineChoice,
    scale: ExperimentScale,
    rounds: u64,
    seed: u64,
) -> HammerMicrobench {
    let superpages = machine != MachineChoice::TestSmall;
    let mut sys = boot(
        machine,
        scale,
        superpages,
        Box::new(DefaultPolicy::new()),
        seed,
    );
    let clock_hz = sys.machine().clock_hz();
    let pid = sys.spawn_process(1000).expect("spawn");
    let config = scale.attack_config(seed, superpages);
    let attack = PtHammer::new(config.clone()).expect("config");
    let prepared = attack.prepare(&mut sys, pid).expect("prepare");
    let row_span = sys.machine().config().dram.geometry.row_span_bytes();
    let mut rng = StdRng::seed_from_u64(seed);
    let pair = candidate_pairs(&prepared.spray, row_span, 1, &mut rng)[0];
    let hammer = ImplicitHammer::prepare(
        &mut sys,
        pid,
        pair,
        &prepared.tlb_pool,
        &prepared.llc_pool,
        config.llc_profile_trials,
    )
    .expect("hammer prepare");
    hammer.hammer(&mut sys, pid, 10).expect("warm up");

    let before = MachineCounters::capture(sys.machine());
    let watch = Stopwatch::start();
    let stats = hammer.hammer(&mut sys, pid, rounds).expect("hammer");
    let wall_ns = watch.elapsed_ns();
    let counters = MachineCounters::capture(sys.machine()).since(&before);
    HammerMicrobench {
        accounting: HammerAccounting::new(stats.rounds, stats.total_cycles, clock_hz),
        counters,
        implicit_dram_rate: (stats.low_dram_rate() + stats.high_dram_rate()) / 2.0,
        wall_ns,
    }
}

/// Runs the pinned hammer microbenchmark for an arbitrary [`HammerMode`]:
/// prepares the attack, arms the first candidate pair the strategy accepts,
/// then drives the strategy's exact per-round op pattern `rounds` times with
/// perf counters bracketing the loop.
///
/// The default-mode variant [`hammer_microbench`] is kept separate (and
/// byte-identical to its historical behavior) because `BENCH_perf.json`
/// pins its counters; this function backs the per-mode perf workloads and
/// the `repro_table1 --measured` mode table.
pub fn hammer_mode_microbench(
    machine: MachineChoice,
    scale: ExperimentScale,
    mode: HammerMode,
    rounds: u64,
    seed: u64,
) -> HammerMicrobench {
    let superpages = machine != MachineChoice::TestSmall;
    let mut sys = boot(
        machine,
        scale,
        superpages,
        Box::new(DefaultPolicy::new()),
        seed,
    );
    let clock_hz = sys.machine().clock_hz();
    let pid = sys.spawn_process(1000).expect("spawn");
    let mut config = scale.attack_config(seed, superpages);
    config.hammer_mode = mode;
    let attack = PtHammer::new(config.clone()).expect("config");
    let prepared = attack.prepare(&mut sys, pid).expect("prepare");
    let row_span = sys.machine().config().dram.geometry.row_span_bytes();
    let threshold = conflict_threshold(&sys);
    let strategy = mode.strategy();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut armed = None;
    'search: for _ in 0..16 {
        for pair in candidate_pairs(&prepared.spray, row_span, 4, &mut rng) {
            let arm = strategy
                .arm(&mut sys, pid, pair, &prepared, &config, threshold)
                .expect("arm");
            if let Some(a) = arm.armed {
                armed = Some(a);
                break 'search;
            }
        }
    }
    let armed = armed.unwrap_or_else(|| panic!("no armable candidate pair for {mode:?}"));
    let ops = strategy.round_ops();
    for _ in 0..10 {
        armed.hammer_round(&mut sys, pid, ops).expect("warm up");
    }

    let before = MachineCounters::capture(sys.machine());
    let watch = Stopwatch::start();
    let mut total_cycles = 0u64;
    let mut dram_hits = 0u64;
    for _ in 0..rounds {
        let round = armed.hammer_round(&mut sys, pid, ops).expect("round");
        total_cycles += round.cycles;
        dram_hits += u64::from(round.low_dram) + u64::from(round.high_dram);
    }
    let wall_ns = watch.elapsed_ns();
    let counters = MachineCounters::capture(sys.machine()).since(&before);
    let implicit_touches = strategy.implicit_touches_per_round() * rounds;
    HammerMicrobench {
        accounting: HammerAccounting::new(rounds, total_cycles, clock_hz),
        counters,
        implicit_dram_rate: if implicit_touches == 0 {
            0.0
        } else {
            dram_hits as f64 / implicit_touches as f64
        },
        wall_ns,
    }
}

/// Runs the pinned hammer microbenchmark through the compiled-trace replay
/// path: boots and arms exactly like [`hammer_mode_microbench`] with the
/// default strategy, compiles the schedule into a [`CompiledTrace`] with the
/// requested profile, then replays it `rounds` times with perf counters
/// bracketing the loop. Returns the measurement and the LLC traversal pass
/// count the trace was compiled to.
///
/// With [`TraceProfile::Exact`] this measures the production hammer path
/// (what `phase_hammer` runs per attempt); with [`TraceProfile::Calibrated`]
/// it additionally models the attacker minimising eviction work — the
/// compiler probes the fewest LLC passes that keep every implicit touch
/// DRAM-served before the measured loop starts.
pub fn hammer_compiled_microbench(
    machine: MachineChoice,
    scale: ExperimentScale,
    profile: TraceProfile,
    rounds: u64,
    seed: u64,
) -> (HammerMicrobench, usize) {
    let superpages = machine != MachineChoice::TestSmall;
    let mut sys = boot(
        machine,
        scale,
        superpages,
        Box::new(DefaultPolicy::new()),
        seed,
    );
    let clock_hz = sys.machine().clock_hz();
    let pid = sys.spawn_process(1000).expect("spawn");
    let config = scale.attack_config(seed, superpages);
    let attack = PtHammer::new(config.clone()).expect("config");
    let prepared = attack.prepare(&mut sys, pid).expect("prepare");
    let row_span = sys.machine().config().dram.geometry.row_span_bytes();
    let threshold = conflict_threshold(&sys);
    let strategy = HammerMode::default().strategy();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut armed = None;
    'search: for _ in 0..16 {
        for pair in candidate_pairs(&prepared.spray, row_span, 4, &mut rng) {
            let arm = strategy
                .arm(&mut sys, pid, pair, &prepared, &config, threshold)
                .expect("arm");
            if let Some(a) = arm.armed {
                armed = Some(a);
                break 'search;
            }
        }
    }
    let armed = armed.expect("no armable candidate pair for the default mode");
    let ops = strategy.round_ops();
    let mut trace = match profile {
        TraceProfile::Exact => CompiledTrace::compile(&armed, ops, &sys).expect("compile"),
        TraceProfile::Calibrated => {
            CompiledTrace::compile_calibrated(&armed, ops, &mut sys, pid, 10).expect("calibrate")
        }
    };
    for _ in 0..10 {
        if trace.is_stale(&sys) {
            trace = trace.recompile(&armed, ops, &sys).expect("recompile");
        }
        trace.replay(&mut sys, pid).expect("warm up");
    }

    let before = MachineCounters::capture(sys.machine());
    let watch = Stopwatch::start();
    let mut total_cycles = 0u64;
    let mut dram_hits = 0u64;
    for _ in 0..rounds {
        if trace.is_stale(&sys) {
            trace = trace.recompile(&armed, ops, &sys).expect("recompile");
        }
        let round = trace.replay(&mut sys, pid).expect("round");
        total_cycles += round.cycles;
        dram_hits += u64::from(round.low_dram) + u64::from(round.high_dram);
    }
    let wall_ns = watch.elapsed_ns();
    let counters = MachineCounters::capture(sys.machine()).since(&before);
    let implicit_touches = strategy.implicit_touches_per_round() * rounds;
    let bench = HammerMicrobench {
        accounting: HammerAccounting::new(rounds, total_cycles, clock_hz),
        counters,
        implicit_dram_rate: if implicit_touches == 0 {
            0.0
        } else {
            dram_hits as f64 / implicit_touches as f64
        },
        wall_ns,
    };
    (bench, trace.llc_eviction_passes())
}

// ---------------------------------------------------------------------------
// Table II: end-to-end attack timings
// ---------------------------------------------------------------------------

/// One row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Machine name.
    pub machine: String,
    /// "regular" or "superpage".
    pub setting: String,
    /// The hammer strategy the attack ran.
    pub hammer_mode: HammerMode,
    /// TLB pool preparation (milliseconds, simulated).
    pub tlb_prep_ms: f64,
    /// LLC pool preparation (seconds, simulated).
    pub llc_prep_s: f64,
    /// TLB set selection (microseconds, simulated).
    pub tlb_select_us: f64,
    /// LLC set selection per pair (milliseconds, simulated).
    pub llc_select_ms: f64,
    /// Hammer time per attempt (milliseconds, simulated).
    pub hammer_ms: f64,
    /// Double-sided hammer iterations actually performed (measured by the
    /// hammer loop, reported through [`HammerAccounting`]).
    pub hammer_iterations: u64,
    /// Simulated cycles per hammer iteration (reported through
    /// [`HammerAccounting`]; compare against Figure 5's flip thresholds).
    pub cycles_per_iteration: u64,
    /// Check time per attempt (milliseconds, simulated).
    pub check_ms: f64,
    /// Simulated minutes until the first bit flip (None if none observed).
    pub time_to_flip_min: Option<f64>,
    /// Whether privilege escalation succeeded.
    pub escalated: bool,
}

/// Runs the full attack on one machine/setting and extracts the Table II row.
pub fn table2_run(
    machine: MachineChoice,
    superpages: bool,
    scale: ExperimentScale,
    seed: u64,
) -> Table2Row {
    table2_run_mode(machine, superpages, scale, HammerMode::default(), seed)
}

/// [`table2_run`] with an explicit hammer strategy (the `repro_table2
/// --mode` path).
pub fn table2_run_mode(
    machine: MachineChoice,
    superpages: bool,
    scale: ExperimentScale,
    mode: HammerMode,
    seed: u64,
) -> Table2Row {
    let mut sys = boot(
        machine,
        scale,
        superpages,
        Box::new(DefaultPolicy::new()),
        seed,
    );
    let clock_hz = sys.machine().clock_hz();
    let pid = sys.spawn_process(1000).expect("spawn");
    let mut config = scale.attack_config(seed, superpages);
    config.hammer_mode = mode;
    let attack = PtHammer::new(config).expect("config");
    let outcome = attack
        .run_with(&mut sys, pid, RunOptions::new())
        .expect("attack run");
    table2_row_from_outcome(&outcome, clock_hz)
}

/// Converts an [`AttackOutcome`] to a Table II row.
///
/// Iteration counts and per-iteration costs go through
/// [`HammerAccounting`] — the same accounting `perf_report` and the campaign
/// harness use — so Table II can never disagree with the perf trajectory
/// about how many iterations ran.
pub fn table2_row_from_outcome(outcome: &AttackOutcome, clock_hz: f64) -> Table2Row {
    let s = |c: u64| c as f64 / clock_hz;
    let hammer = HammerAccounting::new(
        outcome.hammer_iterations,
        outcome.hammer_cycles_total,
        clock_hz,
    );
    Table2Row {
        machine: outcome.machine.clone(),
        setting: outcome.page_setting.name().to_string(),
        hammer_mode: outcome.hammer_mode,
        tlb_prep_ms: s(outcome.timings.tlb_pool_prep_cycles) * 1e3,
        llc_prep_s: s(outcome.timings.llc_pool_prep_cycles),
        tlb_select_us: s(outcome.timings.tlb_selection_cycles) * 1e6,
        llc_select_ms: s(outcome.timings.llc_selection_cycles) * 1e3,
        hammer_ms: s(outcome.timings.hammer_cycles_per_attempt) * 1e3,
        hammer_iterations: hammer.iterations,
        cycles_per_iteration: hammer.cycles_per_iteration(),
        check_ms: s(outcome.timings.check_cycles_per_attempt) * 1e3,
        time_to_flip_min: outcome.minutes_to_first_flip(),
        escalated: outcome.escalated,
    }
}

// ---------------------------------------------------------------------------
// Section IV-C / IV-D accuracy experiments
// ---------------------------------------------------------------------------

/// Measures the false-positive rate of Algorithm 2's LLC eviction-set
/// selection against the oracle (Section IV-C; paper: ≤ 6%).
pub fn selection_accuracy(
    machine: MachineChoice,
    scale: ExperimentScale,
    samples: usize,
    seed: u64,
) -> f64 {
    // Superpage setting so the pool builds quickly; the selection algorithm
    // itself is identical in both settings.
    let mut sys = boot(machine, scale, true, Box::new(DefaultPolicy::new()), seed);
    let pid = sys.spawn_process(1000).expect("spawn");
    let config = scale.attack_config(seed, true);
    let tlb_pool = {
        let pages = PtHammer::tlb_eviction_pages(&sys);
        TlbEvictionPool::build(&mut sys, pid, &config, pages)
    }
    .expect("TLB pool");
    let llc_pool = {
        let lines = PtHammer::llc_eviction_lines(&sys);
        LlcEvictionPool::build(&mut sys, pid, &config, lines)
    }
    .expect("LLC pool");
    let spray = spray_page_tables(&mut sys, pid, &config).expect("spray");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC);
    let row_span = sys.machine().config().dram.geometry.row_span_bytes();
    let pairs = candidate_pairs(&spray, row_span, samples, &mut rng);

    let mut false_positives = 0usize;
    let mut total = 0usize;
    for pair in pairs.iter().take(samples) {
        for &target in &[pair.low, pair.high] {
            let tlb_set = tlb_pool.minimal_eviction_set_for(target);
            // More profiling trials than the hammer loop uses: selection is a
            // one-off per pair, so the attacker can afford the precision.
            let selected = llc_pool
                .select_for_l1pte(
                    &mut sys,
                    pid,
                    target,
                    &tlb_set,
                    config.llc_profile_trials.max(12),
                )
                .expect("selection");
            let l1pte_pa = sys.oracle_l1pte_paddr(pid, target).expect("l1pte");
            let expected = pthammer_machine::llc_location(sys.machine(), l1pte_pa);
            let line_pa = sys
                .oracle_translate(pid, selected.lines[0])
                .expect("line mapped");
            let got = pthammer_machine::llc_location(sys.machine(), line_pa);
            total += 1;
            if got != expected {
                false_positives += 1;
            }
        }
    }
    false_positives as f64 / total.max(1) as f64
}

/// Result of the pair-selection accuracy experiment (Section IV-D).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairSelectionAccuracy {
    /// Fraction of pairs flagged slow (same-bank by timing).
    pub flagged_fraction: f64,
    /// Of the flagged pairs, fraction whose L1PTEs really share a bank
    /// (paper: > 95%).
    pub same_bank_fraction: f64,
    /// Of the same-bank pairs, fraction whose L1PTEs are exactly two rows
    /// apart (paper: ~90%).
    pub two_rows_apart_fraction: f64,
}

/// Verifies candidate pairs by row-buffer-conflict timing and checks the
/// flagged ones against the oracle (Section IV-D).
pub fn pair_selection_accuracy(
    machine: MachineChoice,
    scale: ExperimentScale,
    pair_count: usize,
    seed: u64,
) -> PairSelectionAccuracy {
    let mut sys = boot(machine, scale, true, Box::new(DefaultPolicy::new()), seed);
    let pid = sys.spawn_process(1000).expect("spawn");
    let config = scale.attack_config(seed, true);
    let tlb_pool = {
        let pages = PtHammer::tlb_eviction_pages(&sys);
        TlbEvictionPool::build(&mut sys, pid, &config, pages)
    }
    .expect("TLB pool");
    let llc_pool = {
        let lines = PtHammer::llc_eviction_lines(&sys);
        LlcEvictionPool::build(&mut sys, pid, &config, lines)
    }
    .expect("LLC pool");
    let spray = spray_page_tables(&mut sys, pid, &config).expect("spray");
    let row_span = sys.machine().config().dram.geometry.row_span_bytes();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD);
    let pairs = candidate_pairs(&spray, row_span, pair_count, &mut rng);
    let threshold = conflict_threshold(&sys);

    let mut flagged = 0usize;
    let mut same_bank = 0usize;
    let mut two_rows = 0usize;
    for &pair in &pairs {
        let hammer = ImplicitHammer::prepare(
            &mut sys,
            pid,
            pair,
            &tlb_pool,
            &llc_pool,
            config.llc_profile_trials,
        )
        .expect("prepare");
        let verification = verify_same_bank(
            &mut sys,
            pid,
            pair,
            &hammer.tlb_low,
            &hammer.tlb_high,
            &hammer.llc_low,
            &hammer.llc_high,
            threshold,
            5,
        )
        .expect("verify");
        if !verification.same_bank {
            continue;
        }
        flagged += 1;
        let low_pa = sys.oracle_l1pte_paddr(pid, pair.low).expect("low l1pte");
        let high_pa = sys.oracle_l1pte_paddr(pid, pair.high).expect("high l1pte");
        let low_loc = pthammer_machine::dram_location(sys.machine(), low_pa);
        let high_loc = pthammer_machine::dram_location(sys.machine(), high_pa);
        if low_loc.same_bank(&high_loc) {
            same_bank += 1;
            if high_loc.row.abs_diff(low_loc.row) == 2 {
                two_rows += 1;
            }
        }
    }
    PairSelectionAccuracy {
        flagged_fraction: flagged as f64 / pairs.len().max(1) as f64,
        same_bank_fraction: same_bank as f64 / flagged.max(1) as f64,
        two_rows_apart_fraction: two_rows as f64 / same_bank.max(1) as f64,
    }
}

// ---------------------------------------------------------------------------
// Section IV-G: software-only defenses
// ---------------------------------------------------------------------------

/// Result of attacking one defense configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DefenseResult {
    /// Defense name.
    pub defense: String,
    /// Whether privilege escalation succeeded.
    pub escalated: bool,
    /// Bit flips observed.
    pub flips_observed: usize,
    /// Exploitable flips observed.
    pub exploitable_flips: usize,
    /// Attempts performed.
    pub attempts: usize,
    /// Escalation route, if any.
    pub route: Option<String>,
}

/// Runs the attack against one defense (Section IV-G), driving a single
/// campaign-harness cell. The CTA cell sprays credentials by spawning many
/// sibling processes, as in the paper's bypass; ZebRAM attempts are bounded.
pub fn defense_eval(
    machine: MachineChoice,
    defense: DefenseChoice,
    scale: ExperimentScale,
    seed: u64,
) -> DefenseResult {
    let config = scale.campaign_config(seed);
    let coord = CellCoord {
        machine,
        defense,
        profile: scale.profile_choice(),
        hammer_mode: HammerMode::default(),
        pattern: None,
        victim: None,
        repetition: 0,
    };
    let cell = run_cell(&coord, &config);
    DefenseResult {
        defense: cell.defense.name().to_string(),
        escalated: cell.escalated,
        flips_observed: cell.flips_observed,
        exploitable_flips: cell.exploitable_flips,
        attempts: cell.attempts,
        route: cell
            .route
            .or(cell.error.map(|e| format!("attack aborted: {e}"))),
    }
}

/// Runs the full Section IV-G defense sweep (every [`DefenseChoice`]) as one
/// parallel campaign on the chosen machine and returns the aggregated
/// report, including per-defense escalation rates and deltas against the
/// undefended baseline.
pub fn defense_campaign(
    machine: MachineChoice,
    scale: ExperimentScale,
    repetitions: u32,
    base_seed: u64,
) -> CampaignReport {
    let matrix = ScenarioMatrix::new(
        vec![machine],
        DefenseChoice::all(),
        vec![scale.profile_choice()],
        repetitions,
    );
    run_campaign(&matrix, &scale.campaign_config(base_seed))
}

// ---------------------------------------------------------------------------
// ANVIL detection and ablations
// ---------------------------------------------------------------------------

/// Detection rates of an ANVIL-style detector against explicit and implicit
/// hammering (Section V discussion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnvilEvaluation {
    /// Detection rate of unmodified ANVIL against explicit clflush hammering.
    pub explicit_detected: bool,
    /// Detection rate of unmodified ANVIL against PThammer.
    pub implicit_detected_naive: bool,
    /// Detection rate of the extended detector (implicit accesses attributed)
    /// against PThammer.
    pub implicit_detected_extended: bool,
    /// DRAM activation rate (per Mcycle) the unmodified detector attributes
    /// to the explicit hammer.
    pub explicit_rate: f64,
    /// Implicit (page-walk) DRAM activation rate (per Mcycle) of PThammer.
    pub implicit_rate: f64,
}

/// Runs both hammer kinds for a fixed window and feeds the observable DRAM
/// access counts to the ANVIL detector variants.
pub fn anvil_eval(machine: MachineChoice, scale: ExperimentScale, seed: u64) -> AnvilEvaluation {
    let threshold = 400.0;
    // Explicit hammering window.
    let explicit_rates = {
        let mut sys = boot(machine, scale, false, Box::new(DefaultPolicy::new()), seed);
        let pid = sys.spawn_process(1000).expect("spawn");
        let hammer = ExplicitHammer::setup(&mut sys, pid, 16 << 20, u64::MAX).expect("setup");
        let aggressors = vec![
            hammer.buffer(),
            hammer.buffer() + 2 * sys.machine().config().dram.geometry.row_span_bytes(),
        ];
        let start_cycles = sys.rdtsc();
        let start = sys.machine().dram_stats().accesses;
        for _ in 0..2_000 {
            hammer
                .hammer_iteration(&mut sys, pid, &aggressors, 0)
                .expect("iteration");
        }
        let window = sys.rdtsc() - start_cycles;
        let dram_accesses = sys.machine().dram_stats().accesses - start;
        // All of an explicit hammer's DRAM traffic comes from its own loads.
        (window, dram_accesses, 0u64)
    };
    // Implicit (PThammer) hammering window (superpage setting: the detection
    // argument is independent of the page size and the eviction pools are
    // built much faster).
    let implicit_rates = {
        let mut sys = boot(machine, scale, true, Box::new(DefaultPolicy::new()), seed);
        let pid = sys.spawn_process(1000).expect("spawn");
        let config = scale.attack_config(seed, true);
        let tlb_pool = {
            let pages = PtHammer::tlb_eviction_pages(&sys);
            TlbEvictionPool::build(&mut sys, pid, &config, pages)
        }
        .expect("TLB pool");
        let llc_pool = {
            let lines = PtHammer::llc_eviction_lines(&sys);
            LlcEvictionPool::build(&mut sys, pid, &config, lines)
        }
        .expect("LLC pool");
        let spray = spray_page_tables(&mut sys, pid, &config).expect("spray");
        let row_span = sys.machine().config().dram.geometry.row_span_bytes();
        let mut rng = StdRng::seed_from_u64(seed);
        let pair = candidate_pairs(&spray, row_span, 1, &mut rng)[0];
        let hammer = ImplicitHammer::prepare(
            &mut sys,
            pid,
            pair,
            &tlb_pool,
            &llc_pool,
            config.llc_profile_trials,
        )
        .expect("prepare");
        let start_cycles = sys.rdtsc();
        let start = sys.machine().dram_stats().accesses;
        let stats = hammer.hammer(&mut sys, pid, 2_000).expect("hammer");
        let window = sys.rdtsc() - start_cycles;
        let dram_accesses = sys.machine().dram_stats().accesses - start;
        // The aggressor-row activations are the implicit L1PTE loads; the
        // attacker's own (explicit) loads are the remainder.
        let implicit = stats.low_dram_hits + stats.high_dram_hits;
        (window, dram_accesses.saturating_sub(implicit), implicit)
    };

    let mut naive_explicit = AnvilDetector::new(AnvilMode::ExplicitLoadsOnly, threshold);
    let mut naive_implicit = AnvilDetector::new(AnvilMode::ExplicitLoadsOnly, threshold);
    let mut extended_implicit = AnvilDetector::new(AnvilMode::IncludeImplicitAccesses, threshold);

    let explicit_verdict =
        naive_explicit.observe_window(explicit_rates.0, explicit_rates.1, explicit_rates.2);
    let naive_verdict = naive_implicit.observe_window(implicit_rates.0, 0, implicit_rates.2);
    let extended_verdict = extended_implicit.observe_window(implicit_rates.0, 0, implicit_rates.2);
    AnvilEvaluation {
        explicit_detected: explicit_verdict.detected,
        implicit_detected_naive: naive_verdict.detected,
        implicit_detected_extended: extended_verdict.detected,
        explicit_rate: explicit_verdict.observed_activation_rate,
        implicit_rate: extended_verdict.observed_activation_rate,
    }
}

/// TRR ablation: flips observed with and without Target Row Refresh under the
/// same hammering workload.
pub fn ablation_trr(machine: MachineChoice, scale: ExperimentScale, seed: u64) -> (usize, usize) {
    let run = |trr: TrrConfig| -> usize {
        let mut machine_cfg = machine.config(scale.flip_profile(), seed);
        machine_cfg.dram.trr = trr;
        let mut sys = System::new(
            machine_cfg,
            KernelConfig::default_config(),
            Box::new(DefaultPolicy::new()),
        );
        let pid = sys.spawn_process(1000).expect("spawn");
        let hammer = ExplicitHammer::setup(&mut sys, pid, 32 << 20, u64::MAX).expect("setup");
        let row_span = sys.machine().config().dram.geometry.row_span_bytes();
        let aggressors = vec![hammer.buffer(), hammer.buffer() + 2 * row_span];
        for _ in 0..(if scale.full { 150_000 } else { 4_000 }) {
            hammer
                .hammer_iteration(&mut sys, pid, &aggressors, 0)
                .expect("iteration");
        }
        hammer.scan_for_flips(&mut sys, pid).expect("scan").len()
    };
    let without = run(TrrConfig::disabled());
    let with_trr = run(TrrConfig::enabled(1_000, 16));
    (without, with_trr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_three_machines_with_paper_parameters() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 3);
        assert!(rows[0][2].contains("12-way, 3 MiB"));
        assert!(rows[2][2].contains("16-way, 4 MiB"));
        assert!(rows.iter().all(|r| r[3].contains("8 GiB")));
    }

    #[test]
    fn scale_from_env_defaults_to_scaled() {
        let scale = ExperimentScale::scaled();
        assert!(!scale.full);
        assert!(scale.describe().contains("scaled"));
        assert!(scale.attack_config(1, false).validate().is_ok());
        assert!(ExperimentScale { full: true }
            .attack_config(1, true)
            .validate()
            .is_ok());
    }

    #[test]
    fn defense_choices_build_policies() {
        let machine = MachineChoice::LenovoT420.config(FlipModelProfile::fast(), 3);
        for defense in DefenseChoice::all() {
            let policy = defense.policy(&machine);
            assert!(!policy.name().is_empty());
        }
        assert_eq!(DefenseChoice::Cta.name(), "CTA");
    }

    #[test]
    fn machine_choice_selection_and_names() {
        assert_eq!(MachineChoice::all().len(), 3);
        assert!(!MachineChoice::selected().is_empty());
        assert_eq!(MachineChoice::LenovoT420.name(), "Lenovo T420");
        let cfg = MachineChoice::DellE6420.config(FlipModelProfile::fast(), 1);
        assert_eq!(cfg.cache.llc.ways, 16);
    }

    #[test]
    fn table2_row_conversion_uses_clock() {
        let outcome = AttackOutcome {
            machine: "M".into(),
            clock_hz: 1e9,
            page_setting: pthammer::PageSetting::Regular,
            defense: pthammer_kernel::DefenseKind::Undefended,
            hammer_mode: HammerMode::ImplicitDoubleSided,
            escalated: true,
            victim_outcome: None,
            attempts: 1,
            hammer_iterations: 1_000,
            hammer_cycles_total: 500_000_000,
            flips_observed: 1,
            exploitable_flips: 1,
            uid_before: 1000,
            uid_after: 0,
            timings: pthammer::StageTimings {
                tlb_pool_prep_cycles: 1_000_000,
                llc_pool_prep_cycles: 2_000_000_000,
                hammer_cycles_per_attempt: 500_000_000,
                check_cycles_per_attempt: 250_000_000,
                time_to_first_flip_cycles: Some(60_000_000_000),
                ..Default::default()
            },
            hammer_cycle_samples: vec![],
            implicit_dram_rate: 1.0,
        };
        let row = table2_row_from_outcome(&outcome, 1e9);
        assert!((row.tlb_prep_ms - 1.0).abs() < 1e-9);
        assert!((row.llc_prep_s - 2.0).abs() < 1e-9);
        assert!((row.hammer_ms - 500.0).abs() < 1e-9);
        assert_eq!(row.hammer_iterations, 1_000);
        assert_eq!(row.cycles_per_iteration, 500_000_000 / 1_000);
        assert!((row.time_to_flip_min.unwrap() - 1.0).abs() < 1e-9);
        assert!(row.escalated);
    }
}

//! Criterion bench: host-side cost of the DRAM model's access path
//! (row-buffer bookkeeping plus weak-cell checks).
use criterion::{criterion_group, criterion_main, Criterion};
use pthammer_dram::{DramConfig, DramModule, FlipModelProfile};
use pthammer_types::{Cycles, PhysAddr};

fn bench_dram(c: &mut Criterion) {
    let mut dram = DramModule::new(DramConfig::ddr3_8gib(FlipModelProfile::paper(), 7));
    let row_span = dram.config().geometry.row_span_bytes();
    let mut group = c.benchmark_group("dram");
    group.sample_size(30);
    let mut now = 0u64;
    group.bench_function("row_hit_access", |b| {
        b.iter(|| {
            now += 100;
            dram.access(PhysAddr::new(0x1000), Cycles::new(now))
        })
    });
    group.bench_function("double_sided_conflict_accesses", |b| {
        b.iter(|| {
            now += 100;
            dram.access(PhysAddr::new(10 * row_span), Cycles::new(now));
            now += 100;
            dram.access(PhysAddr::new(12 * row_span), Cycles::new(now))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dram);
criterion_main!(benches);

//! Criterion bench: host-side cost of one simulated double-sided implicit
//! hammer iteration (the simulator's hottest path).
use criterion::{criterion_group, criterion_main, Criterion};
use pthammer::{
    eviction::{LlcEvictionPool, TlbEvictionPool},
    pairs::candidate_pairs,
    spray::spray_page_tables,
    AttackConfig, ImplicitHammer, PtHammer,
};
use pthammer_cache::{CacheHierarchyConfig, LlcConfig, ReplacementPolicy};
use pthammer_dram::FlipModelProfile;
use pthammer_kernel::System;
use pthammer_machine::MachineConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_hammer_iteration(c: &mut Criterion) {
    let mut cfg = MachineConfig::test_small(FlipModelProfile::invulnerable(), 3);
    cfg.cache = CacheHierarchyConfig {
        llc: LlcConfig {
            slices: 2,
            sets_per_slice: 256,
            ways: 8,
            latency: 18,
            replacement: ReplacementPolicy::Srrip,
            inclusive: true,
        },
        ..CacheHierarchyConfig::test_small(3)
    };
    let mut sys = System::undefended(cfg);
    let pid = sys.spawn_process(1000).unwrap();
    let config = AttackConfig {
        spray_bytes: 512 << 20,
        llc_profile_trials: 4,
        ..AttackConfig::quick_test(3, false)
    };
    let tlb_pool = {
        let pages = PtHammer::tlb_eviction_pages(&sys);
        TlbEvictionPool::build(&mut sys, pid, &config, pages)
    }
    .unwrap();
    let llc_pool = {
        let lines = PtHammer::llc_eviction_lines(&sys);
        LlcEvictionPool::build(&mut sys, pid, &config, lines)
    }
    .unwrap();
    let spray = spray_page_tables(&mut sys, pid, &config).unwrap();
    let row_span = sys.machine().config().dram.geometry.row_span_bytes();
    let mut rng = StdRng::seed_from_u64(3);
    let pair = candidate_pairs(&spray, row_span, 1, &mut rng)[0];
    let hammer = ImplicitHammer::prepare(&mut sys, pid, pair, &tlb_pool, &llc_pool, 4).unwrap();

    let mut group = c.benchmark_group("hammer");
    group.sample_size(20);
    group.bench_function("implicit_double_sided_iteration", |b| {
        b.iter(|| hammer.hammer_round(&mut sys, pid).unwrap())
    });
    // Component benchmarks of the same round, for hot-path attribution.
    group.bench_function("tlb_evict_one_target", |b| {
        b.iter(|| hammer.tlb_low.evict(&mut sys, pid).unwrap())
    });
    group.bench_function("llc_evict_one_target", |b| {
        b.iter(|| hammer.llc_low.evict(&mut sys, pid).unwrap())
    });
    group.bench_function("touch_target", |b| {
        b.iter(|| sys.access(pid, hammer.pair.low).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_hammer_iteration);
criterion_main!(benches);

//! Criterion bench: host-side cost of address translation and memory access
//! through the simulated machine.
use criterion::{criterion_group, criterion_main, Criterion};
use pthammer_dram::FlipModelProfile;
use pthammer_kernel::{MmapOptions, System, VmaBacking};
use pthammer_machine::MachineConfig;
use pthammer_types::PAGE_SIZE;

fn bench_translation(c: &mut Criterion) {
    let mut sys = System::undefended(MachineConfig::test_small(
        FlipModelProfile::invulnerable(),
        5,
    ));
    let pid = sys.spawn_process(1000).unwrap();
    let pages = 512u64;
    let va = sys
        .mmap(
            pid,
            pages * PAGE_SIZE,
            MmapOptions {
                populate: true,
                backing: VmaBacking::Anonymous { fill_pattern: 7 },
                ..MmapOptions::default()
            },
        )
        .unwrap();

    let mut group = c.benchmark_group("machine");
    group.sample_size(20);
    let mut i = 0u64;
    group.bench_function("tlb_hit_read", |b| {
        b.iter(|| sys.read_u64(pid, va).unwrap())
    });
    group.bench_function("tlb_miss_walk_read", |b| {
        b.iter(|| {
            i = (i + 1) % pages;
            sys.read_u64(pid, va + i * PAGE_SIZE).unwrap()
        })
    });
    group.bench_function("clflush_then_dram_read", |b| {
        b.iter(|| {
            sys.clflush(pid, va).unwrap();
            sys.read_u64(pid, va).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_translation);
criterion_main!(benches);

//! The manifest binding a store to one campaign shape.

use serde::{Deserialize, Serialize};

/// Version of the store's on-disk layout (manifest shape, cell-file header,
/// directory structure). Bump when the layout changes so old stores are
/// rejected instead of misread.
pub const STORE_SCHEMA_VERSION: u32 = 1;

/// Identifies the campaign a store caches cells for.
///
/// A cached cell is only valid for the exact campaign inputs that produced
/// it; the manifest pins every input that is not already part of the cell
/// key: the seeding rules (`seed_schema`), the campaign base seed, the
/// superpage setting, and a fingerprint of the full attack-scale
/// configuration. [`CellStore::open`](crate::CellStore::open) compares the
/// stored manifest against the expected one **byte-for-byte** (canonical
/// JSON), so any drift — a seed-schema bump after a behavior change, a
/// different base seed, a retuned config — invalidates the store loudly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreManifest {
    /// On-disk layout version ([`STORE_SCHEMA_VERSION`]).
    pub store_schema: u32,
    /// Version of the cell-seeding scheme the cached results were computed
    /// under (the harness's `CELL_SEED_SCHEMA_VERSION`).
    pub seed_schema: u32,
    /// Campaign base seed.
    pub base_seed: u64,
    /// Whether the campaign runs in the superpage setting.
    pub superpages: bool,
    /// Fingerprint (hex hash) of the campaign's attack-scale configuration,
    /// excluding knobs that cannot affect results (worker-thread count).
    pub config_fingerprint: String,
}

impl StoreManifest {
    /// The canonical byte form stored in `manifest.json` and compared on
    /// open.
    pub fn canonical_json(&self) -> String {
        let mut json = serde_json::to_string_pretty(self).expect("manifest serializes");
        json.push('\n');
        json
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> StoreManifest {
        StoreManifest {
            store_schema: STORE_SCHEMA_VERSION,
            seed_schema: 1,
            base_seed: 42,
            superpages: false,
            config_fingerprint: "abc123".into(),
        }
    }

    #[test]
    fn canonical_json_is_stable_and_field_sensitive() {
        assert_eq!(manifest().canonical_json(), manifest().canonical_json());
        assert!(manifest().canonical_json().ends_with('\n'));
        let mut bumped = manifest();
        bumped.seed_schema = 2;
        assert_ne!(manifest().canonical_json(), bumped.canonical_json());
        let mut reseeded = manifest();
        reseeded.base_seed = 43;
        assert_ne!(manifest().canonical_json(), reseeded.canonical_json());
    }
}

//! Content-address keys for campaign cells.

use crate::hash::fnv1a_128;

/// The content address of one campaign cell: the 128-bit FNV-1a hash of the
/// cell's canonical coordinate string.
///
/// The harness builds the canonical string from the cell's coordinate
/// *values* — machine, defense, profile, hammer mode, repetition — plus the
/// seed-schema version, mirroring the seeding rule that coordinates (never
/// matrix positions) determine results. Two invocations that would compute
/// the same cell therefore derive the same key, wherever and whenever they
/// run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellKey(u128);

impl CellKey {
    /// Derives the key for a canonical coordinate string.
    pub fn from_canonical(canonical: &str) -> Self {
        Self(fnv1a_128(canonical.as_bytes()))
    }

    /// Reconstructs a key from its [`hex`](Self::hex) form (e.g. a cell file
    /// name); `None` if `hex` is not exactly 32 lowercase hex digits.
    pub fn from_hex(hex: &str) -> Option<Self> {
        if hex.len() != 32 || hex.bytes().any(|b| !matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
            return None;
        }
        u128::from_str_radix(hex, 16).ok().map(Self)
    }

    /// The key as 32 lowercase hex digits — the cell's file name.
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Which of `count` shards owns this key (`key mod count`).
    ///
    /// Purely a function of the key, so every invocation of a sharded
    /// campaign agrees on the partition without coordination.
    pub fn shard_of(&self, count: usize) -> usize {
        debug_assert!(count > 0, "shard count must be positive");
        (self.0 % count.max(1) as u128) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_deterministic_and_coordinate_sensitive() {
        let a = CellKey::from_canonical("m|d|p|mode|0|v1");
        assert_eq!(a, CellKey::from_canonical("m|d|p|mode|0|v1"));
        assert_ne!(a, CellKey::from_canonical("m|d|p|mode|1|v1"));
        assert_ne!(a, CellKey::from_canonical("m|d|p|mode|0|v2"));
    }

    #[test]
    fn hex_round_trips() {
        let key = CellKey::from_canonical("cell");
        let hex = key.hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(CellKey::from_hex(&hex), Some(key));
        assert_eq!(CellKey::from_hex("xyz"), None);
        assert_eq!(CellKey::from_hex(&hex[..31]), None);
        assert_eq!(CellKey::from_hex(&hex.to_uppercase()), None);
    }

    #[test]
    fn shards_partition_the_key_space() {
        let keys: Vec<CellKey> = (0..256)
            .map(|i| CellKey::from_canonical(&format!("cell-{i}")))
            .collect();
        for count in 1..6 {
            for key in &keys {
                assert!(key.shard_of(count) < count);
            }
        }
        // With several shards, a few hundred keys should hit all of them.
        let hit: std::collections::HashSet<usize> = keys.iter().map(|k| k.shard_of(3)).collect();
        assert_eq!(hit.len(), 3);
    }
}

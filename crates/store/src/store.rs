//! The on-disk store: atomic puts, verified gets, status walks.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::hash::fnv1a_128;
use crate::key::CellKey;
use crate::manifest::{StoreManifest, STORE_SCHEMA_VERSION};

/// Monotonic discriminator for temp-file names, so concurrent workers in
/// one process never collide before their atomic renames.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Errors opening or writing a store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure, with the path involved.
    Io {
        /// What the store was doing.
        action: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The store on disk was created for a different campaign (different
    /// schema version, base seed, superpage setting, or config fingerprint).
    /// Its entries are invalid for this campaign; wipe the store or point at
    /// a fresh directory.
    ManifestMismatch {
        /// The store's root directory.
        root: PathBuf,
        /// Canonical manifest the caller expected.
        expected: String,
        /// Canonical manifest found on disk.
        found: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io {
                action,
                path,
                source,
            } => write!(f, "{action} {}: {source}", path.display()),
            StoreError::ManifestMismatch { root, .. } => write!(
                f,
                "store at {} belongs to a different campaign (schema, seed, or config \
                 changed); wipe it or use a fresh directory",
                root.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// Result of probing the store for a cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellLookup {
    /// The cell is cached; the body is the exact canonical JSON that was
    /// stored (hash-verified on read).
    Hit(String),
    /// The cell has not been computed.
    Miss,
    /// A file exists for the cell but is truncated or corrupted (header
    /// unparseable, wrong key, length or content hash mismatch). The caller
    /// should recompute and overwrite.
    Corrupt,
}

/// Counts from a full verification walk of the store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStatus {
    /// Valid, hash-verified cell entries.
    pub entries: usize,
    /// Files in the cell directory that fail verification.
    pub corrupt: usize,
}

/// Per-cell header line: the first line of every cell file, followed by the
/// body bytes it describes.
#[derive(Debug, Serialize, Deserialize)]
struct CellHeader {
    store_schema: u32,
    key: String,
    content_fnv: String,
    bytes: usize,
}

/// A content-addressed store of campaign cells under one root directory.
///
/// Layout:
///
/// ```text
/// <root>/manifest.json      # canonical StoreManifest, byte-compared on open
/// <root>/cells/<key>.json   # header line + canonical cell JSON body
/// <root>/tmp/               # staging for atomic write-then-rename
/// ```
#[derive(Debug)]
pub struct CellStore {
    root: PathBuf,
}

impl CellStore {
    /// Opens (creating if absent) the store at `root` for the campaign
    /// described by `manifest`.
    ///
    /// Stale staging files under `<root>/tmp` — left by invocations that
    /// were killed mid-write — are deleted on open, so kill/resume cycles
    /// never accumulate orphans. A store therefore supports **one writing
    /// invocation at a time** (the resume workflow is inherently
    /// sequential, and shards write disjoint stores); concurrent readers
    /// are always fine.
    ///
    /// # Errors
    ///
    /// [`StoreError::ManifestMismatch`] if `root` already holds a store for
    /// a different campaign; [`StoreError::Io`] on filesystem failure.
    pub fn open(root: impl Into<PathBuf>, manifest: &StoreManifest) -> Result<Self, StoreError> {
        let root = root.into();
        let expected = manifest.canonical_json();
        let manifest_path = root.join("manifest.json");
        for dir in [root.clone(), root.join("cells"), root.join("tmp")] {
            fs::create_dir_all(&dir).map_err(|source| StoreError::Io {
                action: "create store directory",
                path: dir.clone(),
                source,
            })?;
        }
        let tmp_dir = root.join("tmp");
        if let Ok(entries) = fs::read_dir(&tmp_dir) {
            for entry in entries.flatten() {
                // Best-effort: a leftover temp file is garbage by
                // definition (a completed write renames it away).
                let _ = fs::remove_file(entry.path());
            }
        }
        match fs::read_to_string(&manifest_path) {
            Ok(found) => {
                if found != expected {
                    return Err(StoreError::ManifestMismatch {
                        root,
                        expected,
                        found,
                    });
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                write_atomic(&root, &manifest_path, expected.as_bytes())?;
            }
            Err(source) => {
                return Err(StoreError::Io {
                    action: "read store manifest",
                    path: manifest_path,
                    source,
                })
            }
        }
        Ok(Self { root })
    }

    /// Deletes the store directory and everything in it (no error if it does
    /// not exist). The recovery path after a [`StoreError::ManifestMismatch`]
    /// — e.g. after a seed-schema bump alongside a golden-snapshot refresh.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures other than the directory being absent.
    pub fn wipe(root: impl AsRef<Path>) -> io::Result<()> {
        match fs::remove_dir_all(root.as_ref()) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn cell_path(&self, key: &CellKey) -> PathBuf {
        self.root.join("cells").join(format!("{}.json", key.hex()))
    }

    /// Looks the cell up, verifying the stored content hash.
    ///
    /// Never fails: unreadable, truncated, or corrupted entries come back as
    /// [`CellLookup::Corrupt`] so the caller recomputes instead of crashing
    /// or trusting bad bytes.
    pub fn get(&self, key: &CellKey) -> CellLookup {
        let text = match fs::read_to_string(self.cell_path(key)) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return CellLookup::Miss,
            Err(_) => return CellLookup::Corrupt,
        };
        match decode_cell_file(&text, Some(key)) {
            Some(body) => CellLookup::Hit(body),
            None => CellLookup::Corrupt,
        }
    }

    /// Stores `body` (the cell's canonical JSON) under `key`, atomically:
    /// the bytes land in a temp file first and are renamed into place, so
    /// concurrent readers and killed writers only ever see absent or
    /// complete entries. Overwrites any existing entry.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn put(&self, key: &CellKey, body: &str) -> Result<(), StoreError> {
        let header = CellHeader {
            store_schema: STORE_SCHEMA_VERSION,
            key: key.hex(),
            content_fnv: format!("{:032x}", fnv1a_128(body.as_bytes())),
            bytes: body.len(),
        };
        let mut file = serde_json::to_string(&header).expect("header serializes");
        file.push('\n');
        file.push_str(body);
        write_atomic(&self.root, &self.cell_path(key), file.as_bytes())
    }

    /// Whether a *valid* entry exists for `key`.
    pub fn contains(&self, key: &CellKey) -> bool {
        matches!(self.get(key), CellLookup::Hit(_))
    }

    /// Walks the cell directory, verifying every entry.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the cell directory cannot be listed.
    pub fn status(&self) -> Result<StoreStatus, StoreError> {
        let mut status = StoreStatus {
            entries: 0,
            corrupt: 0,
        };
        for key in self.walk()? {
            match key {
                Some(key) if self.contains(&key) => status.entries += 1,
                _ => status.corrupt += 1,
            }
        }
        Ok(status)
    }

    /// The keys of every valid entry, sorted (deterministic across hosts).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the cell directory cannot be listed.
    pub fn keys(&self) -> Result<Vec<CellKey>, StoreError> {
        let mut keys: Vec<CellKey> = self
            .walk()?
            .into_iter()
            .flatten()
            .filter(|k| self.contains(k))
            .collect();
        keys.sort();
        Ok(keys)
    }

    /// Lists the cell directory as parsed keys (`None` for files whose name
    /// is not a well-formed key).
    fn walk(&self) -> Result<Vec<Option<CellKey>>, StoreError> {
        let dir = self.root.join("cells");
        let entries = fs::read_dir(&dir).map_err(|source| StoreError::Io {
            action: "list store cells",
            path: dir.clone(),
            source,
        })?;
        let mut keys = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|source| StoreError::Io {
                action: "list store cells",
                path: dir.clone(),
                source,
            })?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            keys.push(name.strip_suffix(".json").and_then(CellKey::from_hex));
        }
        Ok(keys)
    }
}

/// Validates a cell file's header against its body (and, when given, the
/// key it is filed under), returning the verified body.
fn decode_cell_file(text: &str, expect_key: Option<&CellKey>) -> Option<String> {
    let (header_line, body) = text.split_once('\n')?;
    let header = serde_json::from_str(header_line).ok()?;
    let schema = header.get("store_schema")?.as_u64()?;
    if schema != u64::from(STORE_SCHEMA_VERSION) {
        return None;
    }
    let key = CellKey::from_hex(header.get("key")?.as_str()?)?;
    if expect_key.is_some_and(|expected| *expected != key) {
        return None;
    }
    if header.get("bytes")?.as_u64()? != body.len() as u64 {
        return None;
    }
    let fnv = format!("{:032x}", fnv1a_128(body.as_bytes()));
    if header.get("content_fnv")?.as_str()? != fnv {
        return None;
    }
    Some(body.to_string())
}

/// Writes `bytes` to `path` atomically: temp file in `<store root>/tmp` (or
/// the target's directory while the store is being created), then rename.
fn write_atomic(root: &Path, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp_dir = root.join("tmp");
    let tmp_dir = if tmp_dir.is_dir() {
        tmp_dir
    } else {
        path.parent().unwrap_or(root).to_path_buf()
    };
    let tmp = tmp_dir.join(format!(
        "{}.{}.{}.tmp",
        path.file_name()
            .map(|n| n.to_string_lossy())
            .unwrap_or_default(),
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    fs::write(&tmp, bytes).map_err(|source| StoreError::Io {
        action: "write store temp file",
        path: tmp.clone(),
        source,
    })?;
    fs::rename(&tmp, path).map_err(|source| StoreError::Io {
        action: "publish store file",
        path: path.to_path_buf(),
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> StoreManifest {
        StoreManifest {
            store_schema: STORE_SCHEMA_VERSION,
            seed_schema: 1,
            base_seed: 7,
            superpages: false,
            config_fingerprint: "f00d".into(),
        }
    }

    fn temp_root(tag: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!(
            "pthammer-store-test-{tag}-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = CellStore::wipe(&root);
        root
    }

    #[test]
    fn put_get_round_trips_exact_bytes() {
        let root = temp_root("roundtrip");
        let store = CellStore::open(&root, &manifest()).unwrap();
        let key = CellKey::from_canonical("cell-a");
        assert_eq!(store.get(&key), CellLookup::Miss);
        let body = "{\"escalated\":true,\"rate\":0.125,\"s\":\"a\\\"b\\n\"}";
        store.put(&key, body).unwrap();
        assert_eq!(store.get(&key), CellLookup::Hit(body.to_string()));
        assert!(store.contains(&key));
        let status = store.status().unwrap();
        assert_eq!(
            status,
            StoreStatus {
                entries: 1,
                corrupt: 0
            }
        );
        assert_eq!(store.keys().unwrap(), vec![key]);
        CellStore::wipe(&root).unwrap();
    }

    #[test]
    fn reopen_with_same_manifest_sees_entries() {
        let root = temp_root("reopen");
        let key = CellKey::from_canonical("cell-b");
        {
            let store = CellStore::open(&root, &manifest()).unwrap();
            store.put(&key, "{}").unwrap();
        }
        let store = CellStore::open(&root, &manifest()).unwrap();
        assert_eq!(store.get(&key), CellLookup::Hit("{}".to_string()));
        CellStore::wipe(&root).unwrap();
    }

    #[test]
    fn manifest_drift_invalidates_the_store() {
        let root = temp_root("drift");
        {
            let store = CellStore::open(&root, &manifest()).unwrap();
            store.put(&CellKey::from_canonical("cell-c"), "{}").unwrap();
        }
        // A seed-schema bump (or any campaign-shape change) must refuse the
        // old entries rather than serve them.
        let mut bumped = manifest();
        bumped.seed_schema = 2;
        match CellStore::open(&root, &bumped) {
            Err(StoreError::ManifestMismatch {
                expected, found, ..
            }) => {
                assert_eq!(expected, bumped.canonical_json());
                assert_eq!(found, manifest().canonical_json());
            }
            other => panic!("expected ManifestMismatch, got {other:?}"),
        }
        // Wiping recovers: a fresh store under the new manifest is empty.
        CellStore::wipe(&root).unwrap();
        let store = CellStore::open(&root, &bumped).unwrap();
        assert_eq!(
            store.get(&CellKey::from_canonical("cell-c")),
            CellLookup::Miss
        );
        CellStore::wipe(&root).unwrap();
    }

    #[test]
    fn corruption_is_detected_not_trusted() {
        let root = temp_root("corrupt");
        let store = CellStore::open(&root, &manifest()).unwrap();
        let key = CellKey::from_canonical("cell-d");
        store.put(&key, "{\"flips\":3}").unwrap();
        let path = store.cell_path(&key);

        // Flipped body byte: content hash mismatch.
        let original = fs::read_to_string(&path).unwrap();
        fs::write(&path, original.replace("\"flips\":3", "\"flips\":9")).unwrap();
        assert_eq!(store.get(&key), CellLookup::Corrupt);

        // Truncated file: length mismatch (or unparseable header).
        fs::write(&path, &original[..original.len() - 4]).unwrap();
        assert_eq!(store.get(&key), CellLookup::Corrupt);

        // Garbage: no header line.
        fs::write(&path, "not a store file").unwrap();
        assert_eq!(store.get(&key), CellLookup::Corrupt);
        let status = store.status().unwrap();
        assert_eq!(
            status,
            StoreStatus {
                entries: 0,
                corrupt: 1
            }
        );

        // Overwriting with a fresh put repairs the entry.
        store.put(&key, "{\"flips\":3}").unwrap();
        assert_eq!(
            store.get(&key),
            CellLookup::Hit("{\"flips\":3}".to_string())
        );
        CellStore::wipe(&root).unwrap();
    }

    #[test]
    fn entry_filed_under_the_wrong_key_is_corrupt() {
        let root = temp_root("wrongkey");
        let store = CellStore::open(&root, &manifest()).unwrap();
        let a = CellKey::from_canonical("cell-a");
        let b = CellKey::from_canonical("cell-b");
        store.put(&a, "{}").unwrap();
        // Simulate a mis-filed entry (e.g. a bad manual copy between
        // stores): body verifies against its header, but the header's key is
        // not the one it is filed under.
        fs::rename(store.cell_path(&a), store.cell_path(&b)).unwrap();
        assert_eq!(store.get(&b), CellLookup::Corrupt);
        CellStore::wipe(&root).unwrap();
    }

    #[test]
    fn open_clears_stale_temp_files() {
        let root = temp_root("staletmp");
        let key = CellKey::from_canonical("cell-t");
        {
            let store = CellStore::open(&root, &manifest()).unwrap();
            store.put(&key, "{}").unwrap();
        }
        // Simulate a writer killed mid-write: a half-written staging file.
        fs::write(root.join("tmp").join("orphan.9999.7.tmp"), "half-writ").unwrap();
        let store = CellStore::open(&root, &manifest()).unwrap();
        assert_eq!(
            fs::read_dir(root.join("tmp")).unwrap().count(),
            0,
            "stale temp files must be cleared on open"
        );
        // Published entries and fresh writes are unaffected.
        assert_eq!(store.get(&key), CellLookup::Hit("{}".to_string()));
        store.put(&key, "{\"v\":2}").unwrap();
        assert_eq!(store.get(&key), CellLookup::Hit("{\"v\":2}".to_string()));
        CellStore::wipe(&root).unwrap();
    }

    #[test]
    fn stray_files_count_as_corrupt_in_status() {
        let root = temp_root("stray");
        let store = CellStore::open(&root, &manifest()).unwrap();
        fs::write(root.join("cells").join("notakey.json"), "junk").unwrap();
        let status = store.status().unwrap();
        assert_eq!(
            status,
            StoreStatus {
                entries: 0,
                corrupt: 1
            }
        );
        assert!(store.keys().unwrap().is_empty());
        CellStore::wipe(&root).unwrap();
    }
}

//! The 128-bit FNV-1a hash behind keys and content addressing.

/// 128-bit FNV-1a over a byte string.
///
/// Used both to derive [`CellKey`](crate::CellKey)s from canonical
/// coordinate strings and to content-address cell bodies. 128 bits keeps
/// accidental collisions out of reach for any realistic campaign size
/// (birthday bound ~2^64 entries), and the function is trivially portable
/// and endian-free — the same coordinates hash to the same file name on
/// every host, which sharded campaigns rely on.
pub fn fnv1a_128(bytes: &[u8]) -> u128 {
    const OFFSET_BASIS: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET_BASIS;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_fnv1a_128_vectors() {
        // Reference values from the FNV specification's test suite.
        assert_eq!(fnv1a_128(b""), 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d);
        assert_eq!(fnv1a_128(b"a"), 0xd228_cb69_6f1a_8caf_7891_2b70_4e4a_8964);
    }

    #[test]
    fn is_input_sensitive() {
        assert_ne!(fnv1a_128(b"cell|0"), fnv1a_128(b"cell|1"));
        assert_eq!(fnv1a_128(b"x"), fnv1a_128(b"x"));
    }
}

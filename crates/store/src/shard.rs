//! Deterministic partitioning of the cell-key space.

use std::fmt;
use std::str::FromStr;

use crate::key::CellKey;

/// One shard of a campaign: this invocation computes only the cells whose
/// key hashes into `index` of `count` partitions.
///
/// The partition is a pure function of the cell key ([`CellKey::shard_of`]),
/// so `count` invocations with indices `0..count` — in any order, on any
/// hosts, resumed any number of times — cover every cell exactly once, and
/// their stores merge into the same report a single-process run produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This invocation's shard index, `0 <= index < count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl ShardSpec {
    /// The trivial single-shard spec: owns every cell.
    pub fn full() -> Self {
        Self { index: 0, count: 1 }
    }

    /// Builds a spec, validating `index < count` and `count > 0`.
    ///
    /// # Errors
    ///
    /// Describes the violated bound.
    pub fn new(index: usize, count: usize) -> Result<Self, String> {
        if count == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for {count} shards"
            ));
        }
        Ok(Self { index, count })
    }

    /// Whether this shard owns `key`.
    pub fn owns(&self, key: &CellKey) -> bool {
        key.shard_of(self.count) == self.index
    }

    /// Whether this is the trivial single-shard spec.
    pub fn is_full(&self) -> bool {
        self.count == 1
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

impl FromStr for ShardSpec {
    type Err = String;

    /// Parses the CLI form `i/n` (e.g. `0/3`), zero-based.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (index, count) = s
            .split_once('/')
            .ok_or_else(|| format!("shard spec `{s}` is not of the form i/n"))?;
        let index: usize = index
            .trim()
            .parse()
            .map_err(|_| format!("bad shard index in `{s}`"))?;
        let count: usize = count
            .trim()
            .parse()
            .map_err(|_| format!("bad shard count in `{s}`"))?;
        Self::new(index, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_validates() {
        assert_eq!(
            ShardSpec::from_str("0/3").unwrap(),
            ShardSpec::new(0, 3).unwrap()
        );
        assert_eq!(ShardSpec::from_str("2/3").unwrap().to_string(), "2/3");
        assert!(ShardSpec::from_str("3/3").is_err());
        assert!(ShardSpec::from_str("0/0").is_err());
        assert!(ShardSpec::from_str("1").is_err());
        assert!(ShardSpec::from_str("a/b").is_err());
    }

    #[test]
    fn shards_cover_every_key_exactly_once() {
        let keys: Vec<CellKey> = (0..128)
            .map(|i| CellKey::from_canonical(&format!("k{i}")))
            .collect();
        for count in 1..5 {
            let shards: Vec<ShardSpec> = (0..count)
                .map(|i| ShardSpec::new(i, count).unwrap())
                .collect();
            for key in &keys {
                let owners = shards.iter().filter(|s| s.owns(key)).count();
                assert_eq!(owners, 1, "{key:?} owned by {owners} of {count} shards");
            }
        }
        assert!(ShardSpec::full().is_full());
        assert!(keys.iter().all(|k| ShardSpec::full().owns(k)));
    }
}

//! Content-addressed on-disk cell store for resumable, shardable campaigns.
//!
//! A `ScenarioMatrix` campaign is a pure function from cell coordinates to
//! cell reports, which makes its results cacheable by coordinate: this crate
//! stores each completed cell under a [`CellKey`] — the 128-bit FNV-1a hash
//! of the cell's canonical coordinate string (machine, defense, profile,
//! hammer mode, repetition, seed-schema version) — with the cell's canonical
//! JSON as the value. On top of that, three properties make campaigns
//! restartable and distributable:
//!
//! * **Atomicity** — [`CellStore::put`] writes to a temp file and renames it
//!   into place, so a killed campaign never leaves a half-written cell; a
//!   resumed run picks up exactly the completed prefix for free.
//! * **Integrity** — every cell file carries a header with the content hash
//!   of its body; [`CellStore::get`] re-hashes on read and reports a
//!   truncated or corrupted file as [`CellLookup::Corrupt`] (recompute), not
//!   as bad data and never as a crash.
//! * **Compatibility** — a store is bound to one campaign shape by its
//!   [`StoreManifest`] (store schema, seed schema, base seed, superpage
//!   setting, config fingerprint). [`CellStore::open`] refuses a store whose
//!   manifest does not match byte-for-byte, so a seed-schema bump or a
//!   config change invalidates stale entries loudly instead of serving them.
//!
//! [`ShardSpec`] partitions the key space deterministically (`key mod n`),
//! so `n` disjoint invocations — different processes, hosts, or CI jobs —
//! cover disjoint cells of the same matrix and their stores merge into one
//! report (see `pthammer_harness::merge_stores`).
//!
//! This crate is deliberately coordinate-agnostic: it stores opaque
//! `(key, JSON)` pairs. The harness owns the canonical coordinate string and
//! the report decoding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hash;
mod key;
mod manifest;
mod shard;
mod store;

pub use hash::fnv1a_128;
pub use key::CellKey;
pub use manifest::{StoreManifest, STORE_SCHEMA_VERSION};
pub use shard::ShardSpec;
pub use store::{CellLookup, CellStore, StoreError, StoreStatus};

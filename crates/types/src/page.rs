//! Page sizes supported by the simulated MMU.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::{HUGE_PAGE_SIZE, PAGE_SIZE};

/// The page size backing a virtual mapping.
///
/// The paper evaluates PThammer in two system settings: the default 4 KiB page
/// configuration and a configuration with 2 MiB superpages enabled (which
/// leaks physical address bits 0–20 to the attacker and speeds up LLC
/// eviction-pool preparation, cf. Table II).
///
/// # Examples
///
/// ```
/// use pthammer_types::PageSize;
/// assert_eq!(PageSize::Base4K.bytes(), 4096);
/// assert_eq!(PageSize::Huge2M.bytes(), 2 * 1024 * 1024);
/// assert_eq!(PageSize::Huge2M.known_physical_bits(), 21);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PageSize {
    /// Regular 4 KiB page.
    #[default]
    Base4K,
    /// 2 MiB superpage (huge page).
    Huge2M,
}

impl PageSize {
    /// Returns the page size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Base4K => PAGE_SIZE,
            PageSize::Huge2M => HUGE_PAGE_SIZE,
        }
    }

    /// Number of low physical-address bits shared with the virtual address
    /// for a mapping of this size (12 for 4 KiB pages, 21 for superpages).
    pub const fn known_physical_bits(self) -> u32 {
        match self {
            PageSize::Base4K => 12,
            PageSize::Huge2M => 21,
        }
    }

    /// Returns true when this is a superpage mapping.
    pub const fn is_huge(self) -> bool {
        matches!(self, PageSize::Huge2M)
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Base4K => write!(f, "4 KiB"),
            PageSize::Huge2M => write!(f, "2 MiB"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_bits() {
        assert_eq!(PageSize::Base4K.bytes(), 4096);
        assert_eq!(PageSize::Huge2M.bytes(), 2 * 1024 * 1024);
        assert_eq!(PageSize::Base4K.known_physical_bits(), 12);
        assert_eq!(PageSize::Huge2M.known_physical_bits(), 21);
        assert!(!PageSize::Base4K.is_huge());
        assert!(PageSize::Huge2M.is_huge());
    }

    #[test]
    fn default_is_base_page() {
        assert_eq!(PageSize::default(), PageSize::Base4K);
    }

    #[test]
    fn display() {
        assert_eq!(PageSize::Base4K.to_string(), "4 KiB");
        assert_eq!(PageSize::Huge2M.to_string(), "2 MiB");
    }
}

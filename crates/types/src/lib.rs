//! Shared primitive types for the PThammer reproduction.
//!
//! Every other crate in the workspace builds on the newtypes and traits defined
//! here: physical/virtual addresses, simulated cycle counts, page sizes, access
//! outcomes, and the [`PhysicalMemoryAccess`] trait through which the MMU's
//! page-table walker issues implicit loads.
//!
//! # Examples
//!
//! ```
//! use pthammer_types::{PhysAddr, VirtAddr, Cycles, PAGE_SIZE};
//!
//! let pa = PhysAddr::new(0x1234_5000);
//! assert_eq!(pa.frame_number(), 0x1234_5);
//! assert_eq!(pa.page_offset(), 0);
//!
//! let va = VirtAddr::new(0x7f00_dead_b000);
//! assert_eq!(va.page_number(), 0x7f00_dead_b000 / PAGE_SIZE);
//!
//! let t = Cycles::new(2_600_000_000);
//! assert!((t.as_seconds(2.6e9) - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod addr;
mod cycles;
mod flip;
mod hash;
mod page;

pub use access::{AccessKind, MemAccessOutcome, MemoryLevel, PhysicalMemoryAccess};
pub use addr::{PhysAddr, VirtAddr};
pub use cycles::Cycles;
pub use flip::{CellOrientation, FlipDirection};
pub use hash::{DetHashBuilder, DetHashMap, DetHashSet, DetHasher};
pub use page::PageSize;

/// Size of a base (4 KiB) page in bytes.
pub const PAGE_SIZE: u64 = 4096;
/// Size of a huge (2 MiB) superpage in bytes.
pub const HUGE_PAGE_SIZE: u64 = 2 * 1024 * 1024;
/// Size of a cache line in bytes.
pub const CACHE_LINE_SIZE: u64 = 64;
/// Size of a page-table entry in bytes.
pub const PTE_SIZE: u64 = 8;
/// Number of page-table entries per page-table page.
pub const PTES_PER_TABLE: u64 = PAGE_SIZE / PTE_SIZE;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(PTES_PER_TABLE, 512);
        assert_eq!(HUGE_PAGE_SIZE, PAGE_SIZE * PTES_PER_TABLE);
        assert_eq!(PAGE_SIZE % CACHE_LINE_SIZE, 0);
    }
}

//! Physical and virtual address newtypes.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

use crate::{CACHE_LINE_SIZE, HUGE_PAGE_SIZE, PAGE_SIZE, PTE_SIZE};

/// A physical memory address in the simulated machine.
///
/// Physical addresses index the simulated DRAM and the physically-indexed
/// caches. They are never visible to the simulated unprivileged attacker
/// (mirroring the paper's threat model, which assumes no access to
/// `/proc/<pid>/pagemap`).
///
/// # Examples
///
/// ```
/// use pthammer_types::PhysAddr;
/// let a = PhysAddr::new(0x4_2040);
/// assert_eq!(a.frame_number(), 0x42);
/// assert_eq!(a.page_offset(), 0x40);
/// assert_eq!(a.cache_line_offset(), 0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw value.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Creates a physical address from a frame number and an offset within the frame.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= 4096`.
    pub fn from_frame(frame: u64, offset: u64) -> Self {
        assert!(offset < PAGE_SIZE, "offset {offset} exceeds a 4 KiB frame");
        Self(frame * PAGE_SIZE + offset)
    }

    /// Returns the raw address value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the 4 KiB frame number containing this address.
    pub const fn frame_number(self) -> u64 {
        self.0 / PAGE_SIZE
    }

    /// Returns the offset of this address within its 4 KiB frame.
    pub const fn page_offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }

    /// Returns the address of the first byte of the containing 4 KiB frame.
    pub const fn frame_base(self) -> Self {
        Self(self.0 & !(PAGE_SIZE - 1))
    }

    /// Returns the address of the first byte of the containing cache line.
    pub const fn cache_line_base(self) -> Self {
        Self(self.0 & !(CACHE_LINE_SIZE - 1))
    }

    /// Returns the offset of this address within its cache line.
    pub const fn cache_line_offset(self) -> u64 {
        self.0 % CACHE_LINE_SIZE
    }

    /// Returns the global cache-line index (address divided by the line size).
    pub const fn cache_line_index(self) -> u64 {
        self.0 / CACHE_LINE_SIZE
    }

    /// Returns true if the address is aligned to an 8-byte (PTE-sized) boundary.
    pub const fn is_pte_aligned(self) -> bool {
        self.0.is_multiple_of(PTE_SIZE)
    }

    /// Returns a new address offset by `delta` bytes.
    pub const fn offset(self, delta: u64) -> Self {
        Self(self.0 + delta)
    }

    /// Extracts the bit at position `bit` (0 = least significant).
    pub const fn bit(self, bit: u32) -> u64 {
        (self.0 >> bit) & 1
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PA:{:#014x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

impl From<PhysAddr> for u64 {
    fn from(addr: PhysAddr) -> Self {
        addr.0
    }
}

impl Add<u64> for PhysAddr {
    type Output = Self;
    fn add(self, rhs: u64) -> Self {
        Self(self.0 + rhs)
    }
}

impl AddAssign<u64> for PhysAddr {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<PhysAddr> for PhysAddr {
    type Output = u64;
    fn sub(self, rhs: PhysAddr) -> u64 {
        self.0 - rhs.0
    }
}

/// A virtual address in a simulated process address space.
///
/// Virtual addresses are what the simulated attacker manipulates: it selects
/// hammer targets, eviction-set members and sprayed mappings purely in terms of
/// virtual addresses, exactly as the paper's unprivileged attacker does.
///
/// # Examples
///
/// ```
/// use pthammer_types::VirtAddr;
/// let v = VirtAddr::new(0x0000_7fff_8000_1000);
/// // 4-level page-table indices (9 bits each).
/// assert_eq!(v.pt_index(4), (0x7fff_8000_1000u64 >> 39) & 0x1ff);
/// assert_eq!(v.pt_index(1), (0x7fff_8000_1000u64 >> 12) & 0x1ff);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates a virtual address from a raw value.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw address value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the 4 KiB virtual page number containing this address.
    pub const fn page_number(self) -> u64 {
        self.0 / PAGE_SIZE
    }

    /// Returns the offset of this address within its 4 KiB page.
    pub const fn page_offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }

    /// Returns the address of the first byte of the containing 4 KiB page.
    pub const fn page_base(self) -> Self {
        Self(self.0 & !(PAGE_SIZE - 1))
    }

    /// Returns the address of the first byte of the containing 2 MiB superpage.
    pub const fn huge_page_base(self) -> Self {
        Self(self.0 & !(HUGE_PAGE_SIZE - 1))
    }

    /// Returns the offset of this address within its 2 MiB superpage.
    pub const fn huge_page_offset(self) -> u64 {
        self.0 % HUGE_PAGE_SIZE
    }

    /// Returns the 9-bit page-table index for `level` (1 = PT, 2 = PD, 3 = PDPT, 4 = PML4).
    ///
    /// # Panics
    ///
    /// Panics if `level` is not in `1..=4`.
    pub const fn pt_index(self, level: u8) -> u64 {
        assert!(level >= 1 && level <= 4, "page-table level must be 1..=4");
        let shift = 12 + 9 * (level as u64 - 1);
        (self.0 >> shift) & 0x1ff
    }

    /// Returns a new address offset by `delta` bytes.
    pub const fn offset(self, delta: u64) -> Self {
        Self(self.0 + delta)
    }

    /// Returns true when the address is 4 KiB aligned.
    pub const fn is_page_aligned(self) -> bool {
        self.0.is_multiple_of(PAGE_SIZE)
    }

    /// Returns true when the address is 2 MiB aligned.
    pub const fn is_huge_page_aligned(self) -> bool {
        self.0.is_multiple_of(HUGE_PAGE_SIZE)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VA:{:#014x}", self.0)
    }
}

impl fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

impl From<VirtAddr> for u64 {
    fn from(addr: VirtAddr) -> Self {
        addr.0
    }
}

impl Add<u64> for VirtAddr {
    type Output = Self;
    fn add(self, rhs: u64) -> Self {
        Self(self.0 + rhs)
    }
}

impl AddAssign<u64> for VirtAddr {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<VirtAddr> for VirtAddr {
    type Output = u64;
    fn sub(self, rhs: VirtAddr) -> u64 {
        self.0 - rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn phys_addr_decomposition() {
        let a = PhysAddr::new(0x12345);
        assert_eq!(a.frame_number(), 0x12);
        assert_eq!(a.page_offset(), 0x345);
        assert_eq!(a.frame_base(), PhysAddr::new(0x12000));
        assert_eq!(a.cache_line_base(), PhysAddr::new(0x12340));
        assert_eq!(a.cache_line_offset(), 5);
    }

    #[test]
    fn phys_addr_from_frame_roundtrip() {
        let a = PhysAddr::from_frame(7, 0x123);
        assert_eq!(a.as_u64(), 7 * 4096 + 0x123);
        assert_eq!(a.frame_number(), 7);
        assert_eq!(a.page_offset(), 0x123);
    }

    #[test]
    #[should_panic(expected = "exceeds a 4 KiB frame")]
    fn phys_addr_from_frame_rejects_large_offset() {
        let _ = PhysAddr::from_frame(1, 4096);
    }

    #[test]
    fn virt_addr_pt_indices_cover_distinct_bits() {
        // A VA with index i at level i for easy checking.
        let raw = (4u64 << 39) | (3 << 30) | (2 << 21) | (1 << 12) | 0x7;
        let v = VirtAddr::new(raw);
        assert_eq!(v.pt_index(4), 4);
        assert_eq!(v.pt_index(3), 3);
        assert_eq!(v.pt_index(2), 2);
        assert_eq!(v.pt_index(1), 1);
        assert_eq!(v.page_offset(), 7);
    }

    #[test]
    fn virt_addr_alignment_helpers() {
        let v = VirtAddr::new(0x40000000);
        assert!(v.is_page_aligned());
        assert!(v.is_huge_page_aligned());
        let w = VirtAddr::new(0x40001000);
        assert!(w.is_page_aligned());
        assert!(!w.is_huge_page_aligned());
        assert_eq!(w.huge_page_base(), v);
        assert_eq!(w.huge_page_offset(), 0x1000);
    }

    #[test]
    fn arithmetic_ops() {
        let a = PhysAddr::new(100);
        assert_eq!((a + 28).as_u64(), 128);
        assert_eq!(PhysAddr::new(128) - a, 28);
        let v = VirtAddr::new(100);
        assert_eq!((v + 28).as_u64(), 128);
        assert_eq!(VirtAddr::new(128) - v, 28);
    }

    #[test]
    fn display_formats_are_informative() {
        assert!(format!("{}", PhysAddr::new(0x1000)).contains("PA:"));
        assert!(format!("{}", VirtAddr::new(0x1000)).contains("VA:"));
    }

    proptest! {
        #[test]
        fn prop_phys_decomposition_recombines(raw in 0u64..(1 << 46)) {
            let a = PhysAddr::new(raw);
            prop_assert_eq!(a.frame_number() * 4096 + a.page_offset(), raw);
            prop_assert_eq!(a.cache_line_index() * 64 + a.cache_line_offset(), raw);
        }

        #[test]
        fn prop_virt_pt_indices_recombine(raw in 0u64..(1 << 47)) {
            let v = VirtAddr::new(raw);
            let rebuilt = (v.pt_index(4) << 39)
                | (v.pt_index(3) << 30)
                | (v.pt_index(2) << 21)
                | (v.pt_index(1) << 12)
                | v.page_offset();
            prop_assert_eq!(rebuilt, raw);
        }
    }
}

//! Bit-flip related primitive types shared between the DRAM model and the
//! machine that applies flips to physical memory.

use core::fmt;

use serde::{Deserialize, Serialize};

/// The electrical orientation of a DRAM cell.
///
/// Rowhammer disturbance can only discharge a cell, so the observable flip
/// direction depends on whether the cell stores the logical value directly
/// (*true cell*: `1 → 0`) or inverted (*anti cell*: `0 → 1`). The CTA defense
/// (Wu et al., ASPLOS 2019) relies on placing Level-1 page tables exclusively
/// in rows of true cells so that a flip can only lower the physical address a
/// PTE points to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellOrientation {
    /// A flip in this cell changes a stored `1` to `0`.
    TrueCell,
    /// A flip in this cell changes a stored `0` to `1`.
    AntiCell,
}

impl CellOrientation {
    /// The flip direction this cell can exhibit.
    pub const fn flip_direction(self) -> FlipDirection {
        match self {
            CellOrientation::TrueCell => FlipDirection::OneToZero,
            CellOrientation::AntiCell => FlipDirection::ZeroToOne,
        }
    }
}

impl fmt::Display for CellOrientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellOrientation::TrueCell => write!(f, "true-cell"),
            CellOrientation::AntiCell => write!(f, "anti-cell"),
        }
    }
}

/// The direction of an observable rowhammer bit flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlipDirection {
    /// A stored `1` became `0`.
    OneToZero,
    /// A stored `0` became `1`.
    ZeroToOne,
}

impl FlipDirection {
    /// Applies the flip to `byte` at bit position `bit`, returning the new
    /// byte value, or `None` if the current bit value cannot flip in this
    /// direction (e.g. the bit is already `0` for a `1 → 0` flip).
    pub fn apply(self, byte: u8, bit: u8) -> Option<u8> {
        let mask = 1u8 << bit;
        let is_set = byte & mask != 0;
        match self {
            FlipDirection::OneToZero if is_set => Some(byte & !mask),
            FlipDirection::ZeroToOne if !is_set => Some(byte | mask),
            _ => None,
        }
    }
}

impl fmt::Display for FlipDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlipDirection::OneToZero => write!(f, "1→0"),
            FlipDirection::ZeroToOne => write!(f, "0→1"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientation_maps_to_direction() {
        assert_eq!(
            CellOrientation::TrueCell.flip_direction(),
            FlipDirection::OneToZero
        );
        assert_eq!(
            CellOrientation::AntiCell.flip_direction(),
            FlipDirection::ZeroToOne
        );
    }

    #[test]
    fn apply_one_to_zero() {
        assert_eq!(FlipDirection::OneToZero.apply(0b1010, 1), Some(0b1000));
        assert_eq!(FlipDirection::OneToZero.apply(0b1000, 1), None);
    }

    #[test]
    fn apply_zero_to_one() {
        assert_eq!(FlipDirection::ZeroToOne.apply(0b1000, 1), Some(0b1010));
        assert_eq!(FlipDirection::ZeroToOne.apply(0b1010, 1), None);
    }

    #[test]
    fn apply_is_idempotent_per_direction() {
        let b = 0b0100u8;
        let flipped = FlipDirection::OneToZero.apply(b, 2).unwrap();
        assert_eq!(FlipDirection::OneToZero.apply(flipped, 2), None);
    }

    #[test]
    fn display() {
        assert_eq!(FlipDirection::OneToZero.to_string(), "1→0");
        assert_eq!(CellOrientation::TrueCell.to_string(), "true-cell");
    }
}

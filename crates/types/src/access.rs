//! Memory access kinds, outcomes and the physical-memory access trait used by
//! the page-table walker.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::{Cycles, PhysAddr};

/// Whether a memory access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// Returns true for writes.
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// The level of the memory hierarchy that served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MemoryLevel {
    /// Level-1 data cache.
    L1,
    /// Level-2 unified cache.
    L2,
    /// Last-level (level-3) cache.
    Llc,
    /// DRAM main memory.
    Dram,
}

impl MemoryLevel {
    /// Returns true when the access had to go all the way to DRAM.
    pub const fn is_dram(self) -> bool {
        matches!(self, MemoryLevel::Dram)
    }
}

impl fmt::Display for MemoryLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryLevel::L1 => write!(f, "L1"),
            MemoryLevel::L2 => write!(f, "L2"),
            MemoryLevel::Llc => write!(f, "LLC"),
            MemoryLevel::Dram => write!(f, "DRAM"),
        }
    }
}

/// The outcome of a single physical memory access through the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemAccessOutcome {
    /// Physical address that was accessed (cache-line granularity semantics).
    pub paddr: PhysAddr,
    /// Level of the hierarchy that served the access.
    pub served_by: MemoryLevel,
    /// Modelled latency of the access.
    pub latency: Cycles,
    /// Whether the DRAM access (if any) hit the open row buffer.
    pub row_buffer_hit: bool,
}

impl MemAccessOutcome {
    /// Convenience constructor for an access served by a cache level.
    pub fn cache_hit(paddr: PhysAddr, level: MemoryLevel, latency: Cycles) -> Self {
        Self {
            paddr,
            served_by: level,
            latency,
            row_buffer_hit: false,
        }
    }
}

/// Access to physical memory with modelled timing.
///
/// The MMU's page-table walker is the confused deputy at the heart of
/// PThammer: it issues loads of page-table entries on behalf of an
/// unprivileged access. The walker is written against this trait so that it
/// can be driven by the full machine (caches + DRAM + sparse physical memory)
/// in production and by lightweight fakes in unit tests.
pub trait PhysicalMemoryAccess {
    /// Loads the naturally-aligned 64-bit word at `paddr` through the memory
    /// hierarchy, returning the value and the access outcome (latency, level).
    fn load_qword(&mut self, paddr: PhysAddr) -> (u64, MemAccessOutcome);

    /// Stores the naturally-aligned 64-bit word at `paddr` through the memory
    /// hierarchy, returning the access outcome.
    fn store_qword(&mut self, paddr: PhysAddr, value: u64) -> MemAccessOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
        assert_eq!(AccessKind::Read.to_string(), "read");
    }

    #[test]
    fn memory_level_ordering_matches_distance() {
        assert!(MemoryLevel::L1 < MemoryLevel::L2);
        assert!(MemoryLevel::L2 < MemoryLevel::Llc);
        assert!(MemoryLevel::Llc < MemoryLevel::Dram);
        assert!(MemoryLevel::Dram.is_dram());
        assert!(!MemoryLevel::Llc.is_dram());
    }

    #[test]
    fn outcome_constructor() {
        let o = MemAccessOutcome::cache_hit(PhysAddr::new(64), MemoryLevel::L2, Cycles::new(12));
        assert_eq!(o.served_by, MemoryLevel::L2);
        assert_eq!(o.latency, Cycles::new(12));
        assert!(!o.row_buffer_hit);
    }
}

//! Deterministic fast hashing for simulator-internal maps.
//!
//! The simulator keys several hot maps by dense integers (physical frame
//! numbers, DRAM row indices). The standard library's SipHash dominates
//! their lookup cost on the hot path, and its per-process random keys are
//! pointless here: these maps are only ever probed by key, never iterated
//! for output, so hash order is unobservable and DoS resistance is
//! irrelevant. [`DetHashMap`] / [`DetHashSet`] swap in a deterministic
//! multiply-xor hasher that is an order of magnitude cheaper.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// Deterministic multiply-xor hasher (FxHash-style with a final avalanche).
#[derive(Debug, Clone, Copy, Default)]
pub struct DetHasher(u64);

impl Hasher for DetHasher {
    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.0 = (self.0 ^ value).wrapping_mul(0x517c_c1b7_2722_0a95);
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.write_u64(u64::from(value));
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.write_u64(u64::from(value));
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn finish(&self) -> u64 {
        // A final avalanche so dense low-bit keys (frame numbers, row
        // indices) spread over the table's bucket mask.
        let mut x = self.0;
        x ^= x >> 32;
        x = x.wrapping_mul(0xd6e8_feb8_6659_fd93);
        x ^= x >> 32;
        x
    }
}

/// [`BuildHasher`] for [`DetHasher`]; deterministic across runs and hosts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetHashBuilder;

impl BuildHasher for DetHashBuilder {
    type Hasher = DetHasher;

    #[inline]
    fn build_hasher(&self) -> DetHasher {
        DetHasher::default()
    }
}

/// `HashMap` with the deterministic fast hasher.
pub type DetHashMap<K, V> = HashMap<K, V, DetHashBuilder>;

/// `HashSet` with the deterministic fast hasher.
pub type DetHashSet<T> = HashSet<T, DetHashBuilder>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: DetHashMap<u64, u32> = DetHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 4096, i as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 4096)), Some(&(i as u32)));
        }
        assert_eq!(m.get(&1), None);
    }

    #[test]
    fn set_roundtrip() {
        let mut s: DetHashSet<(u32, u32)> = DetHashSet::default();
        assert!(s.insert((3, 7)));
        assert!(!s.insert((3, 7)));
        assert!(s.contains(&(3, 7)));
    }

    #[test]
    fn hashes_are_deterministic_and_spread() {
        let h = |v: u64| {
            let mut hasher = DetHashBuilder.build_hasher();
            hasher.write_u64(v);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        // Dense keys must land in distinct buckets of a small table.
        let buckets: std::collections::HashSet<u64> = (0..64).map(|i| h(i) % 64).collect();
        assert!(
            buckets.len() > 32,
            "only {} distinct buckets",
            buckets.len()
        );
    }

    #[test]
    fn byte_writes_fold_like_words() {
        let mut a = DetHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut b = DetHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        assert_eq!(a.finish(), b.finish());
    }
}

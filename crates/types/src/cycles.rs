//! Simulated cycle counts.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A count of simulated processor cycles.
///
/// The whole reproduction runs on a simulated clock: every modelled memory
/// access advances the clock by its modelled latency, and all of the paper's
/// timing results (cycles per hammering iteration, time to first bit flip) are
/// expressed in these simulated cycles, converted to seconds with the nominal
/// clock frequency of the modelled machine.
///
/// # Examples
///
/// ```
/// use pthammer_types::Cycles;
/// let a = Cycles::new(600);
/// let b = Cycles::new(300);
/// assert_eq!((a + b).as_u64(), 900);
/// assert_eq!((a - b).as_u64(), 300);
/// assert!((Cycles::new(2_600_000).as_seconds(2.6e9) - 0.001).abs() < 1e-12);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Converts the cycle count to seconds at the given clock frequency (Hz).
    pub fn as_seconds(self, clock_hz: f64) -> f64 {
        self.0 as f64 / clock_hz
    }

    /// Converts the cycle count to milliseconds at the given clock frequency (Hz).
    pub fn as_millis(self, clock_hz: f64) -> f64 {
        self.as_seconds(clock_hz) * 1e3
    }

    /// Converts the cycle count to minutes at the given clock frequency (Hz).
    pub fn as_minutes(self, clock_hz: f64) -> f64 {
        self.as_seconds(clock_hz) / 60.0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Cycles) -> Option<Cycles> {
        self.0.checked_add(rhs.0).map(Cycles)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

impl From<Cycles> for u64 {
    fn from(c: Cycles) -> Self {
        c.0
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |acc, c| acc + c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let mut c = Cycles::new(10);
        c += Cycles::new(5);
        assert_eq!(c, Cycles::new(15));
        c -= Cycles::new(3);
        assert_eq!(c, Cycles::new(12));
        assert_eq!(Cycles::new(5).saturating_sub(Cycles::new(7)), Cycles::ZERO);
        assert_eq!(
            vec![Cycles::new(1), Cycles::new(2), Cycles::new(3)]
                .into_iter()
                .sum::<Cycles>(),
            Cycles::new(6)
        );
    }

    #[test]
    fn conversions() {
        let c = Cycles::new(2_600_000_000);
        assert!((c.as_seconds(2.6e9) - 1.0).abs() < 1e-9);
        assert!((c.as_millis(2.6e9) - 1000.0).abs() < 1e-6);
        assert!((c.as_minutes(2.6e9) - 1.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_cycles() {
        assert_eq!(format!("{}", Cycles::new(42)), "42 cycles");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(Cycles::new(u64::MAX).checked_add(Cycles::new(1)).is_none());
        assert_eq!(
            Cycles::new(1).checked_add(Cycles::new(2)),
            Some(Cycles::new(3))
        );
    }
}

//! The canonical `BENCH_perf.json` document and its CI gate semantics.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Version stamp of the perf-report schema; bump when the JSON layout
/// changes so baselines fail loudly instead of mysteriously.
pub const PERF_SCHEMA_VERSION: u32 = 1;

/// Result of one pinned perf workload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadPerf {
    /// Workload name (pinned; order in the report is pinned too).
    pub name: String,
    /// Exact deterministic counters (simulated events). Gated by CI.
    pub counters: BTreeMap<String, u64>,
    /// Host wall-clock duration of the workload. Reported, never gated.
    pub wall_ns: u64,
}

impl WorkloadPerf {
    /// Creates a workload entry.
    pub fn new(name: &str, counters: BTreeMap<String, u64>, wall_ns: u64) -> Self {
        Self {
            name: name.to_string(),
            counters,
            wall_ns,
        }
    }
}

/// The complete perf report (`BENCH_perf.json`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Schema version of this report.
    pub schema_version: u32,
    /// One entry per pinned workload, in pinned order.
    pub workloads: Vec<WorkloadPerf>,
}

impl PerfReport {
    /// Creates a report from workload entries.
    pub fn new(workloads: Vec<WorkloadPerf>) -> Self {
        Self {
            schema_version: PERF_SCHEMA_VERSION,
            workloads,
        }
    }

    /// The workload names in report order (what `perf_report --list`
    /// enumerates).
    pub fn workload_names(&self) -> Vec<String> {
        self.workloads.iter().map(|w| w.name.clone()).collect()
    }

    /// Renders the report as canonical pretty JSON (stable field order,
    /// alphabetically sorted counters, `\n` line endings, trailing newline).
    pub fn to_canonical_json(&self) -> String {
        let mut json = serde_json::to_string_pretty(self).expect("perf report serializes");
        json.push('\n');
        json
    }

    /// The gated view of a canonical perf-report JSON text: every line whose
    /// key is `wall_ns` is dropped, leaving only the deterministic counters
    /// and structure. Two reports from the same simulator behavior have
    /// byte-identical gated views regardless of host speed.
    pub fn gated_view(json: &str) -> String {
        json.lines()
            .filter(|line| !line.trim_start().starts_with("\"wall_ns\""))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Compares this report against a committed baseline JSON text, ignoring
    /// wall time. Returns the first diverging line on mismatch.
    pub fn check_against(&self, committed: &str) -> Result<(), String> {
        let ours = Self::gated_view(&self.to_canonical_json());
        let theirs = Self::gated_view(committed);
        if ours == theirs {
            return Ok(());
        }
        for (i, (a, b)) in theirs.lines().zip(ours.lines()).enumerate() {
            if a != b {
                return Err(format!(
                    "perf counters deviate from the committed baseline at gated line {}: \
                     baseline `{a}` vs current `{b}`",
                    i + 1
                ));
            }
        }
        Err(format!(
            "perf counters deviate from the committed baseline: gated views share a prefix \
             but differ in length ({} vs {} bytes)",
            theirs.len(),
            ours.len()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(wall: u64, walks: u64) -> PerfReport {
        let mut counters = BTreeMap::new();
        counters.insert("walks".to_string(), walks);
        counters.insert("accesses".to_string(), 10 * walks);
        PerfReport::new(vec![WorkloadPerf::new("w", counters, wall)])
    }

    #[test]
    fn canonical_json_is_stable_and_newline_terminated() {
        let a = report(1, 2).to_canonical_json();
        let b = report(1, 2).to_canonical_json();
        assert_eq!(a, b);
        assert!(a.ends_with('\n'));
        assert!(a.contains("\"schema_version\": 1"));
        assert!(a.contains("\"wall_ns\": 1"));
    }

    #[test]
    fn wall_time_is_not_gated() {
        let fast = report(1, 2);
        let slow = report(999_999, 2).to_canonical_json();
        assert!(fast.check_against(&slow).is_ok());
    }

    #[test]
    fn counter_drift_is_gated() {
        let ours = report(1, 2);
        let committed = report(1, 3).to_canonical_json();
        let err = ours.check_against(&committed).unwrap_err();
        assert!(err.contains("deviate"), "{err}");
        assert!(err.contains("walks") || err.contains('3'), "{err}");
    }

    #[test]
    fn gated_view_strips_only_wall_lines() {
        let json = report(42, 2).to_canonical_json();
        let gated = PerfReport::gated_view(&json);
        assert!(!gated.contains("wall_ns"));
        assert!(gated.contains("\"walks\": 2"));
        assert!(gated.contains("\"schema_version\": 1"));
    }
}

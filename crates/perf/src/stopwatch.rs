//! Host wall-clock stopwatch for throughput reporting.

use std::time::Instant;

/// A simple wall-clock stopwatch.
///
/// Wall time is the only non-deterministic quantity in a perf report; it is
/// *reported* (so the bench trajectory records real host throughput) but
/// never *gated* (CI compares counters only).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts a stopwatch.
    pub fn start() -> Self {
        Self {
            started: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the start (saturates at `u64::MAX`).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let mut x = 0u64;
        for i in 0..10_000u64 {
            x = x.wrapping_add(std::hint::black_box(i));
        }
        assert!(x > 0);
        let b = sw.elapsed_ns();
        assert!(b >= a);
    }
}

//! Perf accounting as an attack-event subscriber.
//!
//! The attack pipeline announces everything it does on a typed event bus
//! ([`pthammer::events`]); this module is the perf subsystem's ear on that
//! bus. Instead of re-deriving iteration counts from outcomes or
//! configuration, perf consumers subscribe a [`HammerEventTally`] and read
//! the measured numbers straight from the stream the hammer loop emitted.

use pthammer::{AttackEvent, EventSink};

use crate::counters::HammerAccounting;

/// Event-subscribing hammer tally: accumulates measured iterations and
/// their simulated cycle cost across every `HammerFinished` event of a run
/// (or of many runs, when reused across cells).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HammerEventTally {
    /// Hammer iterations observed on the bus.
    pub iterations: u64,
    /// Total simulated cycles of those iterations.
    pub sim_cycles: u64,
    /// Hammer attempts observed on the bus.
    pub attempts: u64,
    /// `VictimProfiled` events observed (one per run: the `Prepare` phase
    /// profiles the attached victim exactly once).
    pub victim_profiles: u64,
    /// `VictimAttacked` events observed (one per usable flip the `Exploit`
    /// phase drove through the victim, successful or not).
    pub victim_attacks: u64,
    /// `VictimAttacked` events whose outcome succeeded.
    pub victim_successes: u64,
}

impl HammerEventTally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Converts the tally into the canonical [`HammerAccounting`] record for
    /// a machine running at `clock_hz`.
    pub fn accounting(&self, clock_hz: f64) -> HammerAccounting {
        HammerAccounting::new(self.iterations, self.sim_cycles, clock_hz)
    }
}

impl EventSink for HammerEventTally {
    fn on_event(&mut self, event: &AttackEvent) {
        match event {
            AttackEvent::HammerFinished { stats, .. } => {
                self.iterations += stats.rounds;
                self.sim_cycles += stats.total_cycles;
            }
            AttackEvent::AttemptStarted { .. } => self.attempts += 1,
            AttackEvent::VictimProfiled { .. } => self.victim_profiles += 1,
            AttackEvent::VictimAttacked { outcome, .. } => {
                self.victim_attacks += 1;
                self.victim_successes += u64::from(outcome.success);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pthammer::{HammerPair, HammerStats};
    use pthammer_types::VirtAddr;

    #[test]
    fn tally_accumulates_hammer_events() {
        let mut tally = HammerEventTally::new();
        tally.on_event(&AttackEvent::AttemptStarted {
            attempt: 1,
            pair: HammerPair {
                low: VirtAddr::new(0x1000),
                high: VirtAddr::new(0x2000),
            },
            at_cycles: 0,
        });
        for _ in 0..2 {
            tally.on_event(&AttackEvent::HammerFinished {
                stats: HammerStats {
                    rounds: 100,
                    total_cycles: 70_000,
                    min_round_cycles: 600,
                    max_round_cycles: 800,
                    low_dram_hits: 99,
                    high_dram_hits: 98,
                    aggressor_dram_hits: 0,
                },
                implicit_touches_per_round: 2,
            });
        }
        assert_eq!(tally.attempts, 1);
        assert_eq!(tally.iterations, 200);
        assert_eq!(tally.sim_cycles, 140_000);
        let acc = tally.accounting(2.0e9);
        assert_eq!(acc.iterations, 200);
        assert_eq!(acc.cycles_per_iteration(), 700);
    }

    #[test]
    fn tally_counts_victim_lifecycle_events() {
        use pthammer::VictimOutcome;
        let mut tally = HammerEventTally::new();
        tally.on_event(&AttackEvent::VictimProfiled {
            victim: "pte-takeover",
            targets: 0,
            at_cycles: 10,
        });
        tally.on_event(&AttackEvent::VictimAttacked {
            outcome: VictimOutcome::failure("pte-takeover", "PageTableTakeover"),
            at_cycles: 20,
        });
        tally.on_event(&AttackEvent::VictimAttacked {
            outcome: VictimOutcome::escalation("pte-takeover", "PageTableTakeover", 1),
            at_cycles: 30,
        });
        assert_eq!(tally.victim_profiles, 1);
        assert_eq!(tally.victim_attacks, 2);
        assert_eq!(tally.victim_successes, 1);
    }
}

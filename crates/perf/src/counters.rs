//! Deterministic simulator counters: capture, deltas and canonical naming.

use std::collections::BTreeMap;

use pthammer_cache::CachePmc;
use pthammer_dram::DramStats;
use pthammer_machine::Machine;
use pthammer_mmu::TlbPmc;
use serde::{Deserialize, Serialize};

/// One snapshot of every deterministic hardware counter the simulator
/// maintains. Snapshots are cheap (`Copy`) and subtractable, so workloads
/// bracket their hot region with two captures and report the delta.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineCounters {
    /// Cache-hierarchy performance counters.
    pub cache: CachePmc,
    /// TLB performance counters.
    pub tlb: TlbPmc,
    /// DRAM statistics.
    pub dram: DramStats,
}

impl MachineCounters {
    /// Captures the counters of a machine.
    pub fn capture(machine: &Machine) -> Self {
        Self {
            cache: machine.cache_pmc(),
            tlb: machine.tlb_pmc(),
            dram: machine.dram_stats(),
        }
    }

    /// Difference of two snapshots (`self - earlier`), saturating at zero.
    pub fn since(&self, earlier: &MachineCounters) -> MachineCounters {
        MachineCounters {
            cache: self.cache.since(&earlier.cache),
            tlb: self.tlb.since(&earlier.tlb),
            dram: DramStats {
                accesses: self.dram.accesses.saturating_sub(earlier.dram.accesses),
                row_hits: self.dram.row_hits.saturating_sub(earlier.dram.row_hits),
                row_misses: self.dram.row_misses.saturating_sub(earlier.dram.row_misses),
                row_conflicts: self
                    .dram
                    .row_conflicts
                    .saturating_sub(earlier.dram.row_conflicts),
                activations: self
                    .dram
                    .activations
                    .saturating_sub(earlier.dram.activations),
                refresh_windows: self
                    .dram
                    .refresh_windows
                    .saturating_sub(earlier.dram.refresh_windows),
                trr_refreshes: self
                    .dram
                    .trr_refreshes
                    .saturating_sub(earlier.dram.trr_refreshes),
                flips: self.dram.flips.saturating_sub(earlier.dram.flips),
            },
        }
    }

    /// Sums another snapshot into this one (aggregating over campaign cells).
    pub fn absorb(&mut self, other: &MachineCounters) {
        self.cache.l1_accesses += other.cache.l1_accesses;
        self.cache.l1_misses += other.cache.l1_misses;
        self.cache.l2_misses += other.cache.l2_misses;
        self.cache.llc_accesses += other.cache.llc_accesses;
        self.cache.llc_misses += other.cache.llc_misses;
        self.tlb.lookups += other.tlb.lookups;
        self.tlb.l1_misses += other.tlb.l1_misses;
        self.tlb.walks += other.tlb.walks;
        self.dram.accesses += other.dram.accesses;
        self.dram.row_hits += other.dram.row_hits;
        self.dram.row_misses += other.dram.row_misses;
        self.dram.row_conflicts += other.dram.row_conflicts;
        self.dram.activations += other.dram.activations;
        self.dram.refresh_windows += other.dram.refresh_windows;
        self.dram.trr_refreshes += other.dram.trr_refreshes;
        self.dram.flips += other.dram.flips;
    }

    /// Flattens the snapshot into canonical `BENCH_perf.json` counter names.
    ///
    /// Per-level *hit* counters are derived here — and only here — so every
    /// report derives them the same way:
    /// `l1_hits = l1_accesses - l1_misses`, `l2_hits = l1_misses - l2_misses`,
    /// `llc_hits = llc_accesses - llc_misses`.
    pub fn named(&self) -> BTreeMap<String, u64> {
        let mut map = BTreeMap::new();
        let c = &self.cache;
        map.insert("accesses".to_string(), c.l1_accesses);
        map.insert("l1_hits".to_string(), c.l1_accesses - c.l1_misses);
        map.insert("l2_hits".to_string(), c.l1_misses - c.l2_misses);
        map.insert("llc_hits".to_string(), c.llc_accesses - c.llc_misses);
        map.insert("llc_misses".to_string(), c.llc_misses);
        map.insert("dram_accesses".to_string(), self.dram.accesses);
        map.insert("dram_activations".to_string(), self.dram.activations);
        map.insert("dram_row_hits".to_string(), self.dram.row_hits);
        map.insert("dram_flips".to_string(), self.dram.flips);
        map.insert("trr_refreshes".to_string(), self.dram.trr_refreshes);
        map.insert("tlb_lookups".to_string(), self.tlb.lookups);
        map.insert("tlb_l1_misses".to_string(), self.tlb.l1_misses);
        map.insert("walks".to_string(), self.tlb.walks);
        map
    }
}

/// Hammer-throughput accounting — the single place iteration counts and
/// per-iteration costs are derived from, so `repro_*` binaries, the campaign
/// harness and `perf_report` can never disagree on what an "iteration" is.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HammerAccounting {
    /// Double-sided hammer iterations actually performed (measured, not
    /// derived from configuration).
    pub iterations: u64,
    /// Total simulated cycles those iterations took.
    pub sim_cycles: u64,
    /// Nominal clock of the simulated machine in Hz.
    pub clock_hz: f64,
}

impl HammerAccounting {
    /// Creates the accounting record.
    pub fn new(iterations: u64, sim_cycles: u64, clock_hz: f64) -> Self {
        Self {
            iterations,
            sim_cycles,
            clock_hz,
        }
    }

    /// Simulated cycles per iteration (0 when no iterations ran).
    pub fn cycles_per_iteration(&self) -> u64 {
        self.sim_cycles.checked_div(self.iterations).unwrap_or(0)
    }

    /// Simulated seconds the iterations took.
    pub fn sim_seconds(&self) -> f64 {
        self.sim_cycles as f64 / self.clock_hz
    }

    /// Simulated iterations per simulated second (the paper's hammer rate).
    pub fn sim_iterations_per_second(&self) -> f64 {
        let s = self.sim_seconds();
        if s == 0.0 {
            0.0
        } else {
            self.iterations as f64 / s
        }
    }

    /// Host-side throughput: simulated iterations per host second, given the
    /// measured wall time. This is the number the ≥2× hot-path target is
    /// stated against.
    pub fn host_iterations_per_second(&self, wall_ns: u64) -> f64 {
        if wall_ns == 0 {
            0.0
        } else {
            self.iterations as f64 * 1e9 / wall_ns as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_counters_derive_hits() {
        let snap = MachineCounters {
            cache: CachePmc {
                l1_accesses: 100,
                l1_misses: 40,
                l2_misses: 25,
                llc_accesses: 25,
                llc_misses: 10,
            },
            tlb: TlbPmc {
                lookups: 60,
                l1_misses: 20,
                walks: 12,
            },
            dram: DramStats {
                accesses: 10,
                ..DramStats::default()
            },
        };
        let named = snap.named();
        assert_eq!(named["l1_hits"], 60);
        assert_eq!(named["l2_hits"], 15);
        assert_eq!(named["llc_hits"], 15);
        assert_eq!(named["walks"], 12);
        assert_eq!(named["dram_accesses"], 10);
    }

    #[test]
    fn since_and_absorb_are_inverse_ish() {
        let mut a = MachineCounters::default();
        let b = MachineCounters {
            cache: CachePmc {
                l1_accesses: 5,
                ..CachePmc::default()
            },
            tlb: TlbPmc {
                walks: 3,
                ..TlbPmc::default()
            },
            dram: DramStats {
                activations: 7,
                ..DramStats::default()
            },
        };
        a.absorb(&b);
        assert_eq!(a.since(&b), MachineCounters::default());
        assert_eq!(a, b);
    }

    #[test]
    fn hammer_accounting_rates() {
        let acc = HammerAccounting::new(1_000, 2_000_000, 2.0e9);
        assert_eq!(acc.cycles_per_iteration(), 2_000);
        assert!((acc.sim_seconds() - 1e-3).abs() < 1e-12);
        assert!((acc.sim_iterations_per_second() - 1e6).abs() < 1e-6);
        assert!((acc.host_iterations_per_second(1_000_000_000) - 1_000.0).abs() < 1e-9);
        let empty = HammerAccounting::new(0, 0, 2.0e9);
        assert_eq!(empty.cycles_per_iteration(), 0);
        assert_eq!(empty.sim_iterations_per_second(), 0.0);
        assert_eq!(empty.host_iterations_per_second(0), 0.0);
    }
}

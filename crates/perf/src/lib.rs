//! Performance subsystem for the PThammer simulator.
//!
//! Four pieces:
//!
//! * [`MachineCounters`] — one snapshot of every deterministic simulator
//!   counter (cache PMCs, TLB PMCs, DRAM statistics) with delta arithmetic,
//!   so workloads can report exactly what the simulated hardware did;
//! * [`HammerEventTally`] — an [`EventSink`](pthammer::EventSink) on the
//!   attack pipeline's event bus: iteration counts and hammer cycles are
//!   *observed* from the stream the hammer loop emits, never re-derived
//!   from outcomes or configuration;
//! * [`Stopwatch`] — host wall-clock timing for throughput measurements
//!   (wall time is *reported*, never gated: it varies run to run);
//! * [`PerfReport`] / [`WorkloadPerf`] — the canonical `BENCH_perf.json`
//!   document the `perf_report` binary emits and CI gates on.
//!
//! # `BENCH_perf.json` schema (version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "workloads": [
//!     {
//!       "name": "hammer_loop_test_small",
//!       "counters": { "<counter>": 123, ... },
//!       "wall_ns": 45678
//!     }
//!   ]
//! }
//! ```
//!
//! Workloads appear in pinned order; `counters` is an alphabetically sorted
//! map of exact, deterministic `u64` values (simulated events — never host
//! timing). `wall_ns` is the host wall-clock duration of the workload.
//! The CI gate compares the report with every `"wall_ns"` line removed
//! (see [`PerfReport::gated_view`]), so counters must match byte-for-byte
//! while wall time floats. See `PERF.md` at the repository root for the
//! refresh workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod events;
mod report;
mod stopwatch;

pub use counters::{HammerAccounting, MachineCounters};
pub use events::HammerEventTally;
pub use report::{PerfReport, WorkloadPerf, PERF_SCHEMA_VERSION};
pub use stopwatch::Stopwatch;

//! Translation-lookaside buffers (L1 dTLB, L2 sTLB, huge-page dTLB).

use core::fmt;

use serde::{Deserialize, Serialize};

use pthammer_cache::{ReplacementState, WaySlot};
use pthammer_types::{PageSize, PhysAddr, VirtAddr, HUGE_PAGE_SIZE, PAGE_SIZE};

use crate::config::{MmuConfig, TlbConfig};
use crate::pte::Pte;

/// A cached virtual-to-physical translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbEntry {
    /// Virtual page number (of the 4 KiB page or the 2 MiB superpage).
    pub vpn: u64,
    /// Base physical address of the mapped page.
    pub frame: PhysAddr,
    /// Leaf PTE that produced this translation (flags are consulted on use).
    pub pte: Pte,
    /// Size of the mapping.
    pub page_size: PageSize,
}

impl TlbEntry {
    /// Translates a full virtual address covered by this entry.
    pub fn translate(&self, vaddr: VirtAddr) -> PhysAddr {
        let offset = match self.page_size {
            PageSize::Base4K => vaddr.page_offset(),
            PageSize::Huge2M => vaddr.huge_page_offset(),
        };
        self.frame + offset
    }
}

/// Which TLB level served a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TlbLevel {
    /// L1 dTLB (4 KiB or 2 MiB).
    L1,
    /// L2 sTLB.
    L2,
}

/// TLB-related performance counters (the `dtlb_load_misses.miss_causes_a_walk`
/// event the paper's kernel module reads during Algorithm 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbPmc {
    /// Translations attempted.
    pub lookups: u64,
    /// Lookups that missed the L1 dTLB.
    pub l1_misses: u64,
    /// Lookups that missed every TLB level and caused a page-table walk.
    pub walks: u64,
}

impl TlbPmc {
    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = TlbPmc::default();
    }

    /// Difference of two snapshots (`self - earlier`).
    pub fn since(&self, earlier: &TlbPmc) -> TlbPmc {
        TlbPmc {
            lookups: self.lookups.saturating_sub(earlier.lookups),
            l1_misses: self.l1_misses.saturating_sub(earlier.l1_misses),
            walks: self.walks.saturating_sub(earlier.walks),
        }
    }
}

impl fmt::Display for TlbPmc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lookups={} l1_misses={} walks={}",
            self.lookups, self.l1_misses, self.walks
        )
    }
}

/// One way of one TLB set: the cached entry and its replacement-metadata
/// word, adjacent in memory so a set probe scans one contiguous run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct TlbSlot {
    entry: Option<TlbEntry>,
    meta: u64,
}

impl TlbSlot {
    const EMPTY: TlbSlot = TlbSlot {
        entry: None,
        meta: 0,
    };

    #[inline]
    fn holds(&self, vpn: u64) -> bool {
        matches!(self.entry, Some(e) if e.vpn == vpn)
    }
}

impl WaySlot for TlbSlot {
    #[inline]
    fn meta(&self) -> u64 {
        self.meta
    }
    #[inline]
    fn set_meta(&mut self, value: u64) {
        self.meta = value;
    }
}

/// One set-associative TLB level.
///
/// Like the flattened caches, the entry store is a single contiguous array
/// indexed by `(set, way)` — TLB lookups run on every simulated access, so
/// this layout is on the simulator's hottest path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tlb {
    config: TlbConfig,
    /// `sets * ways` slots, way-major within each set.
    slots: Vec<TlbSlot>,
    /// Per-set replacement scalars.
    states: Vec<ReplacementState>,
}

impl Tlb {
    /// Creates a TLB from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: TlbConfig, seed: u64) -> Self {
        config.validate().expect("invalid TLB configuration");
        let slots = vec![TlbSlot::EMPTY; config.sets as usize * config.ways as usize];
        let states = (0..config.sets)
            .map(|s| ReplacementState::new(seed ^ (u64::from(s) << 13) | 1))
            .collect();
        Self {
            config,
            slots,
            states,
        }
    }

    /// The configuration of this TLB.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Set index of a virtual page number (the reverse-engineered mapping the
    /// attack relies on to build congruent page sets).
    pub fn set_index(&self, vpn: u64) -> u32 {
        self.config.indexing.set_index(vpn, self.config.sets)
    }

    /// The slots of one set as a contiguous slice.
    #[inline]
    fn set_slots(&self, set: usize) -> &[TlbSlot] {
        let ways = self.config.ways as usize;
        &self.slots[set * ways..set * ways + ways]
    }

    /// Looks up `vpn`, refreshing replacement state on a hit.
    #[inline(always)]
    pub fn lookup(&mut self, vpn: u64) -> Option<TlbEntry> {
        let set = self.set_index(vpn) as usize;
        let ways = self.config.ways as usize;
        let slots = &mut self.slots[set * ways..set * ways + ways];
        let way = slots.iter().position(|slot| slot.holds(vpn))?;
        self.config
            .replacement
            .on_hit(slots, &mut self.states[set], way);
        slots[way].entry
    }

    /// Probes for `vpn` without touching replacement state.
    pub fn contains(&self, vpn: u64) -> bool {
        let set = self.set_index(vpn) as usize;
        self.set_slots(set).iter().any(|slot| slot.holds(vpn))
    }

    /// Inserts a translation, evicting a victim if the set is full. Returns
    /// the evicted entry, if any.
    #[inline]
    pub fn insert(&mut self, entry: TlbEntry) -> Option<TlbEntry> {
        let set = self.set_index(entry.vpn) as usize;
        let ways = self.config.ways as usize;
        let slots = &mut self.slots[set * ways..set * ways + ways];
        let state = &mut self.states[set];
        if let Some(way) = slots.iter().position(|slot| slot.holds(entry.vpn)) {
            slots[way].entry = Some(entry);
            self.config.replacement.on_hit(slots, state, way);
            return None;
        }
        if let Some(way) = slots.iter().position(|slot| slot.entry.is_none()) {
            slots[way].entry = Some(entry);
            self.config.replacement.on_fill(slots, state, way);
            return None;
        }
        let victim_way = self.config.replacement.choose_victim(slots, state);
        let victim = slots[victim_way].entry;
        slots[victim_way].entry = Some(entry);
        self.config.replacement.on_fill(slots, state, victim_way);
        victim
    }

    /// Inserts a translation that a lookup just missed in this TLB, skipping
    /// the presence scan of [`Tlb::insert`]. Inserting a vpn that *is*
    /// present would duplicate it; callers must only use this right after a
    /// miss (the walker's refill path).
    #[inline]
    pub fn insert_after_miss(&mut self, entry: TlbEntry) -> Option<TlbEntry> {
        debug_assert!(
            !self.contains(entry.vpn),
            "insert_after_miss on present vpn"
        );
        let set = self.set_index(entry.vpn) as usize;
        let ways = self.config.ways as usize;
        let slots = &mut self.slots[set * ways..set * ways + ways];
        let state = &mut self.states[set];
        if let Some(way) = slots.iter().position(|slot| slot.entry.is_none()) {
            slots[way].entry = Some(entry);
            self.config.replacement.on_fill(slots, state, way);
            return None;
        }
        let victim_way = self.config.replacement.choose_victim(slots, state);
        let victim = slots[victim_way].entry;
        slots[victim_way].entry = Some(entry);
        self.config.replacement.on_fill(slots, state, victim_way);
        victim
    }

    /// Removes the translation for `vpn` (models `invlpg`). Returns whether
    /// an entry was removed.
    pub fn invalidate(&mut self, vpn: u64) -> bool {
        let set = self.set_index(vpn) as usize;
        let ways = self.config.ways as usize;
        let slots = &mut self.slots[set * ways..set * ways + ways];
        if let Some(way) = slots.iter().position(|slot| slot.holds(vpn)) {
            slots[way].entry = None;
            self.config.replacement.on_invalidate(slots, way);
            true
        } else {
            false
        }
    }

    /// Removes every translation (models a CR3 write without PCID).
    pub fn flush_all(&mut self) {
        for slot in &mut self.slots {
            slot.entry = None;
        }
    }

    /// Number of valid entries currently held in `set`.
    pub fn occupancy(&self, set: u32) -> usize {
        self.set_slots(set as usize)
            .iter()
            .filter(|s| s.entry.is_some())
            .count()
    }
}

/// The full TLB hierarchy of one core: L1 dTLB (4 KiB), L1 dTLB (2 MiB) and a
/// unified L2 sTLB for 4 KiB pages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TlbHierarchy {
    l1d: Tlb,
    l1d_huge: Tlb,
    l2s: Tlb,
    pmc: TlbPmc,
}

impl TlbHierarchy {
    /// Builds the hierarchy from the MMU configuration.
    pub fn new(config: &MmuConfig) -> Self {
        Self {
            l1d: Tlb::new(config.l1_dtlb, config.seed ^ 0xA1),
            l1d_huge: Tlb::new(config.l1_dtlb_huge, config.seed ^ 0xB2),
            l2s: Tlb::new(config.l2_stlb, config.seed ^ 0xC3),
            pmc: TlbPmc::default(),
        }
    }

    /// The performance counters.
    pub fn pmc(&self) -> &TlbPmc {
        &self.pmc
    }

    /// Resets the performance counters.
    pub fn reset_pmc(&mut self) {
        self.pmc.reset();
    }

    /// The L1 dTLB for 4 KiB pages.
    pub fn l1d(&self) -> &Tlb {
        &self.l1d
    }

    /// The L2 sTLB.
    pub fn l2s(&self) -> &Tlb {
        &self.l2s
    }

    /// The L1 dTLB for 2 MiB pages.
    pub fn l1d_huge(&self) -> &Tlb {
        &self.l1d_huge
    }

    /// Looks up a virtual address. Returns the serving level and entry, or
    /// `None` when a page-table walk is required. Counts PMC events.
    #[inline(always)]
    pub fn lookup(&mut self, vaddr: VirtAddr) -> Option<(TlbLevel, TlbEntry)> {
        self.pmc.lookups += 1;
        let vpn4k = vaddr.as_u64() / PAGE_SIZE;
        let vpn_huge = vaddr.as_u64() / HUGE_PAGE_SIZE;

        if let Some(entry) = self.l1d.lookup(vpn4k) {
            return Some((TlbLevel::L1, entry));
        }
        if let Some(entry) = self.l1d_huge.lookup(vpn_huge) {
            return Some((TlbLevel::L1, entry));
        }
        self.pmc.l1_misses += 1;

        if let Some(entry) = self.l2s.lookup(vpn4k) {
            // Refill the L1 on an sTLB hit; the L1 probe above just missed,
            // so the entry is absent there.
            self.l1d.insert_after_miss(entry);
            return Some((TlbLevel::L2, entry));
        }
        self.pmc.walks += 1;
        None
    }

    /// Inserts a translation produced by a page-table walk.
    ///
    /// The walker only reaches this after [`TlbHierarchy::lookup`] missed
    /// every level for the entry's vpn, so the per-level presence scans are
    /// skipped. External callers inserting speculatively must use the
    /// individual [`Tlb::insert`] methods instead.
    pub fn insert(&mut self, entry: TlbEntry) {
        match entry.page_size {
            PageSize::Base4K => {
                self.l1d.insert_after_miss(entry);
                self.l2s.insert_after_miss(entry);
            }
            PageSize::Huge2M => {
                self.l1d_huge.insert_after_miss(entry);
            }
        }
    }

    /// Invalidates any cached translation for the page containing `vaddr`
    /// (models `invlpg`; privileged — only the kernel substrate calls this).
    pub fn invalidate(&mut self, vaddr: VirtAddr) {
        self.l1d.invalidate(vaddr.as_u64() / PAGE_SIZE);
        self.l2s.invalidate(vaddr.as_u64() / PAGE_SIZE);
        self.l1d_huge.invalidate(vaddr.as_u64() / HUGE_PAGE_SIZE);
    }

    /// Flushes every entry from every level (CR3 reload).
    pub fn flush_all(&mut self) {
        self.l1d.flush_all();
        self.l2s.flush_all();
        self.l1d_huge.flush_all();
    }

    /// Probes whether any level holds a translation for `vaddr` without
    /// updating replacement state (evaluation oracle).
    pub fn contains(&self, vaddr: VirtAddr) -> bool {
        self.l1d.contains(vaddr.as_u64() / PAGE_SIZE)
            || self.l2s.contains(vaddr.as_u64() / PAGE_SIZE)
            || self.l1d_huge.contains(vaddr.as_u64() / HUGE_PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pte::PteFlags;

    fn entry(vpn: u64) -> TlbEntry {
        let frame = PhysAddr::new((vpn % 1024) * PAGE_SIZE + 0x10_0000);
        TlbEntry {
            vpn,
            frame,
            pte: Pte::page(frame, PteFlags::user_rw()),
            page_size: PageSize::Base4K,
        }
    }

    #[test]
    fn insert_then_lookup() {
        let mut tlb = Tlb::new(TlbConfig::l1_dtlb_64(), 1);
        tlb.insert(entry(0x42));
        assert!(tlb.contains(0x42));
        assert_eq!(tlb.lookup(0x42).unwrap().vpn, 0x42);
        assert!(tlb.lookup(0x43).is_none());
    }

    #[test]
    fn insert_same_vpn_updates_in_place() {
        let mut tlb = Tlb::new(TlbConfig::l1_dtlb_64(), 1);
        tlb.insert(entry(7));
        let mut e2 = entry(7);
        e2.frame = PhysAddr::new(0x9_0000);
        assert_eq!(tlb.insert(e2), None);
        assert_eq!(tlb.lookup(7).unwrap().frame, PhysAddr::new(0x9_0000));
        assert_eq!(tlb.occupancy(tlb.set_index(7)), 1);
    }

    #[test]
    fn eviction_when_set_full() {
        let cfg = TlbConfig::l1_dtlb_64(); // 16 sets, 4 ways, linear
        let mut tlb = Tlb::new(cfg, 1);
        // 6 VPNs congruent to set 3.
        let vpns: Vec<u64> = (0..6).map(|i| 3 + i * 16).collect();
        let mut evicted = 0;
        for &vpn in &vpns {
            if tlb.insert(entry(vpn)).is_some() {
                evicted += 1;
            }
        }
        assert_eq!(evicted, 2, "6 inserts into a 4-way set evict twice");
        assert_eq!(tlb.occupancy(3), 4);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut tlb = Tlb::new(TlbConfig::l2_stlb_512(), 1);
        tlb.insert(entry(100));
        tlb.insert(entry(200));
        assert!(tlb.invalidate(100));
        assert!(!tlb.invalidate(100));
        assert!(tlb.contains(200));
        tlb.flush_all();
        assert!(!tlb.contains(200));
    }

    #[test]
    fn entry_translation_offsets() {
        let e = entry(0x42);
        let vaddr = VirtAddr::new(0x42 * PAGE_SIZE + 0x123);
        assert_eq!(e.translate(vaddr), e.frame + 0x123);

        let huge = TlbEntry {
            vpn: 3,
            frame: PhysAddr::new(3 * HUGE_PAGE_SIZE),
            pte: Pte::page(PhysAddr::new(3 * HUGE_PAGE_SIZE), PteFlags::user_rw_huge()),
            page_size: PageSize::Huge2M,
        };
        let vaddr = VirtAddr::new(3 * HUGE_PAGE_SIZE + 0x12_3456);
        assert_eq!(
            huge.translate(vaddr),
            PhysAddr::new(3 * HUGE_PAGE_SIZE + 0x12_3456)
        );
    }

    #[test]
    fn hierarchy_l1_miss_falls_back_to_l2() {
        let cfg = MmuConfig::sandy_bridge(5);
        let mut h = TlbHierarchy::new(&cfg);
        let e = entry(0x1000);
        h.insert(e);
        // Evict from the 4-way L1 set by inserting 8 more conflicting entries
        // directly into the L1 (simulating later accesses).
        for i in 1..=8u64 {
            h.l1d.insert(entry(0x1000 + i * 16));
        }
        let vaddr = VirtAddr::new(0x1000 * PAGE_SIZE + 5);
        let (level, found) = h.lookup(vaddr).expect("still in sTLB");
        assert_eq!(level, TlbLevel::L2);
        assert_eq!(found.vpn, 0x1000);
        // The hit refilled L1: next lookup hits L1.
        let (level, _) = h.lookup(vaddr).unwrap();
        assert_eq!(level, TlbLevel::L1);
    }

    #[test]
    fn hierarchy_counts_walks() {
        let cfg = MmuConfig::sandy_bridge(5);
        let mut h = TlbHierarchy::new(&cfg);
        assert!(h.lookup(VirtAddr::new(0xdead_b000)).is_none());
        assert_eq!(h.pmc().lookups, 1);
        assert_eq!(h.pmc().l1_misses, 1);
        assert_eq!(h.pmc().walks, 1);
        h.reset_pmc();
        assert_eq!(h.pmc().walks, 0);
    }

    #[test]
    fn hierarchy_huge_entries_use_huge_tlb() {
        let cfg = MmuConfig::sandy_bridge(5);
        let mut h = TlbHierarchy::new(&cfg);
        let frame = PhysAddr::new(8 * HUGE_PAGE_SIZE);
        h.insert(TlbEntry {
            vpn: 5,
            frame,
            pte: Pte::page(frame, PteFlags::user_rw_huge()),
            page_size: PageSize::Huge2M,
        });
        assert!(h.l1d_huge().contains(5));
        assert!(!h.l1d().contains(5 * 512));
        let vaddr = VirtAddr::new(5 * HUGE_PAGE_SIZE + 0x777);
        let (level, e) = h.lookup(vaddr).expect("huge TLB hit");
        assert_eq!(level, TlbLevel::L1);
        assert_eq!(e.translate(vaddr), frame + 0x777);
    }

    #[test]
    fn hierarchy_invalidate_removes_everywhere() {
        let cfg = MmuConfig::sandy_bridge(5);
        let mut h = TlbHierarchy::new(&cfg);
        let e = entry(77);
        h.insert(e);
        let vaddr = VirtAddr::new(77 * PAGE_SIZE);
        assert!(h.contains(vaddr));
        h.invalidate(vaddr);
        assert!(!h.contains(vaddr));
    }

    #[test]
    fn pmc_since_subtracts() {
        let a = TlbPmc {
            lookups: 10,
            l1_misses: 4,
            walks: 2,
        };
        let b = TlbPmc {
            lookups: 25,
            l1_misses: 9,
            walks: 5,
        };
        let d = b.since(&a);
        assert_eq!(d.lookups, 15);
        assert_eq!(d.l1_misses, 5);
        assert_eq!(d.walks, 3);
    }

    #[test]
    fn nru_tlb_needs_more_than_associativity_to_evict_reliably() {
        // The observation behind Algorithm 1: under a non-LRU policy, an
        // eviction set exactly as large as the associativity does not always
        // evict, a somewhat larger one does. We measure eviction probability
        // of a target VPN after sequentially inserting k congruent VPNs into
        // an NRU-managed TLB (available for the replacement ablation).
        let evict_rate = |k: u64| -> f64 {
            let mut evictions = 0;
            let trials = 200;
            for trial in 0..trials {
                let cfg = TlbConfig {
                    replacement: pthammer_cache::ReplacementPolicy::Nru,
                    ..TlbConfig::l1_dtlb_64()
                };
                let mut tlb = Tlb::new(cfg, trial);
                let target = 5u64;
                tlb.insert(entry(target));
                // Pre-populate the set with unrelated entries to vary state.
                for j in 0..(trial % 4) {
                    tlb.insert(entry(5 + (100 + j) * 16));
                }
                for i in 1..=k {
                    tlb.insert(entry(5 + i * 16));
                }
                if !tlb.contains(target) {
                    evictions += 1;
                }
            }
            evictions as f64 / trials as f64
        };
        let at_assoc = evict_rate(4);
        let at_8 = evict_rate(8);
        assert!(
            at_8 > 0.95,
            "8 congruent inserts should almost always evict, got {at_8}"
        );
        assert!(at_assoc <= at_8);
    }
}

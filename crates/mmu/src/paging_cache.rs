//! Paging-structure caches (PML4E, PDPTE and PDE caches).
//!
//! These small, fully-associative structures cache *partial* translations:
//! each entry maps a prefix of the virtual address to the physical address of
//! the next page-table level, letting the walker skip the upper levels.
//! PThammer depends on the PDE cache retaining the target's partial
//! translation so that a hammering iteration performs exactly one memory
//! load — the Level-1 PTE (the red path in Figure 2 of the paper).

use serde::{Deserialize, Serialize};

use pthammer_types::{PhysAddr, VirtAddr};

/// The paging-structure-cache level, named after the entry kind it caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PscLevel {
    /// Caches PDE entries: tag = VA bits 47..21, payload = L1 page-table base.
    Pde,
    /// Caches PDPTE entries: tag = VA bits 47..30, payload = PD base.
    Pdpte,
    /// Caches PML4E entries: tag = VA bits 47..39, payload = PDPT base.
    Pml4e,
}

impl PscLevel {
    /// Number of low virtual-address bits *not* covered by this cache's tag.
    pub const fn tag_shift(self) -> u32 {
        match self {
            PscLevel::Pde => 21,
            PscLevel::Pdpte => 30,
            PscLevel::Pml4e => 39,
        }
    }

    /// Extracts the tag of a virtual address for this level.
    pub fn tag_of(self, vaddr: VirtAddr) -> u64 {
        vaddr.as_u64() >> self.tag_shift()
    }

    /// The page-table level whose *base* this cache's payload points to
    /// (e.g. the PDE cache points at Level-1 page tables).
    pub const fn next_table_level(self) -> u8 {
        match self {
            PscLevel::Pde => 1,
            PscLevel::Pdpte => 2,
            PscLevel::Pml4e => 3,
        }
    }
}

/// One fully-associative, LRU paging-structure cache.
///
/// Tags live in their own dense array so the per-translation scan touches
/// the minimum number of host cache lines; payloads (next-table base, LRU
/// stamp) are looked up by index only on a hit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PagingStructureCache {
    level: PscLevel,
    capacity: usize,
    /// Tags, scanned linearly on every walk.
    tags: Vec<u64>,
    /// (next-table base, LRU stamp) per tag, same indices as `tags`.
    payloads: Vec<(PhysAddr, u64)>,
    tick: u64,
}

impl PagingStructureCache {
    /// Creates a cache for `level` holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(level: PscLevel, capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "paging-structure cache capacity must be non-zero"
        );
        Self {
            level,
            capacity,
            tags: Vec::with_capacity(capacity),
            payloads: Vec::with_capacity(capacity),
            tick: 0,
        }
    }

    /// The level this cache serves.
    pub fn level(&self) -> PscLevel {
        self.level
    }

    /// Number of currently cached entries.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Looks up the partial translation for `vaddr`, returning the physical
    /// base of the next page-table level on a hit.
    #[inline]
    pub fn lookup(&mut self, vaddr: VirtAddr) -> Option<PhysAddr> {
        let tag = self.level.tag_of(vaddr);
        self.tick += 1;
        let idx = self.tags.iter().position(|&t| t == tag)?;
        let payload = &mut self.payloads[idx];
        payload.1 = self.tick;
        Some(payload.0)
    }

    /// Probes for `vaddr` without updating LRU state.
    pub fn contains(&self, vaddr: VirtAddr) -> bool {
        let tag = self.level.tag_of(vaddr);
        self.tags.contains(&tag)
    }

    /// Inserts the partial translation for `vaddr`.
    pub fn insert(&mut self, vaddr: VirtAddr, next_table: PhysAddr) {
        let tag = self.level.tag_of(vaddr);
        self.tick += 1;
        if let Some(idx) = self.tags.iter().position(|&t| t == tag) {
            self.payloads[idx] = (next_table, self.tick);
            return;
        }
        if self.tags.len() < self.capacity {
            self.tags.push(tag);
            self.payloads.push((next_table, self.tick));
            return;
        }
        let lru = self
            .payloads
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, stamp))| *stamp)
            .map(|(i, _)| i)
            .expect("cache is non-empty");
        self.tags[lru] = tag;
        self.payloads[lru] = (next_table, self.tick);
    }

    /// Removes the entry covering `vaddr`, if present.
    pub fn invalidate(&mut self, vaddr: VirtAddr) {
        let tag = self.level.tag_of(vaddr);
        while let Some(idx) = self.tags.iter().position(|&t| t == tag) {
            self.tags.remove(idx);
            self.payloads.remove(idx);
        }
    }

    /// Removes every entry.
    pub fn flush_all(&mut self) {
        self.tags.clear();
        self.payloads.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;
    const TWO_MIB: u64 = 2 << 20;

    #[test]
    fn tags_cover_the_right_spans() {
        let level = PscLevel::Pde;
        // Two addresses in the same 2 MiB region share a PDE tag.
        assert_eq!(
            level.tag_of(VirtAddr::new(5 * TWO_MIB)),
            level.tag_of(VirtAddr::new(5 * TWO_MIB + 0x1f_ffff))
        );
        assert_ne!(
            level.tag_of(VirtAddr::new(5 * TWO_MIB)),
            level.tag_of(VirtAddr::new(6 * TWO_MIB))
        );
        // PDPTE covers 1 GiB.
        assert_eq!(
            PscLevel::Pdpte.tag_of(VirtAddr::new(3 * GIB)),
            PscLevel::Pdpte.tag_of(VirtAddr::new(3 * GIB + 512 * TWO_MIB - 1))
        );
    }

    #[test]
    fn lookup_hit_and_miss() {
        let mut c = PagingStructureCache::new(PscLevel::Pde, 4);
        let va = VirtAddr::new(7 * TWO_MIB + 0x123);
        assert_eq!(c.lookup(va), None);
        c.insert(va, PhysAddr::new(0x55_000));
        assert_eq!(
            c.lookup(VirtAddr::new(7 * TWO_MIB)),
            Some(PhysAddr::new(0x55_000))
        );
        assert!(c.contains(va));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_when_full() {
        let mut c = PagingStructureCache::new(PscLevel::Pde, 2);
        let a = VirtAddr::new(TWO_MIB);
        let b = VirtAddr::new(2 * TWO_MIB);
        let d = VirtAddr::new(3 * TWO_MIB);
        c.insert(a, PhysAddr::new(0x1000));
        c.insert(b, PhysAddr::new(0x2000));
        // Touch `a` so `b` becomes LRU.
        c.lookup(a);
        c.insert(d, PhysAddr::new(0x3000));
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn insert_existing_tag_updates_payload() {
        let mut c = PagingStructureCache::new(PscLevel::Pml4e, 4);
        let va = VirtAddr::new(0x12345 * TWO_MIB);
        c.insert(va, PhysAddr::new(0x1000));
        c.insert(va, PhysAddr::new(0x2000));
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(va), Some(PhysAddr::new(0x2000)));
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = PagingStructureCache::new(PscLevel::Pdpte, 4);
        let a = VirtAddr::new(GIB);
        let b = VirtAddr::new(2 * GIB);
        c.insert(a, PhysAddr::new(0x1000));
        c.insert(b, PhysAddr::new(0x2000));
        c.invalidate(a);
        assert!(!c.contains(a));
        assert!(c.contains(b));
        c.flush_all();
        assert!(c.is_empty());
    }

    #[test]
    fn next_table_levels() {
        assert_eq!(PscLevel::Pde.next_table_level(), 1);
        assert_eq!(PscLevel::Pdpte.next_table_level(), 2);
        assert_eq!(PscLevel::Pml4e.next_table_level(), 3);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = PagingStructureCache::new(PscLevel::Pde, 0);
    }
}

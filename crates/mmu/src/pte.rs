//! Page-table entry encoding (x86-64 long mode subset).

use core::fmt;

use serde::{Deserialize, Serialize};

use pthammer_types::PhysAddr;

/// Architectural flag bits of a page-table entry.
///
/// Only the bits relevant to the reproduction are modelled: present,
/// writable, user-accessible, the page-size bit (for 2 MiB mappings at the
/// PDE level), and no-execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PteFlags {
    /// Entry is present.
    pub present: bool,
    /// Writable.
    pub writable: bool,
    /// Accessible from user mode.
    pub user: bool,
    /// Page-size bit: at the PDE level this marks a 2 MiB mapping.
    pub huge: bool,
    /// No-execute bit.
    pub nx: bool,
}

impl PteFlags {
    /// Flags for a user-mode read/write data page.
    pub const fn user_rw() -> Self {
        Self {
            present: true,
            writable: true,
            user: true,
            huge: false,
            nx: true,
        }
    }

    /// Flags for a kernel-owned page-table node (present, writable, not user).
    pub const fn kernel_table() -> Self {
        Self {
            present: true,
            writable: true,
            user: true, // intermediate entries are user-accessible so user pages below can be reached
            huge: false,
            nx: false,
        }
    }

    /// Flags for a user-mode read/write 2 MiB superpage (set at the PDE level).
    pub const fn user_rw_huge() -> Self {
        Self {
            present: true,
            writable: true,
            user: true,
            huge: true,
            nx: true,
        }
    }

    /// A non-present entry.
    pub const fn not_present() -> Self {
        Self {
            present: false,
            writable: false,
            user: false,
            huge: false,
            nx: false,
        }
    }
}

const BIT_PRESENT: u64 = 1 << 0;
const BIT_WRITABLE: u64 = 1 << 1;
const BIT_USER: u64 = 1 << 2;
const BIT_HUGE: u64 = 1 << 7;
const BIT_NX: u64 = 1 << 63;
/// Physical-frame field: bits 12..48.
const FRAME_MASK: u64 = 0x0000_FFFF_FFFF_F000;

/// A single 64-bit page-table entry.
///
/// The raw encoding matters for this reproduction: rowhammer flips single
/// bits of these words in DRAM, and the attack succeeds precisely when a flip
/// inside the frame field redirects a Level-1 PTE to a different frame
/// (Figure 7 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Pte(u64);

impl Pte {
    /// Creates a PTE from its raw 64-bit encoding.
    pub const fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw 64-bit encoding.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// An all-zero, non-present entry.
    pub const fn empty() -> Self {
        Self(0)
    }

    /// Creates an entry pointing at the next-level table at `table`.
    ///
    /// # Panics
    ///
    /// Panics if `table` is not 4 KiB aligned.
    pub fn table(table: PhysAddr) -> Self {
        assert_eq!(table.page_offset(), 0, "table frames must be page aligned");
        Self::compose(table, PteFlags::kernel_table())
    }

    /// Creates a leaf entry mapping `frame` with `flags`.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is not aligned to the mapping size implied by
    /// `flags.huge`.
    pub fn page(frame: PhysAddr, flags: PteFlags) -> Self {
        if flags.huge {
            assert_eq!(
                frame.as_u64() % (2 * 1024 * 1024),
                0,
                "huge mappings must be 2 MiB aligned"
            );
        } else {
            assert_eq!(frame.page_offset(), 0, "mapped frames must be page aligned");
        }
        Self::compose(frame, flags)
    }

    fn compose(frame: PhysAddr, flags: PteFlags) -> Self {
        let mut raw = frame.as_u64() & FRAME_MASK;
        if flags.present {
            raw |= BIT_PRESENT;
        }
        if flags.writable {
            raw |= BIT_WRITABLE;
        }
        if flags.user {
            raw |= BIT_USER;
        }
        if flags.huge {
            raw |= BIT_HUGE;
        }
        if flags.nx {
            raw |= BIT_NX;
        }
        Self(raw)
    }

    /// Whether the entry is present.
    pub const fn present(self) -> bool {
        self.0 & BIT_PRESENT != 0
    }

    /// Whether the entry is writable.
    pub const fn writable(self) -> bool {
        self.0 & BIT_WRITABLE != 0
    }

    /// Whether the entry is user-accessible.
    pub const fn user(self) -> bool {
        self.0 & BIT_USER != 0
    }

    /// Whether the page-size bit is set (2 MiB mapping at the PDE level).
    pub const fn huge(self) -> bool {
        self.0 & BIT_HUGE != 0
    }

    /// Whether the no-execute bit is set.
    pub const fn nx(self) -> bool {
        self.0 & BIT_NX != 0
    }

    /// Physical address of the referenced frame or next-level table.
    pub const fn frame(self) -> PhysAddr {
        PhysAddr::new(self.0 & FRAME_MASK)
    }

    /// The decoded flags.
    pub const fn flags(self) -> PteFlags {
        PteFlags {
            present: self.present(),
            writable: self.writable(),
            user: self.user(),
            huge: self.huge(),
            nx: self.nx(),
        }
    }
}

impl fmt::Display for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PTE[{:#x} frame={} P={} W={} U={} PS={}]",
            self.0,
            self.frame(),
            self.present() as u8,
            self.writable() as u8,
            self.user() as u8,
            self.huge() as u8
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table_entry_roundtrip() {
        let pte = Pte::table(PhysAddr::new(0x1234_5000));
        assert!(pte.present());
        assert!(pte.writable());
        assert!(pte.user());
        assert!(!pte.huge());
        assert_eq!(pte.frame(), PhysAddr::new(0x1234_5000));
    }

    #[test]
    fn page_entry_flags() {
        let pte = Pte::page(PhysAddr::new(0x7000), PteFlags::user_rw());
        assert!(pte.present() && pte.user() && pte.writable() && pte.nx());
        assert!(!pte.huge());
        assert_eq!(pte.frame(), PhysAddr::new(0x7000));
    }

    #[test]
    fn huge_page_entry() {
        let pte = Pte::page(PhysAddr::new(0x40_0000), PteFlags::user_rw_huge());
        assert!(pte.huge());
        assert_eq!(pte.frame(), PhysAddr::new(0x40_0000));
    }

    #[test]
    #[should_panic(expected = "2 MiB aligned")]
    fn misaligned_huge_page_rejected() {
        let _ = Pte::page(PhysAddr::new(0x1000), PteFlags::user_rw_huge());
    }

    #[test]
    #[should_panic(expected = "page aligned")]
    fn misaligned_table_rejected() {
        let _ = Pte::table(PhysAddr::new(0x1234));
    }

    #[test]
    fn empty_entry_is_not_present() {
        assert!(!Pte::empty().present());
        assert!(!Pte::from_raw(0).present());
    }

    #[test]
    fn single_bit_flip_in_frame_field_changes_frame() {
        // The core exploit mechanism: flipping one bit of the frame field
        // makes the PTE point somewhere else while staying present.
        let original = Pte::page(PhysAddr::new(0x0123_4000), PteFlags::user_rw());
        let flipped = Pte::from_raw(original.raw() ^ (1 << 20));
        assert!(flipped.present());
        assert_ne!(flipped.frame(), original.frame());
        assert_eq!(
            flipped.frame().as_u64() ^ original.frame().as_u64(),
            1 << 20
        );
    }

    #[test]
    fn display_contains_frame() {
        let pte = Pte::page(PhysAddr::new(0x9000), PteFlags::user_rw());
        assert!(pte.to_string().contains("frame=PA:"));
    }

    proptest! {
        #[test]
        fn prop_flags_roundtrip(frame in 0u64..(1u64 << 34), present in any::<bool>(), writable in any::<bool>(), user in any::<bool>(), nx in any::<bool>()) {
            let frame = PhysAddr::new(frame * 4096 % (1u64 << 46));
            let flags = PteFlags { present, writable, user, huge: false, nx };
            let pte = Pte::compose(frame, flags);
            prop_assert_eq!(pte.flags(), flags);
            prop_assert_eq!(pte.frame(), frame);
        }
    }
}

//! MMU configuration: TLB organisations and paging-structure cache sizes.

use serde::{Deserialize, Serialize};

use pthammer_cache::ReplacementPolicy;

/// How virtual page numbers map to TLB sets.
///
/// Gras et al. (USENIX Security 2018) reverse engineered these functions; the
/// attack relies on them to construct congruent page sets. Both TLB levels of
/// the modelled Sandy Bridge / Ivy Bridge machines use a linear index (newer
/// parts XOR-fold the sTLB index; [`TlbIndexing::XorFold`] is provided for
/// that ablation). Because an eviction set must displace the target from both
/// levels, its minimal size exceeds a single level's associativity
/// (Figure 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TlbIndexing {
    /// `set = vpn mod sets`.
    Linear,
    /// `set = (vpn XOR (vpn >> log2(sets))) mod sets`.
    XorFold,
}

impl TlbIndexing {
    /// Computes the set index for a virtual page number.
    #[inline]
    pub fn set_index(self, vpn: u64, sets: u32) -> u32 {
        let sets64 = u64::from(sets);
        let folded = match self {
            TlbIndexing::Linear => vpn,
            TlbIndexing::XorFold => vpn ^ (vpn >> sets.trailing_zeros()),
        };
        // TLB set counts are powers of two in practice; masking avoids a
        // hardware division on the per-access hot path.
        if sets.is_power_of_two() {
            (folded & (sets64 - 1)) as u32
        } else {
            (folded % sets64) as u32
        }
    }
}

/// Configuration of one TLB level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Number of sets.
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
    /// Set-index function.
    pub indexing: TlbIndexing,
    /// Replacement policy. The presets use LRU; NRU and Random are available
    /// for the replacement-policy ablation study.
    pub replacement: ReplacementPolicy,
}

impl TlbConfig {
    /// 64-entry, 4-way L1 dTLB for 4 KiB pages (Table I machines).
    pub const fn l1_dtlb_64() -> Self {
        Self {
            sets: 16,
            ways: 4,
            indexing: TlbIndexing::Linear,
            replacement: ReplacementPolicy::Nru,
        }
    }

    /// 512-entry, 4-way L2 sTLB for 4 KiB pages (Table I machines).
    pub const fn l2_stlb_512() -> Self {
        Self {
            sets: 128,
            ways: 4,
            indexing: TlbIndexing::Linear,
            replacement: ReplacementPolicy::Nru,
        }
    }

    /// 32-entry, 4-way L1 dTLB for 2 MiB pages.
    pub const fn l1_dtlb_huge_32() -> Self {
        Self {
            sets: 8,
            ways: 4,
            indexing: TlbIndexing::Linear,
            replacement: ReplacementPolicy::Nru,
        }
    }

    /// Total number of entries.
    pub const fn entries(&self) -> u32 {
        self.sets * self.ways
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.sets == 0 || !self.sets.is_power_of_two() {
            return Err(format!(
                "TLB sets must be a power of two, got {}",
                self.sets
            ));
        }
        if self.ways == 0 {
            return Err("TLB associativity must be non-zero".to_string());
        }
        Ok(())
    }
}

/// Sizes of the paging-structure caches (fully associative, LRU).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PagingCacheConfig {
    /// PDE-cache entries (each covers 2 MiB of VA and skips to the L1 PT).
    pub pde_entries: u32,
    /// PDPTE-cache entries (each covers 1 GiB of VA).
    pub pdpte_entries: u32,
    /// PML4E-cache entries (each covers 512 GiB of VA).
    pub pml4e_entries: u32,
}

impl PagingCacheConfig {
    /// Sandy Bridge-like sizes.
    pub const fn sandy_bridge() -> Self {
        Self {
            pde_entries: 32,
            pdpte_entries: 8,
            pml4e_entries: 4,
        }
    }
}

/// Complete MMU configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MmuConfig {
    /// L1 dTLB for 4 KiB pages.
    pub l1_dtlb: TlbConfig,
    /// L2 sTLB for 4 KiB pages.
    pub l2_stlb: TlbConfig,
    /// L1 dTLB for 2 MiB pages.
    pub l1_dtlb_huge: TlbConfig,
    /// Paging-structure cache sizes.
    pub paging_caches: PagingCacheConfig,
    /// Cycles charged for a TLB lookup.
    pub tlb_lookup_latency: u32,
    /// Extra cycles charged when the lookup falls through to the L2 sTLB.
    pub stlb_lookup_latency: u32,
    /// Fixed per-level overhead of the hardware walker, on top of the memory
    /// accesses it performs.
    pub walk_step_latency: u32,
    /// Seed for deterministic replacement randomness.
    pub seed: u64,
}

impl MmuConfig {
    /// Sandy Bridge / Ivy Bridge-like MMU (Table I machines).
    pub const fn sandy_bridge(seed: u64) -> Self {
        Self {
            l1_dtlb: TlbConfig::l1_dtlb_64(),
            l2_stlb: TlbConfig::l2_stlb_512(),
            l1_dtlb_huge: TlbConfig::l1_dtlb_huge_32(),
            paging_caches: PagingCacheConfig::sandy_bridge(),
            tlb_lookup_latency: 1,
            stlb_lookup_latency: 6,
            walk_step_latency: 2,
            seed,
        }
    }

    /// Validates every component.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid component.
    pub fn validate(&self) -> Result<(), String> {
        self.l1_dtlb.validate()?;
        self.l2_stlb.validate()?;
        self.l1_dtlb_huge.validate()?;
        if self.paging_caches.pde_entries == 0 {
            return Err("PDE cache must have at least one entry".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_tlb_sizes() {
        assert_eq!(TlbConfig::l1_dtlb_64().entries(), 64);
        assert_eq!(TlbConfig::l2_stlb_512().entries(), 512);
        assert_eq!(TlbConfig::l1_dtlb_64().ways, 4);
        assert_eq!(TlbConfig::l2_stlb_512().ways, 4);
    }

    #[test]
    fn presets_validate() {
        assert!(MmuConfig::sandy_bridge(1).validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut cfg = MmuConfig::sandy_bridge(1);
        cfg.l1_dtlb.sets = 3;
        assert!(cfg.validate().is_err());
        let mut cfg = MmuConfig::sandy_bridge(1);
        cfg.paging_caches.pde_entries = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn linear_indexing_is_modulo() {
        assert_eq!(TlbIndexing::Linear.set_index(0, 16), 0);
        assert_eq!(TlbIndexing::Linear.set_index(17, 16), 1);
        assert_eq!(TlbIndexing::Linear.set_index(255, 16), 15);
    }

    #[test]
    fn xor_fold_differs_from_linear() {
        // Two VPNs congruent mod 128 need not be congruent under the XOR fold.
        let a = 0u64;
        let b = 128u64;
        assert_eq!(
            TlbIndexing::Linear.set_index(a, 128),
            TlbIndexing::Linear.set_index(b, 128)
        );
        assert_ne!(
            TlbIndexing::XorFold.set_index(a, 128),
            TlbIndexing::XorFold.set_index(b, 128)
        );
    }

    #[test]
    fn set_indices_in_range() {
        for vpn in 0..10_000u64 {
            assert!(TlbIndexing::Linear.set_index(vpn, 16) < 16);
            assert!(TlbIndexing::XorFold.set_index(vpn, 128) < 128);
        }
    }
}

//! Simulated MMU for the PThammer reproduction: TLBs, paging-structure
//! caches, and the 4-level page-table walker that acts as PThammer's
//! confused deputy.
//!
//! The translation path mirrors Figure 2 of the paper: a lookup first probes
//! the L1 dTLB and L2 sTLB; on a miss it consults the PDE / PDPTE / PML4E
//! paging-structure caches to skip part of the walk; whatever remains of the
//! walk issues *implicit physical loads* of page-table entries through the
//! cache hierarchy and, when those lines are not cached, from DRAM. PThammer
//! arranges for exactly one such load — the Level-1 PTE — to reach DRAM on
//! every hammering iteration.
//!
//! # Examples
//!
//! ```
//! use pthammer_mmu::{Mmu, MmuConfig, PteFlags, Pte};
//! use pthammer_types::{PhysAddr, VirtAddr, PhysicalMemoryAccess, MemAccessOutcome, Cycles, MemoryLevel};
//! use std::collections::HashMap;
//!
//! // A trivial flat physical memory for the walker to read page tables from.
//! struct FlatMem(HashMap<u64, u64>);
//! impl PhysicalMemoryAccess for FlatMem {
//!     fn load_qword(&mut self, paddr: PhysAddr) -> (u64, MemAccessOutcome) {
//!         let v = *self.0.get(&paddr.as_u64()).unwrap_or(&0);
//!         (v, MemAccessOutcome::cache_hit(paddr, MemoryLevel::L1, Cycles::new(4)))
//!     }
//!     fn store_qword(&mut self, paddr: PhysAddr, value: u64) -> MemAccessOutcome {
//!         self.0.insert(paddr.as_u64(), value);
//!         MemAccessOutcome::cache_hit(paddr, MemoryLevel::L1, Cycles::new(4))
//!     }
//! }
//!
//! // Build a one-page mapping: VA 0x1000 -> PA 0x5000.
//! let mut mem = FlatMem(HashMap::new());
//! let cr3 = PhysAddr::new(0x10_000);
//! let pdpt = 0x11_000u64;
//! let pd = 0x12_000u64;
//! let pt = 0x13_000u64;
//! mem.0.insert(cr3.as_u64(), Pte::table(PhysAddr::new(pdpt)).raw());
//! mem.0.insert(pdpt, Pte::table(PhysAddr::new(pd)).raw());
//! mem.0.insert(pd, Pte::table(PhysAddr::new(pt)).raw());
//! mem.0.insert(pt + 8, Pte::page(PhysAddr::new(0x5000), PteFlags::user_rw()).raw());
//!
//! let mut mmu = Mmu::new(MmuConfig::sandy_bridge(1));
//! let res = mmu.translate(cr3, VirtAddr::new(0x1234), &mut mem);
//! assert_eq!(res.paddr, Some(PhysAddr::new(0x5234)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod paging_cache;
mod pte;
mod tlb;
mod translate;

pub use config::{MmuConfig, PagingCacheConfig, TlbConfig, TlbIndexing};
pub use paging_cache::{PagingStructureCache, PscLevel};
pub use pte::{Pte, PteFlags};
pub use tlb::{Tlb, TlbEntry, TlbHierarchy, TlbLevel, TlbPmc};
pub use translate::{Mmu, PageFault, TouchTranslation, TranslationResult, WalkLoad, WalkLoads};

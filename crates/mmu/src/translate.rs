//! The MMU proper: TLB lookup, paging-structure-cache consultation and the
//! hardware page-table walk (Figure 2 of the paper).

use serde::{Deserialize, Serialize};

use pthammer_types::{
    Cycles, MemAccessOutcome, MemoryLevel, PageSize, PhysAddr, PhysicalMemoryAccess, VirtAddr,
    PTE_SIZE,
};

use crate::{
    config::MmuConfig,
    paging_cache::{PagingStructureCache, PscLevel},
    pte::Pte,
    tlb::{TlbEntry, TlbHierarchy, TlbLevel},
};

/// One page-table-entry load issued by the hardware walker.
///
/// These are the *implicit accesses* PThammer turns into hammer blows: when
/// the Level-1 PTE load is served by DRAM (`outcome.served_by == Dram`), the
/// DRAM row holding the victim process's page table is activated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalkLoad {
    /// Page-table level of the entry (4 = PML4E … 1 = PTE).
    pub level: u8,
    /// Physical address of the entry that was loaded.
    pub entry_paddr: PhysAddr,
    /// Memory-hierarchy outcome of the load.
    pub outcome: MemAccessOutcome,
    /// The entry value that was read.
    pub value: Pte,
}

/// A translation fault (non-present entry encountered during the walk).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageFault {
    /// Faulting virtual address.
    pub vaddr: VirtAddr,
    /// Page-table level at which the walk found a non-present entry.
    pub level: u8,
}

/// The page-table-entry loads of one walk, stored inline (a 4-level walk
/// loads at most four entries) so the translation hot path never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalkLoads {
    loads: [Option<WalkLoad>; 4],
    len: u8,
}

impl WalkLoads {
    /// Number of recorded loads.
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// True when the walk performed no loads (TLB hit).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the recorded loads in walk order.
    pub fn iter(&self) -> impl Iterator<Item = &WalkLoad> {
        self.loads[..usize::from(self.len)]
            .iter()
            .map(|slot| slot.as_ref().expect("recorded slot"))
    }

    #[inline]
    fn push(&mut self, load: WalkLoad) {
        self.loads[usize::from(self.len)] = Some(load);
        self.len += 1;
    }
}

impl core::ops::Index<usize> for WalkLoads {
    type Output = WalkLoad;

    fn index(&self, index: usize) -> &WalkLoad {
        assert!(index < self.len(), "walk load index out of range");
        self.loads[index].as_ref().expect("recorded slot")
    }
}

/// The complete result of translating one virtual address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslationResult {
    /// Translated physical address, or `None` if the walk faulted.
    pub paddr: Option<PhysAddr>,
    /// Fault information when `paddr` is `None`.
    pub fault: Option<PageFault>,
    /// Size of the mapping that served the translation.
    pub page_size: PageSize,
    /// Total translation latency (TLB lookups + walk).
    pub latency: Cycles,
    /// TLB level that served the translation, if any.
    pub tlb_hit: Option<TlbLevel>,
    /// Paging-structure cache that provided a partial translation, if any.
    pub psc_hit: Option<PscLevel>,
    /// Page-table-entry loads performed by the walker (empty on a TLB hit).
    pub walk_loads: WalkLoads,
}

/// The slim result of [`Mmu::translate_touch`]: what a batched touch needs
/// and nothing more, so the hot path moves ~40 bytes instead of the full
/// [`TranslationResult`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TouchTranslation {
    /// Translated physical address, or `None` if the walk faulted.
    pub paddr: Option<PhysAddr>,
    /// Fault information when `paddr` is `None`.
    pub fault: Option<PageFault>,
    /// Total translation latency (TLB lookups + walk).
    pub latency: Cycles,
    /// Whether the walk loaded the Level-1 PTE from DRAM (the implicit
    /// hammer blow).
    pub l1pte_from_dram: bool,
}

impl TranslationResult {
    /// True when the walk loaded exactly one entry and it was the Level-1 PTE —
    /// the efficient implicit-access path PThammer engineers (red arrows in
    /// Figure 2).
    pub fn is_l1pte_only_walk(&self) -> bool {
        self.walk_loads.len() == 1 && self.walk_loads[0].level == 1
    }

    /// The Level-1 PTE load of this translation, if the walk reached level 1.
    pub fn l1pte_load(&self) -> Option<&WalkLoad> {
        self.walk_loads.iter().find(|l| l.level == 1)
    }
}

/// The memory-management unit of one core.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mmu {
    config: MmuConfig,
    tlbs: TlbHierarchy,
    pde_cache: PagingStructureCache,
    pdpte_cache: PagingStructureCache,
    pml4e_cache: PagingStructureCache,
}

impl Mmu {
    /// Creates an MMU from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: MmuConfig) -> Self {
        config.validate().expect("invalid MMU configuration");
        Self {
            tlbs: TlbHierarchy::new(&config),
            pde_cache: PagingStructureCache::new(
                PscLevel::Pde,
                config.paging_caches.pde_entries as usize,
            ),
            pdpte_cache: PagingStructureCache::new(
                PscLevel::Pdpte,
                config.paging_caches.pdpte_entries as usize,
            ),
            pml4e_cache: PagingStructureCache::new(
                PscLevel::Pml4e,
                config.paging_caches.pml4e_entries as usize,
            ),
            config,
        }
    }

    /// The configuration of this MMU.
    pub fn config(&self) -> &MmuConfig {
        &self.config
    }

    /// The TLB hierarchy (read access, e.g. for the evaluation oracle).
    pub fn tlbs(&self) -> &TlbHierarchy {
        &self.tlbs
    }

    /// The PDE paging-structure cache (read access for tests / oracle).
    pub fn pde_cache(&self) -> &PagingStructureCache {
        &self.pde_cache
    }

    /// Invalidates all cached translation state for the page containing
    /// `vaddr` (TLBs and paging-structure caches). Models `invlpg`; only the
    /// kernel substrate uses this.
    pub fn invalidate_page(&mut self, vaddr: VirtAddr) {
        self.tlbs.invalidate(vaddr);
        self.pde_cache.invalidate(vaddr);
        self.pdpte_cache.invalidate(vaddr);
        self.pml4e_cache.invalidate(vaddr);
    }

    /// Flushes every TLB entry and paging-structure cache entry (CR3 reload).
    pub fn flush_all(&mut self) {
        self.tlbs.flush_all();
        self.pde_cache.flush_all();
        self.pdpte_cache.flush_all();
        self.pml4e_cache.flush_all();
    }

    /// Translates `vaddr` under the address space rooted at `cr3`, issuing
    /// any required page-table loads through `mem`.
    pub fn translate(
        &mut self,
        cr3: PhysAddr,
        vaddr: VirtAddr,
        mem: &mut impl PhysicalMemoryAccess,
    ) -> TranslationResult {
        let mut walk_loads = WalkLoads::default();
        let core = self.translate_core(cr3, vaddr, mem, &mut |load| walk_loads.push(load));
        TranslationResult {
            paddr: core.paddr,
            fault: core.fault,
            page_size: core.page_size,
            latency: core.latency,
            tlb_hit: core.tlb_hit,
            psc_hit: core.psc_hit,
            walk_loads,
        }
    }

    /// Slim translation for batched touches: performs exactly the same TLB,
    /// paging-structure-cache and page-table-load sequence as
    /// [`Mmu::translate`] — the simulated state transitions are identical —
    /// but records no walk loads and returns only the [`TouchTranslation`]
    /// the batch driver needs. This is the walker entry point of the
    /// eviction-set hot path.
    pub fn translate_touch(
        &mut self,
        cr3: PhysAddr,
        vaddr: VirtAddr,
        mem: &mut impl PhysicalMemoryAccess,
    ) -> TouchTranslation {
        let core = self.translate_core(cr3, vaddr, mem, &mut |_| {});
        TouchTranslation {
            paddr: core.paddr,
            fault: core.fault,
            latency: core.latency,
            l1pte_from_dram: core.l1pte_from_dram,
        }
    }

    /// The shared translation engine behind [`Mmu::translate`] and
    /// [`Mmu::translate_touch`]; `record` observes every page-table load.
    #[inline]
    fn translate_core(
        &mut self,
        cr3: PhysAddr,
        vaddr: VirtAddr,
        mem: &mut impl PhysicalMemoryAccess,
        record: &mut impl FnMut(WalkLoad),
    ) -> CoreTranslation {
        let mut latency = Cycles::new(u64::from(self.config.tlb_lookup_latency));

        if let Some((level, entry)) = self.tlbs.lookup(vaddr) {
            if level == TlbLevel::L2 {
                latency += Cycles::new(u64::from(self.config.stlb_lookup_latency));
            }
            return CoreTranslation {
                paddr: Some(entry.translate(vaddr)),
                fault: None,
                page_size: entry.page_size,
                latency,
                tlb_hit: Some(level),
                psc_hit: None,
                l1pte_from_dram: false,
            };
        }
        // Both TLB levels were probed before declaring a walk.
        latency += Cycles::new(u64::from(self.config.stlb_lookup_latency));

        // Consult the paging-structure caches, nearest-to-leaf first.
        let (mut level, mut table_base, psc_hit) = if let Some(pt) = self.pde_cache.lookup(vaddr) {
            (1u8, pt, Some(PscLevel::Pde))
        } else if let Some(pd) = self.pdpte_cache.lookup(vaddr) {
            (2u8, pd, Some(PscLevel::Pdpte))
        } else if let Some(pdpt) = self.pml4e_cache.lookup(vaddr) {
            (3u8, pdpt, Some(PscLevel::Pml4e))
        } else {
            (4u8, cr3, None)
        };

        let mut l1pte_from_dram = false;
        loop {
            let entry_paddr = table_base + vaddr.pt_index(level) * PTE_SIZE;
            let (raw, outcome) = mem.load_qword(entry_paddr);
            let value = Pte::from_raw(raw);
            latency += outcome.latency;
            latency += Cycles::new(u64::from(self.config.walk_step_latency));
            if level == 1 {
                l1pte_from_dram = outcome.served_by == MemoryLevel::Dram;
            }
            record(WalkLoad {
                level,
                entry_paddr,
                outcome,
                value,
            });

            if !value.present() {
                return CoreTranslation {
                    paddr: None,
                    fault: Some(PageFault { vaddr, level }),
                    page_size: PageSize::Base4K,
                    latency,
                    tlb_hit: None,
                    psc_hit,
                    l1pte_from_dram,
                };
            }

            if level == 2 && value.huge() {
                let frame = value.frame();
                let entry = TlbEntry {
                    vpn: vaddr.as_u64() / PageSize::Huge2M.bytes(),
                    frame,
                    pte: value,
                    page_size: PageSize::Huge2M,
                };
                self.tlbs.insert(entry);
                return CoreTranslation {
                    paddr: Some(frame + vaddr.huge_page_offset()),
                    fault: None,
                    page_size: PageSize::Huge2M,
                    latency,
                    tlb_hit: None,
                    psc_hit,
                    l1pte_from_dram,
                };
            }

            if level == 1 {
                let frame = value.frame();
                let entry = TlbEntry {
                    vpn: vaddr.page_number(),
                    frame,
                    pte: value,
                    page_size: PageSize::Base4K,
                };
                self.tlbs.insert(entry);
                return CoreTranslation {
                    paddr: Some(frame + vaddr.page_offset()),
                    fault: None,
                    page_size: PageSize::Base4K,
                    latency,
                    tlb_hit: None,
                    psc_hit,
                    l1pte_from_dram,
                };
            }

            // Intermediate level: cache the partial translation and descend.
            match level {
                4 => self.pml4e_cache.insert(vaddr, value.frame()),
                3 => self.pdpte_cache.insert(vaddr, value.frame()),
                2 => self.pde_cache.insert(vaddr, value.frame()),
                _ => unreachable!("levels below 2 are handled above"),
            }
            table_base = value.frame();
            level -= 1;
        }
    }
}

/// Internal result of the shared translation engine.
#[derive(Debug, Clone, Copy)]
struct CoreTranslation {
    paddr: Option<PhysAddr>,
    fault: Option<PageFault>,
    page_size: PageSize,
    latency: Cycles,
    tlb_hit: Option<TlbLevel>,
    psc_hit: Option<PscLevel>,
    l1pte_from_dram: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pte::PteFlags;
    use pthammer_types::{MemoryLevel, PAGE_SIZE};
    use std::collections::HashMap;

    /// Flat qword-addressed test memory with fixed latency.
    struct FlatMem {
        words: HashMap<u64, u64>,
        latency: u64,
        loads: Vec<PhysAddr>,
    }

    impl FlatMem {
        fn new() -> Self {
            Self {
                words: HashMap::new(),
                latency: 10,
                loads: Vec::new(),
            }
        }

        fn write(&mut self, paddr: u64, value: u64) {
            self.words.insert(paddr, value);
        }
    }

    impl PhysicalMemoryAccess for FlatMem {
        fn load_qword(&mut self, paddr: PhysAddr) -> (u64, MemAccessOutcome) {
            self.loads.push(paddr);
            let v = *self.words.get(&paddr.as_u64()).unwrap_or(&0);
            (
                v,
                MemAccessOutcome::cache_hit(paddr, MemoryLevel::Dram, Cycles::new(self.latency)),
            )
        }
        fn store_qword(&mut self, paddr: PhysAddr, value: u64) -> MemAccessOutcome {
            self.words.insert(paddr.as_u64(), value);
            MemAccessOutcome::cache_hit(paddr, MemoryLevel::L1, Cycles::new(self.latency))
        }
    }

    const CR3: u64 = 0x100_000;
    const PDPT: u64 = 0x101_000;
    const PD: u64 = 0x102_000;
    const PT: u64 = 0x103_000;

    /// Builds a 4-level mapping for `vaddr` -> `frame` in the flat memory.
    fn map_page(mem: &mut FlatMem, vaddr: VirtAddr, frame: u64) {
        mem.write(
            CR3 + vaddr.pt_index(4) * 8,
            Pte::table(PhysAddr::new(PDPT)).raw(),
        );
        mem.write(
            PDPT + vaddr.pt_index(3) * 8,
            Pte::table(PhysAddr::new(PD)).raw(),
        );
        mem.write(
            PD + vaddr.pt_index(2) * 8,
            Pte::table(PhysAddr::new(PT)).raw(),
        );
        mem.write(
            PT + vaddr.pt_index(1) * 8,
            Pte::page(PhysAddr::new(frame), PteFlags::user_rw()).raw(),
        );
    }

    fn mmu() -> Mmu {
        Mmu::new(MmuConfig::sandy_bridge(3))
    }

    #[test]
    fn full_walk_then_tlb_hit() {
        let mut mem = FlatMem::new();
        let vaddr = VirtAddr::new(0x40_0000_1234);
        map_page(&mut mem, vaddr, 0x7_0000);
        let mut mmu = mmu();

        let first = mmu.translate(PhysAddr::new(CR3), vaddr, &mut mem);
        // Page offset of 0x...1234 within its 4 KiB page is 0x234.
        assert_eq!(first.paddr, Some(PhysAddr::new(0x7_0234)));
        assert_eq!(first.tlb_hit, None);
        assert_eq!(first.psc_hit, None);
        assert_eq!(first.walk_loads.len(), 4);
        assert_eq!(
            first.walk_loads.iter().map(|l| l.level).collect::<Vec<_>>(),
            vec![4, 3, 2, 1]
        );

        let second = mmu.translate(PhysAddr::new(CR3), vaddr, &mut mem);
        assert_eq!(second.paddr, first.paddr);
        assert_eq!(second.tlb_hit, Some(TlbLevel::L1));
        assert!(second.walk_loads.is_empty());
        assert!(second.latency < first.latency);
    }

    #[test]
    fn pde_cache_shortcuts_walk_to_l1pte_only() {
        let mut mem = FlatMem::new();
        let base = 0x40_0000_0000u64;
        let a = VirtAddr::new(base);
        let b = VirtAddr::new(base + PAGE_SIZE); // same 2 MiB region, different L1PTE
        map_page(&mut mem, a, 0x7_0000);
        map_page(&mut mem, b, 0x8_0000);
        let mut mmu = mmu();

        // First translation warms the paging-structure caches.
        mmu.translate(PhysAddr::new(CR3), a, &mut mem);
        // Second translation of a *different page in the same PD entry* should
        // only load the Level-1 PTE — the PThammer fast path.
        let res = mmu.translate(PhysAddr::new(CR3), b, &mut mem);
        assert_eq!(res.paddr, Some(PhysAddr::new(0x8_0000)));
        assert_eq!(res.psc_hit, Some(PscLevel::Pde));
        assert!(res.is_l1pte_only_walk(), "walk loads: {:?}", res.walk_loads);
        assert_eq!(res.l1pte_load().unwrap().entry_paddr, PhysAddr::new(PT + 8));
    }

    #[test]
    fn invalidate_page_forces_new_walk() {
        let mut mem = FlatMem::new();
        let vaddr = VirtAddr::new(0x1234_5000);
        map_page(&mut mem, vaddr, 0x9_0000);
        let mut mmu = mmu();
        mmu.translate(PhysAddr::new(CR3), vaddr, &mut mem);
        mmu.invalidate_page(vaddr);
        let res = mmu.translate(PhysAddr::new(CR3), vaddr, &mut mem);
        assert_eq!(res.tlb_hit, None);
        assert!(!res.walk_loads.is_empty());
    }

    #[test]
    fn fault_on_non_present_entry() {
        let mut mem = FlatMem::new();
        let vaddr = VirtAddr::new(0x5000_0000);
        // Only map down to the PD level; leave the PTE absent.
        mem.write(
            CR3 + vaddr.pt_index(4) * 8,
            Pte::table(PhysAddr::new(PDPT)).raw(),
        );
        mem.write(
            PDPT + vaddr.pt_index(3) * 8,
            Pte::table(PhysAddr::new(PD)).raw(),
        );
        mem.write(
            PD + vaddr.pt_index(2) * 8,
            Pte::table(PhysAddr::new(PT)).raw(),
        );
        let mut mmu = mmu();
        let res = mmu.translate(PhysAddr::new(CR3), vaddr, &mut mem);
        assert_eq!(res.paddr, None);
        assert_eq!(res.fault, Some(PageFault { vaddr, level: 1 }));
        // The fault is not cached: translating again walks again.
        let res2 = mmu.translate(PhysAddr::new(CR3), vaddr, &mut mem);
        assert!(res2.fault.is_some());
    }

    #[test]
    fn huge_page_translation_stops_at_pde() {
        let mut mem = FlatMem::new();
        let vaddr = VirtAddr::new(0x8000_0000 + 0x12_3456);
        let huge_frame = 0x4000_0000u64; // 2 MiB aligned
        mem.write(
            CR3 + vaddr.pt_index(4) * 8,
            Pte::table(PhysAddr::new(PDPT)).raw(),
        );
        mem.write(
            PDPT + vaddr.pt_index(3) * 8,
            Pte::table(PhysAddr::new(PD)).raw(),
        );
        mem.write(
            PD + vaddr.pt_index(2) * 8,
            Pte::page(PhysAddr::new(huge_frame), PteFlags::user_rw_huge()).raw(),
        );
        let mut mmu = mmu();
        let res = mmu.translate(PhysAddr::new(CR3), vaddr, &mut mem);
        assert_eq!(res.page_size, PageSize::Huge2M);
        assert_eq!(res.paddr, Some(PhysAddr::new(huge_frame + 0x12_3456)));
        assert_eq!(res.walk_loads.len(), 3, "PML4E, PDPTE, PDE only");
        // Subsequent access hits the huge-page TLB.
        let res2 = mmu.translate(PhysAddr::new(CR3), vaddr, &mut mem);
        assert_eq!(res2.tlb_hit, Some(TlbLevel::L1));
        assert_eq!(res2.page_size, PageSize::Huge2M);
    }

    #[test]
    fn walk_latency_includes_memory_latencies() {
        let mut mem = FlatMem::new();
        mem.latency = 100;
        let vaddr = VirtAddr::new(0x1000);
        map_page(&mut mem, vaddr, 0x7_0000);
        let mut mmu = mmu();
        let res = mmu.translate(PhysAddr::new(CR3), vaddr, &mut mem);
        // 4 loads at 100 cycles each plus overheads.
        assert!(res.latency.as_u64() >= 400);
    }

    #[test]
    fn walk_reads_expected_entry_addresses() {
        let mut mem = FlatMem::new();
        let vaddr = VirtAddr::new(0x40_0000_1000);
        map_page(&mut mem, vaddr, 0x7_0000);
        let mut mmu = mmu();
        mmu.translate(PhysAddr::new(CR3), vaddr, &mut mem);
        assert_eq!(
            mem.loads,
            vec![
                PhysAddr::new(CR3 + vaddr.pt_index(4) * 8),
                PhysAddr::new(PDPT + vaddr.pt_index(3) * 8),
                PhysAddr::new(PD + vaddr.pt_index(2) * 8),
                PhysAddr::new(PT + vaddr.pt_index(1) * 8),
            ]
        );
    }
}

//! The kernel substrate and its system-call surface.
//!
//! [`System`] couples a [`Machine`] with a minimal kernel: a buddy frame
//! allocator behind a pluggable [`PlacementPolicy`], 4-level page-table
//! construction, processes with in-memory credentials, demand paging and the
//! handful of system calls the PThammer attacker needs (`mmap`, memory
//! access, `clflush`, `rdtsc`, `getuid`).

use std::collections::BTreeMap;

use pthammer_machine::{Machine, MachineConfig, TouchAccess, VirtualAccess};
use pthammer_mmu::{Pte, PteFlags};
use pthammer_types::{
    Cycles, PageSize, PhysAddr, VirtAddr, HUGE_PAGE_SIZE, PAGE_SIZE, PTES_PER_TABLE,
};

use crate::{
    buddy::BuddyAllocator,
    cred::{Cred, CREDS_PER_FRAME, CRED_SIZE},
    error::KernelError,
    policy::{DefaultPolicy, DefenseKind, FramePurpose, PlacementPolicy},
    process::{Pid, Process},
    vma::{Vma, VmaBacking},
};

/// Kernel tuning parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelConfig {
    /// Cycles charged for handling one demand-paging fault.
    pub fault_latency: u64,
    /// Low frames reserved for the kernel image and static data.
    pub reserved_kernel_frames: u64,
    /// Whether 2 MiB superpage mappings are available to user processes.
    pub superpages_enabled: bool,
    /// Base virtual address for `mmap` allocations.
    pub mmap_base: u64,
}

impl KernelConfig {
    /// Default configuration (superpages disabled, as in the paper's
    /// "regular page" setting).
    pub fn default_config() -> Self {
        Self {
            fault_latency: 1_500,
            reserved_kernel_frames: 2_048,
            superpages_enabled: false,
            mmap_base: 0x2000_0000,
        }
    }

    /// Configuration with superpages enabled (the paper's second setting).
    pub fn with_superpages() -> Self {
        Self {
            superpages_enabled: true,
            ..Self::default_config()
        }
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self::default_config()
    }
}

/// Options for [`System::mmap`].
#[derive(Debug, Clone, PartialEq)]
pub struct MmapOptions {
    /// Page size of the mapping.
    pub page_size: PageSize,
    /// Populate the mapping eagerly (build page tables now) instead of on
    /// first touch.
    pub populate: bool,
    /// Backing of the mapping.
    pub backing: VmaBacking,
}

impl Default for MmapOptions {
    fn default() -> Self {
        Self {
            page_size: PageSize::Base4K,
            populate: false,
            backing: VmaBacking::Anonymous { fill_pattern: 0 },
        }
    }
}

/// Frame-allocation statistics maintained by the kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Page-table frames allocated (all levels).
    pub page_table_frames: u64,
    /// Level-1 page-table frames allocated.
    pub l1pt_frames: u64,
    /// User data frames allocated.
    pub user_frames: u64,
    /// Kernel data frames allocated (cred slabs etc.).
    pub kernel_data_frames: u64,
    /// Demand-paging faults handled.
    pub faults_handled: u64,
}

/// The simulated system: machine + kernel.
#[derive(Debug)]
pub struct System {
    machine: Machine,
    config: KernelConfig,
    policy: Box<dyn PlacementPolicy>,
    buddy: BuddyAllocator,
    processes: BTreeMap<Pid, Process>,
    next_pid: Pid,
    /// Current cred slab frame and the number of slots already used in it.
    cred_slab: Option<(u64, u64)>,
    stats: KernelStats,
}

impl System {
    /// Boots a system with the given machine, kernel configuration and
    /// placement policy.
    pub fn new(
        machine_config: MachineConfig,
        kernel_config: KernelConfig,
        policy: Box<dyn PlacementPolicy>,
    ) -> Self {
        let machine = Machine::new(machine_config);
        let total_frames = machine.config().dram.geometry.capacity_bytes() / PAGE_SIZE;
        let reserved = kernel_config.reserved_kernel_frames.min(total_frames / 2);
        let buddy = BuddyAllocator::new(reserved, total_frames);
        Self {
            machine,
            config: kernel_config,
            policy,
            buddy,
            processes: BTreeMap::new(),
            next_pid: 1,
            cred_slab: None,
            stats: KernelStats::default(),
        }
    }

    /// Boots an undefended system (default placement policy).
    pub fn undefended(machine_config: MachineConfig) -> Self {
        Self::new(
            machine_config,
            KernelConfig::default_config(),
            Box::new(DefaultPolicy::new()),
        )
    }

    /// The kernel configuration.
    pub fn kernel_config(&self) -> &KernelConfig {
        &self.config
    }

    /// The name of the active placement policy (defense).
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Typed identity of the active placement policy (defense).
    pub fn policy_kind(&self) -> DefenseKind {
        self.policy.kind()
    }

    /// Kernel allocation statistics.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Read access to the underlying machine (evaluation / oracle use only).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the underlying machine (evaluation / oracle use
    /// only — the simulated attacker must go through the system calls).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The process table (evaluation / bookkeeping).
    pub fn process(&self, pid: Pid) -> Option<&Process> {
        self.processes.get(&pid)
    }

    // ------------------------------------------------------------------
    // Frame allocation.
    // ------------------------------------------------------------------

    fn alloc_frame(&mut self, purpose: FramePurpose) -> Result<u64, KernelError> {
        let frame = self
            .policy
            .allocate(purpose, &mut self.buddy)
            .ok_or(KernelError::OutOfMemory)?;
        match purpose {
            FramePurpose::PageTable { level, .. } => {
                self.stats.page_table_frames += 1;
                if level == 1 {
                    self.stats.l1pt_frames += 1;
                }
            }
            FramePurpose::UserPage { .. } => self.stats.user_frames += 1,
            FramePurpose::KernelData => self.stats.kernel_data_frames += 1,
        }
        Ok(frame)
    }

    fn alloc_cred_slot(&mut self, cred: Cred) -> Result<PhysAddr, KernelError> {
        let (frame, used) = match self.cred_slab {
            Some((frame, used)) if used < CREDS_PER_FRAME => (frame, used),
            _ => {
                let frame = self.alloc_frame(FramePurpose::KernelData)?;
                self.machine.phys_write_frame_uniform(frame, 0);
                (frame, 0)
            }
        };
        let paddr = PhysAddr::from_frame(frame, used * CRED_SIZE);
        self.machine.phys_write_bytes(paddr, &cred.to_bytes());
        self.cred_slab = Some((frame, used + 1));
        Ok(paddr)
    }

    // ------------------------------------------------------------------
    // Processes.
    // ------------------------------------------------------------------

    /// Creates a new process with the given uid; returns its pid.
    pub fn spawn_process(&mut self, uid: u32) -> Result<Pid, KernelError> {
        let pid = self.next_pid;
        self.next_pid += 1;
        let pml4_frame = self.alloc_frame(FramePurpose::PageTable { level: 4, pid })?;
        self.machine.phys_write_frame_uniform(pml4_frame, 0);
        let cred_paddr = self.alloc_cred_slot(Cred::user(pid, uid))?;
        let process = Process {
            pid,
            uid,
            cr3: PhysAddr::from_frame(pml4_frame, 0),
            cred_paddr,
            vmas: Vec::new(),
            next_mmap: self.config.mmap_base,
            l1pt_frames: Vec::new(),
        };
        self.processes.insert(pid, process);
        Ok(pid)
    }

    /// Creates `count` processes with the given uid (used to spray
    /// `struct cred` objects for the CTA bypass of Section IV-G3).
    pub fn spawn_processes(&mut self, count: usize, uid: u32) -> Result<Vec<Pid>, KernelError> {
        (0..count).map(|_| self.spawn_process(uid)).collect()
    }

    /// Returns the effective uid of the process, read from its in-memory
    /// credential (so a rowhammer-corrupted credential is faithfully
    /// reflected, which is how privilege escalation is demonstrated).
    pub fn getuid(&self, pid: Pid) -> Result<u32, KernelError> {
        let proc = self
            .processes
            .get(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        let bytes = self
            .machine
            .phys_read_bytes(proc.cred_paddr, CRED_SIZE as usize);
        let cred = Cred::from_bytes(&bytes)
            .ok_or_else(|| KernelError::InvalidArgument(format!("corrupted cred for pid {pid}")))?;
        Ok(cred.euid)
    }

    fn cr3_of(&self, pid: Pid) -> Result<PhysAddr, KernelError> {
        self.processes
            .get(&pid)
            .map(|p| p.cr3)
            .ok_or(KernelError::NoSuchProcess(pid))
    }

    // ------------------------------------------------------------------
    // Page-table construction.
    // ------------------------------------------------------------------

    /// Walks from CR3 down to the table at `table_level`, allocating any
    /// missing intermediate tables, and returns the table's physical base.
    /// `table_level` is 1 for an L1 page table, 2 for a page directory.
    fn ensure_table(
        &mut self,
        pid: Pid,
        vaddr: VirtAddr,
        table_level: u8,
    ) -> Result<PhysAddr, KernelError> {
        let cr3 = self.cr3_of(pid)?;
        let mut table = cr3;
        let mut new_l1pts = Vec::new();
        for entry_level in ((table_level + 1)..=4).rev() {
            let entry_paddr = table + vaddr.pt_index(entry_level) * 8;
            let entry = Pte::from_raw(self.machine.phys_read_u64(entry_paddr));
            table = if entry.present() {
                entry.frame()
            } else {
                let child_level = entry_level - 1;
                let frame = self.alloc_frame(FramePurpose::PageTable {
                    level: child_level,
                    pid,
                })?;
                self.machine.phys_write_frame_uniform(frame, 0);
                let base = PhysAddr::from_frame(frame, 0);
                self.machine
                    .phys_write_u64(entry_paddr, Pte::table(base).raw());
                if child_level == 1 {
                    new_l1pts.push(frame);
                }
                base
            };
        }
        if !new_l1pts.is_empty() {
            if let Some(proc) = self.processes.get_mut(&pid) {
                proc.l1pt_frames.extend(new_l1pts);
            }
        }
        Ok(table)
    }

    /// Installs a 4 KiB mapping `vaddr -> frame`.
    fn map_4k(&mut self, pid: Pid, vaddr: VirtAddr, frame: u64) -> Result<(), KernelError> {
        let pt = self.ensure_table(pid, vaddr, 1)?;
        let pte_paddr = pt + vaddr.pt_index(1) * 8;
        self.machine.phys_write_u64(
            pte_paddr,
            Pte::page(PhysAddr::from_frame(frame, 0), PteFlags::user_rw()).raw(),
        );
        self.machine.invalidate_page(vaddr);
        Ok(())
    }

    /// Installs a 2 MiB mapping `vaddr -> frame` (frame must be the first of
    /// 512 contiguous frames).
    fn map_2m(&mut self, pid: Pid, vaddr: VirtAddr, frame: u64) -> Result<(), KernelError> {
        let pd = self.ensure_table(pid, vaddr, 2)?;
        let pde_paddr = pd + vaddr.pt_index(2) * 8;
        self.machine.phys_write_u64(
            pde_paddr,
            Pte::page(PhysAddr::from_frame(frame, 0), PteFlags::user_rw_huge()).raw(),
        );
        self.machine.invalidate_page(vaddr);
        Ok(())
    }

    // ------------------------------------------------------------------
    // mmap and demand paging.
    // ------------------------------------------------------------------

    /// Maps `length` bytes into the process's address space and returns the
    /// base virtual address.
    ///
    /// # Errors
    ///
    /// Fails when the length is not a multiple of the page size, when
    /// superpages are requested but disabled, or when memory is exhausted
    /// during eager population.
    pub fn mmap(
        &mut self,
        pid: Pid,
        length: u64,
        options: MmapOptions,
    ) -> Result<VirtAddr, KernelError> {
        if length == 0 || !length.is_multiple_of(options.page_size.bytes()) {
            return Err(KernelError::InvalidArgument(format!(
                "length {length} is not a positive multiple of the page size"
            )));
        }
        if options.page_size.is_huge() && !self.config.superpages_enabled {
            return Err(KernelError::SuperpagesDisabled);
        }
        if let VmaBacking::SharedFrames { frames } = &options.backing {
            if frames.is_empty() {
                return Err(KernelError::InvalidArgument(
                    "shared-frame mapping needs at least one frame".to_string(),
                ));
            }
            if options.page_size.is_huge() {
                return Err(KernelError::InvalidArgument(
                    "shared-frame mappings must use 4 KiB pages".to_string(),
                ));
            }
        }

        let proc = self
            .processes
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        // Align each area to 2 MiB so it owns whole Level-1 page tables.
        let base = (proc.next_mmap + HUGE_PAGE_SIZE - 1) & !(HUGE_PAGE_SIZE - 1);
        proc.next_mmap = base + length + HUGE_PAGE_SIZE;
        let start = VirtAddr::new(base);
        proc.vmas.push(Vma {
            start,
            length,
            page_size: options.page_size,
            backing: options.backing,
        });

        if options.populate {
            self.populate_range(pid, start, length)?;
        }
        Ok(start)
    }

    /// Returns the physical frames backing an existing mapping (used by the
    /// attacker to create aliased spray mappings of its own user page, the
    /// way `mmap`ing the same file repeatedly aliases frames in the paper).
    pub fn frames_of_mapping(&self, pid: Pid, vaddr: VirtAddr) -> Result<Vec<u64>, KernelError> {
        let proc = self
            .processes
            .get(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        let vma = proc.find_vma(vaddr).ok_or(KernelError::BadAddress(vaddr))?;
        let mut frames = Vec::new();
        for page in 0..vma.page_count() {
            let va = vma.start + page * vma.page_size.bytes();
            if let Some(walk) = pthammer_machine::software_walk(&self.machine, proc.cr3, va) {
                frames.push(walk.paddr.frame_number());
            }
        }
        Ok(frames)
    }

    /// Populates every page of the given range (builds page tables and
    /// allocates backing frames).
    pub fn populate_range(
        &mut self,
        pid: Pid,
        start: VirtAddr,
        length: u64,
    ) -> Result<(), KernelError> {
        let (page_size, backing, vma_start, vma_len) = {
            let proc = self
                .processes
                .get(&pid)
                .ok_or(KernelError::NoSuchProcess(pid))?;
            let vma = proc.find_vma(start).ok_or(KernelError::BadAddress(start))?;
            (vma.page_size, vma.backing.clone(), vma.start, vma.length)
        };
        let end = VirtAddr::new(
            (start + length)
                .as_u64()
                .min((vma_start + vma_len).as_u64()),
        );

        // Fast path: a 4 KiB area backed by a single shared frame fills whole
        // Level-1 page tables with identical entries; build each fully-covered
        // 2 MiB chunk's L1PT in one uniform write. This is what makes the
        // paper's multi-gigabyte page-table spray tractable to simulate.
        if page_size == PageSize::Base4K {
            if let VmaBacking::SharedFrames { frames } = &backing {
                if frames.len() == 1 {
                    let shared = frames[0];
                    let leaf =
                        Pte::page(PhysAddr::from_frame(shared, 0), PteFlags::user_rw()).raw();
                    let mut va = start.as_u64();
                    while va < end.as_u64() {
                        let chunk_base = va & !(HUGE_PAGE_SIZE - 1);
                        let chunk_end = chunk_base + HUGE_PAGE_SIZE;
                        let fully_covered = chunk_base >= vma_start.as_u64()
                            && chunk_end <= (vma_start + vma_len).as_u64()
                            && chunk_base >= start.as_u64()
                            && chunk_end <= end.as_u64();
                        if fully_covered {
                            self.populate_aliased_chunk(pid, VirtAddr::new(chunk_base), leaf)?;
                            va = chunk_end;
                        } else {
                            self.populate_page(pid, VirtAddr::new(va))?;
                            va += PAGE_SIZE;
                        }
                    }
                    return Ok(());
                }
            }
        }

        let step = page_size.bytes();
        let mut va = start.as_u64();
        while va < end.as_u64() {
            self.populate_page(pid, VirtAddr::new(va))?;
            va += step;
        }
        Ok(())
    }

    /// Builds the complete Level-1 page table for one 2 MiB chunk whose 512
    /// entries are all identical (single shared backing frame).
    fn populate_aliased_chunk(
        &mut self,
        pid: Pid,
        chunk_base: VirtAddr,
        leaf_pte: u64,
    ) -> Result<(), KernelError> {
        let pd = self.ensure_table(pid, chunk_base, 2)?;
        let pde_paddr = pd + chunk_base.pt_index(2) * 8;
        let pde = Pte::from_raw(self.machine.phys_read_u64(pde_paddr));
        let l1pt_frame = if pde.present() {
            pde.frame().frame_number()
        } else {
            let frame = self.alloc_frame(FramePurpose::PageTable { level: 1, pid })?;
            self.machine
                .phys_write_u64(pde_paddr, Pte::table(PhysAddr::from_frame(frame, 0)).raw());
            if let Some(proc) = self.processes.get_mut(&pid) {
                proc.l1pt_frames.push(frame);
            }
            frame
        };
        self.machine.phys_write_frame_uniform(l1pt_frame, leaf_pte);
        Ok(())
    }

    /// Populates the single page containing `vaddr`.
    pub fn populate_page(&mut self, pid: Pid, vaddr: VirtAddr) -> Result<(), KernelError> {
        let (page_size, backing, vma_start) = {
            let proc = self
                .processes
                .get(&pid)
                .ok_or(KernelError::NoSuchProcess(pid))?;
            let vma = proc.find_vma(vaddr).ok_or(KernelError::BadAddress(vaddr))?;
            (vma.page_size, vma.backing.clone(), vma.start)
        };
        match page_size {
            PageSize::Base4K => {
                let page_va = vaddr.page_base();
                let page_index = (page_va - vma_start) / PAGE_SIZE;
                let frame = match &backing {
                    VmaBacking::SharedFrames { frames } => {
                        frames[(page_index % frames.len() as u64) as usize]
                    }
                    VmaBacking::Anonymous { fill_pattern } => {
                        let frame = self.alloc_frame(FramePurpose::UserPage { pid })?;
                        self.machine.phys_write_frame_uniform(frame, *fill_pattern);
                        frame
                    }
                };
                self.map_4k(pid, page_va, frame)
            }
            PageSize::Huge2M => {
                let page_va = vaddr.huge_page_base();
                let fill = match &backing {
                    VmaBacking::Anonymous { fill_pattern } => *fill_pattern,
                    VmaBacking::SharedFrames { .. } => {
                        return Err(KernelError::InvalidArgument(
                            "shared-frame mappings must use 4 KiB pages".to_string(),
                        ))
                    }
                };
                // 2 MiB of physically contiguous, aligned frames.
                let base_frame = self
                    .buddy
                    .alloc_order(9, false)
                    .ok_or(KernelError::OutOfMemory)?;
                self.stats.user_frames += PTES_PER_TABLE;
                for f in base_frame..base_frame + PTES_PER_TABLE {
                    self.machine.phys_write_frame_uniform(f, fill);
                }
                self.map_2m(pid, page_va, base_frame)
            }
        }
    }

    /// Raw value of the leaf (Level-1 or huge PDE) entry currently installed
    /// for `vaddr`, if the walk reaches it; `None` when an intermediate level
    /// is missing.
    fn leaf_entry_raw(&self, pid: Pid, vaddr: VirtAddr) -> Option<u64> {
        let proc = self.processes.get(&pid)?;
        let mut table = proc.cr3;
        for level in (1..=4u8).rev() {
            let entry_paddr = table + vaddr.pt_index(level) * 8;
            let raw = self.machine.phys_read_u64(entry_paddr);
            let entry = Pte::from_raw(raw);
            if level == 1 || (level == 2 && entry.huge()) {
                return Some(raw);
            }
            if !entry.present() {
                return None;
            }
            table = entry.frame();
        }
        None
    }

    fn handle_fault(&mut self, pid: Pid, vaddr: VirtAddr) -> Result<(), KernelError> {
        self.stats.faults_handled += 1;
        self.machine
            .advance_clock(Cycles::new(self.config.fault_latency));
        // Demand paging only installs mappings for pages that have never been
        // populated. A page whose leaf entry exists but is corrupted (e.g. a
        // rowhammer flip cleared the present bit or pointed the frame outside
        // of DRAM) is *not* silently re-mapped — the kernel would deliver a
        // SIGBUS; we surface that as `BadAddress`.
        if let Some(raw) = self.leaf_entry_raw(pid, vaddr) {
            if raw != 0 {
                return Err(KernelError::BadAddress(vaddr));
            }
        }
        self.populate_page(pid, vaddr)
    }

    // ------------------------------------------------------------------
    // User-level memory operations (with demand paging).
    // ------------------------------------------------------------------

    fn with_fault_retry<F>(
        &mut self,
        pid: Pid,
        vaddr: VirtAddr,
        mut op: F,
    ) -> Result<VirtualAccess, KernelError>
    where
        F: FnMut(&mut Machine, PhysAddr) -> VirtualAccess,
    {
        let cr3 = self.cr3_of(pid)?;
        let acc = op(&mut self.machine, cr3);
        if acc.fault.is_none() {
            return Ok(acc);
        }
        self.handle_fault(pid, vaddr)?;
        let acc = op(&mut self.machine, cr3);
        if acc.fault.is_some() {
            return Err(KernelError::BadAddress(vaddr));
        }
        Ok(acc)
    }

    /// Reads the u64 at `vaddr` in the process's address space.
    pub fn read_u64(&mut self, pid: Pid, vaddr: VirtAddr) -> Result<VirtualAccess, KernelError> {
        self.with_fault_retry(pid, vaddr, |m, cr3| m.read_u64(cr3, vaddr))
    }

    /// Writes the u64 at `vaddr` in the process's address space.
    pub fn write_u64(
        &mut self,
        pid: Pid,
        vaddr: VirtAddr,
        value: u64,
    ) -> Result<VirtualAccess, KernelError> {
        self.with_fault_retry(pid, vaddr, |m, cr3| m.write_u64(cr3, vaddr, value))
    }

    /// Touches `vaddr` (timed read whose value is ignored).
    pub fn access(&mut self, pid: Pid, vaddr: VirtAddr) -> Result<VirtualAccess, KernelError> {
        self.read_u64(pid, vaddr)
    }

    /// Touches `vaddr` through the lean path: identical simulated behavior
    /// and latency accounting to [`System::access`], but without reading the
    /// data value or assembling a full [`VirtualAccess`]. The hammer loop's
    /// per-iteration target touches go through this.
    pub fn touch(&mut self, pid: Pid, vaddr: VirtAddr) -> Result<TouchAccess, KernelError> {
        let cr3 = self.cr3_of(pid)?;
        let acc = self.machine.touch_lean(cr3, vaddr);
        if acc.fault.is_none() {
            return Ok(acc);
        }
        self.handle_fault(pid, vaddr)?;
        let acc = self.machine.touch_lean(cr3, vaddr);
        if acc.fault.is_some() {
            return Err(KernelError::BadAddress(vaddr));
        }
        Ok(acc)
    }

    /// Accesses a sequence of addresses back-to-back (pipelined), handling
    /// any demand-paging faults along the way. Returns the total latency.
    pub fn access_batch(&mut self, pid: Pid, vaddrs: &[VirtAddr]) -> Result<Cycles, KernelError> {
        self.access_batch_passes(pid, vaddrs, 1)
    }

    /// Runs [`System::access_batch`] over the same address sequence `passes`
    /// times in one call (the repeated-traversal pattern of LLC eviction),
    /// with one batch entry/exit. Behavior is identical for populated
    /// mappings — the only ones eviction traversal touches; a page that
    /// demand-faults faults once per pass, and is populated (and its fault
    /// latency charged) only for the first occurrence.
    pub fn access_batch_passes(
        &mut self,
        pid: Pid,
        vaddrs: &[VirtAddr],
        passes: usize,
    ) -> Result<Cycles, KernelError> {
        let cr3 = self.cr3_of(pid)?;
        let (mut total, faults) = self.machine.access_batch_passes(cr3, vaddrs, passes);
        let mut handled: Vec<VirtAddr> = Vec::new();
        for fault in faults {
            if handled.contains(&fault.vaddr) {
                continue;
            }
            handled.push(fault.vaddr);
            self.handle_fault(pid, fault.vaddr)?;
            let (extra, refaults) = self.machine.access_batch(cr3, &[fault.vaddr]);
            total += extra;
            if !refaults.is_empty() {
                return Err(KernelError::BadAddress(fault.vaddr));
            }
        }
        Ok(total)
    }

    /// Flushes the cache line containing `vaddr` (`clflush`).
    pub fn clflush(&mut self, pid: Pid, vaddr: VirtAddr) -> Result<VirtualAccess, KernelError> {
        self.with_fault_retry(pid, vaddr, |m, cr3| m.clflush(cr3, vaddr))
    }

    /// Reads the time-stamp counter.
    pub fn rdtsc(&self) -> u64 {
        self.machine.rdtsc()
    }

    /// Advances the clock by `cycles` (models computation such as the NOP
    /// padding of Figure 5).
    pub fn advance_cycles(&mut self, cycles: u64) {
        self.machine.advance_clock(Cycles::new(cycles));
    }

    /// Simulated seconds elapsed since boot.
    pub fn seconds_since_boot(&self) -> f64 {
        Cycles::new(self.machine.rdtsc()).as_seconds(self.machine.clock_hz())
    }

    // ------------------------------------------------------------------
    // Evaluation oracle (the paper's "kernel module", not used to attack).
    // ------------------------------------------------------------------

    /// Physical address of the Level-1 PTE mapping `vaddr` for `pid`.
    pub fn oracle_l1pte_paddr(&self, pid: Pid, vaddr: VirtAddr) -> Option<PhysAddr> {
        let proc = self.processes.get(&pid)?;
        pthammer_machine::l1pte_paddr(&self.machine, proc.cr3, vaddr)
    }

    /// Physical address that `vaddr` currently translates to for `pid`.
    pub fn oracle_translate(&self, pid: Pid, vaddr: VirtAddr) -> Option<PhysAddr> {
        let proc = self.processes.get(&pid)?;
        pthammer_machine::software_walk(&self.machine, proc.cr3, vaddr).map(|w| w.paddr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pthammer_dram::FlipModelProfile;
    use pthammer_types::MemoryLevel;

    fn system() -> System {
        System::undefended(MachineConfig::test_small(
            FlipModelProfile::invulnerable(),
            3,
        ))
    }

    #[test]
    fn spawn_and_getuid() {
        let mut sys = system();
        let pid = sys.spawn_process(1000).unwrap();
        assert_eq!(sys.getuid(pid).unwrap(), 1000);
        assert_eq!(sys.getuid(999), Err(KernelError::NoSuchProcess(999)));
        let pids = sys.spawn_processes(10, 1000).unwrap();
        assert_eq!(pids.len(), 10);
        assert!(sys.stats().kernel_data_frames >= 1);
    }

    #[test]
    fn mmap_demand_paging_read_write() {
        let mut sys = system();
        let pid = sys.spawn_process(1000).unwrap();
        let va = sys
            .mmap(
                pid,
                16 * PAGE_SIZE,
                MmapOptions {
                    backing: VmaBacking::Anonymous { fill_pattern: 0xAB },
                    ..MmapOptions::default()
                },
            )
            .unwrap();
        // First touch faults and populates.
        let acc = sys.read_u64(pid, va).unwrap();
        assert_eq!(acc.value, 0xAB);
        assert_eq!(sys.stats().faults_handled, 1);
        // Writes persist.
        sys.write_u64(pid, va + 8, 0x1122_3344).unwrap();
        assert_eq!(sys.read_u64(pid, va + 8).unwrap().value, 0x1122_3344);
        // Pages of the same VMA get distinct frames.
        let pa0 = sys.oracle_translate(pid, va).unwrap();
        sys.read_u64(pid, va + PAGE_SIZE).unwrap();
        let pa1 = sys.oracle_translate(pid, va + PAGE_SIZE).unwrap();
        assert_ne!(pa0.frame_number(), pa1.frame_number());
    }

    #[test]
    fn access_outside_any_vma_is_bad_address() {
        let mut sys = system();
        let pid = sys.spawn_process(1000).unwrap();
        let err = sys.read_u64(pid, VirtAddr::new(0x7777_0000)).unwrap_err();
        assert!(matches!(err, KernelError::BadAddress(_)));
    }

    #[test]
    fn mmap_rejects_bad_arguments() {
        let mut sys = system();
        let pid = sys.spawn_process(1000).unwrap();
        assert!(matches!(
            sys.mmap(pid, 100, MmapOptions::default()),
            Err(KernelError::InvalidArgument(_))
        ));
        assert!(matches!(
            sys.mmap(
                pid,
                HUGE_PAGE_SIZE,
                MmapOptions {
                    page_size: PageSize::Huge2M,
                    ..MmapOptions::default()
                }
            ),
            Err(KernelError::SuperpagesDisabled)
        ));
    }

    #[test]
    fn populated_mapping_does_not_fault() {
        let mut sys = system();
        let pid = sys.spawn_process(1000).unwrap();
        let va = sys
            .mmap(
                pid,
                8 * PAGE_SIZE,
                MmapOptions {
                    populate: true,
                    backing: VmaBacking::Anonymous { fill_pattern: 7 },
                    ..MmapOptions::default()
                },
            )
            .unwrap();
        assert_eq!(sys.stats().faults_handled, 0);
        let acc = sys.read_u64(pid, va + 3 * PAGE_SIZE).unwrap();
        assert_eq!(acc.value, 7);
        assert_eq!(sys.stats().faults_handled, 0);
    }

    #[test]
    fn shared_frame_spray_creates_l1pts_cheaply() {
        let mut sys = system();
        let pid = sys.spawn_process(1000).unwrap();
        // One real user page...
        let user_va = sys
            .mmap(
                pid,
                PAGE_SIZE,
                MmapOptions {
                    populate: true,
                    backing: VmaBacking::Anonymous {
                        fill_pattern: 0x5050,
                    },
                    ..MmapOptions::default()
                },
            )
            .unwrap();
        let frames = sys.frames_of_mapping(pid, user_va).unwrap();
        assert_eq!(frames.len(), 1);
        // ...aliased over 64 MiB of virtual address space.
        let spray_len = 64 * 1024 * 1024u64;
        let spray_va = sys
            .mmap(
                pid,
                spray_len,
                MmapOptions {
                    populate: true,
                    backing: VmaBacking::SharedFrames {
                        frames: frames.clone(),
                    },
                    ..MmapOptions::default()
                },
            )
            .unwrap();
        // 64 MiB / 2 MiB = 32 Level-1 page tables were created.
        let proc = sys.process(pid).unwrap();
        assert!(
            proc.l1pt_frames.len() >= 32,
            "got {}",
            proc.l1pt_frames.len()
        );
        assert!(sys.stats().l1pt_frames >= 32);
        // Every sprayed page reads the shared pattern and translates to the
        // single shared frame.
        for offset in [0u64, PAGE_SIZE, 1 << 20, spray_len - PAGE_SIZE] {
            let acc = sys.read_u64(pid, spray_va + offset).unwrap();
            assert_eq!(acc.value, 0x5050, "offset {offset:#x}");
            assert_eq!(
                sys.oracle_translate(pid, spray_va + offset)
                    .unwrap()
                    .frame_number(),
                frames[0]
            );
        }
        assert_eq!(sys.stats().faults_handled, 0, "spray was eagerly populated");
        // L1PT frames are mostly consecutive (buddy allocator behaviour).
        let l1pts = &sys.process(pid).unwrap().l1pt_frames;
        let consecutive = l1pts.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(
            consecutive * 10 >= (l1pts.len() - 1) * 8,
            "≥80% consecutive"
        );
    }

    #[test]
    fn superpage_mapping_translates_and_reads() {
        let mut sys = System::new(
            MachineConfig::test_small(FlipModelProfile::invulnerable(), 3),
            KernelConfig::with_superpages(),
            Box::new(DefaultPolicy::new()),
        );
        let pid = sys.spawn_process(1000).unwrap();
        let va = sys
            .mmap(
                pid,
                4 * HUGE_PAGE_SIZE,
                MmapOptions {
                    page_size: PageSize::Huge2M,
                    populate: true,
                    backing: VmaBacking::Anonymous { fill_pattern: 0xEE },
                },
            )
            .unwrap();
        let acc = sys
            .read_u64(pid, va + 3 * HUGE_PAGE_SIZE + 0x1234 * 8)
            .unwrap();
        assert_eq!(acc.value, 0xEE);
        // Physical base shares the low 21 bits with the virtual address.
        let pa = sys.oracle_translate(pid, va).unwrap();
        assert_eq!(pa.as_u64() % HUGE_PAGE_SIZE, va.as_u64() % HUGE_PAGE_SIZE);
        // No L1 page tables are involved for superpages.
        assert!(sys.oracle_l1pte_paddr(pid, va).is_none());
    }

    #[test]
    fn clflush_and_timing_visible_to_user() {
        let mut sys = system();
        let pid = sys.spawn_process(1000).unwrap();
        let va = sys
            .mmap(
                pid,
                PAGE_SIZE,
                MmapOptions {
                    populate: true,
                    ..MmapOptions::default()
                },
            )
            .unwrap();
        sys.read_u64(pid, va).unwrap();
        let warm = sys.read_u64(pid, va).unwrap();
        assert_eq!(warm.data_level, Some(MemoryLevel::L1));
        sys.clflush(pid, va).unwrap();
        let t0 = sys.rdtsc();
        let cold = sys.read_u64(pid, va).unwrap();
        let t1 = sys.rdtsc();
        assert_eq!(cold.data_level, Some(MemoryLevel::Dram));
        assert!(t1 - t0 >= cold.latency.as_u64());
        assert!(cold.latency > warm.latency);
    }

    #[test]
    fn access_batch_handles_faults() {
        let mut sys = system();
        let pid = sys.spawn_process(1000).unwrap();
        let va = sys
            .mmap(pid, 4 * PAGE_SIZE, MmapOptions::default())
            .unwrap();
        let addrs: Vec<VirtAddr> = (0..4).map(|i| va + i * PAGE_SIZE).collect();
        let total = sys.access_batch(pid, &addrs).unwrap();
        assert!(total.as_u64() > 0);
        assert_eq!(sys.stats().faults_handled, 4);
    }

    #[test]
    fn oracle_l1pte_paddr_points_into_an_l1pt_frame() {
        let mut sys = system();
        let pid = sys.spawn_process(1000).unwrap();
        let va = sys
            .mmap(
                pid,
                PAGE_SIZE,
                MmapOptions {
                    populate: true,
                    ..MmapOptions::default()
                },
            )
            .unwrap();
        let pte_pa = sys.oracle_l1pte_paddr(pid, va).unwrap();
        let proc = sys.process(pid).unwrap();
        assert!(proc.l1pt_frames.contains(&pte_pa.frame_number()));
    }
}

//! Kernel error types.

use core::fmt;

use serde::{Deserialize, Serialize};

use pthammer_types::VirtAddr;

/// Errors returned by the kernel substrate's system-call surface.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelError {
    /// Physical memory is exhausted (or the placement policy refused).
    OutOfMemory,
    /// The process id does not exist.
    NoSuchProcess(u32),
    /// The virtual address is not covered by any mapping of the process.
    BadAddress(VirtAddr),
    /// A superpage mapping was requested but superpages are disabled.
    SuperpagesDisabled,
    /// Invalid argument to a system call.
    InvalidArgument(String),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::OutOfMemory => write!(f, "out of physical memory"),
            KernelError::NoSuchProcess(pid) => write!(f, "no such process: {pid}"),
            KernelError::BadAddress(va) => write!(f, "bad address: {va}"),
            KernelError::SuperpagesDisabled => write!(f, "superpages are disabled on this system"),
            KernelError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            KernelError::OutOfMemory.to_string(),
            "out of physical memory"
        );
        assert!(KernelError::NoSuchProcess(7).to_string().contains('7'));
        assert!(KernelError::BadAddress(VirtAddr::new(0x123))
            .to_string()
            .contains("bad address"));
        assert!(KernelError::SuperpagesDisabled
            .to_string()
            .contains("superpages"));
        assert!(KernelError::InvalidArgument("x".into())
            .to_string()
            .contains('x'));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&KernelError::OutOfMemory);
    }
}

//! Simulated kernel memory-management substrate for the PThammer
//! reproduction.
//!
//! This crate plays the role of the Linux kernel in the paper's attack: it
//! owns the physical frame allocator (a buddy allocator whose consecutive-
//! allocation behaviour the attack depends on), builds 4-level page tables in
//! the simulated physical memory, manages processes with in-memory
//! `struct cred` objects, and exposes the small system-call surface the
//! unprivileged attacker uses: `mmap`, memory accesses with demand paging,
//! `clflush`, `rdtsc` and `getuid`.
//!
//! Frame placement goes through a [`PlacementPolicy`], which is where the
//! software-only defenses (CATT, RIP-RH, CTA) plug in — they are
//! implemented in the `pthammer-defenses` crate.
//!
//! # Examples
//!
//! ```
//! use pthammer_kernel::{System, MmapOptions};
//! use pthammer_machine::MachineConfig;
//! use pthammer_dram::FlipModelProfile;
//!
//! let mut sys = System::undefended(MachineConfig::test_small(FlipModelProfile::ci(), 1));
//! let pid = sys.spawn_process(1000)?;
//! let va = sys.mmap(pid, 4096, MmapOptions::default())?;
//! sys.write_u64(pid, va, 42)?;
//! assert_eq!(sys.read_u64(pid, va)?.value, 42);
//! assert_eq!(sys.getuid(pid)?, 1000);
//! # Ok::<(), pthammer_kernel::KernelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buddy;
mod cred;
mod error;
mod policy;
mod process;
mod system;
mod vma;

pub use buddy::{BuddyAllocator, MAX_ORDER};
pub use cred::{Cred, CredSlot, CREDS_PER_FRAME, CRED_MAGIC, CRED_SIZE};
pub use error::KernelError;
pub use policy::{DefaultPolicy, DefenseKind, FramePurpose, PlacementPolicy};
pub use process::{Pid, Process};
pub use system::{KernelConfig, KernelStats, MmapOptions, System};
pub use vma::{Vma, VmaBacking};

//! A buddy-style physical frame allocator.
//!
//! The attack depends on one well-known behaviour of the Linux buddy
//! allocator: consecutive allocations tend to return physically consecutive
//! frames, which is what makes the 256 MiB virtual-address stride of the
//! paper's pair selection land Level-1 page tables two DRAM rows apart. This
//! allocator reproduces that behaviour by always splitting the lowest-address
//! (or, on request, highest-address) free block.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// Maximum block order (2^10 frames = 4 MiB blocks).
pub const MAX_ORDER: u32 = 10;

/// A buddy allocator over physical frame numbers.
///
/// # Examples
///
/// ```
/// use pthammer_kernel::BuddyAllocator;
/// let mut buddy = BuddyAllocator::new(0, 1024);
/// let a = buddy.alloc_frame().unwrap();
/// let b = buddy.alloc_frame().unwrap();
/// assert_eq!(b, a + 1, "consecutive allocations are physically consecutive");
/// buddy.free_frame(a);
/// buddy.free_frame(b);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BuddyAllocator {
    /// Free blocks per order, keyed by their first frame number.
    free_lists: Vec<BTreeSet<u64>>,
    start_frame: u64,
    end_frame: u64,
    free_frames: u64,
}

impl BuddyAllocator {
    /// Creates an allocator managing frames `start_frame..end_frame`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn new(start_frame: u64, end_frame: u64) -> Self {
        assert!(end_frame > start_frame, "empty frame range");
        let mut this = Self {
            free_lists: vec![BTreeSet::new(); (MAX_ORDER + 1) as usize],
            start_frame,
            end_frame,
            free_frames: 0,
        };
        // Seed the free lists greedily with the largest aligned blocks.
        let mut frame = start_frame;
        while frame < end_frame {
            let mut order = MAX_ORDER;
            loop {
                let size = 1u64 << order;
                if frame.is_multiple_of(size) && frame + size <= end_frame {
                    break;
                }
                order -= 1;
            }
            this.free_lists[order as usize].insert(frame);
            this.free_frames += 1 << order;
            frame += 1 << order;
        }
        this
    }

    /// Number of currently free frames.
    pub fn free_frames(&self) -> u64 {
        self.free_frames
    }

    /// Total number of managed frames.
    pub fn total_frames(&self) -> u64 {
        self.end_frame - self.start_frame
    }

    /// The managed frame range.
    pub fn range(&self) -> (u64, u64) {
        (self.start_frame, self.end_frame)
    }

    /// Allocates a block of `2^order` frames, preferring the lowest address
    /// (or the highest when `from_top` is true). Returns the first frame.
    pub fn alloc_order(&mut self, order: u32, from_top: bool) -> Option<u64> {
        assert!(order <= MAX_ORDER, "order {order} exceeds MAX_ORDER");
        // Choose the lowest-address (or highest-address) block among every
        // order that can satisfy the request; this keeps plain frame
        // allocations physically consecutive even when the free lists are
        // fragmented across orders.
        // (order, block start, comparison key): the key is the block start
        // for bottom-up allocation and the block's last frame for top-down.
        let mut found: Option<(u32, u64, u64)> = None;
        for o in order..=MAX_ORDER {
            let list = &self.free_lists[o as usize];
            let candidate = if from_top {
                list.iter().next_back().copied()
            } else {
                list.iter().next().copied()
            };
            if let Some(start) = candidate {
                let key = if from_top {
                    start + (1u64 << o) - 1
                } else {
                    start
                };
                let better = match found {
                    None => true,
                    Some((_, _, best_key)) => {
                        if from_top {
                            key > best_key
                        } else {
                            key < best_key
                        }
                    }
                };
                if better {
                    found = Some((o, start, key));
                }
            }
        }
        let (mut o, frame, _) = found?;
        self.free_lists[o as usize].remove(&frame);
        // Split down to the requested order, freeing the buddy halves.
        let mut base = frame;
        while o > order {
            o -= 1;
            let half = 1u64 << o;
            if from_top {
                // Keep the upper half, free the lower half.
                self.free_lists[o as usize].insert(base);
                base += half;
            } else {
                // Keep the lower half, free the upper half.
                self.free_lists[o as usize].insert(base + half);
            }
        }
        self.free_frames -= 1 << order;
        Some(base)
    }

    /// Allocates a single frame (order 0), lowest address first.
    pub fn alloc_frame(&mut self) -> Option<u64> {
        self.alloc_order(0, false)
    }

    /// Allocates a single frame from the top of memory (highest address).
    pub fn alloc_frame_from_top(&mut self) -> Option<u64> {
        self.alloc_order(0, true)
    }

    /// Allocates the lowest (or highest) free frame satisfying `pred`.
    ///
    /// Used by placement-policy defenses that constrain where page tables or
    /// user data may live (e.g. CATT's per-bank partitions or CTA's
    /// true-cell region).
    pub fn alloc_frame_filtered<F: Fn(u64) -> bool>(
        &mut self,
        pred: F,
        from_top: bool,
    ) -> Option<u64> {
        // Collect candidate blocks across orders sorted by address.
        let mut blocks: Vec<(u64, u32)> = Vec::new();
        for (order, list) in self.free_lists.iter().enumerate() {
            for &frame in list {
                blocks.push((frame, order as u32));
            }
        }
        blocks.sort_unstable();
        let iter: Box<dyn Iterator<Item = &(u64, u32)>> = if from_top {
            Box::new(blocks.iter().rev())
        } else {
            Box::new(blocks.iter())
        };
        for &(block, order) in iter {
            let size = 1u64 << order;
            let frames: Box<dyn Iterator<Item = u64>> = if from_top {
                Box::new((block..block + size).rev())
            } else {
                Box::new(block..block + size)
            };
            for frame in frames {
                if pred(frame) {
                    self.carve_frame(block, order, frame);
                    return Some(frame);
                }
            }
        }
        None
    }

    /// Removes `frame` from the free block `(block, order)`, returning the
    /// remainder to the free lists.
    fn carve_frame(&mut self, block: u64, order: u32, frame: u64) {
        self.free_lists[order as usize].remove(&block);
        // Re-insert every other frame of the block as order-0 blocks and then
        // let free_frame's coalescing rebuild larger blocks lazily. Simpler:
        // split recursively, keeping only the half containing `frame`.
        let mut base = block;
        let mut o = order;
        while o > 0 {
            o -= 1;
            let half = 1u64 << o;
            if frame < base + half {
                self.free_lists[o as usize].insert(base + half);
            } else {
                self.free_lists[o as usize].insert(base);
                base += half;
            }
        }
        self.free_frames -= 1;
    }

    /// Frees a single frame, coalescing buddies where possible.
    ///
    /// # Panics
    ///
    /// Panics if the frame is outside the managed range.
    pub fn free_frame(&mut self, frame: u64) {
        self.free_block(frame, 0);
    }

    /// Frees a block of `2^order` frames.
    pub fn free_block(&mut self, frame: u64, order: u32) {
        assert!(
            frame >= self.start_frame && frame + (1 << order) <= self.end_frame,
            "frame {frame} outside managed range"
        );
        let freed = 1u64 << order;
        let mut frame = frame;
        let mut order = order;
        while order < MAX_ORDER {
            let buddy = frame ^ (1u64 << order);
            if self.free_lists[order as usize].remove(&buddy) {
                frame = frame.min(buddy);
                order += 1;
            } else {
                break;
            }
        }
        self.free_lists[order as usize].insert(frame);
        self.free_frames += freed;
    }

    /// Exhausts all free blocks smaller than `min_order`, returning the
    /// allocated frames. This models the allocator-massaging technique of
    /// Cheng et al. (used in the paper's CATT evaluation) that forces later
    /// page-table allocations into large, physically contiguous runs.
    pub fn exhaust_small_blocks(&mut self, min_order: u32) -> Vec<u64> {
        let mut taken = Vec::new();
        for order in 0..min_order.min(MAX_ORDER + 1) {
            let frames: Vec<u64> = self.free_lists[order as usize].iter().copied().collect();
            for frame in frames {
                self.free_lists[order as usize].remove(&frame);
                let count = 1u64 << order;
                self.free_frames -= count;
                taken.extend(frame..frame + count);
            }
        }
        taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn consecutive_allocations_are_consecutive_frames() {
        let mut b = BuddyAllocator::new(0, 4096);
        let frames: Vec<u64> = (0..64).map(|_| b.alloc_frame().unwrap()).collect();
        for w in frames.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
    }

    #[test]
    fn allocation_and_free_preserve_counts() {
        let mut b = BuddyAllocator::new(0, 2048);
        assert_eq!(b.free_frames(), 2048);
        let f = b.alloc_frame().unwrap();
        assert_eq!(b.free_frames(), 2047);
        b.free_frame(f);
        assert_eq!(b.free_frames(), 2048);
    }

    #[test]
    fn order_allocation_is_aligned() {
        let mut b = BuddyAllocator::new(0, 4096);
        for order in [0u32, 1, 3, 7, 10] {
            let f = b.alloc_order(order, false).unwrap();
            assert_eq!(f % (1 << order), 0, "order {order} block misaligned");
        }
    }

    #[test]
    fn from_top_allocates_highest_frames() {
        let mut b = BuddyAllocator::new(0, 1024);
        let top = b.alloc_frame_from_top().unwrap();
        assert_eq!(top, 1023);
        let next = b.alloc_frame_from_top().unwrap();
        assert_eq!(next, 1022);
        let low = b.alloc_frame().unwrap();
        assert_eq!(low, 0);
    }

    #[test]
    fn filtered_allocation_respects_predicate() {
        let mut b = BuddyAllocator::new(0, 1024);
        // Only frames in "odd row spans" (every other group of 64 frames).
        let pred = |frame: u64| (frame / 64) % 2 == 1;
        for _ in 0..10 {
            let f = b.alloc_frame_filtered(pred, false).unwrap();
            assert!(pred(f));
        }
        // Unsatisfiable predicate returns None without corrupting state.
        assert!(b.alloc_frame_filtered(|_| false, false).is_none());
        let before = b.free_frames();
        let f = b.alloc_frame().unwrap();
        b.free_frame(f);
        assert_eq!(b.free_frames(), before);
    }

    #[test]
    fn filtered_from_top_picks_highest_satisfying() {
        let mut b = BuddyAllocator::new(0, 1024);
        let f = b.alloc_frame_filtered(|fr| fr < 500, true).unwrap();
        assert_eq!(f, 499);
    }

    #[test]
    fn coalescing_restores_large_blocks() {
        let mut b = BuddyAllocator::new(0, 1024);
        let frames: Vec<u64> = (0..1024).map(|_| b.alloc_frame().unwrap()).collect();
        assert_eq!(b.free_frames(), 0);
        assert!(b.alloc_frame().is_none());
        for f in frames {
            b.free_frame(f);
        }
        assert_eq!(b.free_frames(), 1024);
        // A max-order allocation should succeed again after coalescing.
        assert!(b.alloc_order(MAX_ORDER, false).is_some());
    }

    #[test]
    fn exhaust_small_blocks_removes_fragments() {
        let mut b = BuddyAllocator::new(0, 1024);
        // Create fragmentation: allocate some frames and free every other one.
        let frames: Vec<u64> = (0..32).map(|_| b.alloc_frame().unwrap()).collect();
        for f in frames.iter().step_by(2) {
            b.free_frame(*f);
        }
        let taken = b.exhaust_small_blocks(5);
        assert!(!taken.is_empty());
        // After exhaustion, the next allocations come from large blocks and
        // are therefore consecutive.
        let a = b.alloc_frame().unwrap();
        let c = b.alloc_frame().unwrap();
        assert_eq!(c, a + 1);
    }

    #[test]
    fn nonzero_start_range() {
        let mut b = BuddyAllocator::new(256, 512);
        let f = b.alloc_frame().unwrap();
        assert_eq!(f, 256);
        assert_eq!(b.total_frames(), 256);
    }

    #[test]
    #[should_panic(expected = "outside managed range")]
    fn freeing_foreign_frame_panics() {
        let mut b = BuddyAllocator::new(0, 128);
        b.free_frame(500);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_alloc_free_never_loses_frames(ops in prop::collection::vec(0u8..3, 1..200)) {
            let mut b = BuddyAllocator::new(0, 512);
            let mut held = Vec::new();
            for op in ops {
                match op {
                    0 | 1 => {
                        if let Some(f) = b.alloc_frame() {
                            prop_assert!(f < 512);
                            prop_assert!(!held.contains(&f), "double allocation of frame {}", f);
                            held.push(f);
                        }
                    }
                    _ => {
                        if let Some(f) = held.pop() {
                            b.free_frame(f);
                        }
                    }
                }
                prop_assert_eq!(b.free_frames() as usize + held.len(), 512);
            }
        }
    }
}

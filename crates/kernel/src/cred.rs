//! In-memory process credentials (`struct cred`).
//!
//! Credentials are written into kernel data frames with a recognisable
//! layout, mirroring how Linux slab-allocates `struct cred`. The CTA bypass
//! of Section IV-G3 sprays thousands of processes so that a corrupted L1PTE
//! has a fair chance of landing write access on a page full of credentials;
//! the attacker then recognises its own uid/gid in the page and overwrites
//! them with zero.

use serde::{Deserialize, Serialize};

use pthammer_types::PhysAddr;

/// Magic value marking the start of a serialized credential.
pub const CRED_MAGIC: u64 = 0x4352_4544_5F4D_4147; // "CRED_MAG"
/// Size of one serialized credential in bytes.
pub const CRED_SIZE: u64 = 64;
/// Number of credentials per 4 KiB kernel frame.
pub const CREDS_PER_FRAME: u64 = 4096 / CRED_SIZE;

/// A process credential.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cred {
    /// Real user id.
    pub uid: u32,
    /// Real group id.
    pub gid: u32,
    /// Effective user id.
    pub euid: u32,
    /// Effective group id.
    pub egid: u32,
    /// Owning process id (for bookkeeping, also stored in memory).
    pub pid: u32,
}

impl Cred {
    /// Creates a credential for an unprivileged user.
    pub fn user(pid: u32, uid: u32) -> Self {
        Self {
            uid,
            gid: uid,
            euid: uid,
            egid: uid,
            pid,
        }
    }

    /// True when the credential grants root.
    pub fn is_root(&self) -> bool {
        self.euid == 0
    }

    /// Serializes the credential to its in-memory layout:
    /// `magic (8) | uid (4) | gid (4) | euid (4) | egid (4) | pid (4) | pad`.
    pub fn to_bytes(&self) -> [u8; CRED_SIZE as usize] {
        let mut bytes = [0u8; CRED_SIZE as usize];
        bytes[0..8].copy_from_slice(&CRED_MAGIC.to_le_bytes());
        bytes[8..12].copy_from_slice(&self.uid.to_le_bytes());
        bytes[12..16].copy_from_slice(&self.gid.to_le_bytes());
        bytes[16..20].copy_from_slice(&self.euid.to_le_bytes());
        bytes[20..24].copy_from_slice(&self.egid.to_le_bytes());
        bytes[24..28].copy_from_slice(&self.pid.to_le_bytes());
        bytes
    }

    /// Parses a credential from its in-memory layout. Returns `None` when the
    /// magic value does not match.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < CRED_SIZE as usize {
            return None;
        }
        let magic = u64::from_le_bytes(bytes[0..8].try_into().ok()?);
        if magic != CRED_MAGIC {
            return None;
        }
        Some(Self {
            uid: u32::from_le_bytes(bytes[8..12].try_into().ok()?),
            gid: u32::from_le_bytes(bytes[12..16].try_into().ok()?),
            euid: u32::from_le_bytes(bytes[16..20].try_into().ok()?),
            egid: u32::from_le_bytes(bytes[20..24].try_into().ok()?),
            pid: u32::from_le_bytes(bytes[24..28].try_into().ok()?),
        })
    }

    /// Byte offset of the uid field within the serialized layout.
    pub const fn uid_offset() -> u64 {
        8
    }

    /// Byte offset of the euid field within the serialized layout.
    pub const fn euid_offset() -> u64 {
        16
    }
}

/// Physical location of a credential slot within the cred arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CredSlot {
    /// Physical address of the serialized credential.
    pub paddr: PhysAddr,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let cred = Cred {
            uid: 1000,
            gid: 1000,
            euid: 1000,
            egid: 100,
            pid: 4242,
        };
        let bytes = cred.to_bytes();
        assert_eq!(Cred::from_bytes(&bytes), Some(cred));
    }

    #[test]
    fn wrong_magic_rejected() {
        let cred = Cred::user(1, 1000);
        let mut bytes = cred.to_bytes();
        bytes[0] ^= 0xff;
        assert_eq!(Cred::from_bytes(&bytes), None);
    }

    #[test]
    fn short_buffer_rejected() {
        assert_eq!(Cred::from_bytes(&[0u8; 16]), None);
    }

    #[test]
    fn root_detection() {
        assert!(!Cred::user(1, 1000).is_root());
        let mut c = Cred::user(1, 1000);
        c.euid = 0;
        assert!(c.is_root());
    }

    #[test]
    fn layout_constants_consistent() {
        assert_eq!(CRED_SIZE * CREDS_PER_FRAME, 4096);
        let cred = Cred::user(7, 1234);
        let bytes = cred.to_bytes();
        let uid = u32::from_le_bytes(
            bytes[Cred::uid_offset() as usize..Cred::uid_offset() as usize + 4]
                .try_into()
                .unwrap(),
        );
        assert_eq!(uid, 1234);
        let euid = u32::from_le_bytes(
            bytes[Cred::euid_offset() as usize..Cred::euid_offset() as usize + 4]
                .try_into()
                .unwrap(),
        );
        assert_eq!(euid, 1234);
    }
}

//! Virtual memory areas (simplified `vm_area_struct`).

use serde::{Deserialize, Serialize};

use pthammer_types::{PageSize, VirtAddr};

/// What backs a virtual memory area.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum VmaBacking {
    /// Anonymous memory; freshly populated pages are filled with the given
    /// repeated 64-bit pattern (so the attacker can later recognise them).
    Anonymous {
        /// Fill pattern written to each populated frame.
        fill_pattern: u64,
    },
    /// Every page of the area maps the same set of shared physical frames,
    /// cycling through them — the `mmap` aliasing trick the paper uses to
    /// turn a handful of user frames into gigabytes of Level-1 page tables.
    SharedFrames {
        /// The shared frames, reused round-robin across the area's pages.
        frames: Vec<u64>,
    },
}

/// A contiguous virtual mapping of one process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vma {
    /// First virtual address of the area (page aligned).
    pub start: VirtAddr,
    /// Length in bytes (multiple of the page size).
    pub length: u64,
    /// Page size used for mappings in this area.
    pub page_size: PageSize,
    /// Backing of the area.
    pub backing: VmaBacking,
}

impl Vma {
    /// One-past-the-end virtual address.
    pub fn end(&self) -> VirtAddr {
        self.start + self.length
    }

    /// True when `vaddr` falls inside the area.
    pub fn contains(&self, vaddr: VirtAddr) -> bool {
        vaddr >= self.start && vaddr < self.end()
    }

    /// Number of pages in the area.
    pub fn page_count(&self) -> u64 {
        self.length / self.page_size.bytes()
    }

    /// Index of the page containing `vaddr` within the area.
    ///
    /// # Panics
    ///
    /// Panics if `vaddr` is outside the area.
    pub fn page_index(&self, vaddr: VirtAddr) -> u64 {
        assert!(self.contains(vaddr), "{vaddr} outside VMA");
        (vaddr - self.start) / self.page_size.bytes()
    }

    /// The shared frame backing the page at `page_index`, if this is a
    /// shared-frames area.
    pub fn shared_frame_for(&self, page_index: u64) -> Option<u64> {
        match &self.backing {
            VmaBacking::SharedFrames { frames } if !frames.is_empty() => {
                Some(frames[(page_index % frames.len() as u64) as usize])
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vma() -> Vma {
        Vma {
            start: VirtAddr::new(0x10_0000),
            length: 0x8000,
            page_size: PageSize::Base4K,
            backing: VmaBacking::Anonymous { fill_pattern: 0xAA },
        }
    }

    #[test]
    fn bounds_and_containment() {
        let v = vma();
        assert_eq!(v.end(), VirtAddr::new(0x10_8000));
        assert!(v.contains(VirtAddr::new(0x10_0000)));
        assert!(v.contains(VirtAddr::new(0x10_7fff)));
        assert!(!v.contains(VirtAddr::new(0x10_8000)));
        assert!(!v.contains(VirtAddr::new(0xf_ffff)));
        assert_eq!(v.page_count(), 8);
    }

    #[test]
    fn page_index_computation() {
        let v = vma();
        assert_eq!(v.page_index(VirtAddr::new(0x10_0000)), 0);
        assert_eq!(v.page_index(VirtAddr::new(0x10_1fff)), 1);
        assert_eq!(v.page_index(VirtAddr::new(0x10_7000)), 7);
    }

    #[test]
    #[should_panic(expected = "outside VMA")]
    fn page_index_out_of_range_panics() {
        let v = vma();
        v.page_index(VirtAddr::new(0x20_0000));
    }

    #[test]
    fn shared_frames_cycle() {
        let v = Vma {
            start: VirtAddr::new(0),
            length: 0x10_0000,
            page_size: PageSize::Base4K,
            backing: VmaBacking::SharedFrames {
                frames: vec![10, 20, 30],
            },
        };
        assert_eq!(v.shared_frame_for(0), Some(10));
        assert_eq!(v.shared_frame_for(1), Some(20));
        assert_eq!(v.shared_frame_for(2), Some(30));
        assert_eq!(v.shared_frame_for(3), Some(10));
        assert_eq!(vma().shared_frame_for(0), None);
    }

    #[test]
    fn huge_page_vma_page_count() {
        let v = Vma {
            start: VirtAddr::new(0x4000_0000),
            length: 8 * 2 * 1024 * 1024,
            page_size: PageSize::Huge2M,
            backing: VmaBacking::Anonymous { fill_pattern: 0 },
        };
        assert_eq!(v.page_count(), 8);
    }
}

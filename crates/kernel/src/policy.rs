//! Frame-placement policies.
//!
//! The kernel substrate asks its placement policy for every physical frame it
//! allocates, tagging the request with the frame's purpose. The default
//! policy models an undefended Linux kernel; the `pthammer-defenses` crate
//! implements CATT, RIP-RH and CTA as alternative policies.

use std::fmt;
use std::str::FromStr;

use serde::ser::JsonWriter;
use serde::{Deserialize, Serialize};

use crate::buddy::BuddyAllocator;

/// Which evaluated defense a placement policy implements.
///
/// This is the *typed identity* of a policy — reports carry it instead of a
/// free-form name string, so every layer (attack outcomes, campaign cells,
/// summaries) agrees on the canonical spelling. The canonical JSON form is
/// the display name (`"undefended"`, `"CATT"`, ...), pinned by the golden
/// campaign snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefenseKind {
    /// No defense: the stock-kernel baseline.
    Undefended,
    /// CATT kernel/user physical partitioning.
    Catt,
    /// RIP-RH per-process physical partitioning.
    RipRh,
    /// CTA true-cell page-table region.
    Cta,
    /// ZebRAM guard rows.
    Zebram,
}

impl DefenseKind {
    /// Every defense kind, in evaluation order.
    pub fn all() -> Vec<DefenseKind> {
        vec![
            DefenseKind::Undefended,
            DefenseKind::Catt,
            DefenseKind::RipRh,
            DefenseKind::Cta,
            DefenseKind::Zebram,
        ]
    }

    /// Canonical display name (also the canonical JSON serialization, pinned
    /// by the golden campaign snapshots).
    pub fn name(&self) -> &'static str {
        match self {
            DefenseKind::Undefended => "undefended",
            DefenseKind::Catt => "CATT",
            DefenseKind::RipRh => "RIP-RH",
            DefenseKind::Cta => "CTA",
            DefenseKind::Zebram => "ZebRAM",
        }
    }
}

impl fmt::Display for DefenseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for DefenseKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DefenseKind::all()
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| format!("unknown defense kind `{s}`"))
    }
}

// Canonical JSON form is the display name; hand-written because the offline
// serde stub has no `rename` support and the golden snapshots pin these
// exact strings.
impl Serialize for DefenseKind {
    fn serialize(&self, w: &mut JsonWriter) {
        w.string(self.name());
    }
}

impl Deserialize for DefenseKind {}

/// Why the kernel is allocating a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FramePurpose {
    /// A page-table node at the given level (4 = PML4 … 1 = L1 page table).
    PageTable {
        /// Page-table level of the node being allocated.
        level: u8,
        /// Process that owns the address space.
        pid: u32,
    },
    /// An anonymous user data page.
    UserPage {
        /// Owning process.
        pid: u32,
    },
    /// Kernel data such as `struct cred` slabs.
    KernelData,
}

impl FramePurpose {
    /// True for Level-1 page-table allocations — the frames PThammer hammers
    /// and corrupts.
    pub fn is_l1_page_table(&self) -> bool {
        matches!(self, FramePurpose::PageTable { level: 1, .. })
    }

    /// True for any page-table allocation.
    pub fn is_page_table(&self) -> bool {
        matches!(self, FramePurpose::PageTable { .. })
    }
}

/// A frame-placement policy.
///
/// Policies receive every allocation request together with its purpose and
/// decide where in physical memory (and therefore where in DRAM) the frame
/// lands. Software-only rowhammer defenses are exactly such policies.
pub trait PlacementPolicy: fmt::Debug + Send {
    /// Human-readable policy name (used in experiment reports).
    fn name(&self) -> &str;

    /// Typed identity of the defense this policy implements; attack
    /// outcomes and campaign reports carry this instead of the free-form
    /// [`name`](PlacementPolicy::name).
    fn kind(&self) -> DefenseKind;

    /// Allocates a frame for `purpose` from `buddy`, or `None` when the
    /// policy cannot satisfy the request.
    fn allocate(&mut self, purpose: FramePurpose, buddy: &mut BuddyAllocator) -> Option<u64>;

    /// Releases a frame previously returned by [`PlacementPolicy::allocate`].
    fn free(&mut self, frame: u64, buddy: &mut BuddyAllocator) {
        buddy.free_frame(frame);
    }
}

/// The undefended baseline: every allocation takes the lowest free frame,
/// regardless of purpose — page tables, user data and kernel data freely
/// intermingle in DRAM, exactly the situation PThammer exploits on a stock
/// kernel.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DefaultPolicy;

impl DefaultPolicy {
    /// Creates the default policy.
    pub fn new() -> Self {
        Self
    }
}

impl PlacementPolicy for DefaultPolicy {
    fn name(&self) -> &str {
        "default (undefended)"
    }

    fn kind(&self) -> DefenseKind {
        DefenseKind::Undefended
    }

    fn allocate(&mut self, _purpose: FramePurpose, buddy: &mut BuddyAllocator) -> Option<u64> {
        buddy.alloc_frame()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn purpose_predicates() {
        assert!(FramePurpose::PageTable { level: 1, pid: 3 }.is_l1_page_table());
        assert!(!FramePurpose::PageTable { level: 2, pid: 3 }.is_l1_page_table());
        assert!(FramePurpose::PageTable { level: 4, pid: 3 }.is_page_table());
        assert!(!FramePurpose::UserPage { pid: 3 }.is_page_table());
        assert!(!FramePurpose::KernelData.is_page_table());
    }

    #[test]
    fn default_policy_allocates_ascending() {
        let mut buddy = BuddyAllocator::new(0, 256);
        let mut policy = DefaultPolicy::new();
        let a = policy
            .allocate(FramePurpose::KernelData, &mut buddy)
            .unwrap();
        let b = policy
            .allocate(FramePurpose::UserPage { pid: 1 }, &mut buddy)
            .unwrap();
        let c = policy
            .allocate(FramePurpose::PageTable { level: 1, pid: 1 }, &mut buddy)
            .unwrap();
        assert_eq!((a, b, c), (0, 1, 2));
        policy.free(b, &mut buddy);
        assert_eq!(buddy.free_frames(), 254);
    }

    #[test]
    fn default_policy_name() {
        assert!(DefaultPolicy::new().name().contains("undefended"));
        assert_eq!(DefaultPolicy::new().kind(), DefenseKind::Undefended);
    }

    #[test]
    fn defense_kind_names_round_trip() {
        for kind in DefenseKind::all() {
            assert_eq!(kind.name().parse::<DefenseKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.name());
        }
        assert!("no-such-defense".parse::<DefenseKind>().is_err());
    }

    #[test]
    fn defense_kind_serializes_as_display_name() {
        let mut w = serde::ser::JsonWriter::new(false);
        serde::Serialize::serialize(&DefenseKind::RipRh, &mut w);
        assert_eq!(w.into_string(), "\"RIP-RH\"");
    }
}

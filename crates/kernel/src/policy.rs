//! Frame-placement policies.
//!
//! The kernel substrate asks its placement policy for every physical frame it
//! allocates, tagging the request with the frame's purpose. The default
//! policy models an undefended Linux kernel; the `pthammer-defenses` crate
//! implements CATT, RIP-RH and CTA as alternative policies.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::buddy::BuddyAllocator;

/// Why the kernel is allocating a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FramePurpose {
    /// A page-table node at the given level (4 = PML4 … 1 = L1 page table).
    PageTable {
        /// Page-table level of the node being allocated.
        level: u8,
        /// Process that owns the address space.
        pid: u32,
    },
    /// An anonymous user data page.
    UserPage {
        /// Owning process.
        pid: u32,
    },
    /// Kernel data such as `struct cred` slabs.
    KernelData,
}

impl FramePurpose {
    /// True for Level-1 page-table allocations — the frames PThammer hammers
    /// and corrupts.
    pub fn is_l1_page_table(&self) -> bool {
        matches!(self, FramePurpose::PageTable { level: 1, .. })
    }

    /// True for any page-table allocation.
    pub fn is_page_table(&self) -> bool {
        matches!(self, FramePurpose::PageTable { .. })
    }
}

/// A frame-placement policy.
///
/// Policies receive every allocation request together with its purpose and
/// decide where in physical memory (and therefore where in DRAM) the frame
/// lands. Software-only rowhammer defenses are exactly such policies.
pub trait PlacementPolicy: fmt::Debug + Send {
    /// Human-readable policy name (used in experiment reports).
    fn name(&self) -> &str;

    /// Allocates a frame for `purpose` from `buddy`, or `None` when the
    /// policy cannot satisfy the request.
    fn allocate(&mut self, purpose: FramePurpose, buddy: &mut BuddyAllocator) -> Option<u64>;

    /// Releases a frame previously returned by [`PlacementPolicy::allocate`].
    fn free(&mut self, frame: u64, buddy: &mut BuddyAllocator) {
        buddy.free_frame(frame);
    }
}

/// The undefended baseline: every allocation takes the lowest free frame,
/// regardless of purpose — page tables, user data and kernel data freely
/// intermingle in DRAM, exactly the situation PThammer exploits on a stock
/// kernel.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DefaultPolicy;

impl DefaultPolicy {
    /// Creates the default policy.
    pub fn new() -> Self {
        Self
    }
}

impl PlacementPolicy for DefaultPolicy {
    fn name(&self) -> &str {
        "default (undefended)"
    }

    fn allocate(&mut self, _purpose: FramePurpose, buddy: &mut BuddyAllocator) -> Option<u64> {
        buddy.alloc_frame()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn purpose_predicates() {
        assert!(FramePurpose::PageTable { level: 1, pid: 3 }.is_l1_page_table());
        assert!(!FramePurpose::PageTable { level: 2, pid: 3 }.is_l1_page_table());
        assert!(FramePurpose::PageTable { level: 4, pid: 3 }.is_page_table());
        assert!(!FramePurpose::UserPage { pid: 3 }.is_page_table());
        assert!(!FramePurpose::KernelData.is_page_table());
    }

    #[test]
    fn default_policy_allocates_ascending() {
        let mut buddy = BuddyAllocator::new(0, 256);
        let mut policy = DefaultPolicy::new();
        let a = policy
            .allocate(FramePurpose::KernelData, &mut buddy)
            .unwrap();
        let b = policy
            .allocate(FramePurpose::UserPage { pid: 1 }, &mut buddy)
            .unwrap();
        let c = policy
            .allocate(FramePurpose::PageTable { level: 1, pid: 1 }, &mut buddy)
            .unwrap();
        assert_eq!((a, b, c), (0, 1, 2));
        policy.free(b, &mut buddy);
        assert_eq!(buddy.free_frames(), 254);
    }

    #[test]
    fn default_policy_name() {
        assert!(DefaultPolicy::new().name().contains("undefended"));
    }
}

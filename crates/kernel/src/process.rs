//! Simulated processes.

use serde::{Deserialize, Serialize};

use pthammer_types::{PhysAddr, VirtAddr};

use crate::vma::Vma;

/// Process identifier.
pub type Pid = u32;

/// A simulated process: an address space root, credentials and mappings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// User id the process was created with.
    pub uid: u32,
    /// Physical address of the PML4 (the CR3 value while this process runs).
    pub cr3: PhysAddr,
    /// Physical address of the process's serialized `struct cred`.
    pub cred_paddr: PhysAddr,
    /// Virtual memory areas, ordered by start address.
    pub vmas: Vec<Vma>,
    /// Next mmap base address.
    pub next_mmap: u64,
    /// Level-1 page-table frames allocated for this process (bookkeeping for
    /// experiment reports; the attacker has no access to this).
    pub l1pt_frames: Vec<u64>,
}

impl Process {
    /// Finds the VMA containing `vaddr`.
    pub fn find_vma(&self, vaddr: VirtAddr) -> Option<&Vma> {
        self.vmas.iter().find(|vma| vma.contains(vaddr))
    }

    /// Total bytes of Level-1 page tables allocated for this process.
    pub fn l1pt_bytes(&self) -> u64 {
        self.l1pt_frames.len() as u64 * 4096
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vma::VmaBacking;
    use pthammer_types::PageSize;

    #[test]
    fn find_vma_locates_containing_area() {
        let proc = Process {
            pid: 1,
            uid: 1000,
            cr3: PhysAddr::new(0x1000),
            cred_paddr: PhysAddr::new(0x2000),
            vmas: vec![
                Vma {
                    start: VirtAddr::new(0x10_0000),
                    length: 0x1000,
                    page_size: PageSize::Base4K,
                    backing: VmaBacking::Anonymous { fill_pattern: 1 },
                },
                Vma {
                    start: VirtAddr::new(0x20_0000),
                    length: 0x2000,
                    page_size: PageSize::Base4K,
                    backing: VmaBacking::Anonymous { fill_pattern: 2 },
                },
            ],
            next_mmap: 0x30_0000,
            l1pt_frames: vec![5, 6],
        };
        assert!(proc.find_vma(VirtAddr::new(0x10_0800)).is_some());
        assert!(proc.find_vma(VirtAddr::new(0x20_1fff)).is_some());
        assert!(proc.find_vma(VirtAddr::new(0x15_0000)).is_none());
        assert_eq!(proc.l1pt_bytes(), 8192);
    }
}

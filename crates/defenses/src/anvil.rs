//! ANVIL-style performance-counter rowhammer detection (Aweke et al.,
//! ASPLOS 2016).

use serde::{Deserialize, Serialize};

/// What the detector is allowed to observe.
///
/// The original ANVIL samples the addresses of *load instructions* that miss
/// the LLC and checks whether they repeatedly target the same DRAM row. As
/// the paper points out (Section V), PThammer's DRAM activity comes from the
/// page-table walker, not from attacker loads, so an unmodified ANVIL never
/// sees the hammering addresses. The extended mode models the fix the paper
/// suggests: also attributing walker-issued (implicit) DRAM accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnvilMode {
    /// Only explicit (attacker-issued load/store) DRAM accesses are visible.
    ExplicitLoadsOnly,
    /// Implicit accesses from page-table walks are also attributed.
    IncludeImplicitAccesses,
}

/// Verdict for one observation window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnvilVerdict {
    /// Whether the window was flagged as a rowhammer attempt.
    pub detected: bool,
    /// DRAM activation rate (activations per million cycles) that was
    /// attributed to observable accesses in this window.
    pub observed_activation_rate: f64,
}

/// A sampling detector in the spirit of ANVIL.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnvilDetector {
    mode: AnvilMode,
    /// Activations per million cycles above which a window is flagged.
    threshold_per_mcycle: f64,
    windows_observed: u64,
    windows_flagged: u64,
}

impl AnvilDetector {
    /// Creates a detector. A typical threshold is a few hundred same-bank
    /// activations per million cycles.
    pub fn new(mode: AnvilMode, threshold_per_mcycle: f64) -> Self {
        Self {
            mode,
            threshold_per_mcycle,
            windows_observed: 0,
            windows_flagged: 0,
        }
    }

    /// The detector's observation mode.
    pub fn mode(&self) -> AnvilMode {
        self.mode
    }

    /// Observes one sampling window.
    ///
    /// * `window_cycles` — length of the window in cycles.
    /// * `explicit_dram_accesses` — DRAM accesses caused by attacker-visible
    ///   loads/stores (what the unmodified ANVIL samples).
    /// * `implicit_dram_accesses` — DRAM accesses issued by the page-table
    ///   walker (only visible in [`AnvilMode::IncludeImplicitAccesses`]).
    pub fn observe_window(
        &mut self,
        window_cycles: u64,
        explicit_dram_accesses: u64,
        implicit_dram_accesses: u64,
    ) -> AnvilVerdict {
        self.windows_observed += 1;
        let observable = match self.mode {
            AnvilMode::ExplicitLoadsOnly => explicit_dram_accesses,
            AnvilMode::IncludeImplicitAccesses => explicit_dram_accesses + implicit_dram_accesses,
        };
        let rate = if window_cycles == 0 {
            0.0
        } else {
            observable as f64 * 1.0e6 / window_cycles as f64
        };
        let detected = rate > self.threshold_per_mcycle;
        if detected {
            self.windows_flagged += 1;
        }
        AnvilVerdict {
            detected,
            observed_activation_rate: rate,
        }
    }

    /// Fraction of observed windows that were flagged.
    pub fn detection_rate(&self) -> f64 {
        if self.windows_observed == 0 {
            0.0
        } else {
            self.windows_flagged as f64 / self.windows_observed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_mode_misses_implicit_hammering() {
        let mut anvil = AnvilDetector::new(AnvilMode::ExplicitLoadsOnly, 500.0);
        // A PThammer-like window: almost all DRAM activity is implicit.
        let verdict = anvil.observe_window(1_000_000, 20, 3_000);
        assert!(
            !verdict.detected,
            "unmodified ANVIL cannot see walker accesses"
        );
    }

    #[test]
    fn extended_mode_detects_implicit_hammering() {
        let mut anvil = AnvilDetector::new(AnvilMode::IncludeImplicitAccesses, 500.0);
        let verdict = anvil.observe_window(1_000_000, 20, 3_000);
        assert!(verdict.detected);
        assert!(verdict.observed_activation_rate > 500.0);
    }

    #[test]
    fn explicit_mode_detects_explicit_hammering() {
        let mut anvil = AnvilDetector::new(AnvilMode::ExplicitLoadsOnly, 500.0);
        // A clflush-based double-sided hammer issues explicit DRAM accesses.
        let verdict = anvil.observe_window(1_000_000, 4_000, 0);
        assert!(verdict.detected);
    }

    #[test]
    fn benign_workload_not_flagged() {
        for mode in [
            AnvilMode::ExplicitLoadsOnly,
            AnvilMode::IncludeImplicitAccesses,
        ] {
            let mut anvil = AnvilDetector::new(mode, 500.0);
            let verdict = anvil.observe_window(1_000_000, 50, 30);
            assert!(!verdict.detected);
        }
    }

    #[test]
    fn detection_rate_accumulates() {
        let mut anvil = AnvilDetector::new(AnvilMode::IncludeImplicitAccesses, 500.0);
        anvil.observe_window(1_000_000, 0, 3_000);
        anvil.observe_window(1_000_000, 0, 10);
        assert!((anvil.detection_rate() - 0.5).abs() < 1e-12);
        assert_eq!(
            AnvilDetector::new(AnvilMode::ExplicitLoadsOnly, 1.0).detection_rate(),
            0.0
        );
    }

    #[test]
    fn zero_length_window_is_not_flagged() {
        let mut anvil = AnvilDetector::new(AnvilMode::IncludeImplicitAccesses, 500.0);
        assert!(!anvil.observe_window(0, 1_000, 1_000).detected);
    }
}

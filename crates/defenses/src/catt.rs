//! CATT: CAn't-Touch-This (Brasser et al., USENIX Security 2017).

use pthammer_dram::DramGeometry;
use pthammer_kernel::{BuddyAllocator, DefenseKind, FramePurpose, PlacementPolicy};

use crate::{row_of_frame, total_rows};

/// CATT partitions DRAM rows into a kernel region (low row indices) and a
/// user region (high row indices), separated by guard rows. Unprivileged
/// processes can therefore never own memory in a row adjacent to kernel data
/// — the assumption PThammer voids by making the *processor* access kernel
/// rows on the attacker's behalf.
#[derive(Debug, Clone)]
pub struct CattPolicy {
    geometry: DramGeometry,
    /// First row index of the guard band.
    kernel_rows_end: u64,
    /// First row index of the user region.
    user_rows_start: u64,
}

impl CattPolicy {
    /// Creates a CATT policy reserving the lowest `kernel_fraction` of row
    /// indices for the kernel, with `guard_rows` unused rows between the
    /// kernel and user regions.
    ///
    /// # Panics
    ///
    /// Panics if `kernel_fraction` is not in `(0, 1)`.
    pub fn new(geometry: &DramGeometry, kernel_fraction: f64, guard_rows: u64) -> Self {
        assert!(
            kernel_fraction > 0.0 && kernel_fraction < 1.0,
            "kernel_fraction must be in (0, 1)"
        );
        let rows = total_rows(geometry);
        let kernel_rows_end = ((rows as f64) * kernel_fraction) as u64;
        let user_rows_start = (kernel_rows_end + guard_rows).min(rows);
        Self {
            geometry: *geometry,
            kernel_rows_end,
            user_rows_start,
        }
    }

    /// True when `frame` lies in the kernel region.
    pub fn frame_in_kernel_region(&self, frame: u64) -> bool {
        row_of_frame(&self.geometry, frame) < self.kernel_rows_end
    }

    /// True when `frame` lies in the user region.
    pub fn frame_in_user_region(&self, frame: u64) -> bool {
        row_of_frame(&self.geometry, frame) >= self.user_rows_start
    }

    /// First row index of the user region (for reporting).
    pub fn user_rows_start(&self) -> u64 {
        self.user_rows_start
    }
}

impl PlacementPolicy for CattPolicy {
    fn name(&self) -> &str {
        "CATT (kernel/user DRAM partitioning)"
    }

    fn kind(&self) -> DefenseKind {
        DefenseKind::Catt
    }

    fn allocate(&mut self, purpose: FramePurpose, buddy: &mut BuddyAllocator) -> Option<u64> {
        match purpose {
            FramePurpose::PageTable { .. } | FramePurpose::KernelData => {
                buddy.alloc_frame_filtered(|f| self.frame_in_kernel_region(f), false)
            }
            FramePurpose::UserPage { .. } => {
                buddy.alloc_frame_filtered(|f| self.frame_in_user_region(f), false)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> DramGeometry {
        DramGeometry::small_1gib()
    }

    #[test]
    fn partitions_are_disjoint_with_guard() {
        let g = geometry();
        let catt = CattPolicy::new(&g, 0.25, 2);
        let rows = total_rows(&g);
        assert!(catt.kernel_rows_end < catt.user_rows_start);
        assert!(catt.user_rows_start <= rows);
        // No frame is in both regions.
        for frame in (0..g.total_frames()).step_by(997) {
            assert!(!(catt.frame_in_kernel_region(frame) && catt.frame_in_user_region(frame)));
        }
    }

    #[test]
    fn kernel_allocations_stay_in_kernel_region() {
        let g = geometry();
        let mut catt = CattPolicy::new(&g, 0.25, 1);
        let mut buddy = BuddyAllocator::new(16, g.total_frames());
        for _ in 0..100 {
            let f = catt
                .allocate(FramePurpose::PageTable { level: 1, pid: 1 }, &mut buddy)
                .unwrap();
            assert!(catt.frame_in_kernel_region(f));
            let f = catt.allocate(FramePurpose::KernelData, &mut buddy).unwrap();
            assert!(catt.frame_in_kernel_region(f));
        }
    }

    #[test]
    fn user_allocations_stay_in_user_region() {
        let g = geometry();
        let mut catt = CattPolicy::new(&g, 0.25, 1);
        let mut buddy = BuddyAllocator::new(16, g.total_frames());
        for _ in 0..100 {
            let f = catt
                .allocate(FramePurpose::UserPage { pid: 7 }, &mut buddy)
                .unwrap();
            assert!(catt.frame_in_user_region(f));
        }
    }

    #[test]
    fn user_rows_never_adjacent_to_kernel_rows() {
        let g = geometry();
        let catt = CattPolicy::new(&g, 0.25, 1);
        // Any user row index is at least guard_rows away from any kernel row.
        let kernel_last = catt.kernel_rows_end - 1;
        let user_first = catt.user_rows_start;
        assert!(
            user_first > kernel_last + 1,
            "guard row(s) separate the regions"
        );
    }

    #[test]
    #[should_panic(expected = "kernel_fraction")]
    fn invalid_fraction_rejected() {
        let _ = CattPolicy::new(&geometry(), 1.5, 1);
    }
}

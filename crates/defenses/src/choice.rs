//! First-class defense selection: every evaluated defense as one enum that
//! can build its placement policy and boot a defended [`System`].
//!
//! The paper's Section IV-G treats defense × attack combinations as an
//! evaluation matrix; [`DefenseChoice`] is the axis type for that matrix,
//! shared by the campaign harness, the bench scenarios, and the examples.

use pthammer_dram::FlipModel;
use pthammer_kernel::{DefaultPolicy, DefenseKind, KernelConfig, PlacementPolicy, System};
use pthammer_machine::MachineConfig;
use serde::{Deserialize, Serialize};

/// The defense configurations evaluated in Section IV-G (plus the undefended
/// baseline and ZebRAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DefenseChoice {
    /// No defense (baseline).
    None,
    /// CATT kernel/user partitioning.
    Catt,
    /// RIP-RH per-process partitioning.
    RipRh,
    /// CTA true-cell L1PT region.
    Cta,
    /// ZebRAM guard rows (expected to stop the attack).
    Zebram,
}

impl DefenseChoice {
    /// All evaluated defenses.
    pub fn all() -> Vec<DefenseChoice> {
        vec![
            DefenseChoice::None,
            DefenseChoice::Catt,
            DefenseChoice::RipRh,
            DefenseChoice::Cta,
            DefenseChoice::Zebram,
        ]
    }

    /// Display name (delegates to the typed [`DefenseKind`] so the spelling
    /// exists in exactly one place).
    pub fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// The typed defense identity this choice builds; the same value every
    /// policy built by [`DefenseChoice::policy`] reports from
    /// [`PlacementPolicy::kind`].
    pub fn kind(&self) -> DefenseKind {
        match self {
            DefenseChoice::None => DefenseKind::Undefended,
            DefenseChoice::Catt => DefenseKind::Catt,
            DefenseChoice::RipRh => DefenseKind::RipRh,
            DefenseChoice::Cta => DefenseKind::Cta,
            DefenseChoice::Zebram => DefenseKind::Zebram,
        }
    }

    /// Builds the placement policy for a given machine configuration.
    pub fn policy(&self, machine: &MachineConfig) -> Box<dyn PlacementPolicy> {
        let geometry = &machine.dram.geometry;
        match self {
            DefenseChoice::None => Box::new(DefaultPolicy::new()),
            DefenseChoice::Catt => Box::new(crate::CattPolicy::new(geometry, 0.25, 1)),
            DefenseChoice::RipRh => Box::new(crate::RipRhPolicy::new(geometry, 64, 2)),
            DefenseChoice::Cta => {
                let model = FlipModel::new(
                    machine.dram.flip_profile,
                    machine.dram.flip_seed,
                    geometry.row_bytes,
                );
                Box::new(crate::CtaPolicy::new(geometry, &model, 0.2))
            }
            DefenseChoice::Zebram => Box::new(crate::ZebramPolicy::new(geometry)),
        }
    }

    /// Adjusts a machine configuration for deployment assumptions the defense
    /// makes. CTA's published deployment requires DRAM whose weak cells are
    /// predominantly true cells, so its profile is biased that way — exactly
    /// as the paper's Section IV-G evaluation does.
    pub fn prepare_machine(&self, machine: &mut MachineConfig) {
        if *self == DefenseChoice::Cta {
            machine.dram.flip_profile.true_cell_fraction = 0.9;
        }
    }

    /// Boots a [`System`] defended by this policy: applies
    /// [`prepare_machine`](Self::prepare_machine), builds the policy, and
    /// constructs the system.
    pub fn build_system(&self, mut machine: MachineConfig, kernel: KernelConfig) -> System {
        self.prepare_machine(&mut machine);
        let policy = self.policy(&machine);
        System::new(machine, kernel, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pthammer_dram::FlipModelProfile;
    use pthammer_machine::MachineChoice;

    #[test]
    fn defense_choices_build_policies() {
        let machine = MachineChoice::LenovoT420.config(FlipModelProfile::fast(), 3);
        for defense in DefenseChoice::all() {
            let policy = defense.policy(&machine);
            assert!(!policy.name().is_empty());
            assert_eq!(
                policy.kind(),
                defense.kind(),
                "policy built by {defense:?} must report the matching kind"
            );
        }
        assert_eq!(DefenseChoice::Cta.name(), "CTA");
        assert_eq!(DefenseChoice::None.kind(), DefenseKind::Undefended);
    }

    #[test]
    fn cta_biases_true_cells_other_defenses_do_not() {
        let base = MachineChoice::TestSmall.config(FlipModelProfile::ci(), 5);
        for defense in DefenseChoice::all() {
            let mut machine = base.clone();
            defense.prepare_machine(&mut machine);
            if defense == DefenseChoice::Cta {
                assert!((machine.dram.flip_profile.true_cell_fraction - 0.9).abs() < 1e-12);
            } else {
                assert_eq!(
                    machine.dram.flip_profile.true_cell_fraction,
                    base.dram.flip_profile.true_cell_fraction
                );
            }
        }
    }

    #[test]
    fn build_system_boots_each_defense() {
        for defense in DefenseChoice::all() {
            let machine = MachineChoice::TestSmall.config(FlipModelProfile::invulnerable(), 9);
            let mut sys = defense.build_system(machine, KernelConfig::default_config());
            let pid = sys.spawn_process(1000).expect("spawn");
            assert_eq!(sys.getuid(pid).expect("uid"), 1000);
        }
    }
}

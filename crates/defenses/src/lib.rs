//! Software-only rowhammer defenses, implemented as frame-placement policies
//! for the kernel substrate (plus an ANVIL-style detector).
//!
//! The paper evaluates PThammer against three published software-only
//! defenses, all of which rely on keeping attacker-reachable memory away from
//! DRAM rows adjacent to sensitive data:
//!
//! * **CATT** (Brasser et al., USENIX Security 2017) — partitions DRAM rows
//!   into a kernel region and a user region with guard rows between them.
//! * **RIP-RH** (Bock et al., AsiaCCS 2019) — gives each user process its own
//!   DRAM partition; the kernel itself is not protected.
//! * **CTA** (Wu et al., ASPLOS 2019) — moves Level-1 page tables to the top
//!   of physical memory into rows made only of true cells, so a rowhammer
//!   flip can only lower the frame number a PTE points to.
//! * **ZebRAM** (Konoth et al., OSDI 2018) — interleaves data rows with
//!   unused guard rows (modelled here in its strongest form; the paper notes
//!   PThammer does *not* defeat ZebRAM).
//!
//! All of them are [`PlacementPolicy`](pthammer_kernel::PlacementPolicy)
//! implementations, so a [`System`](pthammer_kernel::System) can be booted
//! with any of them and attacked by the `pthammer` crate.
//!
//! # Examples
//!
//! ```
//! use pthammer_defenses::CattPolicy;
//! use pthammer_kernel::{System, KernelConfig};
//! use pthammer_machine::MachineConfig;
//! use pthammer_dram::FlipModelProfile;
//!
//! let machine = MachineConfig::test_small(FlipModelProfile::ci(), 1);
//! let catt = CattPolicy::new(&machine.dram.geometry, 0.25, 1);
//! let sys = System::new(machine, KernelConfig::default_config(), Box::new(catt));
//! assert!(sys.policy_name().contains("CATT"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anvil;
mod catt;
mod choice;
mod cta;
mod rip_rh;
mod zebram;

pub use anvil::{AnvilDetector, AnvilMode, AnvilVerdict};
pub use catt::CattPolicy;
pub use choice::DefenseChoice;
pub use cta::CtaPolicy;
pub use rip_rh::RipRhPolicy;
pub use zebram::ZebramPolicy;

/// Frames per DRAM row-index span (one row index covers
/// `row_span_bytes / 4096` frames).
pub(crate) fn frames_per_row(geometry: &pthammer_dram::DramGeometry) -> u64 {
    geometry.row_span_bytes() / pthammer_types::PAGE_SIZE
}

/// Row index (paper terminology: the 256 KiB "row span") of a frame.
pub(crate) fn row_of_frame(geometry: &pthammer_dram::DramGeometry, frame: u64) -> u64 {
    frame / frames_per_row(geometry)
}

/// Total number of row indices in the module.
pub(crate) fn total_rows(geometry: &pthammer_dram::DramGeometry) -> u64 {
    geometry.capacity_bytes() / geometry.row_span_bytes()
}
